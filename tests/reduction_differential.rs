//! Differential testing of the reduction engines: the incremental worklist
//! engine, the pre-worklist sweep baseline and the naive O(k²) oracle must
//! agree on generated PULs, for every [`ReductionStrategy`] variant.

use pul::{OpName, Pul};
use pul_core::reduce::{reduce_naive, reduce_sweep_baseline};
use pul_core::ReductionKind;
use workload::pulgen::{generate_pul, PulGenConfig};
use workload::xmark::{generate as xmark, XmarkConfig};
use xlabel::Labeling;
use xmlpul::ReductionStrategy;

fn workload(n_ops: usize, reducible_ratio: f64, seed: u64) -> Pul {
    let doc = xmark(&XmarkConfig { target_nodes: (n_ops * 4).max(2_000), seed });
    let labeling = Labeling::assign(&doc);
    generate_pul(
        &doc,
        &labeling,
        &PulGenConfig { n_ops, reducible_ratio, content_id_base: doc.next_id() + 1_000_000, seed },
    )
}

/// Multiset of (target, op name) of a reduced PUL — the shape the engines must
/// agree on (content order inside merged insertions is rule-determined, and
/// checked by the unit suites).
fn shape(pul: &Pul) -> Vec<(u64, OpName)> {
    let mut v: Vec<(u64, OpName)> =
        pul.ops().iter().map(|o| (o.target().as_u64(), o.name())).collect();
    v.sort_unstable();
    v
}

#[test]
fn worklist_agrees_with_naive_oracle_on_generated_puls() {
    for seed in 0..5u64 {
        let pul = workload(300, 0.15, seed);
        let naive = reduce_naive(&pul);
        for kind in [ReductionKind::Plain, ReductionKind::Deterministic] {
            let fast = pul_core::reduce_with(&pul, kind);
            // Stage 10 only renames ins↓ into ins↙, so op count matches the
            // naive (stages 1–9) oracle for both kinds.
            assert_eq!(fast.len(), naive.len(), "seed {seed}, {kind:?}: worklist vs naive size");
            let sweep = reduce_sweep_baseline(&pul, kind);
            assert_eq!(shape(&fast), shape(&sweep), "seed {seed}, {kind:?}: worklist vs sweep");
        }
        // Canonical: unique result, still the same size as the oracle.
        let canonical = pul_core::reduce_with(&pul, ReductionKind::Canonical);
        assert_eq!(canonical.len(), naive.len(), "seed {seed}: canonical vs naive size");
        assert_eq!(
            canonical.to_string(),
            reduce_sweep_baseline(&pul, ReductionKind::Canonical).to_string(),
            "seed {seed}: canonical form is engine-independent"
        );
    }
}

#[test]
fn every_reduction_strategy_agrees_with_the_oracle() {
    for seed in [3u64, 17] {
        let pul = workload(200, 0.2, seed);
        let naive_len = reduce_naive(&pul).len();
        for strategy in [
            ReductionStrategy::Standard,
            ReductionStrategy::Deterministic,
            ReductionStrategy::Canonical,
            ReductionStrategy::Naive,
        ] {
            let reduced = strategy.reduce(&pul);
            assert_eq!(reduced.len(), naive_len, "seed {seed}, {strategy:?} vs naive oracle");
            // reduction is idempotent for every strategy: (∆r)r = ∆r
            let twice = strategy.reduce(&reduced);
            assert_eq!(shape(&reduced), shape(&twice), "seed {seed}, {strategy:?}: idempotence");
        }
        assert_eq!(ReductionStrategy::None.reduce(&pul).len(), pul.len());
    }
}

#[test]
fn worklist_handles_degenerate_puls() {
    // Empty PUL.
    let empty = Pul::new();
    assert_eq!(pul_core::reduce_with(&empty, ReductionKind::Plain).len(), 0);
    // Unlabeled targets: nothing can be proven related, nothing is reduced
    // away (only exact same-target rules fire; here targets are distinct).
    let mut pul = Pul::new();
    pul.push(pul::UpdateOp::rename(100u64, "x"));
    pul.push(pul::UpdateOp::delete(200u64));
    let red = pul_core::reduce_with(&pul, ReductionKind::Plain);
    assert_eq!(red.len(), 2);
    assert_eq!(red.len(), reduce_naive(&pul).len());
}
