//! The conflict-policy matrix: every [`ConflictType`] crossed with every
//! canonical [`Policy`] (both producers using the same policy), checking
//! whether the session resolves or fails with the unified
//! `XPUL-C01` reconciliation error — and, where it resolves, who wins.

use xmlpul::prelude::*;

/// A fresh fixture document (reduction is disabled so the conflicting
/// operations reach integration untouched).
fn session() -> Executor {
    Executor::parse(
        "<issue><volume>30</volume><paper><title>Old</title><author>Ada</author>\
         <pages>33</pages></paper></issue>",
    )
    .unwrap()
    .reduction(ReductionStrategy::None)
}

/// Builds the two-producer session exhibiting exactly one conflict of `ctype`,
/// with both producers under `policy`, and returns the resolution attempt.
fn resolve_conflict(ctype: ConflictType, policy: Policy) -> (Executor, Result<Resolution>) {
    let mut s = session();
    let doc = s.document();
    let title = doc.find_element("title").unwrap();
    let title_text = doc.children(title).unwrap()[0];
    let paper = doc.find_element("paper").unwrap();

    let (p1, p2) = match ctype {
        ConflictType::RepeatedModification => (
            s.pul_from_ops(vec![UpdateOp::replace_value(title_text, "first")]),
            s.pul_from_ops(vec![UpdateOp::replace_value(title_text, "second")]),
        ),
        ConflictType::RepeatedAttributeInsertion => (
            s.pul_from_ops(vec![UpdateOp::ins_attributes(
                paper,
                vec![Tree::attribute("email", "a@x")],
            )]),
            s.pul_from_ops(vec![UpdateOp::ins_attributes(
                paper,
                vec![Tree::attribute("email", "b@x")],
            )]),
        ),
        ConflictType::InsertionOrder => (
            s.pul_from_ops(vec![UpdateOp::ins_after(
                title,
                vec![Tree::element_with_text("author", "One")],
            )]),
            s.pul_from_ops(vec![UpdateOp::ins_after(
                title,
                vec![Tree::element_with_text("author", "Two")],
            )]),
        ),
        ConflictType::LocalOverride => (
            s.pul_from_ops(vec![UpdateOp::ins_last(
                title,
                vec![Tree::element_with_text("sub", "x")],
            )]),
            s.pul_from_ops(vec![UpdateOp::delete(title)]),
        ),
        ConflictType::NonLocalOverride => (
            s.pul_from_ops(vec![UpdateOp::replace_value(title_text, "New")]),
            s.pul_from_ops(vec![UpdateOp::delete(paper)]),
        ),
    };
    s.submit_with_policy(p1, policy);
    s.submit_with_policy(p2, policy);
    let result = s.resolve();
    (s, result)
}

const ALL_TYPES: [ConflictType; 5] = [
    ConflictType::RepeatedModification,
    ConflictType::RepeatedAttributeInsertion,
    ConflictType::InsertionOrder,
    ConflictType::LocalOverride,
    ConflictType::NonLocalOverride,
];

/// Whether two producers with the given shared policy can reconcile a
/// conflict of the given type (the expectation of §4.2 / Algorithm 3).
fn expected_solvable(ctype: ConflictType, policy: Policy) -> bool {
    match ctype {
        // Both replacements insert *and* remove data: any data guarantee on
        // both sides blocks the exclusion of either.
        ConflictType::RepeatedModification => {
            !policy.preserve_inserted_data && !policy.preserve_removed_data
        }
        // Attribute insertions only insert data.
        ConflictType::RepeatedAttributeInsertion => !policy.preserve_inserted_data,
        // Order conflicts merge the insertions into one generated operation —
        // no data is lost — but at most one producer may demand its order.
        ConflictType::InsertionOrder => !policy.preserve_insertion_order,
        // ins↘ vs del on the same node: the insertion is droppable unless the
        // inserted data is protected, the deletion unless removed data is.
        ConflictType::LocalOverride => {
            !(policy.preserve_inserted_data && policy.preserve_removed_data)
        }
        // repV (inserts + removes) vs del (removes) on an ancestor: without
        // the removed-data guarantee either side is droppable; with it,
        // neither the repV nor the del may be excluded.
        ConflictType::NonLocalOverride => !policy.preserve_removed_data,
    }
}

#[test]
fn matrix_of_conflict_types_and_policies() {
    let policies: [(&str, Policy); 5] = [
        ("relaxed", Policy::relaxed()),
        ("strict", Policy::strict()),
        ("insertion_order", Policy::insertion_order()),
        ("inserted_data", Policy::inserted_data()),
        ("removed_data", Policy::removed_data()),
    ];
    for ctype in ALL_TYPES {
        for (name, policy) in policies {
            let (_, result) = resolve_conflict(ctype, policy);
            match result {
                Ok(resolution) => {
                    assert!(
                        expected_solvable(ctype, policy),
                        "{ctype:?} × {name}: expected failure, got {resolution}"
                    );
                    assert_eq!(
                        resolution.conflicts().len(),
                        1,
                        "{ctype:?} × {name}: exactly the injected conflict"
                    );
                    assert_eq!(resolution.conflicts()[0].ctype, ctype);
                }
                Err(e) => {
                    assert!(
                        !expected_solvable(ctype, policy),
                        "{ctype:?} × {name}: expected resolution, got {e}"
                    );
                    assert_eq!(e.code(), "XPUL-C01", "{ctype:?} × {name}");
                    assert_eq!(
                        e.unsolvable_conflict().map(|c| c.ctype),
                        Some(ctype),
                        "{ctype:?} × {name}: the failing conflict is the injected one"
                    );
                }
            }
        }
    }
}

/// Every solvable cell of the matrix must also *commit*: the resolution is
/// applicable to the session document.
#[test]
fn solvable_cells_commit() {
    let policies = [
        Policy::relaxed(),
        Policy::strict(),
        Policy::insertion_order(),
        Policy::inserted_data(),
        Policy::removed_data(),
    ];
    for ctype in ALL_TYPES {
        for policy in policies {
            let (mut s, result) = resolve_conflict(ctype, policy);
            if let Ok(resolution) = result {
                let report = s
                    .commit_resolution(resolution)
                    .unwrap_or_else(|e| panic!("{ctype:?} × {policy:?}: commit failed: {e}"));
                assert_eq!(report.version, 1);
                assert_eq!(report.conflicts.len(), 1);
            }
        }
    }
}

/// Asymmetric policies: the protected producer's operation wins the conflict.
#[test]
fn protected_producer_wins() {
    // Repeated modification: producer 2 insists its inserted data stays.
    let mut s = session();
    let text = s.document().children(s.document().find_element("title").unwrap()).unwrap()[0];
    let p1 = s.pul_from_ops(vec![UpdateOp::replace_value(text, "first")]);
    let p2 = s.pul_from_ops(vec![UpdateOp::replace_value(text, "second")]);
    s.submit_with_policy(p1, Policy::relaxed());
    s.submit_with_policy(p2, Policy::inserted_data());
    s.commit().unwrap();
    assert!(s.serialize().contains("second"));
    assert!(!s.serialize().contains("first"));

    // Local override: the protected insertion forces the deletion out.
    let mut s = session();
    let title = s.document().find_element("title").unwrap();
    let p1 =
        s.pul_from_ops(vec![UpdateOp::ins_last(title, vec![Tree::element_with_text("sub", "x")])]);
    let p2 = s.pul_from_ops(vec![UpdateOp::delete(title)]);
    s.submit_with_policy(p1, Policy::inserted_data());
    s.submit_with_policy(p2, Policy::relaxed());
    s.commit().unwrap();
    assert!(s.serialize().contains("<sub>x</sub>"), "{}", s.serialize());

    // Insertion order: the order-keeper's content comes first in the
    // generated insertion.
    let mut s = session();
    let title = s.document().find_element("title").unwrap();
    let p1 =
        s.pul_from_ops(vec![UpdateOp::ins_after(title, vec![Tree::element_with_text("a", "1")])]);
    let p2 =
        s.pul_from_ops(vec![UpdateOp::ins_after(title, vec![Tree::element_with_text("b", "2")])]);
    s.submit_with_policy(p1, Policy::relaxed());
    s.submit_with_policy(p2, Policy::insertion_order());
    s.commit().unwrap();
    let xml = s.serialize();
    let pos_a = xml.find("<a>").unwrap();
    let pos_b = xml.find("<b>").unwrap();
    assert!(pos_b < pos_a, "order-keeper (producer 2) goes first: {xml}");
}
