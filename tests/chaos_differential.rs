//! Chaos differential verification: seeded workloads under randomized
//! fault plans.
//!
//! Each case drives the full durable ingestion stack — `IngestQueue` over
//! `Durable<Executor>` and `Durable<ShardedExecutor>` — with an armed
//! [`FaultPlan`] shared by every failpoint layer: the store (WAL
//! append/sync/rotation, checkpoint write/rename), the commit sink, the
//! shard two-phase apply, and the ingest drainer/committer. Whatever the
//! plan injects, three invariants must hold:
//!
//! 1. **Exactness.** The surviving document equals a fault-free sequential
//!    run of *exactly* the submissions whose tickets reported success
//!    (`deep_eq`: same arena entries, same identifiers). A rejected ticket
//!    leaves no trace; an accepted one is never lost.
//! 2. **Stable taxonomy.** Every rejected ticket carries a stable `XPUL-*`
//!    error code from the documented failure set.
//! 3. **Recoverability.** Reopening the store (`Durable::open`) after the
//!    run — including runs where a torn write simulated a mid-commit kill —
//!    reproduces the surviving state bit-identically at the same version.
//!
//! The CI suite crosses pinned seeds with a small deterministic plan matrix
//! (one plan per failpoint family, plus a seed-randomized plan); the
//! `--ignored` sweep runs 200 further randomized seeds. Run it with
//! `cargo test --release --test chaos_differential -- --ignored`.

use std::path::PathBuf;
use std::time::Duration;

use pul::ApplyOptions;
use workload::pulgen::differential_case_with;
use xmlpul::prelude::*;
use xmlpul::{fault_site as site, Durable, DurableBackend, DurableOptions};

const PRODUCERS: usize = 8;
const CI_SEEDS: u64 = 3;
const NIGHTLY_SEEDS: std::ops::Range<u64> = 1000..1200;

fn producer_options() -> ApplyOptions {
    ApplyOptions { validate: true, preserve_content_ids: true }
}

/// Zero-backoff retry policy: real retry semantics without chaos-suite
/// sleeps.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 2,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
        op_deadline: Duration::from_secs(5),
    }
}

/// Small checkpoint threshold so chaos runs cross checkpoint boundaries
/// (and their failpoints) mid-workload.
fn chaos_opts() -> DurableOptions {
    DurableOptions { checkpoint_wal_bytes: 512, retry: fast_retry(), ..DurableOptions::default() }
}

fn tmp_dir(tag: &str, seed: u64, plan_idx: usize) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("xmlpul_chaos_{tag}_{seed}_{plan_idx}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// A randomized plan: one to three specs over the full site list, with mixed
/// kinds and triggers. Torn faults are biased toward `wal.append`, the one
/// site where they differ from permanent faults.
fn random_plan(seed: u64) -> FaultPlan {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xDEAD_BEEF);
    let mut plan = FaultPlan::new(seed);
    let n = 1 + (xorshift(&mut s) % 3) as usize;
    for _ in 0..n {
        let st = site::ALL[(xorshift(&mut s) as usize) % site::ALL.len()];
        let kind = match xorshift(&mut s) % 4 {
            0 => FaultKind::Transient,
            1 | 2 => FaultKind::Permanent,
            _ if st == site::WAL_APPEND => FaultKind::Torn,
            _ => FaultKind::Permanent,
        };
        let trigger = match xorshift(&mut s) % 3 {
            0 => Trigger::Nth(1 + xorshift(&mut s) % 4),
            1 => Trigger::EveryNth(2 + xorshift(&mut s) % 3),
            _ => Trigger::Probability(0.2),
        };
        plan = plan.fail(st, trigger, kind);
    }
    plan
}

/// The deterministic CI matrix: one plan per failpoint family, then the
/// seed-randomized plan on top.
fn plan_matrix(seed: u64) -> Vec<FaultPlan> {
    vec![
        FaultPlan::new(seed).fail(site::WAL_APPEND, Trigger::Nth(1), FaultKind::Transient),
        FaultPlan::new(seed).fail(site::WAL_APPEND, Trigger::Nth(2), FaultKind::Torn),
        FaultPlan::new(seed).fail(site::SINK_COMMIT, Trigger::EveryNth(2), FaultKind::Permanent),
        FaultPlan::new(seed).fail(site::CKPT_WRITE, Trigger::Nth(1), FaultKind::Transient).fail(
            site::CKPT_RENAME,
            Trigger::Nth(1),
            FaultKind::Permanent,
        ),
        FaultPlan::new(seed)
            .fail(site::INGEST_PREPARE, Trigger::Nth(1), FaultKind::Permanent)
            .fail(site::INGEST_COMMIT, Trigger::EveryNth(2), FaultKind::Permanent),
        FaultPlan::new(seed).fail(site::SHARD_APPLY, Trigger::Nth(1), FaultKind::Permanent),
        random_plan(seed),
    ]
}

/// The two backends the chaos stack runs over, abstracted just far enough
/// for the harness: construction, a sequential fault-free commit (the
/// oracle path), and the state observables the invariants compare.
trait ChaosBackend: DurableBackend + IngestBackend + Clone {
    const TAG: &'static str;
    fn from_doc(doc: &Document) -> Self;
    fn doc(&self) -> Document;
    fn xml(&self) -> String;
    fn chaos_version(&self) -> u64;
    fn check_consistent(&self);
    fn commit_one(&mut self, pul: Pul) -> xmlpul::Result<()>;
}

impl ChaosBackend for Executor {
    const TAG: &'static str = "executor";
    fn from_doc(doc: &Document) -> Self {
        Executor::new(doc.clone()).policy(Policy::relaxed()).apply_options(producer_options())
    }
    fn doc(&self) -> Document {
        self.document().clone()
    }
    fn xml(&self) -> String {
        self.serialize()
    }
    fn chaos_version(&self) -> u64 {
        self.version()
    }
    fn check_consistent(&self) {
        self.assert_consistent();
    }
    fn commit_one(&mut self, pul: Pul) -> xmlpul::Result<()> {
        self.submit(pul);
        let resolution = self.resolve()?;
        self.commit_resolution(resolution).map(|_| ())
    }
}

impl ChaosBackend for ShardedExecutor {
    const TAG: &'static str = "sharded";
    fn from_doc(doc: &Document) -> Self {
        ShardedExecutor::new(doc.clone(), 2)
            .expect("rooted document shards")
            .policy(Policy::relaxed())
            .apply_options(producer_options())
    }
    fn doc(&self) -> Document {
        self.document().as_ref().clone()
    }
    fn xml(&self) -> String {
        self.serialize()
    }
    fn chaos_version(&self) -> u64 {
        self.version()
    }
    fn check_consistent(&self) {
        self.assert_consistent();
    }
    fn commit_one(&mut self, pul: Pul) -> xmlpul::Result<()> {
        self.submit(pul);
        let resolution = self.resolve()?;
        self.commit_resolution(resolution).map(|_| ())
    }
}

/// One chaos case: workload `seed` under `plan`, over backend `B`.
fn chaos_case<B: ChaosBackend>(seed: u64, plan: &FaultPlan, plan_idx: usize) {
    let ctx = format!("seed {seed}, plan {plan_idx} ({:?}), backend {}", plan.specs(), B::TAG);
    let case = differential_case_with(seed, PRODUCERS);
    let faults = plan.arm();
    let dir = tmp_dir(B::TAG, seed, plan_idx);

    // One armed handle drives every layer: store, sink, shard apply, and
    // (through the config) the ingest drainer and committer.
    let mut durable = Durable::create(&dir, B::from_doc(&case.doc), chaos_opts())
        .unwrap_or_else(|e| panic!("{ctx}: create: {e}"));
    durable.inject_faults(faults.clone());
    let queue = IngestQueue::with_config(
        durable,
        IngestConfig {
            flush_threshold: 4,
            tick: Duration::from_secs(3600),
            faults: faults.clone(),
            ..IngestConfig::default()
        },
    );
    let tickets: Vec<Ticket> =
        case.puls.iter().map(|p| queue.enqueue(p.clone()).expect("queue open")).collect();
    queue.flush();
    let durable = queue.close().unwrap_or_else(|e| panic!("{ctx}: close: {e}"));

    // Invariant 2: every rejection carries a stable XPUL code.
    let mut accepted = Vec::new();
    for (i, ticket) in tickets.iter().enumerate() {
        match ticket.wait() {
            Ok(_) => accepted.push(i),
            Err(e) => {
                let code = e.code();
                assert!(
                    code.starts_with("XPUL-"),
                    "{ctx}: producer {i} rejected without a stable code: {e}"
                );
            }
        }
    }

    // Invariant 1: the survivors — and only the survivors — are committed.
    // A fault-free sequential run of exactly the accepted submissions must
    // produce the same document (identifiers included).
    let mut replay = B::from_doc(&case.doc);
    for &i in &accepted {
        replay.commit_one(case.puls[i].clone()).unwrap_or_else(|e| {
            panic!("{ctx}: accepted producer {i} fails in the fault-free replay: {e}")
        });
    }
    let survivor = durable.backend().clone();
    assert!(
        survivor.doc().deep_eq(&replay.doc()),
        "{ctx}: surviving document diverged from the fault-free replay of the \
         {} accepted submissions\n  chaos: {}\n  replay: {}",
        accepted.len(),
        survivor.xml(),
        replay.xml()
    );
    survivor.check_consistent();

    // Invariant 3: recovery. Reopening the store reproduces the surviving
    // state — including after torn writes (simulated mid-commit kills) and
    // checkpoint failures left on disk.
    drop(durable);
    let recovered: Durable<B> = Durable::open(&dir, DurableOptions::default())
        .unwrap_or_else(|e| panic!("{ctx}: recovery: {e}"));
    assert_eq!(recovered.backend().chaos_version(), survivor.chaos_version(), "{ctx}: version");
    assert!(
        recovered.backend().doc().deep_eq(&survivor.doc()),
        "{ctx}: recovered document diverged from the surviving session\n  recovered: {}\n  survivor: {}",
        recovered.backend().xml(),
        survivor.xml()
    );
    recovered.backend().check_consistent();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Pinned seeds × the deterministic plan matrix, both backends: the CI
/// chaos smoke suite.
#[test]
fn chaos_survivors_match_fault_free_replay() {
    for seed in 0..CI_SEEDS {
        for (plan_idx, plan) in plan_matrix(seed).iter().enumerate() {
            chaos_case::<Executor>(seed, plan, plan_idx);
            chaos_case::<ShardedExecutor>(seed, plan, plan_idx);
        }
    }
}

/// 200 further randomized seeds, both backends. Run nightly with
/// `cargo test --release --test chaos_differential -- --ignored`.
#[test]
#[ignore = "200-seed chaos sweep; run nightly with --ignored"]
fn chaos_survivors_match_fault_free_replay_many_seeds() {
    for seed in NIGHTLY_SEEDS {
        let plan = random_plan(seed);
        chaos_case::<Executor>(seed, &plan, usize::MAX);
        chaos_case::<ShardedExecutor>(seed, &plan, usize::MAX);
    }
}
