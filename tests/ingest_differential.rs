//! Seeded differential verification of the batched ingestion pipeline.
//!
//! For every seeded case (the [`workload::pulgen::differential_case_with`]
//! generator: an XMark document plus the PULs of a dozen producers), the same
//! submissions are committed
//!
//! * **sequentially** through a single [`Executor`] oracle — one
//!   `submit → resolve → commit` round trip per producer, failed commits
//!   withdrawn, exactly what a queue-less server loop would do — and
//! * **batched** through an [`IngestQueue`] at flush thresholds 1, 4 and 16,
//!   over both backends ([`Executor`] and a 4-shard [`ShardedExecutor`]).
//!
//! Whatever the coalescer decides (merge independent PULs into one round,
//! serialize overlapping ones), the committed document must be
//! **bit-identical** to the oracle's (`deep_eq`: same arena entries, same
//! identifiers), every Table-1 predicate of the final labeling must answer as
//! the oracle's, every session must pass `assert_consistent`, and each
//! ticket must succeed or fail exactly as the oracle's corresponding
//! sequential commit did.
//!
//! A separate fuzz drives a poison PUL (mid-apply dynamic failure) through
//! every position of a coalesced batch and asserts that only the poison
//! ticket errors while the document rewinds cleanly around it.
//!
//! Commits run with `preserve_content_ids` (the §4.1 producer identifier
//! discipline, collision-free by construction), so identifier assignment is
//! deterministic on both sides and `deep_eq` is meaningful.

use std::time::Duration;

use pul::ApplyOptions;
use workload::pulgen::differential_case_with;
use xmlpul::prelude::*;

const CI_SEEDS: u64 = 20;
const NIGHTLY_SEEDS: std::ops::Range<u64> = 100..200;
const PRODUCERS: usize = 12;
const BATCH_SIZES: [usize; 3] = [1, 4, 16];

/// Producer-side apply options: parameter-tree identifiers preserved, so the
/// oracle and every batched run mint identical identifiers.
fn producer_options() -> ApplyOptions {
    ApplyOptions { validate: true, preserve_content_ids: true }
}

/// Threshold-driven config: the tick never fires, so round formation depends
/// only on the flush threshold (and the closing flush).
fn config(batch: usize) -> IngestConfig {
    IngestConfig {
        flush_threshold: batch,
        tick: Duration::from_secs(3600),
        ..IngestConfig::default()
    }
}

/// Samples Table-1 predicate agreement between a labeling under test and the
/// oracle labeling, over at most ~4000 node pairs. Pairs involving `skip_root`
/// (the synthetic shard-root label, whose sibling metadata is shard-local by
/// design) are compared on the containment predicates only.
fn assert_table1_matches(
    nodes: &[xdm::NodeId],
    l: &Labeling,
    ol: &Labeling,
    skip_root: Option<xdm::NodeId>,
    ctx: &str,
) {
    let step = (nodes.len() * nodes.len() / 4_000).max(1);
    let mut idx = 0usize;
    for &a in nodes {
        for &b in nodes {
            idx += 1;
            if !idx.is_multiple_of(step) {
                continue;
            }
            let ctx = format!("{ctx}, pair ({a},{b})");
            assert_eq!(l.precedes(a, b), ol.precedes(a, b), "precedes {ctx}");
            assert_eq!(l.is_child(a, b), ol.is_child(a, b), "child {ctx}");
            assert_eq!(l.is_attribute(a, b), ol.is_attribute(a, b), "attr {ctx}");
            assert_eq!(l.is_descendant(a, b), ol.is_descendant(a, b), "desc {ctx}");
            if Some(a) == skip_root || Some(b) == skip_root {
                continue;
            }
            assert_eq!(l.is_left_sibling(a, b), ol.is_left_sibling(a, b), "leftsib {ctx}");
            assert_eq!(l.is_first_child(a, b), ol.is_first_child(a, b), "first {ctx}");
            assert_eq!(l.is_last_child(a, b), ol.is_last_child(a, b), "last {ctx}");
            assert_eq!(
                l.is_descendant_not_attr(a, b),
                ol.is_descendant_not_attr(a, b),
                "nda {ctx}"
            );
        }
    }
}

/// The sequential oracle: one `submit → resolve → commit` round trip per
/// producer, in order; a failed commit is withdrawn (the producer is told,
/// the rest continue). Returns the session and the per-producer outcome.
fn sequential_oracle(case: &workload::pulgen::DifferentialCase) -> (Executor, Vec<Option<String>>) {
    let mut oracle =
        Executor::new(case.doc.clone()).policy(Policy::relaxed()).apply_options(producer_options());
    let mut outcomes = Vec::with_capacity(case.puls.len());
    for pul in &case.puls {
        let id = oracle.submit(pul.clone());
        match oracle.resolve().and_then(|r| oracle.commit_resolution(r)) {
            Ok(_) => outcomes.push(None),
            Err(e) => {
                oracle.withdraw(id).expect("failed submissions stay pending");
                outcomes.push(Some(e.code().to_string()));
            }
        }
    }
    (oracle, outcomes)
}

/// Runs one seeded case through the oracle and every batch size × backend.
fn run_case(seed: u64) {
    let case = differential_case_with(seed, PRODUCERS);
    let (oracle, oracle_outcomes) = sequential_oracle(&case);

    for batch in BATCH_SIZES {
        // ---- single-executor backend -------------------------------------
        let backend = Executor::new(case.doc.clone())
            .policy(Policy::relaxed())
            .apply_options(producer_options());
        let queue = IngestQueue::with_config(backend, config(batch));
        let tickets: Vec<Ticket> =
            case.puls.iter().map(|p| queue.enqueue(p.clone()).expect("queue open")).collect();
        let session = queue.close().unwrap();
        assert_outcomes_match(&tickets, &oracle_outcomes, seed, batch, "executor");
        assert!(
            session.document().deep_eq(oracle.document()),
            "seed {seed}, batch {batch}, executor backend: documents differ\n  batched: {}\n   oracle: {}",
            session.serialize(),
            oracle.serialize()
        );
        session.assert_consistent();
        let nodes = session.document().preorder_from_root();
        assert_table1_matches(
            &nodes,
            session.labeling(),
            oracle.labeling(),
            None,
            &format!("seed {seed}, batch {batch}, executor"),
        );

        // ---- sharded backend ---------------------------------------------
        let backend = ShardedExecutor::new(case.doc.clone(), 4)
            .expect("rooted document shards")
            .policy(Policy::relaxed())
            .apply_options(producer_options());
        let queue = IngestQueue::with_config(backend, config(batch));
        let tickets: Vec<Ticket> =
            case.puls.iter().map(|p| queue.enqueue(p.clone()).expect("queue open")).collect();
        let session = queue.close().unwrap();
        assert_outcomes_match(&tickets, &oracle_outcomes, seed, batch, "sharded");
        assert!(
            session.document().deep_eq(oracle.document()),
            "seed {seed}, batch {batch}, sharded backend: documents differ\n  batched: {}\n   oracle: {}",
            session.serialize(),
            oracle.serialize()
        );
        session.assert_consistent();
        for k in 0..session.shard_count() {
            let core = session.shard(k);
            let nodes = core.document().preorder_from_root();
            assert_table1_matches(
                &nodes,
                core.labeling(),
                oracle.labeling(),
                core.document().root(),
                &format!("seed {seed}, batch {batch}, shard {k}"),
            );
        }
    }
}

/// Every ticket must succeed or fail exactly as the oracle's sequential
/// commit of the same producer did. Failures are compared on outcome only,
/// not on the error code: a multi-problem PUL may surface a different first
/// error depending on apply order (the sharded backend validates per shard
/// slice), the same divergence the PR 4 differential suite accepts.
fn assert_outcomes_match(
    tickets: &[Ticket],
    oracle: &[Option<String>],
    seed: u64,
    batch: usize,
    backend: &str,
) {
    for (i, (ticket, expected)) in tickets.iter().zip(oracle).enumerate() {
        let got = ticket.wait();
        match (got, expected) {
            (Ok(_), None) => {}
            (Err(_), Some(_)) => {}
            (got, expected) => panic!(
                "seed {seed}, batch {batch}, {backend}: producer {i} diverged from the \
                 sequential oracle (batched: {got:?}, oracle: {expected:?})"
            ),
        }
    }
}

/// The pinned-seed suite run by the main CI test job.
#[test]
fn batched_ingest_equals_sequential_commits() {
    for seed in 0..CI_SEEDS {
        run_case(seed);
    }
}

/// Nightly-style extension over further seeds. Run with
/// `cargo test --release --test ingest_differential -- --ignored`.
#[test]
#[ignore = "many-iteration ingest differential sweep; run nightly with --ignored"]
fn batched_ingest_equals_sequential_commits_many_iterations() {
    for seed in NIGHTLY_SEEDS {
        run_case(seed);
    }
}

/// Mid-batch commit-failure fuzz: a poison PUL (duplicate attribute
/// insertion — a dynamic error that fires *mid-apply*, after sibling
/// operations already touched the document) is driven through every position
/// of a batch of independent updates. Only the poison ticket may error, the
/// other submissions must all commit, and the final document must equal the
/// oracle's document without the poison — i.e. the failing round's journal
/// scopes rewound cleanly and nothing else was disturbed.
#[test]
fn mid_batch_commit_failure_fails_only_its_own_ticket() {
    // ids: lib=1, b1=2..b6: six disjoint single-element subtrees
    let xml = "<lib><b1/><b2/><b3/><b4/><b5/><b6/></lib>";
    let good_ops = |session: &Executor| -> Vec<Pul> {
        (0..5)
            .map(|i| {
                let target = session.document().find_element(&format!("b{}", i + 1)).unwrap();
                session.pul_from_ops(vec![UpdateOp::rename(target, format!("good{i}"))])
            })
            .collect()
    };
    for poison_at in 0..=5 {
        let session = Executor::parse(xml).unwrap();
        let b6 = session.document().find_element("b6").unwrap();
        let poison = session.pul_from_ops(vec![UpdateOp::ins_attributes(
            b6,
            vec![Tree::attribute("id", "1"), Tree::attribute("id", "2")],
        )]);
        let mut puls = good_ops(&session);
        puls.insert(poison_at, poison);

        let queue = IngestQueue::with_config(
            session,
            IngestConfig {
                flush_threshold: 6,
                tick: Duration::from_secs(3600),
                ..IngestConfig::default()
            },
        );
        let tickets: Vec<Ticket> =
            puls.iter().map(|p| queue.enqueue(p.clone()).expect("queue open")).collect();
        let session = queue.close().unwrap();

        for (i, ticket) in tickets.iter().enumerate() {
            if i == poison_at {
                let err = ticket.wait().unwrap_err();
                assert_eq!(err.code(), "XPUL-P03", "poison at {poison_at}: {err}");
            } else {
                ticket.wait().unwrap_or_else(|e| {
                    panic!("poison at {poison_at}: good ticket {i} failed: {e}")
                });
            }
        }
        // the document equals the oracle's without the poison
        let mut oracle = Executor::parse(xml).unwrap();
        for pul in good_ops(&oracle) {
            oracle.submit(pul);
            oracle.commit().unwrap();
        }
        assert!(
            session.serialize() == oracle.serialize(),
            "poison at {poison_at}: document diverged\n  batched: {}\n   oracle: {}",
            session.serialize(),
            oracle.serialize()
        );
        session.assert_consistent();
        assert_eq!(session.pending(), 0, "failed submissions are discarded");
    }
}
