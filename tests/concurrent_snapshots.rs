//! MVCC snapshot reads and parallel commit lanes (PR 9 acceptance suite).
//!
//! * **Reader/committer stress.** N reader threads poll
//!   [`IngestQueue::latest_snapshot`] while the committer drains laned
//!   commits. Every pinned snapshot must stay internally consistent and
//!   byte-stable while later commits land, and after the run each recorded
//!   `(version, serialization)` pair must be reproduced bit-for-bit by
//!   `Durable::read_at(version)` — which replays the `'L'` (laned) WAL
//!   records, so this doubles as a laned-replay determinism check.
//! * **Lanes ≡ serial.** The same resolution committed through
//!   `commit_resolution_lanes` and through the serial `commit_resolution`
//!   must agree on outcome, version, per-shard op counts and serialized
//!   content at every round.
//! * **Clean abort.** A fault injected at `shard.apply` must leave a laned
//!   commit with no trace: every shard bit-identical to the pre-commit
//!   clone.
//! * **O(1) re-reads.** Repeated `snapshot()` / `document()` / `read_at(v)`
//!   calls at an unchanged version must return the *same* arena
//!   (`Arc::ptr_eq`), not a fresh reassembly.
//!
//! The `#[ignore]`d sweep reruns the stress and equivalence cases over more
//! seeds; run it nightly with
//! `cargo test --release --test concurrent_snapshots -- --ignored`.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pul::ApplyOptions;
use workload::pulgen::differential_case_with;
use xmlpul::prelude::*;
use xmlpul::{fault_site as site, Durable, DurableOptions};

const READERS: usize = 3;
const PRODUCERS: usize = 16;

fn producer_options() -> ApplyOptions {
    ApplyOptions { validate: true, preserve_content_ids: true }
}

fn sharded(doc: &Document) -> ShardedExecutor {
    ShardedExecutor::new(doc.clone(), 4)
        .expect("rooted document shards")
        .policy(Policy::relaxed())
        .apply_options(producer_options())
}

/// Options that never checkpoint on their own, so every committed version
/// stays reachable through `read_at`.
fn opts() -> DurableOptions {
    DurableOptions {
        checkpoint_wal_bytes: u64::MAX,
        checkpoint_dead_ratio: f64::INFINITY,
        ..DurableOptions::default()
    }
}

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xmlpul_snap_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// One reader/committer case: readers pin snapshots off the live queue while
/// the committer lands `commit_lanes`-wide rounds; afterwards every pinned
/// `(version, serialization)` must be reproduced by `read_at`.
fn reader_committer_case(seed: u64, lanes: usize) {
    let ctx = format!("seed {seed}, lanes {lanes}");
    let case = differential_case_with(seed, PRODUCERS);
    let root = tmp_root(&format!("rw_{seed}_{lanes}"));
    let durable = Durable::create(&root, sharded(&case.doc), opts())
        .unwrap_or_else(|e| panic!("{ctx}: create: {e}"));
    let queue = IngestQueue::with_config(
        durable,
        IngestConfig {
            flush_threshold: 4,
            tick: Duration::from_millis(1),
            commit_lanes: lanes,
            publish_snapshots: true,
            ..IngestConfig::default()
        },
    );

    let done = AtomicBool::new(false);
    let observed: Vec<(u64, String)> = std::thread::scope(|s| {
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                s.spawn(|| {
                    let mut seen: Vec<(u64, String)> = Vec::new();
                    while !done.load(Ordering::Relaxed) {
                        if let Some(snap) = queue.latest_snapshot() {
                            let pinned = snap.serialize();
                            snap.assert_consistent();
                            std::thread::yield_now();
                            // The pinned arena must not be torn by commits
                            // landing since the poll: re-walking the tree
                            // serializes identically.
                            assert_eq!(
                                xdm::writer::write_document(snap.document()),
                                pinned,
                                "pinned snapshot mutated under a concurrent commit"
                            );
                            if seen.last().map(|(v, _)| *v) != Some(snap.version()) {
                                seen.push((snap.version(), pinned));
                            }
                        }
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    seen
                })
            })
            .collect();

        let tickets: Vec<Ticket> =
            case.puls.iter().map(|p| queue.enqueue(p.clone()).expect("queue open")).collect();
        let accepted = tickets.iter().filter(|t| t.wait().is_ok()).count();
        queue.flush();
        assert!(accepted > 0, "{ctx}: no producer committed");
        done.store(true, Ordering::Relaxed);
        let mut all: Vec<(u64, String)> =
            readers.into_iter().flat_map(|r| r.join().expect("reader panicked")).collect();
        all.sort();
        all.dedup();
        all
    });

    let final_snapshot = queue.latest_snapshot().expect("committed rounds published a snapshot");
    let durable = queue.close().unwrap_or_else(|e| panic!("{ctx}: close: {e}"));
    assert_eq!(final_snapshot.version(), durable.version(), "{ctx}: final snapshot version");
    assert_eq!(final_snapshot.serialize(), durable.serialize(), "{ctx}: final snapshot content");

    // Every observation a reader pinned mid-flight is durable history: the
    // store reproduces it bit-for-bit — through laned ('L') WAL replay when
    // lanes > 1.
    for (version, pinned) in &observed {
        let at =
            durable.read_at(*version).unwrap_or_else(|e| panic!("{ctx}: read_at({version}): {e}"));
        assert_eq!(&at.serialize(), pinned, "{ctx}: v{version} diverged from durable history");
        at.assert_consistent();
        let restored = durable
            .restore_at(*version)
            .unwrap_or_else(|e| panic!("{ctx}: restore_at({version}): {e}"));
        assert!(
            restored.document().deep_eq(at.document()),
            "{ctx}: read_at({version}) and restore_at({version}) disagree"
        );
    }
    fs::remove_dir_all(&root).unwrap();
}

/// Lanes and the serial path must agree round by round: same accept/reject
/// outcome, same version, same per-shard op counts, same serialized content.
fn lanes_match_serial(seed: u64) {
    let case = differential_case_with(seed, PRODUCERS);
    let mut serial = sharded(&case.doc);
    let mut laned = sharded(&case.doc);
    for (i, pul) in case.puls.iter().enumerate() {
        let ctx = format!("seed {seed}, producer {i}");
        let sid = serial.submit(pul.clone());
        let ser = serial.resolve().and_then(|r| serial.commit_resolution(r));
        let lid = laned.submit(pul.clone());
        let lan = laned.resolve().and_then(|r| laned.commit_resolution_lanes(r));
        match (&ser, &lan) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.version, b.version, "{ctx}: version");
                assert_eq!(a.applied_ops, b.applied_ops, "{ctx}: applied ops");
                assert_eq!(a.per_shard_ops, b.per_shard_ops, "{ctx}: per-shard ops");
            }
            (Err(_), Err(_)) => {
                let _ = serial.withdraw(sid);
                let _ = laned.withdraw(lid);
            }
            _ => panic!("{ctx}: outcomes diverged: serial {ser:?} vs lanes {lan:?}"),
        }
        assert_eq!(serial.serialize(), laned.serialize(), "{ctx}: content diverged");
    }
    serial.assert_consistent();
    laned.assert_consistent();
}

#[test]
fn readers_pin_snapshots_across_live_laned_commits() {
    for seed in 0..3 {
        reader_committer_case(seed, 2);
    }
}

#[test]
fn readers_pin_snapshots_across_live_serial_commits() {
    reader_committer_case(7, 1);
}

#[test]
fn lanes_match_the_serial_commit_path() {
    for seed in 0..6 {
        lanes_match_serial(seed);
    }
}

/// Laned commits journal `'L'` WAL records; reopening the store must replay
/// them through the laned path and land bit-identically (same identifiers,
/// not just the same content).
#[test]
fn laned_commits_recover_bit_identically_through_the_wal() {
    let case = differential_case_with(5, PRODUCERS);
    let root = tmp_root("wal");
    let mut durable = Durable::create(&root, sharded(&case.doc), opts()).unwrap();
    let mut committed = 0usize;
    for pul in &case.puls {
        let id = durable.submit(pul.clone());
        match durable.resolve().and_then(|r| durable.commit_resolution_lanes(r)) {
            Ok(_) => committed += 1,
            Err(_) => {
                let _ = durable.withdraw(id);
            }
        }
    }
    assert!(committed > 0, "no laned commit landed");
    let live = durable.backend().clone();
    let live_xml = durable.serialize();
    drop(durable);
    let reopened: Durable<ShardedExecutor> = Durable::open(&root, opts()).unwrap();
    assert_eq!(reopened.version(), live.version(), "recovered version");
    assert_eq!(reopened.serialize(), live_xml, "recovered content");
    assert!(
        reopened.document().deep_eq(&live.document()),
        "laned WAL replay must mint the same identifiers as the original commit"
    );
    reopened.assert_consistent();
    fs::remove_dir_all(&root).unwrap();
}

/// A fault at `shard.apply` during a laned commit aborts cleanly: every
/// shard stays bit-identical to the pre-commit state.
#[test]
fn a_lane_fault_aborts_the_whole_commit_cleanly() {
    let case = differential_case_with(9, PRODUCERS);
    let root = tmp_root("fault");
    let mut durable = Durable::create(&root, sharded(&case.doc), opts()).unwrap();
    let id = durable.submit(case.puls[0].clone());
    if durable.resolve().and_then(|r| durable.commit_resolution_lanes(r)).is_err() {
        let _ = durable.withdraw(id);
    }
    let before = durable.backend().clone();

    durable.inject_faults(
        FaultPlan::new(9).fail(site::SHARD_APPLY, Trigger::Nth(1), FaultKind::Permanent).arm(),
    );
    let id = durable.submit(case.puls[1].clone());
    let outcome = durable.resolve().and_then(|r| durable.commit_resolution_lanes(r));
    assert!(outcome.is_err(), "injected shard.apply fault must reject the commit");
    let _ = durable.withdraw(id);

    assert_eq!(durable.version(), before.version(), "version must not advance");
    for k in 0..before.shard_count() {
        assert!(
            durable.backend().shard(k).document().deep_eq(before.shard(k).document()),
            "shard {k} document changed across an aborted laned commit"
        );
        assert!(
            durable.backend().shard(k).labeling().deep_eq(before.shard(k).labeling()),
            "shard {k} labeling changed across an aborted laned commit"
        );
    }
    durable.assert_consistent();
    fs::remove_dir_all(&root).unwrap();
}

/// A snapshot pinned before compaction keeps serving the pre-compaction
/// arena; the session serves a fresh snapshot under the bumped epoch.
#[test]
fn snapshots_survive_a_compaction_epoch_bump() {
    let case = differential_case_with(11, 8);
    let mut session = sharded(&case.doc);
    for pul in &case.puls {
        let id = session.submit(pul.clone());
        if session.commit().is_err() {
            let _ = session.withdraw(id);
        }
    }
    let pinned = session.snapshot();
    let before = pinned.serialize();
    let epoch = session.epoch();

    session.compact().expect("compaction");
    assert_eq!(session.epoch(), epoch + 1, "compaction bumps the epoch");
    assert_eq!(pinned.epoch(), epoch, "the pinned snapshot keeps its epoch");
    assert_eq!(pinned.serialize(), before, "the pinned snapshot is immutable");
    pinned.assert_consistent();

    let fresh = session.snapshot();
    assert_eq!(fresh.epoch(), epoch + 1, "a fresh snapshot sees the new epoch");
    assert_eq!(fresh.serialize(), before, "renumbering preserves content");
    assert!(
        !Arc::ptr_eq(&pinned.shared_document(), &fresh.shared_document()),
        "compaction rebuilds the arena"
    );
}

/// Re-reads at an unchanged version are O(1): the same `Arc` comes back, no
/// per-call reassembly or replay.
#[test]
fn repeated_reads_at_an_unchanged_version_share_one_arena() {
    // Single executor: snapshot() memoizes per (version, epoch).
    let mut exec = Executor::parse("<r><a/><b/></r>").unwrap();
    let first = exec.snapshot();
    assert!(
        Arc::ptr_eq(&first.shared_document(), &exec.snapshot().shared_document()),
        "executor snapshot must be served from the cache"
    );
    let a = exec.document().find_element("a").unwrap();
    let pul = exec.pul_from_ops(vec![UpdateOp::rename(a, "c")]);
    exec.submit(pul);
    exec.commit().expect("rename commits");
    let second = exec.snapshot();
    assert!(
        !Arc::ptr_eq(&first.shared_document(), &second.shared_document()),
        "a commit must invalidate the cached snapshot"
    );
    assert_eq!(first.serialize(), "<r><a/><b/></r>", "the old pin still reads its version");

    // Sharded executor: document() itself rides the snapshot cache, so the
    // second call does no grafting.
    let mut shards = ShardedExecutor::parse("<r><a/><b/><c/></r>", 2).unwrap();
    let d1 = shards.document();
    assert!(Arc::ptr_eq(&d1, &shards.document()), "sharded document must be memoized");
    let b = d1.find_element("b").unwrap();
    let pul = shards.pul_from_ops(vec![UpdateOp::rename(b, "d")]);
    shards.submit(pul);
    shards.commit().expect("rename commits");
    assert!(!Arc::ptr_eq(&d1, &shards.document()), "a commit must rebuild the shared document");

    // Durable read_at: historical snapshots are cached per version.
    let root = tmp_root("memo");
    let mut durable =
        Durable::create(&root, Executor::parse("<r><a/></r>").unwrap(), opts()).unwrap();
    let a = durable.document().find_element("a").unwrap();
    let pul = durable.pul_from_ops(vec![UpdateOp::rename(a, "b")]);
    durable.submit(pul);
    durable.commit().expect("rename commits");
    let v0 = durable.read_at(0).unwrap();
    assert!(
        Arc::ptr_eq(&v0.shared_document(), &durable.read_at(0).unwrap().shared_document()),
        "historical read_at must be served from the cache"
    );
    let v1 = durable.read_at(1).unwrap();
    assert!(
        Arc::ptr_eq(&v1.shared_document(), &durable.read_at(1).unwrap().shared_document()),
        "current-version read_at must be served from the cache"
    );
    assert_eq!(v0.serialize(), "<r><a/></r>");
    assert_eq!(v1.serialize(), "<r><b/></r>");
    fs::remove_dir_all(&root).unwrap();
}

/// Nightly sweep: more seeds through the stress and equivalence cases. Run
/// with `cargo test --release --test concurrent_snapshots -- --ignored`.
#[test]
#[ignore = "seeded sweep; run nightly with --ignored"]
fn concurrent_snapshot_sweep() {
    for seed in 100..116 {
        reader_committer_case(seed, 2);
        lanes_match_serial(seed);
    }
}
