//! Differential verification of the unified telemetry layer.
//!
//! Telemetry must be a pure observer. For every seeded case, the same
//! submissions are committed through two identical stacks — one with an armed
//! [`Telemetry`] handle, one disabled — and the results must be
//! **bit-identical** (`deep_eq`: same arena entries, same identifiers), with
//! every Table-1 predicate agreeing, on both backends and on the parallel
//! commit-lane path. On top of neutrality:
//!
//! * the completion counters must reconcile exactly with the ticket outcomes
//!   of a batched ingest run (committed + failed + expired = completed, and
//!   the commit counter equals the distinct committed versions);
//! * the bounded event journal must drop oldest-first, keep strictly
//!   increasing sequence numbers and never tear a record under concurrent
//!   writers;
//! * a sticky degraded flip (XPUL-E09) must be readable from the journal
//!   *without waiting for the next failing commit* — the PR 10 regression;
//! * the text exposition must be deterministic (golden rendering).

use std::path::PathBuf;
use std::time::Duration;

use pul::ApplyOptions;
use workload::pulgen::differential_case_with;
use xmlpul::prelude::*;
use xmlpul::{fault_site as site, Durable, DurableOptions, EVENT_JOURNAL_CAP};

const SEEDS: u64 = 6;
const PRODUCERS: usize = 10;

fn producer_options() -> ApplyOptions {
    ApplyOptions { validate: true, preserve_content_ids: true }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xmlpul_telemetry_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Samples Table-1 predicate agreement between two labelings (the armed run
/// against the disabled oracle), over at most ~2000 node pairs.
fn assert_table1_matches(nodes: &[xdm::NodeId], l: &Labeling, ol: &Labeling, ctx: &str) {
    let step = (nodes.len() * nodes.len() / 2_000).max(1);
    let mut idx = 0usize;
    for &a in nodes {
        for &b in nodes {
            idx += 1;
            if !idx.is_multiple_of(step) {
                continue;
            }
            let ctx = format!("{ctx}, pair ({a},{b})");
            assert_eq!(l.precedes(a, b), ol.precedes(a, b), "precedes {ctx}");
            assert_eq!(l.is_child(a, b), ol.is_child(a, b), "child {ctx}");
            assert_eq!(l.is_descendant(a, b), ol.is_descendant(a, b), "desc {ctx}");
            assert_eq!(l.is_left_sibling(a, b), ol.is_left_sibling(a, b), "leftsib {ctx}");
            assert_eq!(l.is_first_child(a, b), ol.is_first_child(a, b), "first {ctx}");
            assert_eq!(l.is_last_child(a, b), ol.is_last_child(a, b), "last {ctx}");
        }
    }
}

/// One `submit → resolve → commit` round trip; failed submissions withdrawn.
fn commit_one(session: &mut Executor, pul: Pul) -> Result<()> {
    let id = session.submit(pul);
    match session.resolve().and_then(|r| session.commit_resolution(r)) {
        Ok(_) => Ok(()),
        Err(e) => {
            session.withdraw(id).expect("failed submissions stay pending");
            Err(e)
        }
    }
}

fn commit_one_sharded(session: &mut ShardedExecutor, pul: Pul, lanes: bool) -> Result<()> {
    let id = session.submit(pul);
    let outcome = session.resolve().and_then(|r| {
        if lanes {
            session.commit_resolution_lanes(r)
        } else {
            session.commit_resolution(r)
        }
    });
    match outcome {
        Ok(_) => Ok(()),
        Err(e) => {
            session.withdraw(id).expect("failed submissions stay pending");
            Err(e)
        }
    }
}

/// Armed and disabled runs must produce bit-identical documents, identical
/// outcomes, and agreeing Table-1 predicates — on the single executor and on
/// the sharded executor through both the serial and the laned commit path.
#[test]
fn armed_telemetry_is_behavior_neutral() {
    for seed in 0..SEEDS {
        let case = differential_case_with(seed, PRODUCERS);

        // ---- single executor ---------------------------------------------
        let mut plain = Executor::new(case.doc.clone())
            .policy(Policy::relaxed())
            .apply_options(producer_options());
        let mut armed = Executor::new(case.doc.clone())
            .policy(Policy::relaxed())
            .apply_options(producer_options());
        armed.set_telemetry(Telemetry::enabled());
        for (i, pul) in case.puls.iter().enumerate() {
            let a = commit_one(&mut plain, pul.clone());
            let b = commit_one(&mut armed, pul.clone());
            assert_eq!(
                a.is_ok(),
                b.is_ok(),
                "seed {seed}, producer {i}: armed run diverged ({a:?} vs {b:?})"
            );
        }
        assert!(
            armed.document().deep_eq(plain.document()),
            "seed {seed}: armed executor document diverged"
        );
        assert_eq!(armed.version(), plain.version());
        armed.assert_consistent();
        let nodes = armed.document().preorder_from_root();
        assert_table1_matches(
            &nodes,
            armed.labeling(),
            plain.labeling(),
            &format!("seed {seed}, executor"),
        );
        let snapshot = armed.telemetry_snapshot();
        let metrics = snapshot.metrics.expect("armed session freezes a registry");
        assert_eq!(metrics.commits, armed.version(), "every commit counted exactly once");

        // ---- sharded executor, serial and laned --------------------------
        for lanes in [false, true] {
            let mut plain = ShardedExecutor::new(case.doc.clone(), 4)
                .expect("rooted document shards")
                .policy(Policy::relaxed())
                .apply_options(producer_options());
            let mut armed = ShardedExecutor::new(case.doc.clone(), 4)
                .expect("rooted document shards")
                .policy(Policy::relaxed())
                .apply_options(producer_options());
            armed.set_telemetry(Telemetry::enabled());
            for (i, pul) in case.puls.iter().enumerate() {
                let a = commit_one_sharded(&mut plain, pul.clone(), lanes);
                let b = commit_one_sharded(&mut armed, pul.clone(), lanes);
                assert_eq!(
                    a.is_ok(),
                    b.is_ok(),
                    "seed {seed}, lanes {lanes}, producer {i}: armed sharded run diverged"
                );
            }
            assert!(
                armed.document().as_ref().deep_eq(plain.document().as_ref()),
                "seed {seed}, lanes {lanes}: armed sharded document diverged"
            );
            assert_eq!(armed.version(), plain.version());
            armed.assert_consistent();
            let metrics = armed.telemetry_snapshot().metrics.expect("registry armed");
            assert_eq!(metrics.commits, armed.version());
        }
    }
}

/// The completion counters reconcile exactly with what the tickets report,
/// on both ingest backends.
#[test]
fn ingest_counters_reconcile_with_ticket_outcomes() {
    for seed in 0..SEEDS {
        let case = differential_case_with(seed, PRODUCERS);
        for sharded in [false, true] {
            let telemetry = Telemetry::enabled();
            let config = IngestConfig {
                flush_threshold: 4,
                tick: Duration::from_secs(3600),
                telemetry: telemetry.clone(),
                ..IngestConfig::default()
            };
            let tickets: Vec<Ticket> = if sharded {
                let mut backend = ShardedExecutor::new(case.doc.clone(), 4)
                    .expect("rooted document shards")
                    .policy(Policy::relaxed())
                    .apply_options(producer_options());
                backend.set_telemetry(telemetry.clone());
                let queue = IngestQueue::with_config(backend, config);
                let tickets = case.puls.iter().map(|p| queue.enqueue(p.clone()).unwrap()).collect();
                queue.close().unwrap();
                tickets
            } else {
                let mut backend = Executor::new(case.doc.clone())
                    .policy(Policy::relaxed())
                    .apply_options(producer_options());
                backend.set_telemetry(telemetry.clone());
                let queue = IngestQueue::with_config(backend, config);
                let tickets = case.puls.iter().map(|p| queue.enqueue(p.clone()).unwrap()).collect();
                queue.close().unwrap();
                tickets
            };

            let mut ok_versions = std::collections::BTreeSet::new();
            let mut ok = 0u64;
            let mut failed = 0u64;
            for ticket in &tickets {
                match ticket.wait() {
                    Ok(outcome) => {
                        ok += 1;
                        ok_versions.insert(outcome.version);
                    }
                    Err(_) => failed += 1,
                }
            }
            let m = telemetry.snapshot().expect("registry armed");
            let ctx = format!("seed {seed}, sharded {sharded}");
            assert_eq!(m.tickets_committed, ok, "{ctx}: committed counter");
            assert_eq!(m.tickets_failed, failed, "{ctx}: failed counter");
            assert_eq!(m.tickets_expired, 0, "{ctx}: no deadlines in this workload");
            assert_eq!(m.tickets_shed, 0, "{ctx}: no shedding in this workload");
            assert_eq!(
                m.commits,
                ok_versions.len() as u64,
                "{ctx}: every successful commit mints exactly one version"
            );
            assert!(
                m.rounds_coalesced + m.rounds_serialized > 0,
                "{ctx}: at least one round was formed"
            );
            assert_eq!(
                m.ticket_latency_ns.count,
                ok + failed,
                "{ctx}: every completed ticket observed its latency"
            );
        }
    }
}

/// The journal ring is bounded, drops oldest-first, keeps sequence numbers
/// strictly increasing and never interleaves the fields of one record with
/// another, even when many threads push concurrently (as the executor,
/// drainer, committer and store all share one journal in a live stack).
#[test]
fn journal_drops_oldest_first_without_tearing() {
    let telemetry = Telemetry::enabled();
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 200;
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let telemetry = telemetry.clone();
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    let version = w * 10_000 + i;
                    telemetry.event(EventKind::Commit, version, || format!("committed v{version}"));
                }
            });
        }
    });
    let events = telemetry.recent_events();
    assert_eq!(events.len(), EVENT_JOURNAL_CAP, "ring filled to its cap");
    assert_eq!(
        telemetry.events_dropped(),
        WRITERS * PER_WRITER - EVENT_JOURNAL_CAP as u64,
        "everything beyond the cap was evicted oldest-first"
    );
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "sequence numbers strictly increase in ring order");
    }
    for ev in &events {
        assert_eq!(ev.kind, EventKind::Commit);
        assert_eq!(
            ev.detail,
            format!("committed v{}", ev.version),
            "record fields never tear across concurrent pushes"
        );
    }
}

/// PR 10 regression: the sticky degraded flip is journaled at the moment it
/// happens. Before, the transition was observable only by the *next* failing
/// commit returning XPUL-E09; now the journal carries a `Degraded` event (and
/// the transition counter) as soon as the retry budget is exhausted.
#[test]
fn degraded_transition_is_journaled_immediately() {
    let dir = tmp_dir("degraded");
    let opts = DurableOptions {
        retry: RetryPolicy {
            max_retries: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            op_deadline: Duration::from_secs(5),
        },
        ..DurableOptions::default()
    };
    let mut durable = Durable::create(&dir, Executor::parse("<r><a/></r>").unwrap(), opts).unwrap();
    let telemetry = Telemetry::enabled();
    durable.set_telemetry(telemetry.clone());
    durable.inject_faults(
        FaultPlan::new(7).fail(site::WAL_APPEND, Trigger::EveryNth(1), FaultKind::Transient).arm(),
    );

    let a = durable.document().find_element("a").unwrap();
    let pul = durable.pul_from_ops(vec![UpdateOp::rename(a, "b")]);
    durable.submit(pul);
    let err = durable.commit_durable().unwrap_err();
    assert_eq!(err.code(), "XPUL-E09", "retry exhaustion degrades the session: {err}");
    assert!(durable.is_degraded());

    // The flip itself is observable from the journal right now — no second
    // failing commit needed.
    let m = telemetry.snapshot().expect("registry armed");
    assert_eq!(m.degraded_transitions, 1, "exactly one flip recorded");
    assert!(m.retry_attempts >= 1, "the exhausted retries were counted");
    let degraded: Vec<_> =
        telemetry.recent_events().into_iter().filter(|e| e.kind == EventKind::Degraded).collect();
    assert_eq!(degraded.len(), 1, "one transition event: {degraded:?}");
    assert_eq!(degraded[0].kind.code(), Some("XPUL-E09"));
    assert!(
        degraded[0].detail.contains("read-only"),
        "the event explains the mode: {}",
        degraded[0].detail
    );

    // Sticky: a second refused commit re-reports the error but records no
    // second transition.
    let err = durable.commit_durable().unwrap_err();
    assert_eq!(err.code(), "XPUL-E09");
    let m = telemetry.snapshot().expect("registry armed");
    assert_eq!(m.degraded_transitions, 1, "the flip is recorded once, not per refusal");

    drop(durable);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Golden rendering: the exposition is deterministic, in registry order, and
/// carries the session's structural statistics as gauges.
#[test]
fn render_text_is_deterministic_and_golden() {
    let mut session = Executor::parse("<r><a/><b/></r>").unwrap();
    session.set_telemetry(Telemetry::enabled());
    let a = session.document().find_element("a").unwrap();
    let pul = session.pul_from_ops(vec![UpdateOp::rename(a, "x")]);
    session.submit(pul);
    session.commit().unwrap();

    let snapshot = session.telemetry_snapshot();
    let text = snapshot.render_text();
    assert_eq!(text, session.telemetry_snapshot().render_text(), "rendering is deterministic");

    // Golden fragments: exact exposition lines for a known counter state.
    assert!(text.contains(
        "# HELP xmlpul_commits Commits published (any surface, merged ingest rounds count once).\n\
         # TYPE xmlpul_commits counter\n\
         xmlpul_commits 1\n"
    ));
    assert!(text.contains("# TYPE xmlpul_commit_ns summary\n"));
    assert!(text.contains("xmlpul_commit_ns_count 1\n"));
    assert!(text.contains("# TYPE xmlpul_queue_depth gauge\nxmlpul_queue_depth 0\n"));
    // Structural gauges from the unified snapshot.
    assert!(text.contains("# TYPE xmlpul_slab_nodes_live gauge\n"));
    assert!(text.contains("xmlpul_events_dropped 0\n"));

    // The registry renders in declaration order: counters, gauges, summaries.
    let commits_at = text.find("xmlpul_commits ").unwrap();
    let gauge_at = text.find("xmlpul_queue_depth ").unwrap();
    let summary_at = text.find("xmlpul_commit_ns{").unwrap();
    assert!(commits_at < gauge_at && gauge_at < summary_at);

    // The unified snapshot subsumes the legacy getters.
    assert_eq!(snapshot.slab, session.slab_stats());
    assert_eq!(snapshot.reduction_cache, session.cache_stats());
    assert_eq!(snapshot.pools, session.pool_stats());
}
