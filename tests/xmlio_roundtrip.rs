//! Seeded randomized round-trip verification of the PUL exchange format.
//!
//! For every seeded case the workload generators produce an XMark document
//! and a batch of synthetic PULs exercising every operation kind; each PUL
//! must survive `pul_to_xml ∘ pul_from_xml` **exactly**: same operations in
//! the same order (name, target, scalar parameters, content trees with their
//! original node identifiers) and the same target labels. The batched
//! `<puls>` framing is checked the same way.
//!
//! This is the fidelity contract §4.1 rests on: a consumer reasons on the
//! parsed PUL as if it were the produced one, so any loss in the exchange
//! format silently changes what is reasoned about. The default suite covers
//! 40 seeds; the `#[ignore]`d sweep (run nightly in CI with `--ignored`)
//! covers 400 more.

use pul::xmlio::{pul_from_xml, pul_to_xml, puls_from_xml, puls_to_xml};
use workload::pulgen::{differential_case_with, generate_pul};
use workload::{PulGenConfig, XmarkConfig};
use xlabel::Labeling;
use xmlpul::prelude::*;

/// Strict operation equality: everything the consumer reasons on. Content
/// trees must keep their structure *and* their node identifiers — later PULs
/// in a sequence refer to nodes inserted by earlier ones.
fn assert_op_roundtrips(a: &UpdateOp, b: &UpdateOp, ctx: &str) {
    assert_eq!(a.name(), b.name(), "{ctx}: op name");
    assert_eq!(a.target(), b.target(), "{ctx}: target");
    match (a, b) {
        (UpdateOp::ReplaceContent { text: ta, .. }, UpdateOp::ReplaceContent { text: tb, .. }) => {
            // param_sort_key folds None and Some("") together; the wire
            // format must not (empty="true" vs value="")
            assert_eq!(ta, tb, "{ctx}: replaceContent text option");
        }
        _ => assert_eq!(a.param_sort_key(), b.param_sort_key(), "{ctx}: scalar parameter"),
    }
    match (a.content(), b.content()) {
        (None, None) => {}
        (Some(ca), Some(cb)) => {
            assert_eq!(ca.len(), cb.len(), "{ctx}: content tree count");
            for (i, (ta, tb)) in ca.iter().zip(cb).enumerate() {
                assert_eq!(ta.root_id(), tb.root_id(), "{ctx}: tree {i} root id");
                assert_eq!(
                    ta.preorder_from_root(),
                    tb.preorder_from_root(),
                    "{ctx}: tree {i} node identifiers"
                );
                assert!(ta.structurally_equal(tb), "{ctx}: tree {i} structure");
            }
        }
        _ => panic!("{ctx}: content presence mismatch"),
    }
}

fn assert_pul_roundtrips(orig: &Pul, back: &Pul, ctx: &str) {
    assert_eq!(orig.len(), back.len(), "{ctx}: op count");
    for (i, (a, b)) in orig.ops().iter().zip(back.ops()).enumerate() {
        assert_op_roundtrips(a, b, &format!("{ctx}, op {i}"));
    }
    for target in orig.targets() {
        match (orig.label(target), back.label(target)) {
            (Some(a), Some(b)) => assert_eq!(a, b, "{ctx}: label of {target}"),
            (None, None) => {}
            _ => panic!("{ctx}: label presence mismatch for {target}"),
        }
    }
}

fn check_seed(seed: u64) {
    // three producers ⇒ three generator streams per case, plus one dense PUL
    // with a high reducible ratio to bias toward op-pair shapes
    let case = differential_case_with(seed, 3);
    let mut puls = case.puls.clone();
    let doc = workload::generate_xmark(&XmarkConfig {
        target_nodes: 80 + (seed as usize % 7) * 30,
        seed: seed.wrapping_mul(31),
    });
    let labeling = Labeling::assign(&doc);
    puls.push(generate_pul(
        &doc,
        &labeling,
        &PulGenConfig {
            n_ops: 60,
            reducible_ratio: 0.6,
            content_id_base: doc.next_id() + 10_000,
            seed: seed.wrapping_mul(7919),
        },
    ));

    for (i, pul) in puls.iter().enumerate() {
        let xml = pul_to_xml(pul);
        let back = pul_from_xml(&xml)
            .unwrap_or_else(|e| panic!("seed {seed}, pul {i}: reparse failed: {e}"));
        assert_pul_roundtrips(pul, &back, &format!("seed {seed}, pul {i}"));
        // the round trip is idempotent: serializing the reparse is bit-equal
        assert_eq!(xml, pul_to_xml(&back), "seed {seed}, pul {i}: serialization not idempotent");
    }

    let batch_xml = puls_to_xml(&puls);
    let batch_back = puls_from_xml(&batch_xml)
        .unwrap_or_else(|e| panic!("seed {seed}: batch reparse failed: {e}"));
    assert_eq!(batch_back.len(), puls.len(), "seed {seed}: batch length");
    for (i, (orig, back)) in puls.iter().zip(&batch_back).enumerate() {
        assert_pul_roundtrips(orig, back, &format!("seed {seed}, batched pul {i}"));
    }
}

#[test]
fn randomized_puls_roundtrip_exactly() {
    for seed in 0..40 {
        check_seed(seed);
    }
}

#[test]
fn committed_resolutions_roundtrip_through_the_wire() {
    // end-to-end: the resolved PUL of a commit survives the wire and commits
    // to the same document on a fresh consumer session
    for seed in [3u64, 17, 29] {
        let case = differential_case_with(seed, 2);
        let mut producer = Executor::new(case.doc.clone());
        for pul in &case.puls {
            producer.submit(pul.clone());
        }
        let resolution = match producer.resolve() {
            Ok(r) => r,
            Err(_) => continue, // unsolvable seeds are not this test's concern
        };
        let wire = pul_to_xml(resolution.pul());
        let back = pul_from_xml(&wire).unwrap();
        assert_pul_roundtrips(resolution.pul(), &back, &format!("seed {seed}, resolution"));
    }
}

#[test]
fn adversarial_scalar_values_roundtrip() {
    // every op kind carrying scalar or tree parameters, fed strings the wire
    // format must escape: markup, quotes, newlines, tabs, CR, unicode, and
    // strings that *look* like entities or character references
    let nasty = [
        "a < b & c > d",
        "\"quoted\" & 'apostrophes'",
        "line\nbreak\ttab\rcarriage",
        "&amp; literal &#x41; &#65; &bogus;",
        "]]> cdata terminator",
        "ünïcödé ✓ 中文",
        "",
        " leading and trailing ",
    ];
    for (i, value) in nasty.iter().enumerate() {
        let mut pul = Pul::new();
        let base = 1000 * (i as u64 + 1);
        pul.push(UpdateOp::replace_value(base + 1, *value));
        pul.push(UpdateOp::rename(base + 2, format!("n{i}")));
        pul.push(UpdateOp::replace_content(base + 3, Some(value.to_string())));
        pul.push(UpdateOp::replace_content(base + 4, None));
        pul.push(UpdateOp::ins_last(base + 5, vec![Tree::text(*value)]));
        pul.push(UpdateOp::ins_attributes(base + 6, vec![Tree::attribute("a", *value)]));
        pul.push(UpdateOp::ins_before(base + 7, vec![Tree::element_with_text("e", *value)]));
        pul.push(UpdateOp::replace_node(base + 8, vec![Tree::element_with_text("r", *value)]));
        let xml = pul_to_xml(&pul);
        let back = pul_from_xml(&xml)
            .unwrap_or_else(|e| panic!("nasty value {i} {value:?}: reparse failed: {e}"));
        assert_pul_roundtrips(&pul, &back, &format!("nasty value {i} {value:?}"));
    }
    // replaceContent must distinguish empty-string from no-text on the wire
    let mut pul = Pul::new();
    pul.push(UpdateOp::replace_content(1u64, Some(String::new())));
    pul.push(UpdateOp::replace_content(2u64, None));
    let back = pul_from_xml(&pul_to_xml(&pul)).unwrap();
    assert!(
        matches!(&back.ops()[0], UpdateOp::ReplaceContent { text: Some(t), .. } if t.is_empty())
    );
    assert!(matches!(&back.ops()[1], UpdateOp::ReplaceContent { text: None, .. }));
}

#[test]
#[ignore = "many-seed sweep, run nightly with --ignored"]
fn randomized_puls_roundtrip_exactly_sweep() {
    for seed in 40..440 {
        check_seed(seed);
    }
}
