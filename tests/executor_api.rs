//! Executor session round trips: submissions arriving in the `pul::xmlio`
//! wire format, resolution, commit (in memory and streaming), serialization —
//! plus the session bookkeeping (versions, stale resolutions, withdrawal,
//! transactions) and the unified error surface.

use xmlpul::prelude::*;

fn issue_session() -> Executor {
    Executor::parse(
        "<issue volume=\"30\">\
           <paper><title>Database Replication</title><author>A.Chaudhri</author></paper>\
           <paper><title>XML Views</title><authors><author>B.Catania</author></authors></paper>\
         </issue>",
    )
    .unwrap()
}

/// The headline round trip: produce → wire → submit → resolve → commit →
/// serialize.
#[test]
fn wire_round_trip_through_the_session() {
    let mut session = issue_session();

    // Two producers express updates against the checked-out document and ship
    // them in the exchange format.
    let wire1 = pul::xmlio::pul_to_xml(
        &session
            .produce(
                "rename node /issue/paper[1]/title as \"heading\", \
                 insert nodes initPage=\"132\" into /issue/paper[1]",
            )
            .unwrap(),
    );
    let wire2 = pul::xmlio::pul_to_xml(
        &session
            .produce(
                "insert nodes <author>G.Guerrini</author> as last into /issue/paper[2]/authors",
            )
            .unwrap(),
    );

    let id1 = session.submit_xml(&wire1).unwrap();
    let id2 = session.submit_xml(&wire2).unwrap();
    assert_ne!(id1, id2);
    assert_eq!(session.pending(), 2);

    let resolution = session.resolve().unwrap();
    assert!(resolution.is_conflict_free());
    assert_eq!(resolution.submitted_puls(), 2);
    assert_eq!(resolution.submitted_ops(), 3);
    assert_eq!(resolution.version(), 0);

    let report = session.commit_resolution(resolution).unwrap();
    assert_eq!(report.version, 1);
    assert_eq!(session.pending(), 0);
    assert_eq!(session.version(), 1);
    session.assert_consistent();

    let xml = session.serialize();
    assert!(xml.contains("<heading>"));
    assert!(xml.contains("initPage=\"132\""));
    assert!(xml.contains("G.Guerrini"));
}

/// The streaming commit writes the same document the in-memory commit builds,
/// and keeps the in-memory copy synchronised.
#[test]
fn streaming_and_in_memory_commits_agree() {
    let mut session = issue_session();
    let wire = pul::xmlio::pul_to_xml(
        &session
            .produce(
                "delete nodes /issue/paper[1]/author, \
                 replace value of node /issue/paper[2]/title/text() with \"XML Views, 2nd ed.\"",
            )
            .unwrap(),
    );
    session.submit_xml(&wire).unwrap();

    let mut in_memory = session.clone();
    in_memory.commit().unwrap();
    in_memory.assert_consistent();

    let identified = session.serialize_identified();
    let mut streamed = Vec::new();
    let report = session.commit_streaming(&mut identified.as_bytes(), &mut streamed).unwrap();
    assert_eq!(report.version, 1);
    session.assert_consistent();

    // The bytes written to the writer are the identified serialization of the
    // updated document, and the session parsed them back in.
    let streamed_doc =
        xmlpul::xdm::parser::parse_document_identified(std::str::from_utf8(&streamed).unwrap())
            .unwrap();
    assert_eq!(
        pul::obtainable::canonical_string(&streamed_doc),
        pul::obtainable::canonical_string(session.document())
    );
    assert_eq!(
        pul::obtainable::canonical_string(in_memory.document()),
        pul::obtainable::canonical_string(session.document())
    );
}

/// A sequence submission aggregates on entry; the session resolves it like
/// any other producer PUL.
#[test]
fn sequence_submissions_aggregate() {
    let mut session = issue_session().apply_options(ApplyOptions::producer());
    // A disconnected producer: two consecutive editing sessions on its copy.
    let mut client = session.clone().reduction(ReductionStrategy::None);
    let pul1 =
        client.produce("insert nodes <year>2004</year> as first into /issue/paper[1]").unwrap();
    client.submit(pul1.clone());
    client.commit().unwrap();
    let pul2 =
        client.produce("replace value of node /issue/paper[1]/year/text() with \"2005\"").unwrap();
    client.submit(pul2.clone());
    client.commit().unwrap();

    let wire = pul::xmlio::puls_to_xml(&[pul1, pul2]);
    session.submit_sequence_xml(&wire).unwrap();
    assert_eq!(session.pending(), 1, "the sequence entered as one aggregated submission");
    session.commit().unwrap();
    session.assert_consistent();
    assert!(session.serialize().contains("<year>2005</year>"), "{}", session.serialize());
}

/// Versions fence commits: a resolution computed before a commit cannot be
/// applied after it.
#[test]
fn stale_resolution_is_fenced() {
    let mut session = issue_session();
    let pul = session.produce("rename node /issue/paper[1]/title as \"t1\"").unwrap();
    session.submit(pul);
    let early = session.resolve().unwrap();
    session.commit().unwrap();

    let err = session.commit_resolution(early).unwrap_err();
    assert_eq!(err.code(), "XPUL-E01");
    assert!(matches!(err, Error::StaleResolution { resolved_at: 0, current: 1 }));
}

/// A resolution only consumes the submissions it reasoned about: later
/// arrivals survive the commit and withdrawn ones invalidate it.
#[test]
fn resolution_covers_exactly_its_submissions() {
    // A submission arriving after resolve() must not be silently dropped.
    let mut session = issue_session();
    let a = session.produce("rename node /issue/paper[1]/title as \"a\"").unwrap();
    session.submit(a);
    let resolution = session.resolve().unwrap();
    let b = session.produce("rename node /issue/paper[2]/title as \"b\"").unwrap();
    session.submit(b);
    session.commit_resolution(resolution).unwrap();
    assert_eq!(session.pending(), 1, "the late submission is still pending");
    session.commit().unwrap();
    assert!(session.serialize().contains("<b>"), "{}", session.serialize());

    // A withdrawn submission invalidates resolutions that covered it.
    let mut session = issue_session();
    let a = session.produce("rename node /issue/paper[1]/title as \"a\"").unwrap();
    let id = session.submit(a);
    let resolution = session.resolve().unwrap();
    session.withdraw(id).unwrap();
    let err = session.commit_resolution(resolution).unwrap_err();
    assert_eq!(err.code(), "XPUL-E02");
}

/// A commit that fails mid-apply leaves the session untouched: no
/// half-applied document, version unchanged, submissions still pending.
#[test]
fn failed_commit_is_atomic() {
    use xmlpul::xdm::parser::parse_fragment_with_first_id;

    let mut session = Executor::parse("<a><b>t</b></a>")
        .unwrap()
        .reduction(ReductionStrategy::None)
        .apply_options(ApplyOptions { validate: false, preserve_content_ids: true });
    let before = session.serialize();
    let root = session.document().root().unwrap();

    // Two insertions; the second's content tree reuses an id the document
    // already allocated, so it fails *after* the first has been applied.
    let ok_tree = parse_fragment_with_first_id("<ok/>", 100).unwrap();
    let clash_tree = parse_fragment_with_first_id("<clash/>", 2).unwrap();
    let pul = session.pul_from_ops(vec![
        UpdateOp::ins_first(root, vec![ok_tree]),
        UpdateOp::ins_last(root, vec![clash_tree]),
    ]);
    session.submit(pul);

    let err = session.commit().unwrap_err();
    assert_eq!(err.code(), "XPUL-D02", "{err}");
    assert_eq!(session.serialize(), before, "no half-applied document");
    assert_eq!(session.version(), 0);
    assert_eq!(session.pending(), 1, "the submission is still pending for a corrected retry");
    session.assert_consistent();
}

/// The streaming commit refuses a reader that is not this session's own
/// identified serialization, before writing anything.
#[test]
fn streaming_commit_rejects_foreign_serializations() {
    let mut session = issue_session();
    let pul = session.produce("rename node /issue/paper[1]/title as \"t\"").unwrap();
    session.submit(pul);

    let foreign = Executor::parse("<other/>").unwrap().serialize_identified().into_bytes();
    let mut out = Vec::new();
    let err = session.commit_streaming(&mut foreign.as_slice(), &mut out).unwrap_err();
    assert_eq!(err.code(), "XPUL-E03");
    assert!(out.is_empty(), "nothing may reach the writer on a rejected stream");
    assert_eq!(session.version(), 0);
    assert_eq!(session.pending(), 1, "the submission survives the failed commit");
}

/// Withdrawn submissions leave the session; unknown ids surface as typed
/// errors.
#[test]
fn withdraw_and_unknown_submissions() {
    let mut session = issue_session();
    let pul = session.produce("delete nodes /issue/paper[2]").unwrap();
    let id = session.submit(pul);
    assert_eq!(session.pending(), 1);
    let withdrawn = session.withdraw(id).unwrap();
    assert_eq!(withdrawn.len(), 1);
    assert_eq!(session.pending(), 0);

    let err = session.withdraw(id).unwrap_err();
    assert_eq!(err.code(), "XPUL-E02");
    assert!(matches!(err, Error::UnknownSubmission(i) if i == id));
}

/// Transactions roll back document, version and submissions — unless
/// committed.
#[test]
fn transactions_roll_back_and_commit() {
    let mut session = issue_session();
    let before = session.serialize();

    // Rolled back: the commit inside the transaction is undone.
    {
        let mut tx = session.transaction();
        let pul = tx.produce("delete nodes /issue/paper[1]").unwrap();
        tx.submit(pul);
        let report = tx.apply().unwrap();
        assert_eq!(report.version, 1);
        assert!(!tx.serialize().contains("Database Replication"));
    }
    assert_eq!(session.serialize(), before);
    assert_eq!(session.version(), 0);
    session.assert_consistent();

    // Committed: the change sticks.
    let mut tx = session.transaction();
    let pul = tx.produce("delete nodes /issue/paper[1]").unwrap();
    tx.submit(pul);
    tx.apply().unwrap();
    tx.commit();
    assert!(!session.serialize().contains("Database Replication"));
    assert_eq!(session.version(), 1);
    session.assert_consistent();
}

/// Every public error path surfaces as the unified `xmlpul::Error` with its
/// stable code.
#[test]
fn unified_error_surface() {
    // Parse errors from the document model.
    let err = Executor::parse("<unclosed>").unwrap_err();
    assert_eq!(err.code(), "XPUL-D05");
    assert!(matches!(err, Error::Xdm(_)));

    // Query errors from the front-end.
    let session = issue_session();
    let err = session.produce("frobnicate /issue").unwrap_err();
    assert_eq!(err.code(), "XPUL-Q01");
    assert!(matches!(err, Error::Query(_)));

    // Wire-format errors from the PUL layer.
    let mut session = issue_session();
    let err = session.submit_xml("<not-a-pul/>").unwrap_err();
    assert_eq!(err.code(), "XPUL-P05");
    assert!(matches!(err, Error::Pul(_)));

    // Application errors: a PUL targeting a node the document lost.
    let mut session = issue_session();
    let paper2 = session.document().find_elements("paper")[1];
    let stale_target = session.pul_from_ops(vec![UpdateOp::rename(paper2, "gone")]);
    let delete_all = session.produce("delete nodes /issue/paper[2]").unwrap();
    session.submit(delete_all);
    session.commit().unwrap();
    session.submit(stale_target);
    let err = session.commit().unwrap_err();
    assert_eq!(err.code(), "XPUL-P01", "{err}");

    // Reconciliation errors carry the unsolvable conflict.
    let mut session = issue_session();
    let text =
        session.document().children(session.document().find_elements("title")[0]).unwrap()[0];
    let p1 = session.pul_from_ops(vec![UpdateOp::replace_value(text, "a")]);
    let p2 = session.pul_from_ops(vec![UpdateOp::replace_value(text, "b")]);
    session.submit_with_policy(p1, Policy::inserted_data());
    session.submit_with_policy(p2, Policy::inserted_data());
    let err = session.resolve().unwrap_err();
    assert_eq!(err.code(), "XPUL-C01");
    assert_eq!(
        err.unsolvable_conflict().map(|c| c.ctype),
        Some(ConflictType::RepeatedModification)
    );
}
