//! Incremental labeling: `Labeling::patch` after a PUL application must agree
//! with a fresh `Labeling::assign` up to order-key equivalence (identical
//! Table-1 predicate answers on every node pair), and commits — in-memory and
//! streaming — must leave the labels of untouched nodes bit-identical (§4.1:
//! "document updates should not lead to relabeling of nodes").

use std::collections::HashMap;

use pul::apply::{apply_pul_with_labeling, ApplyOptions};
use pul::UpdateOp;
use workload::pulgen::{generate_pul, PulGenConfig};
use workload::xmark::{generate as xmark, XmarkConfig};
use xdm::{Document, NodeId, Tree};
use xlabel::{Labeling, NodeLabel};
use xmlpul::prelude::*;

/// Asserts that two labelings give the same answer to every Table-1 predicate
/// on every pair of document nodes — order keys may differ, the relations they
/// encode may not.
fn assert_table1_equivalent(doc: &Document, patched: &Labeling, fresh: &Labeling) {
    let nodes = doc.preorder_from_root();
    for &n in &nodes {
        assert!(patched.get(n).is_some(), "node {n} must be labeled after patch");
    }
    assert_eq!(patched.len(), fresh.len(), "same number of labeled nodes");
    for &a in &nodes {
        for &b in &nodes {
            assert_eq!(patched.precedes(a, b), fresh.precedes(a, b), "precedes({a},{b})");
            assert_eq!(patched.is_child(a, b), fresh.is_child(a, b), "child({a},{b})");
            assert_eq!(patched.is_attribute(a, b), fresh.is_attribute(a, b), "attr({a},{b})");
            assert_eq!(patched.is_descendant(a, b), fresh.is_descendant(a, b), "desc({a},{b})");
            assert_eq!(
                patched.is_left_sibling(a, b),
                fresh.is_left_sibling(a, b),
                "leftsib({a},{b})"
            );
            assert_eq!(patched.is_first_child(a, b), fresh.is_first_child(a, b), "first({a},{b})");
            assert_eq!(patched.is_last_child(a, b), fresh.is_last_child(a, b), "last({a},{b})");
            assert_eq!(
                patched.is_descendant_not_attr(a, b),
                fresh.is_descendant_not_attr(a, b),
                "nda({a},{b})"
            );
        }
    }
}

/// Property-style loop (seeded via the offline shim RNG): apply a generated
/// PUL maintaining the labeling incrementally, then compare against a fresh
/// assignment of the updated document.
#[test]
fn patched_labeling_matches_fresh_assignment_on_generated_puls() {
    for seed in 0..6u64 {
        let mut doc = xmark(&XmarkConfig { target_nodes: 260, seed });
        let mut labeling = Labeling::assign(&doc);
        let before: HashMap<NodeId, NodeLabel> =
            labeling.iter().map(|l| (l.id, l.clone())).collect();
        let pul = generate_pul(
            &doc,
            &labeling,
            &PulGenConfig {
                n_ops: 40,
                reducible_ratio: 0.3,
                content_id_base: doc.next_id() + 1_000,
                seed,
            },
        );
        apply_pul_with_labeling(
            &mut doc,
            &mut labeling,
            &pul,
            &ApplyOptions { validate: false, preserve_content_ids: false },
        )
        .expect("generated PUL applies");

        let fresh = Labeling::assign(&doc);
        assert_table1_equivalent(&doc, &labeling, &fresh);

        // Untouched nodes keep their exact keys (seed {seed}).
        for node in doc.preorder_from_root() {
            if let Some(old) = before.get(&node) {
                let now = labeling.require(node);
                assert_eq!(now.start, old.start, "seed {seed}: start key of {node} changed");
                assert_eq!(now.end, old.end, "seed {seed}: end key of {node} changed");
            }
        }
    }
}

fn issue_session() -> Executor {
    Executor::parse(
        "<issue volume=\"30\">\
           <paper><title>Database Replication</title><author>A.Chaudhri</author></paper>\
           <paper><title>XML Views</title><authors><author>B.Catania</author></authors></paper>\
         </issue>",
    )
    .unwrap()
}

fn snapshot(executor: &Executor) -> HashMap<NodeId, NodeLabel> {
    executor.labeling().iter().map(|l| (l.id, l.clone())).collect()
}

/// Every node that survives the commit untouched keeps a bit-identical label.
fn assert_untouched_labels_identical(
    executor: &Executor,
    before: &HashMap<NodeId, NodeLabel>,
    touched: &[NodeId],
) {
    for node in executor.document().preorder_from_root() {
        let Some(old) = before.get(&node) else { continue };
        if touched.contains(&node) {
            continue;
        }
        let now = executor.labeling().require(node);
        assert_eq!(now.start, old.start, "start key of untouched node {node} changed");
        assert_eq!(now.end, old.end, "end key of untouched node {node} changed");
        assert_eq!(now.level, old.level, "level of untouched node {node} changed");
    }
}

#[test]
fn in_memory_commit_preserves_untouched_labels() {
    let mut session = issue_session();
    let doc = session.document();
    let paper2 = doc.find_elements("paper")[1];
    let author = doc.find_elements("author")[0];
    let before = snapshot(&session);

    let pul = session.pul_from_ops(vec![
        UpdateOp::ins_after(author, vec![Tree::element_with_text("author", "M.Mesiti")]),
        UpdateOp::ins_attributes(paper2, vec![Tree::attribute("initPage", "7")]),
        UpdateOp::delete(author),
    ]);
    session.submit(pul);
    session.commit().unwrap();
    session.assert_consistent();

    // The deleted author lost its label; everything else is bit-identical.
    assert!(session.labeling().get(author).is_none());
    assert_untouched_labels_identical(&session, &before, &[]);
    // And the labeling still answers Table 1 like a fresh assignment would.
    let fresh = Labeling::assign(session.document());
    assert_table1_equivalent(session.document(), session.labeling(), &fresh);
}

#[test]
fn streaming_commit_preserves_untouched_labels() {
    let mut session = issue_session();
    let doc = session.document();
    let title2 = doc.find_elements("title")[1];
    let authors = doc.find_element("authors").unwrap();
    let before = snapshot(&session);

    let pul = session.pul_from_ops(vec![
        UpdateOp::rename(title2, "heading"),
        UpdateOp::ins_last(authors, vec![Tree::element_with_text("author", "G.Guerrini")]),
    ]);
    session.submit(pul);

    let mut input = std::io::Cursor::new(session.serialize_identified().into_bytes());
    let mut output = Vec::new();
    session.commit_streaming(&mut input, &mut output).unwrap();
    session.assert_consistent();

    assert_untouched_labels_identical(&session, &before, &[]);
    // The inserted author is labeled and correctly related to its siblings.
    let new_author = *session.document().children(authors).unwrap().last().unwrap();
    assert!(session.labeling().is_last_child(new_author, authors));
    let fresh = Labeling::assign(session.document());
    assert_table1_equivalent(session.document(), session.labeling(), &fresh);
}

#[test]
fn repeated_wire_submissions_hit_the_reduction_cache() {
    let mut session = issue_session();
    let wire = pul::xmlio::pul_to_xml(
        &session.produce("rename node /issue/paper[1]/title as \"heading\"").unwrap(),
    );

    let id1 = session.submit_xml(&wire).unwrap();
    assert_eq!(session.cache_stats(), CacheStats { hits: 0, misses: 1 });
    session.withdraw(id1).unwrap();

    // The same wire bytes again: reduction is served from the cache.
    session.submit_xml(&wire).unwrap();
    assert_eq!(session.cache_stats(), CacheStats { hits: 1, misses: 1 });
    session.commit().unwrap();
    assert!(session.serialize().contains("<heading>"));

    // A different wire submission misses.
    let other = pul::xmlio::pul_to_xml(
        &session.produce("delete node /issue/paper[2]/authors/author").unwrap(),
    );
    session.submit_xml(&other).unwrap();
    assert_eq!(session.cache_stats(), CacheStats { hits: 1, misses: 2 });
}

#[test]
fn cache_capacity_zero_disables_caching() {
    let mut session = issue_session().reduction_cache_capacity(0);
    let wire = pul::xmlio::pul_to_xml(
        &session.produce("rename node /issue/paper[1]/title as \"heading\"").unwrap(),
    );
    session.submit_xml(&wire).unwrap();
    session.submit_xml(&wire).unwrap();
    assert_eq!(session.cache_stats(), CacheStats { hits: 0, misses: 2 });
}
