//! Cross-crate integration tests reproducing the worked examples of the paper
//! (Examples 1–9 and the Table 3 reduction trace) on the Figure 1 fixture,
//! driven through the [`Executor`] session API.

use xmlpul::fixtures::{figure1, n};
use xmlpul::prelude::*;

use pul::obtainable::{obtainable_documents, DEFAULT_OUTCOME_LIMIT};

/// Opens a session on the Figure 1 fixture.
fn session() -> Executor {
    let (doc, _) = figure1();
    Executor::new(doc)
}

/// Example 1: `del(14)` involves no non-determinism, while an `ins↓` into the
/// `<authors>` element (node 16, two children) may lead to three documents.
#[test]
fn example_1_obtainable_documents() {
    let s = session();
    let p_del = s.pul_from_ops(vec![UpdateOp::delete(n(14))]);
    assert_eq!(obtainable_documents(s.document(), &p_del, DEFAULT_OUTCOME_LIMIT).unwrap().len(), 1);

    let p_ins = s.pul_from_ops(vec![UpdateOp::ins_into(
        n(16),
        vec![Tree::element_with_text("author", "G.Guerrini")],
    )]);
    assert_eq!(obtainable_documents(s.document(), &p_ins, DEFAULT_OUTCOME_LIMIT).unwrap().len(), 3);
}

/// Example 2: `ren(1, dblp)` and `ren(1, myDblp)` are incompatible, while each
/// of them is compatible with `repC(1, 'nopapers')`.
#[test]
fn example_2_compatibility() {
    let op1 = UpdateOp::rename(n(1), "dblp");
    let op2 = UpdateOp::rename(n(1), "myDblp");
    let op3 = UpdateOp::replace_content(n(1), Some("nopapers".into()));
    assert!(op1.is_compatible_with(&op3));
    assert!(op2.is_compatible_with(&op3));
    assert!(!op1.is_compatible_with(&op2));

    let mut pul = Pul::new();
    pul.push(op1);
    pul.push(op2);
    assert!(
        pul.check_compatible().is_err(),
        "a PUL with incompatible operations is not applicable"
    );
}

/// Example 3: one `ins↓` into node 16 (three positions) plus two `ins↘` on the
/// same paper (two relative orders) yield six obtainable documents.
#[test]
fn example_3_cardinality() {
    let s = session();
    let pul = s.pul_from_ops(vec![
        UpdateOp::ins_into(n(16), vec![Tree::element_with_text("author", "G.Guerrini")]),
        UpdateOp::ins_last(n(4), vec![Tree::element_with_text("initP", "132")]),
        UpdateOp::ins_last(n(4), vec![Tree::element_with_text("lastP", "134")]),
    ]);
    let o = obtainable_documents(s.document(), &pul, DEFAULT_OUTCOME_LIMIT).unwrap();
    assert_eq!(o.len(), 6);
}

/// Example 4: equivalence and substitutability.
#[test]
fn example_4_equivalence_and_substitutability() {
    let s = session();
    // ∆1 = {ins→(19, <author>M.Mesiti</author>), repV(15, 'Report on …')}
    // ∆2 = {ins↘(16, <author>M.Mesiti</author>), repC(14, 'Report on …')}
    let d1 = s.pul_from_ops(vec![
        UpdateOp::ins_after(n(19), vec![Tree::element_with_text("author", "M.Mesiti")]),
        UpdateOp::replace_value(n(15), "Report on EDBT"),
    ]);
    let d2 = s.pul_from_ops(vec![
        UpdateOp::ins_last(n(16), vec![Tree::element_with_text("author", "M.Mesiti")]),
        UpdateOp::replace_content(n(14), Some("Report on EDBT".into())),
    ]);
    assert!(pul::obtainable::equivalent(s.document(), &d1, &d2, DEFAULT_OUTCOME_LIMIT).unwrap());

    // ∆1 = {ins↘(4, initP), ins↘(4, lastP)}  vs ∆2 = {ins↘(4, initP, lastP)}:
    // ∆2 is substitutable to ∆1 but not vice versa.
    let d1 = s.pul_from_ops(vec![
        UpdateOp::ins_last(n(4), vec![Tree::element_with_text("initP", "132")]),
        UpdateOp::ins_last(n(4), vec![Tree::element_with_text("lastP", "134")]),
    ]);
    let d2 = s.pul_from_ops(vec![UpdateOp::ins_last(
        n(4),
        vec![Tree::element_with_text("initP", "132"), Tree::element_with_text("lastP", "134")],
    )]);
    assert!(pul::obtainable::substitutable(s.document(), &d2, &d1, DEFAULT_OUTCOME_LIMIT).unwrap());
    assert!(!pul::obtainable::substitutable(s.document(), &d1, &d2, DEFAULT_OUTCOME_LIMIT).unwrap());
}

/// Example 5 / Table 3: the reduction of the nine-operation PUL collapses to
/// three operations; the canonical form additionally orders the inserted
/// authors lexicographically and rewrites `ins↓` into `ins↙`.
#[test]
fn example_5_table_3_reduction() {
    let s = session();
    let ops = vec![
        UpdateOp::ins_first(n(4), vec![Tree::element_with_text("year", "2004")]),
        UpdateOp::ins_last(n(4), vec![Tree::element_with_text("month", "March")]),
        UpdateOp::rename(n(5), "title"),
        UpdateOp::ins_after(n(7), vec![Tree::element_with_text("author", "A.Chaudhri")]),
        UpdateOp::ins_before(n(5), vec![Tree::element_with_text("title", "Report on EDBT04 ...")]),
        UpdateOp::ins_after(n(7), vec![Tree::element_with_text("author", "G.Guerrini")]),
        UpdateOp::ins_after(n(7), vec![Tree::element_with_text("author", "F.Cavalieri")]),
        UpdateOp::replace_node(n(5), vec![Tree::element_with_text("author", "M.Mesiti")]),
        UpdateOp::ins_into(n(16), vec![Tree::element_with_text("author", "P.Gardner")]),
    ];
    let pul = s.pul_from_ops(ops);

    let reduced = ReductionStrategy::Standard.reduce(&pul);
    assert_eq!(reduced.len(), 3, "∆O has three operations: {reduced}");
    // the repN on node 5 has absorbed the ren, the ins← on 5 and the ins↙/ins↘ on its parent 4
    let repn =
        reduced.ops().iter().find(|o| o.name() == OpName::ReplaceNode).expect("repN survives");
    assert_eq!(repn.target(), n(5));
    let repn_names: Vec<String> =
        repn.content().unwrap().iter().map(|t| t.root_name().unwrap()).collect();
    assert_eq!(
        repn_names,
        vec!["year", "title", "author"],
        "the collapsed repN carries the year, the new title and the replacement author (Table 3)"
    );
    // the three ins→ on node 7 have been collapsed into one, which also absorbs
    // the ins↘ of the month because node 7 is the last child of the paper (rule I15)
    let ins = reduced.ops().iter().find(|o| o.name() == OpName::InsAfter).expect("ins→ survives");
    assert_eq!(ins.target(), n(7));
    assert_eq!(ins.content().unwrap().len(), 4);
    // the ins↓ on 16 is still there: the plain reduction is not deterministic
    assert!(reduced.ops().iter().any(|o| o.name() == OpName::InsInto));

    // deterministic reduction rewrites it into ins↙ and has a single outcome;
    // it is what a default session resolves a lone submission to
    let mut det_session = session();
    det_session.submit(pul.clone());
    let det = det_session.resolve().unwrap().into_pul();
    assert!(det.ops().iter().all(|o| o.name() != OpName::InsInto));
    let o = obtainable_documents(s.document(), &det, DEFAULT_OUTCOME_LIMIT).unwrap();
    assert_eq!(o.len(), 1);

    // the canonical form orders the authors lexicographically (A.C, F.C, G.G)
    let canon = ReductionStrategy::Canonical.reduce(&pul);
    let ins = canon.ops().iter().find(|o| o.name() == OpName::InsAfter).expect("ins→ in ∆H̄");
    let texts: Vec<String> =
        ins.content().unwrap().iter().map(|t| t.text_content(t.root_id())).collect();
    assert_eq!(texts, vec!["A.Chaudhri", "F.Cavalieri", "G.Guerrini", "March"]);
    // canonical form is unique: permuting the input operations does not change it
    let mut shuffled_ops = pul.ops().to_vec();
    shuffled_ops.reverse();
    let canon2 = ReductionStrategy::Canonical.reduce(&s.pul_from_ops(shuffled_ops));
    assert_eq!(canon.to_string(), canon2.to_string());

    // every reduction is substitutable to the original PUL (Prop. 1)
    for r in [&reduced, &det, &canon] {
        assert!(
            pul::obtainable::substitutable(s.document(), r, &pul, DEFAULT_OUTCOME_LIMIT).unwrap()
        );
    }
}

/// Example 6: two PULs without conflicts integrate into their merge, and the
/// session's deterministic reduction compacts the merge.
#[test]
fn example_6_integration_without_conflicts() {
    let s = session();
    let p1 = s.pul_from_ops(vec![
        UpdateOp::ins_attributes(n(4), vec![Tree::attribute("lastPage", "140")]),
        UpdateOp::replace_value(n(8), "MM"),
        UpdateOp::replace_node(n(7), vec![Tree::element("authors")]),
    ]);
    let p2 = s.pul_from_ops(vec![
        UpdateOp::ins_attributes(n(4), vec![Tree::attribute("pages", "10")]),
        UpdateOp::rename(n(5), "heading"),
    ]);

    // With reduction disabled the resolution *is* the W3C merge (Prop. 2).
    let mut merge_session = session().reduction(ReductionStrategy::None);
    merge_session.submit(p1.clone());
    merge_session.submit(p2.clone());
    let merge = merge_session.resolve().unwrap();
    assert!(merge.is_conflict_free());
    assert_eq!(merge.resolved_ops(), 5, "integration = merge when conflict-free");

    // Example 6: the deterministic reduction of the merge collapses the two
    // insA on the paper and drops the repV overridden by the repN on node 7,
    // leaving {insA, ren, repN} — three operations.
    let mut session = session().reduction(ReductionStrategy::Deterministic);
    session.submit(p1);
    session.submit(p2);
    let resolution = session.resolve().unwrap();
    assert!(resolution.is_conflict_free());
    assert_eq!(resolution.resolved_ops(), 3);
}

/// Example 7: the three PULs produce one conflict of each of the types 1, 2, 3
/// and 5, and Example 9: the best-effort resolution under the producers'
/// policies.
#[test]
fn examples_7_and_9_conflicts_and_reconciliation() {
    let s = session();
    let p1 = s.pul_from_ops(vec![
        UpdateOp::ins_attributes(n(17), vec![Tree::attribute("email", "catania@disi")]),
        UpdateOp::ins_after(n(5), vec![Tree::element_with_text("author", "G G")]),
        UpdateOp::replace_value(n(12), "34"),
    ]);
    let p2 = s.pul_from_ops(vec![
        UpdateOp::ins_attributes(n(17), vec![Tree::attribute("email", "catania@gmail")]),
        UpdateOp::ins_after(n(5), vec![Tree::element_with_text("author", "A C")]),
        UpdateOp::replace_value(n(12), "35"),
        UpdateOp::replace_value(n(18), "F C"),
        UpdateOp::ins_before(n(17), vec![Tree::element_with_text("author", "F C")]),
    ]);
    let p3 = s.pul_from_ops(vec![UpdateOp::replace_content(n(17), Some("G G".into()))]);

    // Example 9: producer 1 requires insertion order + inserted data, producer
    // 2 nothing, producer 3 inserted data.
    let mut session = session().reduction(ReductionStrategy::None);
    session.submit_with_policy(
        p1.clone(),
        Policy {
            preserve_insertion_order: true,
            preserve_inserted_data: true,
            preserve_removed_data: false,
        },
    );
    session.submit_with_policy(p2.clone(), Policy::relaxed());
    session.submit_with_policy(p3.clone(), Policy::inserted_data());
    let resolution = session.resolve().expect("solvable");

    assert_eq!(resolution.conflicts().len(), 4);
    let mut types: Vec<u8> = resolution.conflicts().iter().map(|c| c.ctype.code()).collect();
    types.sort();
    assert_eq!(types, vec![1, 2, 3, 5]);
    assert_eq!(resolution.conflict_counts().len(), 4, "one conflict of each type");

    // the generated insertion keeps producer 1's author first
    let generated = resolution
        .pul()
        .ops()
        .iter()
        .find(|o| o.name() == OpName::InsAfter && o.content().map(|c| c.len()) == Some(2))
        .expect("generated order-conflict resolution");
    let texts: Vec<String> =
        generated.content().unwrap().iter().map(|t| t.text_content(t.root_id())).collect();
    assert_eq!(texts, vec!["G G", "A C"]);

    // with all three producers requiring insertion-order preservation the
    // reconciliation fails, surfacing as the unified error
    let mut strict = self::session();
    strict.submit_with_policy(p1, Policy::insertion_order());
    strict.submit_with_policy(p2, Policy::insertion_order());
    strict.submit_with_policy(p3, Policy::insertion_order());
    let err = strict.resolve().unwrap_err();
    assert_eq!(err.code(), "XPUL-C01");
    assert!(err.unsolvable_conflict().is_some());
    assert!(matches!(err, Error::Reconcile(_)));
}

/// Example 8: aggregation of three sequential PULs, with rule D6 applying the
/// later operations inside the parameter tree of the first insertion.
#[test]
fn example_8_aggregation() {
    let s = session();
    // ∆1 inserts <article24><title25>XML26</title></article> under <authors> (16)
    let article =
        xdm::parser::parse_fragment_with_first_id("<article><title>XML</title></article>", 24)
            .unwrap();
    let p1 = s.pul_from_ops(vec![
        UpdateOp::ins_last(n(16), vec![article]),
        UpdateOp::replace_value(n(12), "13"),
    ]);
    // ∆2 adds two authors (27–30) inside the new article and renames node 5
    let a1 = xdm::parser::parse_fragment_with_first_id("<author>G G</author>", 27).unwrap();
    let a2 = xdm::parser::parse_fragment_with_first_id("<author>M M</author>", 29).unwrap();
    let p2 = s.pul_from_ops(vec![
        UpdateOp::ins_last(n(24), vec![a1, a2]),
        UpdateOp::rename(n(5), "title"),
    ]);
    // ∆3 replaces author 29, renames node 5 again and rewrites text 26
    let a3 = xdm::parser::parse_fragment_with_first_id("<author>F C</author>", 31).unwrap();
    let p3 = s.pul_from_ops(vec![
        UpdateOp::replace_node(n(29), vec![a3]),
        UpdateOp::rename(n(5), "name"),
        UpdateOp::replace_value(n(26), "On XML"),
    ]);

    // The archive session aggregates the sequence on submission.
    let opts = ApplyOptions { validate: false, preserve_content_ids: true };
    let mut session = session().reduction(ReductionStrategy::None).apply_options(opts.clone());
    session.submit_sequence(&[p1.clone(), p2.clone(), p3.clone()]).unwrap();
    let resolution = session.resolve().unwrap();
    let agg = resolution.pul();
    assert_eq!(agg.len(), 3, "{agg}");
    let ins = agg.ops().iter().find(|o| o.name() == OpName::InsLast).unwrap();
    let tree = &ins.content().unwrap()[0];
    let kids = tree.children(tree.root_id()).unwrap().to_vec();
    assert_eq!(kids.len(), 3, "title + two authors inside the aggregated insertion");
    assert_eq!(tree.text_content(kids[0]), "On XML");
    assert_eq!(tree.text_content(kids[2]), "F C");
    assert!(agg.ops().iter().any(|o| matches!(o, UpdateOp::Rename { name, .. } if name == "name")));

    // Prop. 4: the aggregation cumulates the sequential effects.
    let mut sequential = self::session().reduction(ReductionStrategy::None).apply_options(opts);
    for p in [&p1, &p2, &p3] {
        sequential.submit(p.clone());
        sequential.commit().unwrap();
        sequential.assert_consistent();
    }
    assert_eq!(sequential.version(), 3);
    session.commit_resolution(resolution).unwrap();
    session.assert_consistent();
    assert_eq!(
        pul::obtainable::canonical_string(sequential.document()),
        pul::obtainable::canonical_string(session.document())
    );
}

/// The PUL exchange round trip of §4: a PUL produced by the XQuery Update
/// front-end is serialized, shipped, reduced and executed (both in memory and
/// in streaming) with identical results.
#[test]
fn end_to_end_exchange_and_execution() {
    let mut session = session().reduction(ReductionStrategy::Standard);
    let pul = session
        .produce(
            "insert nodes <author>M.Mesiti</author> as last into /issue/paper[2]/authors, \
             replace value of node /issue/paper[1]/title/text() with \"Replication, revisited\", \
             rename node /issue/paper[2]/abstract as \"summary\", \
             delete nodes /issue/paper[1]/author",
        )
        .unwrap();

    let wire = pul::xmlio::pul_to_xml(&pul);
    session.submit_xml(&wire).unwrap();

    // executor side: in-memory commit on one copy of the session …
    let mut in_memory = session.clone();
    in_memory.commit().unwrap();
    // … streaming commit over the identified serialization on the other
    let identified = session.serialize_identified();
    let mut streamed = Vec::new();
    session.commit_streaming(&mut identified.as_bytes(), &mut streamed).unwrap();

    assert_eq!(
        pul::obtainable::canonical_string(in_memory.document()),
        pul::obtainable::canonical_string(session.document())
    );
    let xml = session.serialize();
    assert!(xml.contains("M.Mesiti"));
    assert!(xml.contains("Replication, revisited"));
    assert!(xml.contains("<summary>"));
    assert!(!xml.contains("A.Chaudhri"));
}
