//! Cross-crate integration tests reproducing the worked examples of the paper
//! (Examples 1–9 and the Table 3 reduction trace) on the Figure 1 fixture.

use xmlpul::fixtures::{figure1, n};
use xmlpul::prelude::*;

use pul::obtainable::{obtainable_documents, DEFAULT_OUTCOME_LIMIT};

/// Example 1: `del(14)` involves no non-determinism, while an `ins↓` into the
/// `<authors>` element (node 16, two children) may lead to three documents.
#[test]
fn example_1_obtainable_documents() {
    let (doc, labels) = figure1();
    let p_del = Pul::from_ops(vec![UpdateOp::delete(n(14))], &labels);
    assert_eq!(obtainable_documents(&doc, &p_del, DEFAULT_OUTCOME_LIMIT).unwrap().len(), 1);

    let p_ins = Pul::from_ops(
        vec![UpdateOp::ins_into(n(16), vec![Tree::element_with_text("author", "G.Guerrini")])],
        &labels,
    );
    assert_eq!(obtainable_documents(&doc, &p_ins, DEFAULT_OUTCOME_LIMIT).unwrap().len(), 3);
}

/// Example 2: `ren(1, dblp)` and `ren(1, myDblp)` are incompatible, while each
/// of them is compatible with `repC(1, 'nopapers')`.
#[test]
fn example_2_compatibility() {
    let op1 = UpdateOp::rename(n(1), "dblp");
    let op2 = UpdateOp::rename(n(1), "myDblp");
    let op3 = UpdateOp::replace_content(n(1), Some("nopapers".into()));
    assert!(op1.is_compatible_with(&op3));
    assert!(op2.is_compatible_with(&op3));
    assert!(!op1.is_compatible_with(&op2));

    let mut pul = Pul::new();
    pul.push(op1);
    pul.push(op2);
    assert!(pul.check_compatible().is_err(), "a PUL with incompatible operations is not applicable");
}

/// Example 3: one `ins↓` into node 16 (three positions) plus two `ins↘` on the
/// same paper (two relative orders) yield six obtainable documents.
#[test]
fn example_3_cardinality() {
    let (doc, labels) = figure1();
    let pul = Pul::from_ops(
        vec![
            UpdateOp::ins_into(n(16), vec![Tree::element_with_text("author", "G.Guerrini")]),
            UpdateOp::ins_last(n(4), vec![Tree::element_with_text("initP", "132")]),
            UpdateOp::ins_last(n(4), vec![Tree::element_with_text("lastP", "134")]),
        ],
        &labels,
    );
    let o = obtainable_documents(&doc, &pul, DEFAULT_OUTCOME_LIMIT).unwrap();
    assert_eq!(o.len(), 6);
}

/// Example 4: equivalence and substitutability.
#[test]
fn example_4_equivalence_and_substitutability() {
    let (doc, labels) = figure1();
    // ∆1 = {ins→(19, <author>M.Mesiti</author>), repV(15, 'Report on …')}
    // ∆2 = {ins↘(16, <author>M.Mesiti</author>), repC(14, 'Report on …')}
    let d1 = Pul::from_ops(
        vec![
            UpdateOp::ins_after(n(19), vec![Tree::element_with_text("author", "M.Mesiti")]),
            UpdateOp::replace_value(n(15), "Report on EDBT"),
        ],
        &labels,
    );
    let d2 = Pul::from_ops(
        vec![
            UpdateOp::ins_last(n(16), vec![Tree::element_with_text("author", "M.Mesiti")]),
            UpdateOp::replace_content(n(14), Some("Report on EDBT".into())),
        ],
        &labels,
    );
    assert!(pul::obtainable::equivalent(&doc, &d1, &d2, DEFAULT_OUTCOME_LIMIT).unwrap());

    // ∆1 = {ins↘(4, initP), ins↘(4, lastP)}  vs ∆2 = {ins↘(4, initP, lastP)}:
    // ∆2 is substitutable to ∆1 but not vice versa.
    let d1 = Pul::from_ops(
        vec![
            UpdateOp::ins_last(n(4), vec![Tree::element_with_text("initP", "132")]),
            UpdateOp::ins_last(n(4), vec![Tree::element_with_text("lastP", "134")]),
        ],
        &labels,
    );
    let d2 = Pul::from_ops(
        vec![UpdateOp::ins_last(
            n(4),
            vec![Tree::element_with_text("initP", "132"), Tree::element_with_text("lastP", "134")],
        )],
        &labels,
    );
    assert!(pul::obtainable::substitutable(&doc, &d2, &d1, DEFAULT_OUTCOME_LIMIT).unwrap());
    assert!(!pul::obtainable::substitutable(&doc, &d1, &d2, DEFAULT_OUTCOME_LIMIT).unwrap());
}

/// Example 5 / Table 3: the reduction of the nine-operation PUL collapses to
/// three operations; the canonical form additionally orders the inserted
/// authors lexicographically and rewrites `ins↓` into `ins↙`.
#[test]
fn example_5_table_3_reduction() {
    let (doc, labels) = figure1();
    let pul = Pul::from_ops(
        vec![
            UpdateOp::ins_first(n(4), vec![Tree::element_with_text("year", "2004")]),
            UpdateOp::ins_last(n(4), vec![Tree::element_with_text("month", "March")]),
            UpdateOp::rename(n(5), "title"),
            UpdateOp::ins_after(n(7), vec![Tree::element_with_text("author", "A.Chaudhri")]),
            UpdateOp::ins_before(n(5), vec![Tree::element_with_text("title", "Report on EDBT04 ...")]),
            UpdateOp::ins_after(n(7), vec![Tree::element_with_text("author", "G.Guerrini")]),
            UpdateOp::ins_after(n(7), vec![Tree::element_with_text("author", "F.Cavalieri")]),
            UpdateOp::replace_node(n(5), vec![Tree::element_with_text("author", "M.Mesiti")]),
            UpdateOp::ins_into(n(16), vec![Tree::element_with_text("author", "P.Gardner")]),
        ],
        &labels,
    );

    let reduced = reduce(&pul);
    assert_eq!(reduced.len(), 3, "∆O has three operations: {reduced}");
    // the repN on node 5 has absorbed the ren, the ins← on 5 and the ins↙/ins↘ on its parent 4
    let repn = reduced.ops().iter().find(|o| o.name() == OpName::ReplaceNode).expect("repN survives");
    assert_eq!(repn.target(), n(5));
    let repn_names: Vec<String> =
        repn.content().unwrap().iter().map(|t| t.root_name().unwrap()).collect();
    assert_eq!(repn_names, vec!["year", "title", "author"],
        "the collapsed repN carries the year, the new title and the replacement author (Table 3)");
    // the three ins→ on node 7 have been collapsed into one, which also absorbs
    // the ins↘ of the month because node 7 is the last child of the paper (rule I15)
    let ins = reduced.ops().iter().find(|o| o.name() == OpName::InsAfter).expect("ins→ survives");
    assert_eq!(ins.target(), n(7));
    assert_eq!(ins.content().unwrap().len(), 4);
    // the ins↓ on 16 is still there: the plain reduction is not deterministic
    assert!(reduced.ops().iter().any(|o| o.name() == OpName::InsInto));

    // deterministic reduction rewrites it into ins↙ and has a single outcome
    let det = deterministic_reduce(&pul);
    assert!(det.ops().iter().all(|o| o.name() != OpName::InsInto));
    let o = obtainable_documents(&doc, &det, DEFAULT_OUTCOME_LIMIT).unwrap();
    assert_eq!(o.len(), 1);

    // the canonical form orders the authors lexicographically (A.C, F.C, G.G)
    let canon = canonical_form(&pul);
    let ins = canon.ops().iter().find(|o| o.name() == OpName::InsAfter).expect("ins→ in ∆H̄");
    let texts: Vec<String> =
        ins.content().unwrap().iter().map(|t| t.text_content(t.root_id())).collect();
    assert_eq!(texts, vec!["A.Chaudhri", "F.Cavalieri", "G.Guerrini", "March"]);
    // canonical form is unique: permuting the input operations does not change it
    let mut shuffled_ops = pul.ops().to_vec();
    shuffled_ops.reverse();
    let canon2 = canonical_form(&Pul::from_ops(shuffled_ops, &labels));
    assert_eq!(canon.to_string(), canon2.to_string());

    // every reduction is substitutable to the original PUL (Prop. 1)
    for r in [&reduced, &det, &canon] {
        assert!(pul::obtainable::substitutable(&doc, r, &pul, DEFAULT_OUTCOME_LIMIT).unwrap());
    }
}

/// Example 6: two PULs without conflicts integrate into their merge.
#[test]
fn example_6_integration_without_conflicts() {
    let (doc, labels) = figure1();
    let p1 = Pul::from_ops(
        vec![
            UpdateOp::ins_attributes(n(4), vec![Tree::attribute("lastPage", "140")]),
            UpdateOp::replace_value(n(8), "MM"),
            UpdateOp::replace_node(n(7), vec![Tree::element("authors")]),
        ],
        &labels,
    );
    let p2 = Pul::from_ops(
        vec![
            UpdateOp::ins_attributes(n(4), vec![Tree::attribute("pages", "10")]),
            UpdateOp::rename(n(5), "heading"),
        ],
        &labels,
    );
    let result = integrate(&[p1, p2]);
    assert!(result.conflicts.is_empty());
    assert_eq!(result.pul.len(), 5);
    // Example 6: the deterministic reduction of the merge collapses the two
    // insA on the paper and drops the repV overridden by the repN on node 7,
    // leaving {insA, ren, repN} — three operations.
    assert_eq!(deterministic_reduce(&result.pul).len(), 3);
    let _ = doc;
}

/// Example 7: the three PULs produce one conflict of each of the types 1, 2, 3
/// and 5 (cf. the integrate tests for the per-type breakdown) and Example 9:
/// the best-effort resolution under the producers' policies.
#[test]
fn examples_7_and_9_conflicts_and_reconciliation() {
    let (doc, labels) = figure1();
    let p1 = Pul::from_ops(
        vec![
            UpdateOp::ins_attributes(n(17), vec![Tree::attribute("email", "catania@disi")]),
            UpdateOp::ins_after(n(5), vec![Tree::element_with_text("author", "G G")]),
            UpdateOp::replace_value(n(12), "34"),
        ],
        &labels,
    );
    let p2 = Pul::from_ops(
        vec![
            UpdateOp::ins_attributes(n(17), vec![Tree::attribute("email", "catania@gmail")]),
            UpdateOp::ins_after(n(5), vec![Tree::element_with_text("author", "A C")]),
            UpdateOp::replace_value(n(12), "35"),
            UpdateOp::replace_value(n(18), "F C"),
            UpdateOp::ins_before(n(17), vec![Tree::element_with_text("author", "F C")]),
        ],
        &labels,
    );
    let p3 = Pul::from_ops(vec![UpdateOp::replace_content(n(17), Some("G G".into()))], &labels);
    let puls = vec![p1, p2, p3];

    let integration = integrate(&puls);
    assert_eq!(integration.conflicts.len(), 4);
    let mut types: Vec<u8> = integration.conflicts.iter().map(|c| c.ctype.code()).collect();
    types.sort();
    assert_eq!(types, vec![1, 2, 3, 5]);

    // Example 9: producer 1 requires insertion order + inserted data, producer 2
    // nothing, producer 3 inserted data.
    let policies = vec![
        Policy { preserve_insertion_order: true, preserve_inserted_data: true, preserve_removed_data: false },
        Policy::relaxed(),
        Policy::inserted_data(),
    ];
    let reconciled =
        pul_core::reconcile_integration(&puls, &integration, &policies).expect("solvable");
    // the generated insertion keeps producer 1's author first
    let generated = reconciled
        .ops()
        .iter()
        .find(|o| o.name() == OpName::InsAfter && o.content().map(|c| c.len()) == Some(2))
        .expect("generated order-conflict resolution");
    let texts: Vec<String> =
        generated.content().unwrap().iter().map(|t| t.text_content(t.root_id())).collect();
    assert_eq!(texts, vec!["G G", "A C"]);

    // with all three producers requiring insertion-order preservation the
    // reconciliation fails
    let strict = vec![Policy::insertion_order(); 3];
    assert!(reconcile(&puls, &strict).is_err());
    let _ = doc;
}

/// Example 8: aggregation of three sequential PULs, with rule D6 applying the
/// later operations inside the parameter tree of the first insertion.
#[test]
fn example_8_aggregation() {
    let (doc, labels) = figure1();
    // ∆1 inserts <article24><title25>XML26</title></article> under <authors> (16)
    let article = xdm::parser::parse_fragment_with_first_id("<article><title>XML</title></article>", 24).unwrap();
    let p1 = Pul::from_ops(
        vec![UpdateOp::ins_last(n(16), vec![article]), UpdateOp::replace_value(n(12), "13")],
        &labels,
    );
    // ∆2 adds two authors (27–30) inside the new article and renames node 5
    let a1 = xdm::parser::parse_fragment_with_first_id("<author>G G</author>", 27).unwrap();
    let a2 = xdm::parser::parse_fragment_with_first_id("<author>M M</author>", 29).unwrap();
    let p2 = Pul::from_ops(
        vec![UpdateOp::ins_last(n(24), vec![a1, a2]), UpdateOp::rename(n(5), "title")],
        &labels,
    );
    // ∆3 replaces author 29, renames node 5 again and rewrites text 26
    let a3 = xdm::parser::parse_fragment_with_first_id("<author>F C</author>", 31).unwrap();
    let p3 = Pul::from_ops(
        vec![
            UpdateOp::replace_node(n(29), vec![a3]),
            UpdateOp::rename(n(5), "name"),
            UpdateOp::replace_value(n(26), "On XML"),
        ],
        &labels,
    );

    let agg = aggregate(&[p1.clone(), p2.clone(), p3.clone()]).unwrap();
    assert_eq!(agg.len(), 3, "{agg}");
    let ins = agg.ops().iter().find(|o| o.name() == OpName::InsLast).unwrap();
    let tree = &ins.content().unwrap()[0];
    let kids = tree.children(tree.root_id()).unwrap().to_vec();
    assert_eq!(kids.len(), 3, "title + two authors inside the aggregated insertion");
    assert_eq!(tree.text_content(kids[0]), "On XML");
    assert_eq!(tree.text_content(kids[2]), "F C");
    assert!(agg.ops().iter().any(|o| matches!(o, UpdateOp::Rename { name, .. } if name == "name")));

    // Prop. 4: the aggregation cumulates the sequential effects.
    let mut sequential = doc.clone();
    for p in [&p1, &p2, &p3] {
        apply_pul(&mut sequential, p, &ApplyOptions { validate: false, preserve_content_ids: true }).unwrap();
    }
    let mut once = doc.clone();
    apply_pul(&mut once, &agg, &ApplyOptions { validate: false, preserve_content_ids: true }).unwrap();
    assert_eq!(
        pul::obtainable::canonical_string(&sequential),
        pul::obtainable::canonical_string(&once)
    );
}

/// The PUL exchange round trip of §4: a PUL produced by the XQuery Update
/// front-end is serialized, shipped, reduced and executed (both in memory and
/// in streaming) with identical results.
#[test]
fn end_to_end_exchange_and_execution() {
    let (doc, labels) = figure1();
    let pul = xqupdate::evaluate(
        &doc,
        &labels,
        "insert nodes <author>M.Mesiti</author> as last into /issue/paper[2]/authors, \
         replace value of node /issue/paper[1]/title/text() with \"Replication, revisited\", \
         rename node /issue/paper[2]/abstract as \"summary\", \
         delete nodes /issue/paper[1]/author",
    )
    .unwrap();

    let wire = pul::xmlio::pul_to_xml(&pul);
    let received = pul::xmlio::pul_from_xml(&wire).unwrap();
    let reduced = reduce(&received);

    // executor side: in-memory application
    let mut in_memory = doc.clone();
    apply_pul(&mut in_memory, &reduced, &ApplyOptions::default()).unwrap();
    // executor side: streaming application over the identified serialization
    let identified = xdm::writer::write_document_identified(&doc);
    let streamed = pul::apply_streaming(&identified, &reduced, doc.next_id() + 1000).unwrap();
    let streamed_doc = xdm::parser::parse_document_identified(&streamed).unwrap();

    assert_eq!(
        pul::obtainable::canonical_string(&in_memory),
        pul::obtainable::canonical_string(&streamed_doc)
    );
    let xml = xdm::writer::write_document(&in_memory);
    assert!(xml.contains("M.Mesiti"));
    assert!(xml.contains("Replication, revisited"));
    assert!(xml.contains("<summary>"));
    assert!(!xml.contains("A.Chaudhri"));
}
