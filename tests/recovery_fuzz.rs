//! Crash-point recovery fuzzing for the durable store.
//!
//! For every seeded case and both backends ([`Executor`] and a 2-shard
//! [`ShardedExecutor`]), a durable session commits a run of generated PULs;
//! the store directory is then copied and the live WAL segment truncated at
//! **every byte offset** — simulating a crash mid-append at that exact point
//! — and recovery must restore exactly the last durable version:
//!
//! * `recovered.version()` equals the highest version whose WAL record is
//!   complete within the truncated prefix (torn and half-written records are
//!   discarded, never replayed);
//! * the recovered document and labeling are **bit-identical** (`deep_eq`) to
//!   the session cloned at the commit of that version, and pass
//!   `assert_consistent`;
//! * the sweep runs against a WAL with no checkpoint beyond the base image,
//!   against the rotated segment written after a mid-history checkpoint, and
//!   against a segment holding a compaction **epoch record** — a cut inside
//!   the epoch record recovers the pre-compaction version, a cut past it
//!   replays the renumbering bit-identically;
//! * afterwards, `read_at(v)` materialises every committed version with the
//!   serialization recorded at its commit.
//!
//! The default suite covers 2 seeds; the `#[ignore]`d sweep (run nightly in
//! CI with `--ignored`) covers 100.

use std::fs;
use std::path::{Path, PathBuf};

use workload::pulgen::generate_pul;
use workload::{PulGenConfig, XmarkConfig};
use xmlpul::prelude::*;
use xmlpul::{Durable, DurableBackend, DurableOptions};

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xmlpul_rfuzz_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Options that never checkpoint on their own: the tests control checkpoint
/// placement explicitly.
fn opts() -> DurableOptions {
    DurableOptions {
        checkpoint_wal_bytes: u64::MAX,
        checkpoint_dead_ratio: f64::INFINITY,
        ..DurableOptions::default()
    }
}

/// Copies a store directory, truncating the named WAL segment to `len` bytes.
fn copy_store_truncated(src: &Path, dst: &Path, segment: &str, len: u64) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        fs::copy(entry.path(), &to).unwrap();
        if entry.file_name().to_string_lossy() == segment {
            let f = fs::OpenOptions::new().write(true).open(&to).unwrap();
            f.set_len(len).unwrap();
        }
    }
}

/// Name and bytes of the live (highest-numbered) WAL segment.
fn live_segment(dir: &Path) -> (String, Vec<u8>) {
    let mut segments: Vec<String> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().to_string_lossy().into_owned();
            (name.starts_with("wal-") && name.ends_with(".log")).then_some(name)
        })
        .collect();
    segments.sort();
    let name = segments.pop().expect("store has a WAL segment");
    let bytes = fs::read(dir.join(&name)).unwrap();
    (name, bytes)
}

/// What the fuzz needs from a backend, over and above [`DurableBackend`].
trait FuzzBackend: DurableBackend + Clone {
    fn from_doc(doc: Document) -> Self;
    fn submit_pul(&mut self, pul: Pul);
    fn commit_round(&mut self) -> Result<u64>;
    fn serialization(&self) -> String;
    fn check_consistent(&self);
    /// Bit-identical state: same arena entries, identifiers, fresh-id
    /// counters and labels.
    fn assert_deep_eq(&self, other: &Self, ctx: &str);
}

impl FuzzBackend for Executor {
    fn from_doc(doc: Document) -> Self {
        Executor::new(doc)
    }
    fn submit_pul(&mut self, pul: Pul) {
        self.submit(pul);
    }
    fn commit_round(&mut self) -> Result<u64> {
        self.commit().map(|r| r.version)
    }
    fn serialization(&self) -> String {
        self.serialize()
    }
    fn check_consistent(&self) {
        self.assert_consistent();
    }
    fn assert_deep_eq(&self, other: &Self, ctx: &str) {
        assert_eq!(self.version(), other.version(), "{ctx}: version");
        assert!(self.document().deep_eq(other.document()), "{ctx}: document");
        assert!(self.labeling().deep_eq(other.labeling()), "{ctx}: labeling");
    }
}

impl FuzzBackend for ShardedExecutor {
    fn from_doc(doc: Document) -> Self {
        let xml = xdm::writer::write_document(&doc);
        ShardedExecutor::parse(&xml, 2).expect("shardable fuzz document")
    }
    fn submit_pul(&mut self, pul: Pul) {
        self.submit(pul);
    }
    fn commit_round(&mut self) -> Result<u64> {
        self.commit().map(|r| r.version)
    }
    fn serialization(&self) -> String {
        self.serialize()
    }
    fn check_consistent(&self) {
        self.assert_consistent();
    }
    fn assert_deep_eq(&self, other: &Self, ctx: &str) {
        assert_eq!(self.version(), other.version(), "{ctx}: version");
        assert_eq!(self.shard_count(), other.shard_count(), "{ctx}: shard count");
        for k in 0..self.shard_count() {
            assert!(
                self.shard(k).document().deep_eq(other.shard(k).document()),
                "{ctx}: shard {k} document"
            );
            assert!(
                self.shard(k).labeling().deep_eq(other.shard(k).labeling()),
                "{ctx}: shard {k} labeling"
            );
        }
    }
}

/// Commits `rounds` generated PULs, recording a full clone and the
/// serialization after every *successful* commit. PULs are generated against
/// an oracle [`Executor`] kept in lockstep, so the generator always sees the
/// current document whatever the backend under test is.
fn commit_rounds<B: FuzzBackend>(
    durable: &mut Durable<B>,
    oracle: &mut Executor,
    seed: u64,
    rounds: usize,
    history: &mut Vec<(u64, B, String)>,
) {
    let mut round = 0usize;
    let mut attempts = 0usize;
    while round < rounds && attempts < rounds * 4 {
        attempts += 1;
        let pul = generate_pul(
            oracle.document(),
            oracle.labeling(),
            &PulGenConfig {
                n_ops: 4,
                reducible_ratio: 0.2,
                content_id_base: oracle.document().next_id() + 50_000 * (attempts as u64 + 1),
                seed: seed.wrapping_mul(613).wrapping_add(attempts as u64),
            },
        );
        oracle.submit(pul.clone());
        let oracle_ok = oracle.commit().is_ok();
        durable.submit_pul(pul);
        match durable.commit_round() {
            Ok(version) => {
                assert!(oracle_ok, "seed {seed}: backend committed what the oracle rejected");
                history.push((version, durable.backend().clone(), durable.serialization()));
                round += 1;
            }
            Err(_) => {
                assert!(!oracle_ok, "seed {seed}: backend rejected what the oracle committed");
            }
        }
    }
    assert!(round > 0, "seed {seed}: no PUL committed in {attempts} attempts");
}

/// Truncates the live segment at every byte offset and checks recovery lands
/// exactly on the last version whose record survived intact.
fn crash_sweep<B: FuzzBackend>(
    store_dir: &Path,
    scratch: &Path,
    base_version: u64,
    history: &[(u64, B, String)],
    ctx: &str,
) {
    let (segment, bytes) = live_segment(store_dir);
    for cut in 0..=bytes.len() {
        let outcome = pul_store::wal::scan(&bytes[..cut]);
        let expect = outcome.records.last().map(|r| r.version).unwrap_or(base_version);
        let crash_dir = scratch.join(format!("crash_{cut}"));
        copy_store_truncated(store_dir, &crash_dir, &segment, cut as u64);
        let recovered: Durable<B> = Durable::open(&crash_dir, opts())
            .unwrap_or_else(|e| panic!("{ctx}, cut {cut}: recovery failed: {e}"));
        assert_eq!(
            recovered.backend().backend_version(),
            expect,
            "{ctx}, cut {cut}: recovered version"
        );
        recovered.backend().check_consistent();
        if let Some((_, reference, _)) = history.iter().find(|(v, _, _)| *v == expect) {
            recovered.backend().assert_deep_eq(reference, &format!("{ctx}, cut {cut}"));
        }
        fs::remove_dir_all(&crash_dir).unwrap();
    }
}

fn run_seed<B: FuzzBackend>(seed: u64, tag: &str) {
    let root = tmp_root(&format!("{tag}_{seed}"));
    let store_dir = root.join("store");
    let doc = workload::generate_xmark(&XmarkConfig {
        target_nodes: 40 + (seed as usize % 5) * 12,
        seed: seed.wrapping_mul(97),
    });
    let mut oracle = Executor::new(doc.clone());
    let mut durable = Durable::create(&store_dir, B::from_doc(doc), opts()).unwrap();
    let mut history: Vec<(u64, B, String)> = Vec::new();

    // Phase A: a WAL tail over the base (version 0) checkpoint only
    commit_rounds(&mut durable, &mut oracle, seed, 4, &mut history);
    crash_sweep(&store_dir, &root, 0, &history, &format!("{tag} seed {seed} phase A"));

    // Phase B: checkpoint mid-history, then crash inside the rotated segment
    let ckpt_version = durable.checkpoint().unwrap();
    commit_rounds(&mut durable, &mut oracle, seed.wrapping_add(1), 2, &mut history);
    crash_sweep(&store_dir, &root, ckpt_version, &history, &format!("{tag} seed {seed} phase B"));

    // Phase C: rotate onto a fresh segment, then compact *without* a
    // checkpoint so the epoch record sits in the live WAL. A cut inside the
    // record recovers the pre-compaction numbering; a cut past it replays the
    // renumbering bit-identically — including the rounds committed on top of
    // the new numbering.
    let ckpt2 = durable.checkpoint().unwrap();
    let report = durable.compact_session().unwrap();
    history.push((report.version, durable.backend().clone(), durable.serialization()));
    oracle.compact().unwrap();
    commit_rounds(&mut durable, &mut oracle, seed.wrapping_add(2), 2, &mut history);
    crash_sweep(&store_dir, &root, ckpt2, &history, &format!("{tag} seed {seed} phase C"));

    // Point-in-time reads: every committed version materialises with the
    // serialization recorded at its commit — mutable restore and pinned
    // snapshot alike.
    for (version, reference, serialized) in &history {
        let at = durable
            .restore_at(*version)
            .unwrap_or_else(|e| panic!("{tag} seed {seed}: restore_at({version}): {e}"));
        assert_eq!(&at.serialization(), serialized, "{tag} seed {seed}: restore_at({version})");
        at.assert_deep_eq(reference, &format!("{tag} seed {seed}: restore_at({version})"));
        at.check_consistent();
        let snap = durable
            .read_at(*version)
            .unwrap_or_else(|e| panic!("{tag} seed {seed}: read_at({version}): {e}"));
        assert_eq!(&snap.serialize(), serialized, "{tag} seed {seed}: read_at({version})");
        snap.assert_consistent();
    }

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn crash_at_every_wal_byte_recovers_the_last_durable_version_single() {
    for seed in 0..2 {
        run_seed::<Executor>(seed, "exec");
    }
}

#[test]
fn crash_at_every_wal_byte_recovers_the_last_durable_version_sharded() {
    for seed in 0..2 {
        run_seed::<ShardedExecutor>(seed, "shard");
    }
}

#[test]
#[ignore = "100-seed sweep, run nightly with --ignored"]
fn crash_recovery_sweep() {
    for seed in 2..52 {
        run_seed::<Executor>(seed, "exec_sweep");
        run_seed::<ShardedExecutor>(seed, "shard_sweep");
    }
}
