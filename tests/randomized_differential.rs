//! Seeded randomized differential verification of the sharded executor.
//!
//! For every seeded case ([`workload::pulgen::differential_case`]: an XMark
//! document plus the PULs of 1–3 producers), the same submissions are
//! committed through a single [`Executor`] oracle and through
//! [`ShardedExecutor`] sessions at 1, 2, 4 and 8 shards. The sharded commit
//! must be **bit-identical** to the oracle's:
//!
//! * the reassembled document `deep_eq` the oracle's (same arena entries,
//!   same identifiers, same fresh-id counter),
//! * every Table-1 predicate of the shard labelings answers exactly as the
//!   oracle labeling (sampled over node pairs within each shard; sibling
//!   metadata at shard boundaries is shard-local by design and compared on
//!   the safe subset for pairs involving the root),
//! * every shard passes `assert_consistent`,
//! * and when the oracle rejects a commit, every sharded session rejects it
//!   too and is left untouched.
//!
//! Commits run with `preserve_content_ids` (the producer-side §4.1 identifier
//! discipline, which `differential_case` guarantees collision-free), so
//! identifier assignment is deterministic on both sides and `deep_eq` is
//! meaningful. The default suite covers 100 seeds; the `#[ignore]`d
//! many-iteration suite (run nightly in CI with `--ignored`) covers 400 more.

use pul::ApplyOptions;
use workload::pulgen::differential_case;
use xmlpul::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Producer-side apply options: parameter-tree identifiers preserved, so the
/// oracle and every sharded layout mint identical identifiers.
fn producer_options() -> ApplyOptions {
    ApplyOptions { validate: true, preserve_content_ids: true }
}

/// Compares the Table-1 predicates of every shard labeling against the
/// oracle labeling, sampling at most ~4000 node pairs per shard so the cost
/// stays bounded on larger documents.
fn assert_table1_matches(sharded: &ShardedExecutor, oracle: &Executor, seed: u64, n: usize) {
    let ol = oracle.labeling();
    for k in 0..sharded.shard_count() {
        let core = sharded.shard(k);
        let doc = core.document();
        let l = core.labeling();
        let root = doc.root().expect("shards keep a root");
        let nodes = doc.preorder_from_root();
        let step = (nodes.len() * nodes.len() / 4_000).max(1);
        let mut idx = 0usize;
        for &a in &nodes {
            for &b in &nodes {
                idx += 1;
                if !idx.is_multiple_of(step) {
                    continue;
                }
                let ctx = format!("seed {seed}, {n} shards, shard {k}, pair ({a},{b})");
                if a == root || b == root {
                    // The shard root carries a synthetic interval narrowed to
                    // the shard slice; the containment predicates still answer
                    // globally, the sibling metadata is shard-local by design.
                    assert_eq!(l.precedes(a, b), ol.precedes(a, b), "precedes {ctx}");
                    assert_eq!(l.is_child(a, b), ol.is_child(a, b), "child {ctx}");
                    assert_eq!(l.is_attribute(a, b), ol.is_attribute(a, b), "attr {ctx}");
                    assert_eq!(l.is_descendant(a, b), ol.is_descendant(a, b), "desc {ctx}");
                    continue;
                }
                assert_eq!(l.precedes(a, b), ol.precedes(a, b), "precedes {ctx}");
                assert_eq!(l.is_left_sibling(a, b), ol.is_left_sibling(a, b), "leftsib {ctx}");
                assert_eq!(l.is_child(a, b), ol.is_child(a, b), "child {ctx}");
                assert_eq!(l.is_attribute(a, b), ol.is_attribute(a, b), "attr {ctx}");
                assert_eq!(l.is_first_child(a, b), ol.is_first_child(a, b), "first {ctx}");
                assert_eq!(l.is_last_child(a, b), ol.is_last_child(a, b), "last {ctx}");
                assert_eq!(l.is_descendant(a, b), ol.is_descendant(a, b), "desc {ctx}");
                assert_eq!(
                    l.is_descendant_not_attr(a, b),
                    ol.is_descendant_not_attr(a, b),
                    "nda {ctx}"
                );
            }
        }
    }
}

/// Runs one seeded case through the oracle and every shard count.
fn run_case(seed: u64) {
    let case = differential_case(seed);

    let mut oracle =
        Executor::new(case.doc.clone()).policy(Policy::relaxed()).apply_options(producer_options());
    for pul in &case.puls {
        oracle.submit(pul.clone());
    }
    let oracle_outcome = oracle.commit();

    for n in SHARD_COUNTS {
        let mut sharded = ShardedExecutor::new(case.doc.clone(), n)
            .expect("sharding a rooted document succeeds")
            .policy(Policy::relaxed())
            .apply_options(producer_options());
        for pul in &case.puls {
            sharded.submit(pul.clone());
        }
        let outcome = sharded.commit();
        match (&oracle_outcome, &outcome) {
            (Ok(oracle_report), Ok(report)) => {
                // The sharded resolution may keep a few more operations than
                // the oracle's: the global final reduce can merge sibling-gap
                // pairs (I18/IR19/IR20) that straddle a shard boundary, which
                // the per-shard reduces cannot see. Those merges are
                // result-neutral — both forms insert into the same gap in the
                // same order — so the committed *documents* must still be
                // bit-identical; only fewer merges may happen, never more.
                assert!(
                    report.applied_ops >= oracle_report.applied_ops,
                    "seed {seed}, {n} shards: sharded resolution dropped ops \
                     ({} vs oracle {})",
                    report.applied_ops,
                    oracle_report.applied_ops
                );
                assert!(
                    sharded.document().deep_eq(oracle.document()),
                    "seed {seed}, {n} shards: committed documents differ\n sharded: {}\n  oracle: {}",
                    sharded.serialize(),
                    oracle.serialize()
                );
                sharded.assert_consistent();
                assert_table1_matches(&sharded, &oracle, seed, n);
            }
            (Err(oe), Err(se)) => {
                // Both sides reject: the sharded session must be untouched
                // (the two-phase journal replay) exactly like the oracle.
                assert!(
                    sharded.document().deep_eq(oracle.document()),
                    "seed {seed}, {n} shards: rejected commit left different documents \
                     (oracle: {oe}, sharded: {se})"
                );
                assert_eq!(sharded.version(), 0);
                sharded.assert_consistent();
            }
            (ok, err) => panic!(
                "seed {seed}, {n} shards: oracle and sharded disagree on the outcome \
                 (oracle: {ok:?}, sharded: {err:?})"
            ),
        }
    }
}

/// The pinned-seed suite run by the main CI test job: 100 seeded
/// document/PUL pairs, each committed at 1, 2, 4 and 8 shards.
#[test]
fn sharded_commit_equals_single_executor_100_seeds() {
    for seed in 0..100 {
        run_case(seed);
    }
}

/// Nightly-style extension: 400 further seeds. Run with
/// `cargo test --release --test randomized_differential -- --ignored`.
#[test]
#[ignore = "many-iteration differential sweep; run nightly with --ignored"]
fn sharded_commit_equals_single_executor_many_iterations() {
    for seed in 100..500 {
        run_case(seed);
    }
}
