//! Differential verification of the journaled O(change) rollback against a
//! snapshot oracle, through the public session API.
//!
//! PR 3 removed every whole-session clone from the commit and transaction
//! paths: atomicity now comes from the apply journal (mutations record their
//! inverses; failure or rollback replays them in reverse). These tests clone
//! the session *in test code* — the oracle the journal replaced — and assert
//! that after an injected mid-apply failure or a transaction rollback the
//! session is bit-identical to the oracle: `deep_eq` on document and
//! labeling, and every Table-1 predicate answering identically on every node
//! pair.

use pul::UpdateOp;
use xdm::Tree;
use xmlpul::prelude::*;

fn issue_session() -> Executor {
    Executor::parse(
        "<issue volume=\"30\" number=\"3\">\
           <paper><title>Database Replication</title><author>A.Chaudhri</author></paper>\
           <paper id=\"x\"><title>XML Views</title><authors><author>B.Catania</author>\
           <author>G.Guerrini</author></authors></paper>\
         </issue>",
    )
    .unwrap()
}

/// Asserts that every Table-1 predicate of `session` answers exactly as in
/// `oracle`, over every ordered pair of the oracle's nodes.
fn assert_table1_identical(session: &Executor, oracle: &Executor) {
    let nodes = oracle.document().preorder_from_root();
    assert_eq!(session.document().preorder_from_root(), nodes, "different node sets");
    let (l, ol) = (session.labeling(), oracle.labeling());
    for &a in &nodes {
        for &b in &nodes {
            assert_eq!(l.precedes(a, b), ol.precedes(a, b), "precedes({a},{b})");
            assert_eq!(l.is_left_sibling(a, b), ol.is_left_sibling(a, b), "leftsib({a},{b})");
            assert_eq!(l.is_child(a, b), ol.is_child(a, b), "child({a},{b})");
            assert_eq!(l.is_attribute(a, b), ol.is_attribute(a, b), "attr({a},{b})");
            assert_eq!(l.is_first_child(a, b), ol.is_first_child(a, b), "first({a},{b})");
            assert_eq!(l.is_last_child(a, b), ol.is_last_child(a, b), "last({a},{b})");
            assert_eq!(l.is_descendant(a, b), ol.is_descendant(a, b), "desc({a},{b})");
            assert_eq!(
                l.is_descendant_not_attr(a, b),
                ol.is_descendant_not_attr(a, b),
                "nda({a},{b})"
            );
        }
    }
}

/// Full bit-identical comparison: documents, labelings, Table-1 predicates.
fn assert_sessions_identical(session: &Executor, oracle: &Executor) {
    assert!(session.document().deep_eq(oracle.document()), "documents differ");
    assert!(session.labeling().deep_eq(oracle.labeling()), "labelings differ");
    assert_eq!(session.version(), oracle.version());
    assert_table1_identical(session, oracle);
    session.assert_consistent();
}

/// A PUL that fails partway through a multi-op application: the stage-1 ops
/// (rename, replace-value) and the first attribute of the duplicate `insA`
/// apply before the dynamic error fires; the stage-2 insertion never runs.
fn mid_failing_pul(session: &Executor) -> pul::Pul {
    let doc = session.document();
    let paper1 = doc.find_elements("paper")[0];
    let paper2 = doc.find_elements("paper")[1];
    let title1 = doc.find_elements("title")[0];
    let text1 = *doc.children(title1).unwrap().first().unwrap();
    session.pul_from_ops(vec![
        UpdateOp::rename(title1, "heading"),
        UpdateOp::replace_value(text1, "changed"),
        UpdateOp::ins_attributes(
            paper2,
            vec![Tree::attribute("year", "2004"), Tree::attribute("year", "2005")],
        ),
        UpdateOp::ins_last(paper1, vec![Tree::element_with_text("note", "never")]),
    ])
}

#[test]
fn mid_apply_failure_rewinds_document_and_labeling() {
    let mut session = issue_session();
    let pul = mid_failing_pul(&session);
    session.submit(pul);
    let oracle = session.clone(); // the snapshot the journal replaced, test-side only

    let err = session.commit().unwrap_err();
    assert!(err.to_string().contains("year"), "the duplicate attribute caused the failure: {err}");
    assert_eq!(session.pending(), 1, "the failed submission stays pending");
    assert_sessions_identical(&session, &oracle);
}

#[test]
fn mid_apply_failure_after_withdrawal_commits_cleanly() {
    let mut session = issue_session();
    let bad = mid_failing_pul(&session);
    let bad_id = session.submit(bad);
    assert!(session.commit().is_err());
    session.withdraw(bad_id).unwrap();

    let pul = session.produce("rename node /issue/paper[last()]/title as \"heading\"").unwrap();
    session.submit(pul);
    session.commit().unwrap();
    session.assert_consistent();
    assert!(session.serialize().contains("<heading>XML Views</heading>"));
}

#[test]
fn transaction_rollback_is_bit_identical_to_the_oracle() {
    let mut session = issue_session();
    let oracle = session.clone();
    {
        let mut tx = session.transaction();
        let pul = tx
            .produce(
                "insert nodes <paper><title>New</title></paper> as last into /issue, \
                 replace value of node /issue/@volume with \"31\"",
            )
            .unwrap();
        tx.submit(pul);
        tx.apply().unwrap();
        tx.assert_consistent();
        let pul = tx.produce("delete node /issue/paper[1]").unwrap();
        tx.submit(pul);
        tx.apply().unwrap();
        tx.assert_consistent();
        assert_eq!(tx.version(), 2);
    } // dropped: rolled back by replaying the journal
    assert_sessions_identical(&session, &oracle);
}

#[test]
fn transaction_rollback_after_streaming_commit() {
    let mut session = issue_session();
    let oracle = session.clone();
    {
        let mut tx = session.transaction();
        let pul = tx.produce("rename node //author[last()] as \"writer\"").unwrap();
        tx.submit(pul);
        let input = tx.serialize_identified();
        let mut output = Vec::new();
        tx.commit_streaming(&mut input.as_bytes(), &mut output).unwrap();
        tx.assert_consistent();
        assert!(String::from_utf8(output).unwrap().contains("writer"));
    }
    assert_sessions_identical(&session, &oracle);
}

#[test]
fn committed_transaction_survives_with_no_journal_overhead_left() {
    let mut session = issue_session();
    {
        let mut tx = session.transaction();
        let pul = tx.produce("delete node /issue/paper[1]").unwrap();
        tx.submit(pul);
        tx.apply().unwrap();
        tx.commit();
    }
    assert_eq!(session.version(), 1);
    assert!(!session.document().journal_is_active(), "success = discard");
    assert!(!session.labeling().journal_is_active());
    session.assert_consistent();
}

// ---------------------------------------------------------------------------
// sharded two-phase rollback fuzz
// ---------------------------------------------------------------------------

/// Fuzzes the sharded two-phase commit: for a randomized cross-shard PUL of
/// `m` operations, build one failing variant per operation index `k` — the
/// first `k` operations plus a poison operation (a duplicate attribute
/// insertion, a guaranteed dynamic error) aimed at a rotating shard — and
/// assert that the two-phase journal replay restores **every** shard to the
/// exact pre-commit state: `deep_eq` documents and labelings, version 0, no
/// journal left open. Varying `k` varies how much work precedes the failure;
/// rotating the poison shard varies how many shards have already applied
/// when the abort fires.
#[test]
fn sharded_two_phase_rollback_at_every_operation_index() {
    const N_SHARDS: usize = 4;
    for seed in 0..3u64 {
        let doc =
            workload::xmark::generate(&workload::xmark::XmarkConfig { target_nodes: 600, seed });
        let labeling = Labeling::assign(&doc);
        let pul = workload::pulgen::generate_pul(
            &doc,
            &labeling,
            &workload::pulgen::PulGenConfig {
                n_ops: 24,
                reducible_ratio: 0.1,
                content_id_base: doc.next_id() + 1_000_000,
                seed,
            },
        );
        let base = ShardedExecutor::new(doc.clone(), N_SHARDS)
            .unwrap()
            .apply_options(ApplyOptions { validate: true, preserve_content_ids: true });

        // The generated PUL must actually cross shards for the fuzz to mean
        // anything: check its resolution touches at least two shards.
        {
            let mut probe = base.clone();
            probe.submit(pul.clone());
            let touched =
                probe.resolve().unwrap().per_shard().iter().filter(|p| !p.is_empty()).count();
            assert!(touched >= 2, "seed {seed}: the fuzz PUL is not cross-shard");
        }

        // Per-shard element pools for poison targets (everything but the root).
        let shard_elements: Vec<Vec<NodeId>> = (0..N_SHARDS)
            .map(|k| {
                let d = base.shard(k).document();
                let root = d.root().unwrap();
                d.preorder_from_root()
                    .into_iter()
                    .filter(|&id| id != root && d.kind(id) == Ok(NodeKind::Element))
                    .collect()
            })
            .collect();

        for k in 0..=pul.len() {
            // Elements removed (or replaced) by the prefix would override the
            // poison during reduction (rules O1/O3) and defuse it — skip them.
            let mut shadowed: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
            for op in &pul.ops()[..k] {
                if matches!(
                    op.name(),
                    OpName::Delete | OpName::ReplaceNode | OpName::ReplaceContent
                ) {
                    shadowed.extend(doc.preorder(op.target()));
                }
            }
            let shard = k % N_SHARDS;
            let Some(&poison_target) =
                shard_elements[shard].iter().find(|id| !shadowed.contains(id))
            else {
                continue;
            };
            // Poison parameter trees need producer-style identifiers of their
            // own (identifiers are preserved on graft): two fresh attributes
            // with the same name — a guaranteed dynamic error mid-apply.
            let attr_tree = |first_id: u64, value: &str| {
                let mut d = Document::with_first_id(first_id);
                let a = d.new_attribute("poison", value);
                d.set_root(a).unwrap();
                Tree::from_document(d).unwrap()
            };
            let poison_base = doc.next_id() + 50_000_000;
            let mut ops: Vec<UpdateOp> = pul.ops()[..k].to_vec();
            ops.push(UpdateOp::ins_attributes(
                poison_target,
                vec![attr_tree(poison_base, "1"), attr_tree(poison_base + 1, "2")],
            ));
            let variant = Pul::from_ops(ops, &labeling);

            let mut session = base.clone();
            let oracle = base.clone();
            session.submit(variant);
            let err = session.commit().unwrap_err();
            assert_eq!(err.code(), "XPUL-P03", "seed {seed}, index {k}: {err}");
            for j in 0..N_SHARDS {
                assert!(
                    session.shard(j).document().deep_eq(oracle.shard(j).document()),
                    "seed {seed}, index {k}: shard {j} document not restored"
                );
                assert!(
                    session.shard(j).labeling().deep_eq(oracle.shard(j).labeling()),
                    "seed {seed}, index {k}: shard {j} labeling not restored"
                );
                assert_eq!(session.shard(j).version(), 0);
                assert!(
                    !session.shard(j).document().journal_is_active(),
                    "seed {seed}, index {k}: shard {j} journal left open"
                );
            }
            assert_eq!(session.version(), 0);
            assert_eq!(session.pending(), 1, "the failed submission stays pending");
            session.assert_consistent();
        }

        // After any of the aborted variants, the session stays fully usable:
        // the unpoisoned PUL commits cleanly on a fresh clone of the same base.
        let mut session = base.clone();
        session.submit(pul.clone());
        session.commit().unwrap();
        session.assert_consistent();
        assert_eq!(session.version(), 1);
    }
}

#[test]
fn rollback_scales_with_the_change_not_the_document() {
    // A large document, a tiny transaction: the recorded journal must be
    // proportional to the few ops applied, not to the thousands of nodes.
    let doc =
        workload::xmark::generate(&workload::xmark::XmarkConfig { target_nodes: 20_000, seed: 7 });
    let node_count = doc.node_count();
    let mut session = Executor::new(doc);
    let oracle = session.clone();
    {
        let mut tx = session.transaction();
        let target = tx.document().find_elements("item").pop();
        if let Some(target) = target {
            let pul = tx.pul_from_ops(vec![UpdateOp::ins_last(
                target,
                vec![Tree::element_with_text("note", "tiny")],
            )]);
            tx.submit(pul);
            let report = tx.apply().unwrap();
            let entries = report.apply.journal.total();
            assert!(entries > 0);
            assert!(
                entries < node_count / 100,
                "journal entries ({entries}) must not scale with the document ({node_count} nodes)"
            );
        }
    }
    assert!(session.document().deep_eq(oracle.document()));
    assert!(session.labeling().deep_eq(oracle.labeling()));
    session.assert_consistent();
}
