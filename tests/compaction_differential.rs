//! Compaction differential verification: seeded churn workloads on both
//! backends ([`Executor`] and a 2-shard [`ShardedExecutor`]), then
//! `compact()` — the renumbering must be **invisible in content and visible
//! only in identifiers**:
//!
//! * the canonical serialization before and after compaction is identical,
//!   the Table-1 predicates answer like a fresh labeling assignment, and
//!   `assert_consistent` holds at every layer while `slab_stats` reports
//!   zero dead slots, zero spill entries and the bumped epoch;
//! * submissions admitted before the epoch bump are fenced with the stable
//!   `XPUL-E10` code (withdrawing them un-wedges the session);
//! * durably, the epoch record commits through the WAL: `Durable::open`
//!   recovers the compacted session bit-identically and `read_at`
//!   materialises every version on both sides of the epoch boundary;
//! * a fault injected during compaction (sink failure, torn WAL append)
//!   leaves session *and* store on the pre-compaction version — compaction
//!   is atomic at the epoch-record commit point;
//! * the ingest pipeline auto-compacts at a round boundary without poisoning
//!   in-flight tickets, and keeps accepting work under the new epoch.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use workload::pulgen::generate_pul;
use workload::{PulGenConfig, XmarkConfig};
use xlabel::Labeling;
use xmlpul::prelude::*;
use xmlpul::{fault_site as site, Durable, DurableBackend, DurableOptions};

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xmlpul_compact_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Options that never checkpoint or compact on their own.
fn quiet_opts() -> DurableOptions {
    DurableOptions {
        checkpoint_wal_bytes: u64::MAX,
        checkpoint_dead_ratio: f64::INFINITY,
        ..DurableOptions::default()
    }
}

/// Asserts two labelings answer every Table-1 predicate identically on every
/// node pair of `doc` (order keys may differ, the relations may not).
fn assert_table1_equivalent(doc: &xdm::Document, got: &Labeling, fresh: &Labeling, ctx: &str) {
    let nodes = doc.preorder_from_root();
    assert_eq!(got.len(), fresh.len(), "{ctx}: labeled population");
    for &a in &nodes {
        for &b in &nodes {
            assert_eq!(got.precedes(a, b), fresh.precedes(a, b), "{ctx}: precedes({a},{b})");
            assert_eq!(got.is_child(a, b), fresh.is_child(a, b), "{ctx}: child({a},{b})");
            assert_eq!(got.is_attribute(a, b), fresh.is_attribute(a, b), "{ctx}: attr({a},{b})");
            assert_eq!(got.is_descendant(a, b), fresh.is_descendant(a, b), "{ctx}: desc({a},{b})");
            assert_eq!(
                got.is_left_sibling(a, b),
                fresh.is_left_sibling(a, b),
                "{ctx}: leftsib({a},{b})"
            );
            assert_eq!(
                got.is_first_child(a, b),
                fresh.is_first_child(a, b),
                "{ctx}: first({a},{b})"
            );
            assert_eq!(got.is_last_child(a, b), fresh.is_last_child(a, b), "{ctx}: last({a},{b})");
            assert_eq!(
                got.is_descendant_not_attr(a, b),
                fresh.is_descendant_not_attr(a, b),
                "{ctx}: nda({a},{b})"
            );
        }
    }
}

/// What the differential needs from a backend, over and above
/// [`DurableBackend`].
trait CompactBackend: DurableBackend + Clone {
    const TAG: &'static str;
    fn from_doc(doc: Document) -> Self;
    fn submit_pul(&mut self, pul: Pul) -> SubmissionId;
    fn resolve_round(&self) -> Result<()>;
    fn commit_round(&mut self) -> Result<u64>;
    fn withdraw_sub(&mut self, id: SubmissionId) -> Result<Pul>;
    fn run_compact(&mut self) -> Result<CompactionReport>;
    fn cur_epoch(&self) -> u64;
    fn stats(&self) -> SessionSlabStats;
    fn xml(&self) -> String;
    fn check_consistent(&self);
    /// Bit-identical state: same arena entries, identifiers and labels.
    fn assert_deep_eq(&self, other: &Self, ctx: &str);
    /// The live labeling answers Table 1 like a fresh assignment would.
    fn check_table1(&self, ctx: &str);
}

impl CompactBackend for Executor {
    const TAG: &'static str = "exec";
    fn from_doc(doc: Document) -> Self {
        Executor::new(doc)
    }
    fn submit_pul(&mut self, pul: Pul) -> SubmissionId {
        self.submit(pul)
    }
    fn resolve_round(&self) -> Result<()> {
        self.resolve().map(|_| ())
    }
    fn commit_round(&mut self) -> Result<u64> {
        self.commit().map(|r| r.version)
    }
    fn withdraw_sub(&mut self, id: SubmissionId) -> Result<Pul> {
        self.withdraw(id)
    }
    fn run_compact(&mut self) -> Result<CompactionReport> {
        self.compact()
    }
    fn cur_epoch(&self) -> u64 {
        self.epoch()
    }
    fn stats(&self) -> SessionSlabStats {
        self.slab_stats()
    }
    fn xml(&self) -> String {
        self.serialize()
    }
    fn check_consistent(&self) {
        self.assert_consistent();
    }
    fn assert_deep_eq(&self, other: &Self, ctx: &str) {
        assert_eq!(self.version(), other.version(), "{ctx}: version");
        assert_eq!(self.epoch(), other.epoch(), "{ctx}: epoch");
        assert!(self.document().deep_eq(other.document()), "{ctx}: document");
        assert!(self.labeling().deep_eq(other.labeling()), "{ctx}: labeling");
    }
    fn check_table1(&self, ctx: &str) {
        let fresh = Labeling::assign(self.document());
        assert_table1_equivalent(self.document(), self.labeling(), &fresh, ctx);
    }
}

impl CompactBackend for ShardedExecutor {
    const TAG: &'static str = "shard";
    fn from_doc(doc: Document) -> Self {
        let xml = xdm::writer::write_document(&doc);
        ShardedExecutor::parse(&xml, 2).expect("shardable differential document")
    }
    fn submit_pul(&mut self, pul: Pul) -> SubmissionId {
        self.submit(pul)
    }
    fn resolve_round(&self) -> Result<()> {
        self.resolve().map(|_| ())
    }
    fn commit_round(&mut self) -> Result<u64> {
        self.commit().map(|r| r.version)
    }
    fn withdraw_sub(&mut self, id: SubmissionId) -> Result<Pul> {
        self.withdraw(id)
    }
    fn run_compact(&mut self) -> Result<CompactionReport> {
        self.compact()
    }
    fn cur_epoch(&self) -> u64 {
        self.epoch()
    }
    fn stats(&self) -> SessionSlabStats {
        self.slab_stats()
    }
    fn xml(&self) -> String {
        self.serialize()
    }
    fn check_consistent(&self) {
        self.assert_consistent();
    }
    fn assert_deep_eq(&self, other: &Self, ctx: &str) {
        assert_eq!(self.version(), other.version(), "{ctx}: version");
        assert_eq!(self.epoch(), other.epoch(), "{ctx}: epoch");
        assert_eq!(self.shard_count(), other.shard_count(), "{ctx}: shard count");
        for k in 0..self.shard_count() {
            assert!(
                self.shard(k).document().deep_eq(other.shard(k).document()),
                "{ctx}: shard {k} document"
            );
            assert!(
                self.shard(k).labeling().deep_eq(other.shard(k).labeling()),
                "{ctx}: shard {k} labeling"
            );
        }
    }
    fn check_table1(&self, ctx: &str) {
        for k in 0..self.shard_count() {
            let doc = self.shard(k).document();
            let fresh = Labeling::assign(doc);
            assert_table1_equivalent(
                doc,
                self.shard(k).labeling(),
                &fresh,
                &format!("{ctx}: shard {k}"),
            );
        }
    }
}

/// Commits `rounds` generated PULs against `backend` and an oracle
/// [`Executor`] kept in lockstep (the generator always sees the current
/// document whatever the backend under test is). Both sides must agree on
/// every accept/reject decision.
fn churn<B: CompactBackend>(backend: &mut B, oracle: &mut Executor, seed: u64, rounds: usize) {
    let mut round = 0usize;
    let mut attempts = 0usize;
    while round < rounds && attempts < rounds * 4 {
        attempts += 1;
        let pul = generate_pul(
            oracle.document(),
            oracle.labeling(),
            &PulGenConfig {
                n_ops: 4,
                reducible_ratio: 0.2,
                content_id_base: oracle.document().next_id() + 50_000 * (attempts as u64 + 1),
                seed: seed.wrapping_mul(613).wrapping_add(attempts as u64),
            },
        );
        oracle.submit(pul.clone());
        let oracle_ok = oracle.commit().is_ok();
        backend.submit_pul(pul);
        match backend.commit_round() {
            Ok(_) => {
                assert!(oracle_ok, "seed {seed}: backend committed what the oracle rejected");
                round += 1;
            }
            Err(_) => {
                assert!(!oracle_ok, "seed {seed}: backend rejected what the oracle committed");
            }
        }
    }
    assert!(round > 0, "seed {seed}: no PUL committed in {attempts} attempts");
}

fn seed_doc(seed: u64) -> Document {
    workload::generate_xmark(&XmarkConfig {
        target_nodes: 48 + (seed as usize % 4) * 14,
        seed: seed.wrapping_mul(131).wrapping_add(7),
    })
}

/// Churn, compact, and check the renumbering is invisible: same
/// serialization, Table-1-equivalent labeling, dense slabs, bumped epoch —
/// then keep committing under the new epoch.
fn structural_identity_case<B: CompactBackend>(seed: u64) {
    let ctx = format!("{} seed {seed}", B::TAG);
    let doc = seed_doc(seed);
    let mut oracle = Executor::new(doc.clone());
    let mut backend = B::from_doc(doc);
    churn(&mut backend, &mut oracle, seed, 6);

    let before_xml = backend.xml();
    let before_version = backend.backend_version();
    let before = backend.stats();
    assert!(before.nodes.dead > 0, "{ctx}: churn must strand dead slots: {before:?}");
    assert!(backend.reclaimable_dead_ratio() > 0.0, "{ctx}: churn dead is reclaimable");
    assert_eq!(before.epoch, 0, "{ctx}: epoch starts at zero");

    let report = backend.run_compact().unwrap_or_else(|e| panic!("{ctx}: compact: {e}"));
    assert_eq!(report.epoch, 1, "{ctx}: first compaction opens epoch 1");
    assert_eq!(report.version, before_version + 1, "{ctx}: compaction commits a version");
    assert_eq!(report.before.nodes.dead, before.nodes.dead, "{ctx}: report.before");
    // A fresh construction from the compacted content is the densest layout
    // this backend can represent (0 dead for a single executor; the sharded
    // partition keeps its structural gaps). Compaction must reach it.
    let pristine = B::from_doc(xdm::parser::parse_document(&before_xml).unwrap()).stats();
    assert_eq!(report.after.nodes.dead, pristine.nodes.dead, "{ctx}: dense node arena");
    assert_eq!(report.after.nodes.spill, pristine.nodes.spill, "{ctx}: node spill");
    assert_eq!(report.after.labels.dead, pristine.labels.dead, "{ctx}: dense labeling");
    assert_eq!(report.after.labels.spill, pristine.labels.spill, "{ctx}: label spill");
    assert_eq!(pristine.nodes.spill, 0, "{ctx}: pristine layout spills nodes");
    assert_eq!(pristine.labels.spill, 0, "{ctx}: pristine layout spills labels");

    assert_eq!(backend.xml(), before_xml, "{ctx}: compaction changed the document");
    assert_eq!(backend.cur_epoch(), 1, "{ctx}: session epoch");
    let after = backend.stats();
    assert_eq!(after.epoch, 1, "{ctx}: slab_stats reports the epoch");
    assert_eq!(after.nodes.dead, pristine.nodes.dead, "{ctx}: slab_stats dead");
    assert_eq!(backend.reclaimable_dead_ratio(), 0.0, "{ctx}: reclaimable ratio resets");
    backend.check_consistent();
    backend.check_table1(&ctx);

    // Compacting a dense session is a no-op renumbering: still identical.
    let again = backend.run_compact().unwrap_or_else(|e| panic!("{ctx}: recompact: {e}"));
    assert_eq!(again.epoch, 2, "{ctx}: epochs are monotone");
    assert_eq!(again.before.nodes.dead, pristine.nodes.dead, "{ctx}: nothing left to reclaim");
    assert_eq!(backend.xml(), before_xml, "{ctx}: idempotent content");

    // The session keeps working under the new epoch; the oracle compacts in
    // lockstep so generated identifiers keep lining up.
    oracle.compact().unwrap();
    oracle.compact().unwrap();
    churn(&mut backend, &mut oracle, seed.wrapping_add(9), 3);
    assert_eq!(backend.xml(), oracle.serialize(), "{ctx}: post-epoch commits diverged");
    backend.check_consistent();
}

#[test]
fn compaction_preserves_structure_after_seeded_churn() {
    for seed in 0..3 {
        structural_identity_case::<Executor>(seed);
        structural_identity_case::<ShardedExecutor>(seed);
    }
}

/// Submissions admitted before `compact()` are fenced with `XPUL-E10`;
/// withdrawing them un-wedges the session for current-epoch work.
fn fencing_case<B: CompactBackend>() {
    let ctx = format!("{} fencing", B::TAG);
    let doc = seed_doc(11);
    let mut oracle = Executor::new(doc.clone());
    let mut backend = B::from_doc(doc);

    let stale_pul = generate_pul(
        oracle.document(),
        oracle.labeling(),
        &PulGenConfig {
            n_ops: 3,
            reducible_ratio: 0.0,
            content_id_base: oracle.document().next_id() + 50_000,
            seed: 23,
        },
    );
    let stale = backend.submit_pul(stale_pul);
    backend.run_compact().unwrap_or_else(|e| panic!("{ctx}: compact: {e}"));
    oracle.compact().unwrap();

    let err = backend.resolve_round().unwrap_err();
    assert_eq!(err.code(), "XPUL-E10", "{ctx}: resolve must fence: {err}");
    let err = backend.commit_round().unwrap_err();
    assert_eq!(err.code(), "XPUL-E10", "{ctx}: commit must fence: {err}");

    // The fenced producer re-syncs: withdraw, regenerate against the
    // compacted document, resubmit under the current epoch.
    backend.withdraw_sub(stale).unwrap_or_else(|e| panic!("{ctx}: withdraw: {e}"));
    churn(&mut backend, &mut oracle, 37, 2);
    assert_eq!(backend.xml(), oracle.serialize(), "{ctx}: post-fence commits diverged");
}

#[test]
fn pre_epoch_submissions_fail_with_e10() {
    fencing_case::<Executor>();
    fencing_case::<ShardedExecutor>();
}

/// Commits `rounds` PULs durably, recording `(version, clone, xml)` after
/// every successful commit.
fn durable_churn<B: CompactBackend>(
    durable: &mut Durable<B>,
    oracle: &mut Executor,
    seed: u64,
    rounds: usize,
    history: &mut Vec<(u64, B, String)>,
) {
    let mut round = 0usize;
    let mut attempts = 0usize;
    while round < rounds && attempts < rounds * 4 {
        attempts += 1;
        let pul = generate_pul(
            oracle.document(),
            oracle.labeling(),
            &PulGenConfig {
                n_ops: 4,
                reducible_ratio: 0.2,
                content_id_base: oracle.document().next_id() + 50_000 * (attempts as u64 + 1),
                seed: seed.wrapping_mul(613).wrapping_add(attempts as u64),
            },
        );
        oracle.submit(pul.clone());
        let oracle_ok = oracle.commit().is_ok();
        durable.submit_pul(pul);
        match durable.commit_round() {
            Ok(version) => {
                assert!(oracle_ok, "seed {seed}: backend committed what the oracle rejected");
                history.push((version, durable.backend().clone(), durable.xml()));
                round += 1;
            }
            Err(_) => {
                assert!(!oracle_ok, "seed {seed}: backend rejected what the oracle committed");
            }
        }
    }
    assert!(round > 0, "seed {seed}: no PUL committed in {attempts} attempts");
}

/// Durable compaction: the epoch record commits through the WAL, reopen
/// recovers the compacted session bit-identically, and `read_at` works on
/// both sides of the epoch boundary.
fn durable_epoch_case<B: CompactBackend>(seed: u64) {
    let ctx = format!("{} durable seed {seed}", B::TAG);
    let root = tmp_root(&format!("dur_{}_{seed}", B::TAG));
    let store_dir = root.join("store");
    let doc = seed_doc(seed);
    let mut oracle = Executor::new(doc.clone());
    let mut durable = Durable::create(&store_dir, B::from_doc(doc), quiet_opts()).unwrap();
    let mut history: Vec<(u64, B, String)> = Vec::new();

    durable_churn(&mut durable, &mut oracle, seed, 4, &mut history);

    let report = durable.compact().unwrap_or_else(|e| panic!("{ctx}: compact: {e}"));
    assert_eq!(report.epoch, 1, "{ctx}: epoch");
    history.push((report.version, durable.backend().clone(), durable.xml()));
    oracle.compact().unwrap();

    durable_churn(&mut durable, &mut oracle, seed.wrapping_add(1), 3, &mut history);

    let live = durable.backend().clone();
    drop(durable);

    let reopened: Durable<B> = Durable::open(&store_dir, quiet_opts())
        .unwrap_or_else(|e| panic!("{ctx}: reopen across the epoch record: {e}"));
    reopened.backend().assert_deep_eq(&live, &format!("{ctx}: reopen"));
    assert_eq!(reopened.backend().cur_epoch(), 1, "{ctx}: epoch survives recovery");
    reopened.backend().check_consistent();

    // Point-in-time reads materialise every version, pre- and post-epoch —
    // through the full restore (`restore_at`) and the pinned snapshot
    // (`read_at`), which must agree.
    for (version, reference, xml) in &history {
        let at = reopened
            .restore_at(*version)
            .unwrap_or_else(|e| panic!("{ctx}: restore_at({version}): {e}"));
        assert_eq!(&at.xml(), xml, "{ctx}: restore_at({version}) serialization");
        at.assert_deep_eq(reference, &format!("{ctx}: restore_at({version})"));
        at.check_consistent();
        let snap =
            reopened.read_at(*version).unwrap_or_else(|e| panic!("{ctx}: read_at({version}): {e}"));
        assert_eq!(&snap.serialize(), xml, "{ctx}: read_at({version}) snapshot serialization");
        snap.assert_consistent();
    }

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn durable_open_and_read_at_recover_across_the_epoch_record() {
    for seed in 0..2 {
        durable_epoch_case::<Executor>(seed);
        durable_epoch_case::<ShardedExecutor>(seed);
    }
}

/// Auto-compaction: with a low `compact_dead_ratio`, the maintenance loop
/// (`commit_durable`) compacts on its own once churn strands enough dead
/// slots, and the dead ratio returns below the trigger threshold.
fn auto_compaction_case<B: CompactBackend>(seed: u64) {
    let ctx = format!("{} auto seed {seed}", B::TAG);
    let threshold = 0.05;
    let root = tmp_root(&format!("auto_{}_{seed}", B::TAG));
    let store_dir = root.join("store");
    let doc = seed_doc(seed);
    let mut oracle = Executor::new(doc.clone());
    let mut durable = Durable::create(
        &store_dir,
        B::from_doc(doc),
        DurableOptions { compact_dead_ratio: threshold, ..quiet_opts() },
    )
    .unwrap();

    let mut attempts = 0u64;
    while durable.backend().cur_epoch() == 0 && attempts < 64 {
        attempts += 1;
        let pul = generate_pul(
            oracle.document(),
            oracle.labeling(),
            &PulGenConfig {
                n_ops: 4,
                reducible_ratio: 0.2,
                content_id_base: oracle.document().next_id() + 50_000 * (attempts + 1),
                seed: seed.wrapping_mul(977).wrapping_add(attempts),
            },
        );
        oracle.submit(pul.clone());
        let oracle_ok = oracle.commit().is_ok();
        durable.submit_pul(pul);
        match durable.commit_durable() {
            Ok(_) => assert!(oracle_ok, "{ctx}: backend committed what the oracle rejected"),
            Err(_) => {
                assert!(!oracle_ok, "{ctx}: backend rejected what the oracle committed");
                continue;
            }
        }
        // Mirror an auto-compaction into the oracle so generated identifiers
        // keep lining up with the renumbered backend.
        if durable.backend().cur_epoch() > oracle.epoch() {
            oracle.compact().unwrap();
        }
    }
    assert!(
        durable.backend().cur_epoch() >= 1,
        "{ctx}: auto-compaction never fired in {attempts} commits"
    );
    let ratio = durable.backend().reclaimable_dead_ratio();
    assert!(ratio < threshold, "{ctx}: dead ratio must fall back below the trigger: {ratio}");
    assert_eq!(durable.xml(), oracle.serialize(), "{ctx}: content diverged");
    durable.backend().check_consistent();

    let live = durable.backend().clone();
    drop(durable);
    let reopened: Durable<B> =
        Durable::open(&store_dir, quiet_opts()).unwrap_or_else(|e| panic!("{ctx}: reopen: {e}"));
    reopened.backend().assert_deep_eq(&live, &format!("{ctx}: reopen"));
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn auto_compaction_brings_dead_ratio_back_below_threshold() {
    auto_compaction_case::<Executor>(3);
    auto_compaction_case::<ShardedExecutor>(3);
}

/// A fault injected during compaction leaves session and store on the
/// pre-compaction version; recovery and a later fault-free compaction both
/// work.
fn faulted_compaction_case<B: CompactBackend>(fault_site: &'static str, kind: FaultKind) {
    let ctx = format!("{} fault {fault_site:?}/{kind:?}", B::TAG);
    let root = tmp_root(&format!("fault_{}_{}", B::TAG, fault_site.replace('.', "_")));
    let store_dir = root.join("store");
    let doc = seed_doc(5);
    let mut oracle = Executor::new(doc.clone());
    let mut durable = Durable::create(&store_dir, B::from_doc(doc), quiet_opts()).unwrap();
    let mut history: Vec<(u64, B, String)> = Vec::new();
    durable_churn(&mut durable, &mut oracle, 5, 3, &mut history);

    let pre = durable.backend().clone();
    durable.inject_faults(FaultPlan::new(7).fail(fault_site, Trigger::Nth(1), kind).arm());
    let err = durable.compact().unwrap_err();
    assert!(err.code().starts_with("XPUL-"), "{ctx}: unstable failure code: {err}");
    durable.backend().assert_deep_eq(&pre, &format!("{ctx}: session after failed compact"));
    assert_eq!(durable.backend().cur_epoch(), 0, "{ctx}: epoch unchanged");
    durable.backend().check_consistent();

    // The store never saw a complete epoch record: reopening lands on the
    // pre-compaction version bit-identically (healing any torn tail).
    drop(durable);
    let mut reopened: Durable<B> = Durable::open(&store_dir, quiet_opts())
        .unwrap_or_else(|e| panic!("{ctx}: reopen after failed compact: {e}"));
    reopened.backend().assert_deep_eq(&pre, &format!("{ctx}: store after failed compact"));

    // With the fault gone, compaction succeeds and survives another reopen.
    let report = reopened.compact().unwrap_or_else(|e| panic!("{ctx}: retry compact: {e}"));
    assert_eq!(report.epoch, 1, "{ctx}: epoch after retried compaction");
    let live = reopened.backend().clone();
    drop(reopened);
    let recovered: Durable<B> = Durable::open(&store_dir, quiet_opts())
        .unwrap_or_else(|e| panic!("{ctx}: reopen after retried compact: {e}"));
    recovered.backend().assert_deep_eq(&live, &format!("{ctx}: final reopen"));
    assert_eq!(recovered.backend().cur_epoch(), 1, "{ctx}: epoch recovered");
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn fault_during_compaction_leaves_the_pre_compaction_version() {
    faulted_compaction_case::<Executor>(site::SINK_COMMIT, FaultKind::Permanent);
    faulted_compaction_case::<Executor>(site::WAL_APPEND, FaultKind::Torn);
    faulted_compaction_case::<ShardedExecutor>(site::SINK_COMMIT, FaultKind::Permanent);
    faulted_compaction_case::<ShardedExecutor>(site::WAL_APPEND, FaultKind::Torn);
}

/// Ingest auto-compaction at a round boundary: every in-flight ticket
/// settles, the epoch bumps between rounds, and the queue keeps accepting
/// work generated against the compacted document.
#[test]
fn ingest_compacts_at_round_boundaries_without_poisoning_tickets() {
    let ctx = "ingest round-boundary compaction";
    let root = tmp_root("ingest");
    let store_dir = root.join("store");
    let doc = seed_doc(13);
    // Content oracle: the same ingest pipeline over a plain executor with
    // compaction out of the picture. Coalesced resolution of overlapping
    // PULs is order-sensitive, so the reference must go through the same
    // drainer — only then does "compaction changed nothing but identifiers"
    // reduce to a serialization comparison.
    let gen_base = Executor::new(doc.clone());
    let mut durable = Durable::create(
        &store_dir,
        Executor::new(doc.clone()),
        DurableOptions { compact_dead_ratio: 0.02, ..quiet_opts() },
    )
    .unwrap();
    durable.inject_faults(Faults::disabled());

    // Round 1: one coalesced batch of churny PULs. The committer compacts
    // after the round commits — the queue must stay healthy through it.
    let config = || IngestConfig {
        flush_threshold: 64,
        tick: Duration::from_secs(3600),
        ..IngestConfig::default()
    };
    let queue = IngestQueue::with_config(durable, config());
    let twin = IngestQueue::with_config(Executor::new(doc), config());
    let mut batch = Vec::new();
    let mut twin_batch = Vec::new();
    for i in 0..6u64 {
        let pul = generate_pul(
            gen_base.document(),
            gen_base.labeling(),
            &PulGenConfig {
                n_ops: 3,
                reducible_ratio: 0.2,
                content_id_base: gen_base.document().next_id() + 50_000 * (i + 1),
                seed: 271 + i,
            },
        );
        batch.push(queue.enqueue(pul.clone()).expect("queue open"));
        twin_batch.push(twin.enqueue(pul).expect("twin open"));
    }
    queue.flush();
    twin.flush();
    for (i, ticket) in batch.iter().enumerate() {
        ticket.wait().unwrap_or_else(|e| panic!("{ctx}: round-1 ticket {i} rejected: {e}"));
    }
    for (i, ticket) in twin_batch.iter().enumerate() {
        ticket.wait().unwrap_or_else(|e| panic!("{ctx}: round-1 twin ticket {i} rejected: {e}"));
    }
    let durable = queue.close().unwrap();
    let twin = twin.close().unwrap();
    // With a 2% trigger the committer may compact after more than one round;
    // what matters is that it fired at a round boundary without wedging.
    assert!(durable.backend().epoch() >= 1, "{ctx}: compaction fired at the round boundary");
    let round1_xml = durable.backend().serialize();
    assert_eq!(round1_xml, twin.serialize(), "{ctx}: round-1 content");
    durable.backend().assert_consistent();

    // Round 2 under the new epoch: producers re-synced to the compacted
    // document are admitted normally — no E10, no wedged queue. A fresh
    // parse of the round-1 serialization assigns the same preorder
    // identifiers the renumbering did, so it doubles as the round-2 oracle.
    let mut resynced = Executor::new(xdm::parser::parse_document(&round1_xml).unwrap());
    let pul = generate_pul(
        resynced.document(),
        resynced.labeling(),
        &PulGenConfig {
            n_ops: 3,
            reducible_ratio: 0.0,
            content_id_base: resynced.document().next_id() + 900_000,
            seed: 941,
        },
    );
    let queue = IngestQueue::with_config(durable, config());
    let ticket = queue.enqueue(pul.clone()).expect("queue open");
    resynced.submit(pul);
    resynced.commit().unwrap();
    queue.flush();
    ticket.wait().unwrap_or_else(|e| panic!("{ctx}: post-epoch ticket rejected: {e}"));
    let durable = queue.close().unwrap();
    assert_eq!(durable.backend().serialize(), resynced.serialize(), "{ctx}: round-2 content");

    // And the whole run — commits, epoch record, more commits — recovers.
    let live = durable.backend().clone();
    drop(durable);
    let reopened: Durable<Executor> = Durable::open(&store_dir, quiet_opts()).unwrap();
    reopened.backend().assert_deep_eq(&live, &format!("{ctx}: reopen"));
    fs::remove_dir_all(&root).unwrap();
}

/// Thousands of commits through auto-compaction: the long-haul churn sweep,
/// run nightly with `--ignored`.
#[test]
#[ignore = "churn sweep with thousands of commits; run nightly with --ignored"]
fn churn_sweep_through_auto_compaction() {
    for seed in 0..4u64 {
        let ctx = format!("churn sweep seed {seed}");
        let root = tmp_root(&format!("sweep_{seed}"));
        let store_dir = root.join("store");
        let doc = seed_doc(seed);
        let mut oracle = Executor::new(doc.clone());
        let mut durable = Durable::create(
            &store_dir,
            Executor::new(doc),
            DurableOptions {
                compact_dead_ratio: 0.3,
                checkpoint_wal_bytes: 1 << 20,
                ..DurableOptions::default()
            },
        )
        .unwrap();
        let mut committed = 0u64;
        for attempt in 0..1500u64 {
            let pul = generate_pul(
                oracle.document(),
                oracle.labeling(),
                &PulGenConfig {
                    n_ops: 4,
                    reducible_ratio: 0.2,
                    content_id_base: oracle.document().next_id() + 50_000 * (attempt + 1),
                    seed: seed.wrapping_mul(613).wrapping_add(attempt),
                },
            );
            oracle.submit(pul.clone());
            let oracle_ok = oracle.commit().is_ok();
            durable.submit_pul(pul);
            match durable.commit_durable() {
                Ok(_) => assert!(oracle_ok, "{ctx}: backend committed what the oracle rejected"),
                Err(_) => {
                    assert!(!oracle_ok, "{ctx}: backend rejected what the oracle committed");
                    continue;
                }
            }
            committed += 1;
            if durable.backend().epoch() > oracle.epoch() {
                oracle.compact().unwrap();
            }
        }
        assert!(committed > 1000, "{ctx}: only {committed} commits landed");
        assert!(
            durable.backend().epoch() >= 2,
            "{ctx}: sustained churn must compact repeatedly (epoch {})",
            durable.backend().epoch()
        );
        assert!(durable.backend().reclaimable_dead_ratio() < 0.3, "{ctx}: dead ratio");
        assert_eq!(durable.serialize(), oracle.serialize(), "{ctx}: content diverged");
        durable.backend().assert_consistent();
        let live = durable.backend().clone();
        drop(durable);
        let reopened: Durable<Executor> =
            Durable::open(&store_dir, DurableOptions::default()).unwrap();
        assert_eq!(reopened.backend().version(), live.version(), "{ctx}: recovered version");
        assert!(reopened.backend().document().deep_eq(live.document()), "{ctx}: recovered doc");
        fs::remove_dir_all(&root).unwrap();
    }
}
