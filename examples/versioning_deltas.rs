//! Document versioning (§1): versions are stored as deltas (PULs) over the
//! original document. Dropping intermediate versions amounts to submitting
//! the consecutive deltas as one *sequence* — the session aggregates them and
//! the reduction gives a compact, deterministic combined delta.
//!
//! Run with `cargo run --example versioning_deltas`.

use xmlpul::prelude::*;
use xmlpul::xdm::parser::parse_fragment_with_first_id;

fn main() {
    let mut archive = Executor::parse(
        "<article status=\"draft\"><title>PUL reasoning</title>\
         <abstract>TODO</abstract><body><sec>Intro</sec></body></article>",
    )
    .expect("well-formed document")
    .reduction(ReductionStrategy::Deterministic)
    .apply_options(ApplyOptions::producer());
    let v0 = archive.document().clone();
    let title = v0.find_element("title").unwrap();
    let abstract_el = v0.find_element("abstract").unwrap();
    let abstract_text = v0.children(abstract_el).unwrap()[0];
    let body = v0.find_element("body").unwrap();
    let status = v0.attribute_by_name(v0.root().unwrap(), "status").unwrap().unwrap();

    // Each revision is a delta (a PUL) over the previous version.
    let delta1 = archive.pul_from_ops(vec![
        UpdateOp::replace_value(abstract_text, "We study reduction, integration and aggregation."),
        UpdateOp::ins_last(
            body,
            vec![parse_fragment_with_first_id("<sec>Reduction</sec>", 100).unwrap()],
        ),
    ]);
    let delta2 = archive.pul_from_ops(vec![
        UpdateOp::ins_last(
            body,
            vec![parse_fragment_with_first_id("<sec>Integration</sec>", 110).unwrap()],
        ),
        UpdateOp::rename(title, "heading"),
    ]);
    let delta3 = archive.pul_from_ops(vec![
        UpdateOp::ins_last(
            body,
            vec![parse_fragment_with_first_id("<sec>Aggregation</sec>", 120).unwrap()],
        ),
        UpdateOp::replace_value(status, "camera-ready"),
        UpdateOp::rename(title, "name"),
    ]);

    // Keeping every version means keeping every delta. To drop the
    // intermediate versions v1 and v2, the archive submits the deltas as one
    // sequence: the session aggregates them (Def. 13) and its deterministic
    // reduction yields the compact combined delta v0→v3.
    let deltas = vec![delta1, delta2, delta3];
    archive.submit_sequence(&deltas).expect("aggregable deltas");
    let resolution = archive.resolve().expect("solvable");
    println!(
        "three deltas with {} operations in total",
        deltas.iter().map(|d| d.len()).sum::<usize>()
    );
    println!(
        "single combined delta v0→v3 ({} operations):\n  {}\n",
        resolution.resolved_ops(),
        resolution.pul()
    );

    // Applying the combined delta to v0 yields exactly v3.
    let mut direct = Executor::new(v0)
        .reduction(ReductionStrategy::None)
        .apply_options(ApplyOptions::producer());
    for d in &deltas {
        direct.submit(d.clone());
        direct.commit().expect("applicable delta");
    }
    archive.commit_resolution(resolution).expect("applicable delta");
    assert_eq!(
        pul::obtainable::canonical_string(direct.document()),
        pul::obtainable::canonical_string(archive.document())
    );
    println!("v0 + combined delta == v3 ✓ (archive at v{})", archive.version());
    println!("v3:\n  {}", archive.serialize());
}
