//! Document versioning (§1): versions are stored as deltas (PULs) over the
//! original document. Dropping intermediate versions amounts to aggregating
//! consecutive deltas; the reduction gives a compact, deterministic delta.
//!
//! Run with `cargo run --example versioning_deltas`.

use xmlpul::prelude::*;
use xmlpul::xdm::parser::parse_fragment_with_first_id;

fn main() {
    let v0 = xdm::parser::parse_document(
        "<article status=\"draft\"><title>PUL reasoning</title>\
         <abstract>TODO</abstract><body><sec>Intro</sec></body></article>",
    )
    .expect("well-formed document");
    let labels = Labeling::assign(&v0);
    let title = v0.find_element("title").unwrap();
    let abstract_el = v0.find_element("abstract").unwrap();
    let abstract_text = v0.children(abstract_el).unwrap()[0];
    let body = v0.find_element("body").unwrap();
    let status = v0.attribute_by_name(v0.root().unwrap(), "status").unwrap().unwrap();

    // Each revision is a delta (a PUL) over the previous version.
    let delta1 = Pul::from_ops(
        vec![
            UpdateOp::replace_value(abstract_text, "We study reduction, integration and aggregation."),
            UpdateOp::ins_last(body, vec![parse_fragment_with_first_id("<sec>Reduction</sec>", 100).unwrap()]),
        ],
        &labels,
    );
    let delta2 = Pul::from_ops(
        vec![
            UpdateOp::ins_last(body, vec![parse_fragment_with_first_id("<sec>Integration</sec>", 110).unwrap()]),
            UpdateOp::rename(title, "heading"),
        ],
        &labels,
    );
    let delta3 = Pul::from_ops(
        vec![
            UpdateOp::ins_last(body, vec![parse_fragment_with_first_id("<sec>Aggregation</sec>", 120).unwrap()]),
            UpdateOp::replace_value(status, "camera-ready"),
            UpdateOp::rename(title, "name"),
        ],
        &labels,
    );

    // Keeping every version means keeping every delta. To drop the
    // intermediate versions v1 and v2, the archive aggregates the deltas.
    let deltas = vec![delta1, delta2, delta3];
    let combined = aggregate(&deltas).expect("aggregable deltas");
    let compact = deterministic_reduce(&combined);
    println!("three deltas with {} operations in total", deltas.iter().map(|d| d.len()).sum::<usize>());
    println!("single combined delta v0→v3 ({} operations):\n  {compact}\n", compact.len());

    // Applying the combined delta to v0 yields exactly v3.
    let mut v3_direct = v0.clone();
    for d in &deltas {
        apply_pul(&mut v3_direct, d, &ApplyOptions::producer()).expect("applicable delta");
    }
    let mut v3_from_combined = v0.clone();
    apply_pul(&mut v3_from_combined, &compact, &ApplyOptions::producer()).expect("applicable delta");
    assert_eq!(
        pul::obtainable::canonical_string(&v3_direct),
        pul::obtainable::canonical_string(&v3_from_combined)
    );
    println!("v0 + combined delta == v3 ✓\n");
    println!("v3:\n  {}", xdm::writer::write_document(&v3_from_combined));
}
