//! Document versioning (§1), made durable: versions are stored as deltas
//! (PULs) over the original document. A [`Durable`] session appends each
//! committed delta to a write-ahead log before the version fence advances, so
//! every version survives a crash, and `read_at(version)` materialises any
//! past version by restoring the nearest checkpoint and replaying deltas
//! forward. Dropping intermediate versions still amounts to submitting the
//! consecutive deltas as one *sequence* — the session aggregates them and the
//! reduction gives a compact, deterministic combined delta.
//!
//! Run with `cargo run --example versioning_deltas`.

use xmlpul::prelude::*;
use xmlpul::xdm::parser::parse_fragment_with_first_id;

fn main() {
    let dir = std::env::temp_dir().join("xmlpul_versioning_deltas");
    let _ = std::fs::remove_dir_all(&dir);

    let archive = Executor::parse(
        "<article status=\"draft\"><title>PUL reasoning</title>\
         <abstract>TODO</abstract><body><sec>Intro</sec></body></article>",
    )
    .expect("well-formed document")
    .reduction(ReductionStrategy::Deterministic)
    .apply_options(ApplyOptions::producer());

    // Opening the archive durably writes a base checkpoint of v0; from here
    // on every committed delta reaches the log before the commit reports.
    let mut archive =
        Durable::create(&dir, archive, DurableOptions::default()).expect("fresh store");

    // Each revision is a delta (a PUL) over the previous version.
    let doc = archive.document();
    let title = doc.find_element("title").unwrap();
    let abstract_el = doc.find_element("abstract").unwrap();
    let abstract_text = doc.children(abstract_el).unwrap()[0];
    let body = doc.find_element("body").unwrap();
    let status = doc.attribute_by_name(doc.root().unwrap(), "status").unwrap().unwrap();

    let delta1 = archive.pul_from_ops(vec![
        UpdateOp::replace_value(abstract_text, "We study reduction, integration and aggregation."),
        UpdateOp::ins_last(
            body,
            vec![parse_fragment_with_first_id("<sec>Reduction</sec>", 100).unwrap()],
        ),
    ]);
    let delta2 = archive.pul_from_ops(vec![
        UpdateOp::ins_last(
            body,
            vec![parse_fragment_with_first_id("<sec>Integration</sec>", 110).unwrap()],
        ),
        UpdateOp::rename(title, "heading"),
    ]);
    let delta3 = archive.pul_from_ops(vec![
        UpdateOp::ins_last(
            body,
            vec![parse_fragment_with_first_id("<sec>Aggregation</sec>", 120).unwrap()],
        ),
        UpdateOp::replace_value(status, "camera-ready"),
        UpdateOp::rename(title, "name"),
    ]);
    let deltas = vec![delta1, delta2, delta3];

    // Committing one delta per version gives the archive versions 1..=3, each
    // logged as one WAL record.
    for d in &deltas {
        archive.submit(d.clone());
        archive.commit().expect("applicable delta");
    }
    println!(
        "archive at v{}, WAL holds {} bytes of deltas\n",
        archive.version(),
        archive.wal_bytes()
    );

    // Point-in-time reads: any committed version materialises on demand.
    for v in 0..=archive.version() {
        let at = archive.read_at(v).expect("retained version");
        println!("read_at({v}):\n  {}", at.serialize());
    }

    // Crash recovery: drop the session without ceremony and reopen the store.
    // The WAL tail replays over the base checkpoint, landing bit-identically
    // on the last durable version.
    let (version, xml) = (archive.version(), archive.serialize());
    drop(archive);
    let archive = Durable::<Executor>::open(&dir, DurableOptions::default()).expect("recovery");
    assert_eq!(archive.version(), version);
    assert_eq!(archive.serialize(), xml);
    println!("\nreopened store recovers v{version} exactly ✓");

    // Dropping the intermediate versions v1 and v2: read v0 back out of the
    // store and submit the deltas as one sequence — the session aggregates
    // them (Def. 13) and its deterministic reduction yields the compact
    // combined delta v0→v3.
    let mut condensed = archive
        .restore_at(0)
        .expect("retained v0")
        .reduction(ReductionStrategy::Deterministic)
        .apply_options(ApplyOptions::producer());
    condensed.submit_sequence(&deltas).expect("aggregable deltas");
    let resolution = condensed.resolve().expect("solvable");
    println!(
        "\nthree deltas with {} operations in total",
        deltas.iter().map(|d| d.len()).sum::<usize>()
    );
    println!(
        "single combined delta v0→v3 ({} operations):\n  {}",
        resolution.resolved_ops(),
        resolution.pul()
    );

    // Applying the combined delta to v0 yields exactly v3.
    condensed.commit_resolution(resolution).expect("applicable delta");
    assert_eq!(
        pul::obtainable::canonical_string(condensed.document()),
        pul::obtainable::canonical_string(archive.document())
    );
    println!("\nv0 + combined delta == v3 ✓ (archive at v{})", archive.version());

    let _ = std::fs::remove_dir_all(&dir);
}
