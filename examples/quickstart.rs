//! Quickstart: produce a PUL with the XQuery Update front-end, ship it as XML,
//! reduce it and make it effective on the document — both in memory and in
//! streaming.
//!
//! Run with `cargo run --example quickstart`.

use xmlpul::prelude::*;

fn main() {
    // The executor holds the authoritative document; identifiers are assigned
    // in document order (the algorithm agreed with all producers, §4.1).
    let doc = xdm::parser::parse_document(
        "<issue volume=\"30\">\
           <paper><title>Database Replication</title><author>A.Chaudhri</author></paper>\
           <paper><title>XML Views</title><authors><author>B.Catania</author></authors></paper>\
         </issue>",
    )
    .expect("well-formed document");
    let labels = Labeling::assign(&doc);

    // A producer evaluates an XQuery Update expression; the result is a PUL.
    let pul = xqupdate::evaluate(
        &doc,
        &labels,
        "insert nodes <author>G.Guerrini</author> as last into /issue/paper[2]/authors, \
         insert nodes initPage=\"132\" into /issue/paper[1], \
         rename node /issue/paper[1]/title as \"heading\", \
         rename node /issue/paper[2]/title as \"heading\", \
         replace value of node /issue/paper[1]/title/text() with \"Database Replication, revisited\", \
         delete nodes /issue/paper[1]/author",
    )
    .unwrap_or_else(|e| panic!("{e}"));
    println!("produced PUL ({} operations):\n  {pul}\n", pul.len());

    // The PUL travels as an XML document.
    let wire = pul::xmlio::pul_to_xml(&pul);
    println!("exchange format ({} bytes):\n  {wire}\n", wire.len());

    // The executor deserializes, reduces and applies it.
    let received = pul::xmlio::pul_from_xml(&wire).expect("valid PUL document");
    let reduced = deterministic_reduce(&received);
    println!("deterministic reduction ({} operations):\n  {reduced}\n", reduced.len());

    let mut updated = doc.clone();
    apply_pul(&mut updated, &reduced, &ApplyOptions::default()).expect("applicable PUL");
    println!("updated document:\n  {}\n", xdm::writer::write_document(&updated));

    // The same PUL can be applied in streaming, without materializing the document.
    let identified = xdm::writer::write_document_identified(&doc);
    let streamed = pul::apply_streaming(&identified, &reduced, doc.next_id() + 1000)
        .expect("applicable PUL");
    let streamed_doc = xdm::parser::parse_document_identified(&streamed).expect("well-formed output");
    assert_eq!(
        pul::obtainable::canonical_string(&updated),
        pul::obtainable::canonical_string(&streamed_doc),
        "in-memory and streaming evaluation coincide"
    );
    println!("streaming evaluation produced the same document ✓");
}
