//! Quickstart: open an [`Executor`] session, produce a PUL with the XQuery
//! Update front-end, ship it as XML, and drive the whole
//! reduce → integrate → reconcile → aggregate → apply pipeline with
//! `submit` / `resolve` / `commit` — both in memory and in streaming.
//!
//! Run with `cargo run --example quickstart`.

use xmlpul::prelude::*;

fn main() {
    // The executor session holds the authoritative document; identifiers are
    // assigned in document order (the algorithm agreed with all producers,
    // §4.1).
    let mut session = Executor::parse(
        "<issue volume=\"30\">\
           <paper><title>Database Replication</title><author>A.Chaudhri</author></paper>\
           <paper><title>XML Views</title><authors><author>B.Catania</author></authors></paper>\
         </issue>",
    )
    .expect("well-formed document")
    .reduction(ReductionStrategy::Deterministic);

    // Arm telemetry: every commit below is counted, timed and journaled.
    // Disabled handles (the default) cost a single branch per probe.
    session.set_telemetry(Telemetry::enabled());

    // A producer evaluates an XQuery Update expression; the result is a PUL.
    let pul = session
        .produce(
            "insert nodes <author>G.Guerrini</author> as last into /issue/paper[2]/authors, \
             insert nodes initPage=\"132\" into /issue/paper[1], \
             rename node /issue/paper[1]/title as \"heading\", \
             rename node /issue/paper[2]/title as \"heading\", \
             replace value of node /issue/paper[1]/title/text() with \"Database Replication, revisited\", \
             delete nodes /issue/paper[1]/author",
        )
        .unwrap_or_else(|e| panic!("{e}"));
    println!("produced PUL ({} operations):\n  {pul}\n", pul.len());

    // The PUL travels as an XML document and enters the session on arrival.
    let wire = pul::xmlio::pul_to_xml(&pul);
    println!("exchange format ({} bytes):\n  {wire}\n", wire.len());
    session.submit_xml(&wire).expect("valid PUL document");

    // The executor reasons on the submissions without touching the document …
    let resolution = session.resolve().expect("solvable session");
    println!(
        "deterministic reduction ({} of {} operations survive):\n  {}\n",
        resolution.resolved_ops(),
        resolution.submitted_ops(),
        resolution.pul()
    );

    // … and a streaming commit makes them effective in one pass over the
    // identified serialization, never materializing the document.
    let mut streamed = Vec::new();
    let identified = session.serialize_identified();
    let mut in_memory = session.clone();
    session.commit_streaming(&mut identified.as_bytes(), &mut streamed).expect("applicable PUL");
    println!("updated document:\n  {}\n", session.serialize());

    // The in-memory commit of the same session state produces the same
    // document.
    in_memory.commit().expect("applicable PUL");
    assert_eq!(
        pul::obtainable::canonical_string(in_memory.document()),
        pul::obtainable::canonical_string(session.document()),
        "in-memory and streaming evaluation coincide"
    );
    assert_eq!(session.version(), 1);
    println!("streaming evaluation produced the same document ✓");

    // The armed telemetry handle saw everything: counters, latency summaries
    // and the structured event journal come out of one snapshot.
    let snapshot = session.telemetry_snapshot();
    let metrics = snapshot.metrics.as_ref().expect("telemetry is armed");
    println!(
        "\ntelemetry: {} commit(s), {} rollback(s), resolve p95 {} ns, \
         reduction cache {} hit(s) / {} miss(es)",
        metrics.commits,
        metrics.rollbacks,
        metrics.resolve_ns.p95,
        snapshot.reduction_cache.hits,
        snapshot.reduction_cache.misses,
    );
    println!("recent events ({} dropped):", snapshot.events_dropped);
    for event in &snapshot.recent_events {
        println!("  #{} {} v{}: {}", event.seq, event.kind.label(), event.version, event.detail);
    }
    println!("\nexposition excerpt:");
    for line in snapshot.render_text().lines().filter(|l| l.contains("xmlpul_commits")) {
        println!("  {line}");
    }
}
