//! Disconnected operation (§1): a client works offline on its copy of the
//! document, producing a *sequence* of PULs. On reconnection it ships the
//! whole sequence; the server aggregates it into a single PUL and applies it
//! in one streaming pass over the authoritative copy.
//!
//! Run with `cargo run --example disconnected_sync`.

use xmlpul::prelude::*;
use xmlpul::workload::xmark::{generate, XmarkConfig};

fn main() {
    // The authoritative document lives on the server (an XMark auction site).
    let server_doc = generate(&XmarkConfig { target_nodes: 5_000, seed: 7 });
    let _labels = Labeling::assign(&server_doc);
    println!(
        "server document: {} nodes, {} bytes serialized",
        server_doc.node_count(),
        xdm::writer::write_document(&server_doc).len()
    );

    // The client checks the document out and works offline: three editing
    // sessions, each producing one PUL evaluated with the XQuery Update
    // front-end against the *local* copy (identifiers of inserted nodes come
    // from the client's identifier space and are preserved locally).
    let mut local = server_doc.clone();
    let mut sessions: Vec<Pul> = Vec::new();
    let scripts = [
        "insert nodes <item id=\"offline-1\"><name>restored gramophone</name></item> \
           as last into /site/regions/europe, \
         rename node /site/categories/category[1]/name as \"label\"",
        "insert nodes <bidder><date>03/03/2003</date><increase>7.50</increase></bidder> \
           as last into /site/open_auctions/open_auction[1], \
         replace value of node /site/people/person[1]/name/text() with \"Offline Olga\"",
        "delete nodes /site/closed_auctions/closed_auction[1], \
         insert nodes verified=\"yes\" into /site/people/person[1]",
    ];
    for (i, script) in scripts.iter().enumerate() {
        let local_labels = Labeling::assign(&local);
        let pul = xqupdate::evaluate(&local, &local_labels, script).expect("valid script");
        // the client applies the PUL locally (keeping the identifiers it assigned)
        apply_pul(&mut local, &pul, &ApplyOptions::producer()).expect("applicable PUL");
        println!("session {}: produced {} operations", i + 1, pul.len());
        sessions.push(pul);
    }

    // On reconnection the sequence is shipped as one XML document …
    let wire = pul::xmlio::puls_to_xml(&sessions);
    println!("shipping {} PULs as {} bytes of XML", sessions.len(), wire.len());

    // … and the server aggregates it into a single PUL (Def. 13) instead of
    // applying each PUL in turn (and re-reading the document three times).
    let received = pul::xmlio::puls_from_xml(&wire).expect("valid PUL list");
    let aggregated = aggregate(&received).expect("aggregable sequence");
    println!(
        "aggregated PUL: {} operations (instead of {} in {} PULs)",
        aggregated.len(),
        received.iter().map(|p| p.len()).sum::<usize>(),
        received.len()
    );

    // One streaming pass over the authoritative copy makes it all effective.
    let identified = xdm::writer::write_document_identified(&server_doc);
    let updated_xml = pul::stream::apply_streaming_with(
        &identified,
        &aggregated,
        server_doc.next_id() + 1_000_000,
        true,
    )
    .expect("applicable PUL");
    let updated = xdm::parser::parse_document_identified(&updated_xml).expect("well-formed output");

    // The server's copy now matches the client's offline copy.
    assert_eq!(
        pul::obtainable::canonical_string(&local),
        pul::obtainable::canonical_string(&updated),
        "server and client converge"
    );
    println!("server and client documents converge ✓");
}
