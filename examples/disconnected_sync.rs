//! Disconnected operation (§1): a client works offline on its copy of the
//! document, producing a *sequence* of PULs. On reconnection it ships the
//! whole sequence; the server session aggregates it into a single PUL and
//! commits it in one streaming pass over the authoritative copy.
//!
//! Run with `cargo run --example disconnected_sync`.

use xmlpul::prelude::*;
use xmlpul::workload::xmark::{generate, XmarkConfig};

fn main() {
    // The authoritative document lives in the server's executor session (an
    // XMark auction site). Identifiers of client-inserted nodes must survive
    // aggregation and streaming, hence the producer apply options.
    let server_doc = generate(&XmarkConfig { target_nodes: 5_000, seed: 7 });
    let mut server = Executor::new(server_doc.clone())
        .reduction(ReductionStrategy::None)
        .apply_options(ApplyOptions::producer());
    println!(
        "server document: {} nodes, {} bytes serialized",
        server.document().node_count(),
        server.serialize().len()
    );

    // The client checks the document out into its own local session and works
    // offline: three editing sessions, each producing one PUL evaluated with
    // the XQuery Update front-end against the *local* copy (identifiers of
    // inserted nodes come from the client's identifier space and are
    // preserved locally by the producer apply options).
    let mut client = Executor::new(server_doc)
        .reduction(ReductionStrategy::None)
        .apply_options(ApplyOptions::producer());
    let mut sessions: Vec<Pul> = Vec::new();
    let scripts = [
        "insert nodes <item id=\"offline-1\"><name>restored gramophone</name></item> \
           as last into /site/regions/europe, \
         rename node /site/categories/category[1]/name as \"label\"",
        "insert nodes <bidder><date>03/03/2003</date><increase>7.50</increase></bidder> \
           as last into /site/open_auctions/open_auction[1], \
         replace value of node /site/people/person[1]/name/text() with \"Offline Olga\"",
        "delete nodes /site/closed_auctions/closed_auction[1], \
         insert nodes verified=\"yes\" into /site/people/person[1]",
    ];
    for (i, script) in scripts.iter().enumerate() {
        let pul = client.produce(script).expect("valid script");
        client.submit(pul.clone());
        client.commit().expect("applicable PUL");
        println!("session {}: produced {} operations", i + 1, pul.len());
        sessions.push(pul);
    }

    // On reconnection the sequence is shipped as one XML document …
    let wire = pul::xmlio::puls_to_xml(&sessions);
    println!("shipping {} PULs as {} bytes of XML", sessions.len(), wire.len());

    // … and the server admits it as ONE submission: the sequence is
    // aggregated into a single PUL (Def. 13) instead of applying each PUL in
    // turn (and re-reading the document three times).
    server.submit_sequence_xml(&wire).expect("valid PUL list");
    let resolution = server.resolve().expect("aggregable sequence");
    println!(
        "aggregated PUL: {} operations (instead of {} in {} PULs)",
        resolution.resolved_ops(),
        sessions.iter().map(|p| p.len()).sum::<usize>(),
        sessions.len()
    );

    // One streaming commit over the authoritative serialization makes it all
    // effective.
    let identified = server.serialize_identified();
    let mut updated = Vec::new();
    server
        .commit_resolution_streaming(resolution, &mut identified.as_bytes(), &mut updated)
        .expect("applicable PUL");

    // The server's copy now matches the client's offline copy.
    assert_eq!(
        pul::obtainable::canonical_string(client.document()),
        pul::obtainable::canonical_string(server.document()),
        "server and client converge"
    );
    println!("server and client documents converge ✓ (server now at v{})", server.version());
}
