//! Collaborative editing (§1): several producers check out the same document
//! and send their PULs back concurrently. The [`IngestQueue`] fronts the
//! executor session: every writer thread enqueues its update and gets a
//! ticket, the queue coalesces independent updates into one commit and
//! serializes contended ones behind each other, and each ticket reports the
//! version its submission landed in.
//!
//! Run with `cargo run --example collaborative_editing`.

use std::thread;

use xmlpul::prelude::*;

fn main() {
    let session = Executor::parse(
        "<report><intro><para>Old intro</para></intro>\
         <methods><para>Old methods</para></methods>\
         <eval><para>Old numbers</para></eval>\
         <summary><para>Contended text</para></summary></report>",
    )
    .expect("well-formed document");
    let doc = session.document();
    let section_text = |name: &str| {
        let section = doc.find_element(name).unwrap();
        let para = doc.children(section).unwrap()[0];
        doc.children(para).unwrap()[0]
    };

    // Three writers edit disjoint sections — independent by label interval —
    // and two more rewrite the same summary paragraph — contended.
    let edits: Vec<(&str, Pul)> = vec![
        ("alice", {
            session.pul_from_ops(vec![UpdateOp::replace_value(
                section_text("intro"),
                "Alice rewrote the introduction.",
            )])
        }),
        ("bob", {
            session.pul_from_ops(vec![UpdateOp::replace_value(
                section_text("methods"),
                "Bob refreshed the methods.",
            )])
        }),
        ("carol", {
            let eval = doc.find_element("eval").unwrap();
            session.pul_from_ops(vec![UpdateOp::ins_last(
                eval,
                vec![Tree::element_with_text("figure", "throughput.png")],
            )])
        }),
        ("dave", {
            session.pul_from_ops(vec![UpdateOp::replace_value(
                section_text("summary"),
                "Dave's summary.",
            )])
        }),
        ("erin", {
            session.pul_from_ops(vec![UpdateOp::replace_value(
                section_text("summary"),
                "Erin's summary, sent last.",
            )])
        }),
    ];

    // One queue, many writer threads: `enqueue` is `&self`, so scoped threads
    // share the queue by reference. Each writer gets its ticket back
    // immediately and waits for the commit on its own.
    let queue = IngestQueue::new(session);
    let outcomes: Vec<(String, Result<TicketOutcome>)> = thread::scope(|scope| {
        let queue = &queue;
        let handles: Vec<_> = edits
            .into_iter()
            .map(|(writer, pul)| {
                scope.spawn(move || {
                    let ticket = queue.enqueue(pul).expect("queue open");
                    (writer.to_string(), ticket.wait())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("writer thread")).collect()
    });
    let session = queue.close().expect("ingest pipeline closed cleanly");

    println!("final document (v{}):\n  {}\n", session.version(), session.serialize());
    for (writer, outcome) in &outcomes {
        match outcome {
            Ok(o) => println!("{writer:>6}: committed in version {}", o.version),
            Err(e) => println!("{writer:>6}: failed — {e}"),
        }
    }

    // Every submission committed; the disjoint edits coalesced into shared
    // versions while the two summary rewrites were serialized — whichever
    // the queue ordered last wins, exactly as with sequential commits.
    assert!(outcomes.iter().all(|(_, o)| o.is_ok()));
    let versions: Vec<u64> = outcomes.iter().map(|(_, o)| o.as_ref().unwrap().version).collect();
    let (dave_v, erin_v) = (versions[3], versions[4]);
    assert_ne!(dave_v, erin_v, "contended edits land in different versions");
    let xml = session.serialize();
    assert!(xml.contains("Alice rewrote"));
    assert!(xml.contains("Bob refreshed"));
    assert!(xml.contains("throughput.png"));
    let winner = if erin_v > dave_v { "Erin" } else { "Dave" };
    assert!(xml.contains(&format!("{winner}'s summary")), "the later version wins");
    println!(
        "\ncontended summary: Dave landed in v{dave_v}, Erin in v{erin_v} — v{} wins.",
        dave_v.max(erin_v)
    );
}
