//! Collaborative editing (§1): several producers check out the same document,
//! send back their PULs, and the executor session integrates them,
//! reconciling the conflicts according to each producer's policy before
//! committing the new authoritative version.
//!
//! Run with `cargo run --example collaborative_editing`.

use xmlpul::prelude::*;

fn main() {
    let mut session = Executor::parse(
        "<report><section><title>Introduction</title><para>Old text</para></section>\
         <section><title>Evaluation</title><para>Numbers</para></section></report>",
    )
    .expect("well-formed document");
    let doc = session.document();
    let root = doc.root().unwrap();
    let intro_para = doc.find_elements("para")[0];
    let intro_text = doc.children(intro_para).unwrap()[0];
    let eval_section = doc.find_elements("section")[1];

    // Alice rewrites the introduction paragraph and signs the report.
    let alice = session.pul_from_ops(vec![
        UpdateOp::replace_value(intro_text, "The introduction, rewritten by Alice."),
        UpdateOp::ins_attributes(root, vec![Tree::attribute("editor", "alice")]),
    ]);
    // Bob also rewrites that paragraph, adds a figure to the evaluation
    // section and signs too.
    let bob = session.pul_from_ops(vec![
        UpdateOp::replace_value(intro_text, "Bob's own version of the introduction."),
        UpdateOp::ins_last(eval_section, vec![Tree::element_with_text("figure", "throughput.png")]),
        UpdateOp::ins_attributes(root, vec![Tree::attribute("editor", "bob")]),
    ]);

    // Alice insists her text stays; Bob has no constraints. The session
    // integrates the two parallel PULs and reconciles under those policies.
    session.submit_with_policy(alice.clone(), Policy::inserted_data());
    session.submit_with_policy(bob.clone(), Policy::relaxed());
    let resolution = session.resolve().expect("solvable under these policies");
    println!("detected {} conflicts:", resolution.conflicts().len());
    for c in resolution.conflicts() {
        println!("  {c}");
    }
    println!(
        "\nreconciled PUL ({} operations):\n  {}",
        resolution.resolved_ops(),
        resolution.pul()
    );

    let report = session.commit_resolution(resolution).expect("applicable PUL");
    println!("\nnew authoritative version (v{}):\n  {}", report.version, session.serialize());

    // If both insisted on their own text, the executor would have to refuse:
    // a transaction makes the attempt safe to probe and roll back.
    let mut tx = session.transaction();
    tx.submit_with_policy(alice, Policy::inserted_data());
    tx.submit_with_policy(bob, Policy::inserted_data());
    match tx.resolve() {
        Err(e) => {
            println!("\nwith both producers strict the reconciliation fails as expected:\n  {e}");
            assert_eq!(e.code(), "XPUL-C01");
        }
        Ok(_) => unreachable!("conflicting strict policies cannot be reconciled"),
    }
    tx.rollback();
    assert_eq!(session.pending(), 0, "the transaction rolled its submissions back");
}
