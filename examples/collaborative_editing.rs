//! Collaborative editing (§1): several producers check out the same document,
//! send back their PULs, and the executor integrates them, reconciling the
//! conflicts according to each producer's policy before generating the new
//! authoritative version.
//!
//! Run with `cargo run --example collaborative_editing`.

use xmlpul::prelude::*;

fn main() {
    let doc = xdm::parser::parse_document(
        "<report><section><title>Introduction</title><para>Old text</para></section>\
         <section><title>Evaluation</title><para>Numbers</para></section></report>",
    )
    .expect("well-formed document");
    let labels = Labeling::assign(&doc);
    let intro_para = doc.find_elements("para")[0];
    let intro_text = doc.children(intro_para).unwrap()[0];
    let eval_section = doc.find_elements("section")[1];

    // Alice rewrites the introduction paragraph and signs the report.
    let alice = Pul::from_ops(
        vec![
            UpdateOp::replace_value(intro_text, "The introduction, rewritten by Alice."),
            UpdateOp::ins_attributes(doc.root().unwrap(), vec![Tree::attribute("editor", "alice")]),
        ],
        &labels,
    );
    // Bob also rewrites that paragraph, adds a figure to the evaluation section
    // and signs too.
    let bob = Pul::from_ops(
        vec![
            UpdateOp::replace_value(intro_text, "Bob's own version of the introduction."),
            UpdateOp::ins_last(eval_section, vec![Tree::element_with_text("figure", "throughput.png")]),
            UpdateOp::ins_attributes(doc.root().unwrap(), vec![Tree::attribute("editor", "bob")]),
        ],
        &labels,
    );

    // The executor integrates the two parallel PULs and inspects the conflicts.
    let puls = vec![alice, bob];
    let integration = integrate(&puls);
    println!("detected {} conflicts:", integration.conflicts.len());
    for c in &integration.conflicts {
        println!("  {c}");
    }

    // Alice insists her text stays; Bob has no constraints.
    let policies = vec![Policy::inserted_data(), Policy::relaxed()];
    let reconciled = reconcile(&puls, &policies).expect("solvable under these policies");
    println!("\nreconciled PUL ({} operations):\n  {reconciled}", reconciled.len());

    let mut new_version = doc.clone();
    apply_pul(&mut new_version, &reconciled, &ApplyOptions::default()).expect("applicable PUL");
    println!("\nnew authoritative version:\n  {}", xdm::writer::write_document(&new_version));

    // If both insisted on their own text, the executor would have to refuse.
    let both_strict = vec![Policy::inserted_data(), Policy::inserted_data()];
    match reconcile(&puls, &both_strict) {
        Err(e) => println!("\nwith both producers strict the reconciliation fails as expected:\n  {e}"),
        Ok(_) => unreachable!("conflicting strict policies cannot be reconciled"),
    }
}
