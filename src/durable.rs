//! Durability and time travel for executor sessions.
//!
//! [`Durable<B>`] wraps a session backend — [`Executor`] or
//! [`ShardedExecutor`] — around an on-disk [`Store`] (crate `pul_store`):
//!
//! - every committed PUL round is appended to a **write-ahead log** *before*
//!   the commit becomes observable (the backend runs the apply inside a
//!   journal scope and rewinds it if the append fails, so the WAL record is
//!   the commit point);
//! - **checkpoints** snapshot the whole session — arena, labeling, version —
//!   as one contiguous checksummed image, triggered by WAL growth or by
//!   dead-slot churn (`slab_stats().dead_ratio`), and rotate the log;
//! - **recovery** ([`Durable::open`]) loads the last checkpoint, replays the
//!   WAL tail through the very same journaled apply path as the live commits,
//!   and discards any torn or corrupt tail record;
//! - **[`read_at`](Durable::read_at)** materialises any retained version by
//!   replaying deltas forward from the nearest checkpoint at or below it.
//!
//! The wrapper derefs to its backend, so the whole session API —
//! `submit` / `resolve` / `commit` — stays available unchanged; commits made
//! through the deref'd backend are logged by the installed [`CommitSink`]
//! automatically. The [`IngestQueue`](crate::IngestQueue) works unchanged
//! too: `Durable<B>` implements [`IngestBackend`] by delegation, logging one
//! WAL record per committed round and checkpointing between rounds.
//!
//! ```
//! use xmlpul::prelude::*;
//! use xmlpul::{Durable, DurableOptions};
//!
//! let dir = std::env::temp_dir().join(format!("xmlpul-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let session = Executor::parse("<doc><a/></doc>").unwrap();
//! let mut durable = Durable::create(&dir, session, DurableOptions::default()).unwrap();
//!
//! let pul = durable.produce("insert nodes <b/> as last into /doc").unwrap();
//! durable.submit(pul);
//! durable.commit().unwrap();       // appended to the WAL before it reports
//!
//! // Crash? Reopen and find version 1 again, bit-identical.
//! drop(durable);
//! let recovered: Durable<Executor> = Durable::open(&dir, DurableOptions::default()).unwrap();
//! assert_eq!(recovered.version(), 1);
//!
//! // Time travel: any retained version can be materialised.
//! let v0 = recovered.read_at(0).unwrap();
//! assert!(!v0.serialize().contains("<b/>"));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::path::Path;
use std::sync::{Arc, Mutex};

use pul::Pul;
use pul_store::{CheckpointState, ShardSnapshot, Store, StoreOptions, SyncPolicy};
use xdm::NodeId;
use xlabel::{LabelInterval, Labeling, NodeLabel, OrderKey};

use crate::error::{Error, Result};
use crate::executor::{Executor, ExecutorCore, ReductionStrategy, SessionSlabStats, SubmissionId};
use crate::ingest::{BatchCommit, IngestBackend};
use crate::shard::{ShardedExecutor, ShardedResolution};

fn store_err(e: std::io::Error) -> Error {
    Error::Store(e.to_string())
}

// ---------------------------------------------------------------------------
// WAL record payloads
// ---------------------------------------------------------------------------

/// What one commit writes to the WAL, borrowed from the committing session.
/// The payload byte format is one kind byte followed by the existing XML wire
/// encodings (`pul::xmlio`) — nothing new to parse on recovery.
#[derive(Debug, Clone, Copy)]
pub enum CommitRecord<'a> {
    /// A single-executor commit: the resolved PUL that was applied (`D`).
    Delta(&'a Pul),
    /// A sharded commit: the per-shard resolved PULs, in shard order (`S`).
    Sharded(&'a [Pul]),
    /// A streaming commit: the identified serialization it wrote (`W`).
    Swap(&'a str),
}

impl CommitRecord<'_> {
    /// Encodes the record into its WAL payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let (kind, body) = match self {
            CommitRecord::Delta(pul) => (b'D', pul::xmlio::pul_to_xml(pul)),
            CommitRecord::Sharded(puls) => (b'S', pul::xmlio::puls_to_xml(puls)),
            CommitRecord::Swap(xml) => (b'W', (*xml).to_string()),
        };
        let mut out = Vec::with_capacity(1 + body.len());
        out.push(kind);
        out.extend_from_slice(body.as_bytes());
        out
    }
}

/// An owned, decoded WAL payload — what recovery replays.
#[derive(Debug, Clone)]
pub enum CommitPayload {
    /// See [`CommitRecord::Delta`].
    Delta(Pul),
    /// See [`CommitRecord::Sharded`].
    Sharded(Vec<Pul>),
    /// See [`CommitRecord::Swap`].
    Swap(String),
}

impl CommitPayload {
    /// Decodes a WAL payload (the CRC of the frame already checked).
    pub fn decode(bytes: &[u8]) -> Result<CommitPayload> {
        let (&kind, rest) =
            bytes.split_first().ok_or_else(|| Error::Store("empty WAL payload".into()))?;
        let text = std::str::from_utf8(rest)
            .map_err(|_| Error::Store("WAL payload is not UTF-8".into()))?;
        match kind {
            b'D' => Ok(CommitPayload::Delta(pul::xmlio::pul_from_xml(text)?)),
            b'S' => Ok(CommitPayload::Sharded(pul::xmlio::puls_from_xml(text)?)),
            b'W' => Ok(CommitPayload::Swap(text.to_string())),
            other => Err(Error::Store(format!("unknown WAL payload kind {other:#04x}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// The commit sink hook
// ---------------------------------------------------------------------------

/// The hook a session calls at its commit point. `on_commit` runs while the
/// commit is still revocable (journal scopes open): returning an error aborts
/// the commit, which rewinds as if the apply itself had failed. `on_rollback`
/// runs after a transaction rollback and must discard every record above
/// `version`; it is infallible by signature — an implementation that cannot
/// guarantee the discard must panic rather than leave phantom records for
/// recovery to replay.
pub trait CommitSink: Send {
    /// Called with the version the commit produces and the record to persist.
    fn on_commit(&mut self, version: u64, record: CommitRecord<'_>) -> Result<()>;
    /// Called after a rollback restored the session to `version`.
    fn on_rollback(&mut self, version: u64);
}

/// A shareable sink handle, installable into a session.
pub type SharedSink = Arc<Mutex<dyn CommitSink>>;

/// The sink slot embedded in `Executor` / `ShardedExecutor`. **Cloning a
/// session empties the slot**: a clone is a divergent copy, and two sessions
/// appending to one WAL would interleave two histories.
#[derive(Default)]
pub(crate) struct SinkSlot(Option<SharedSink>);

impl SinkSlot {
    pub(crate) fn get(&self) -> Option<SharedSink> {
        self.0.clone()
    }

    pub(crate) fn set(&mut self, sink: Option<SharedSink>) {
        self.0 = sink;
    }
}

impl Clone for SinkSlot {
    fn clone(&self) -> Self {
        SinkSlot(None)
    }
}

impl fmt::Debug for SinkSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SinkSlot({})", if self.0.is_some() { "installed" } else { "empty" })
    }
}

/// The production sink: appends to the shared [`Store`].
struct StoreSink {
    store: Arc<Mutex<Store>>,
}

impl CommitSink for StoreSink {
    fn on_commit(&mut self, version: u64, record: CommitRecord<'_>) -> Result<()> {
        self.store
            .lock()
            .expect("store mutex poisoned")
            .append(version, &record.encode())
            .map_err(store_err)
    }

    fn on_rollback(&mut self, version: u64) {
        // A failed truncation would leave records for commits the session
        // rolled back; recovery would replay them over the restored state.
        // There is no way to continue safely, so this is fatal.
        self.store
            .lock()
            .expect("store mutex poisoned")
            .truncate_to_version(version)
            .expect("WAL truncation failed while rolling back a transaction");
    }
}

// ---------------------------------------------------------------------------
// Backend adapters
// ---------------------------------------------------------------------------

/// What [`Durable`] needs from a session backend: snapshot/restore through
/// the checkpoint image, record replay through the journaled apply path, and
/// the sink installation point. Implemented by [`Executor`] and
/// [`ShardedExecutor`].
pub trait DurableBackend: Sized + Send + 'static {
    /// Freezes the full session state at the current version.
    fn checkpoint_state(&self) -> CheckpointState;
    /// Rebuilds a session from a checkpoint image. Session configuration
    /// (policy, reduction strategy, apply options) reverts to the defaults —
    /// it is not durable state.
    fn restore(state: &CheckpointState) -> Result<Self>;
    /// Re-applies one WAL record, advancing the version by exactly one.
    fn replay(&mut self, payload: &CommitPayload) -> Result<()>;
    /// Installs (or removes) the commit sink.
    fn install_sink(&mut self, sink: Option<SharedSink>);
    /// The current session version.
    fn backend_version(&self) -> u64;
    /// Resolves and commits everything pending (the backend's `commit`),
    /// returning the new version.
    fn commit_all(&mut self) -> Result<u64>;
    /// The session's slab-churn observable (drives checkpoint triggering).
    fn session_slab_stats(&self) -> SessionSlabStats;
}

/// Snapshots one executor core into a shard image. Labels are stored in
/// id-sorted order so the checkpoint bytes are deterministic.
fn snapshot_core(core: &ExecutorCore, lo: Vec<u8>, hi: Vec<u8>) -> ShardSnapshot {
    let mut labels: Vec<(u64, String)> = core
        .labeling()
        .iter()
        .map(|l| (l.id.as_u64(), format!("{} {}", l.id.as_u64(), l.to_compact_string())))
        .collect();
    labels.sort_unstable_by_key(|&(id, _)| id);
    ShardSnapshot {
        doc: core.serialize_identified(),
        labels: labels.into_iter().map(|(_, line)| line).collect(),
        next_id: core.document().next_id(),
        version: core.version(),
        interval_lo: lo,
        interval_hi: hi,
    }
}

/// Rebuilds one executor core from a shard image: the identified parse
/// restores the arena with original identifiers, `reserve_ids` lifts the
/// fresh-identifier counter over the snapshotted fence (so dead slots are
/// never re-minted), and the compact labels restore the labeling verbatim.
fn core_from_snapshot(snap: &ShardSnapshot) -> Result<ExecutorCore> {
    let mut doc = xdm::parser::parse_document_identified(&snap.doc)?;
    doc.reserve_ids(snap.next_id);
    let mut labeling = Labeling::new();
    for line in &snap.labels {
        let bad = || Error::Store(format!("malformed checkpoint label line {line:?}"));
        let (id, compact) = line.split_once(' ').ok_or_else(bad)?;
        let id: u64 = id.parse().map_err(|_| bad())?;
        labeling.insert(NodeLabel::parse_compact(NodeId::new(id), compact).ok_or_else(bad)?);
    }
    let mut core = ExecutorCore::from_parts(doc, labeling);
    core.version = snap.version;
    Ok(core)
}

impl DurableBackend for Executor {
    fn checkpoint_state(&self) -> CheckpointState {
        CheckpointState {
            version: self.version(),
            sharded: false,
            root_id: 0,
            root_label: String::new(),
            shards: vec![snapshot_core(self.core(), Vec::new(), Vec::new())],
        }
    }

    fn restore(state: &CheckpointState) -> Result<Executor> {
        if state.sharded || state.shards.len() != 1 {
            return Err(Error::Store(
                "checkpoint was written by a sharded session; restore a ShardedExecutor".into(),
            ));
        }
        Ok(Executor::from_core(core_from_snapshot(&state.shards[0])?))
    }

    fn replay(&mut self, payload: &CommitPayload) -> Result<()> {
        match payload {
            CommitPayload::Delta(pul) => self.replay_delta(pul),
            CommitPayload::Swap(xml) => self.replay_swap(xml),
            CommitPayload::Sharded(_) => {
                Err(Error::Store("sharded WAL record replayed into a single executor".into()))
            }
        }
    }

    fn install_sink(&mut self, sink: Option<SharedSink>) {
        self.set_sink(sink);
    }

    fn backend_version(&self) -> u64 {
        self.version()
    }

    fn commit_all(&mut self) -> Result<u64> {
        self.commit().map(|report| report.version)
    }

    fn session_slab_stats(&self) -> SessionSlabStats {
        self.slab_stats()
    }
}

impl DurableBackend for ShardedExecutor {
    fn checkpoint_state(&self) -> CheckpointState {
        let (root_id, root_label) = self.root_identity();
        CheckpointState {
            version: self.version(),
            sharded: true,
            root_id: root_id.as_u64(),
            root_label: root_label.to_compact_string(),
            shards: (0..self.shard_count())
                .map(|k| {
                    let interval = self.shard_interval(k);
                    snapshot_core(
                        self.shard(k),
                        interval.lo().digits().to_vec(),
                        interval.hi().digits().to_vec(),
                    )
                })
                .collect(),
        }
    }

    fn restore(state: &CheckpointState) -> Result<ShardedExecutor> {
        if !state.sharded {
            return Err(Error::Store(
                "checkpoint was written by a single executor; restore an Executor".into(),
            ));
        }
        let root_id = NodeId::new(state.root_id);
        let root_label = NodeLabel::parse_compact(root_id, &state.root_label)
            .ok_or_else(|| Error::Store("malformed checkpoint root label".into()))?;
        let mut shards = Vec::with_capacity(state.shards.len());
        for snap in &state.shards {
            let interval = LabelInterval::new(
                OrderKey::from_digits(snap.interval_lo.clone()),
                OrderKey::from_digits(snap.interval_hi.clone()),
            );
            shards.push((core_from_snapshot(snap)?, interval));
        }
        Ok(ShardedExecutor::from_restored(shards, root_id, root_label, state.version))
    }

    fn replay(&mut self, payload: &CommitPayload) -> Result<()> {
        match payload {
            CommitPayload::Sharded(per_shard) => {
                if per_shard.len() != self.shard_count() {
                    return Err(Error::Store(format!(
                        "WAL record fans out to {} shards, session has {}",
                        per_shard.len(),
                        self.shard_count()
                    )));
                }
                // The live commit path, fed a synthetic resolution against the
                // current version with no submissions to consume. The sink is
                // never installed while replaying, so nothing is re-appended.
                self.commit_resolution(ShardedResolution {
                    version: self.version(),
                    submission_ids: Vec::new(),
                    per_shard: per_shard.clone(),
                    conflicts: Vec::new(),
                })
                .map(|_| ())
            }
            _ => Err(Error::Store(
                "single-executor WAL record replayed into a sharded session".into(),
            )),
        }
    }

    fn install_sink(&mut self, sink: Option<SharedSink>) {
        self.set_sink(sink);
    }

    fn backend_version(&self) -> u64 {
        self.version()
    }

    fn commit_all(&mut self) -> Result<u64> {
        self.commit().map(|report| report.version)
    }

    fn session_slab_stats(&self) -> SessionSlabStats {
        self.slab_stats()
    }
}

// ---------------------------------------------------------------------------
// The durable façade
// ---------------------------------------------------------------------------

/// Configuration of a [`Durable`] session.
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// WAL sync policy (default: [`SyncPolicy::PerCommit`] — a reported
    /// commit is durable).
    pub sync: SyncPolicy,
    /// Checkpoint once the live WAL segment reaches this many bytes
    /// (default 1 MiB).
    pub checkpoint_wal_bytes: u64,
    /// Checkpoint once the node arena's dead-slot growth since the last
    /// checkpoint reaches this fraction of the live population (default 0.5).
    /// Identifiers are never reused, so a checkpoint is the only point where
    /// the on-disk image sheds dead slots.
    pub checkpoint_dead_ratio: f64,
    /// Keep sealed WAL segments and superseded checkpoints (default true).
    /// Required for [`Durable::read_at`] over the full history; turn off for
    /// a fixed-size store that only ever recovers the latest version.
    pub retain_history: bool,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            sync: SyncPolicy::PerCommit,
            checkpoint_wal_bytes: 1 << 20,
            checkpoint_dead_ratio: 0.5,
            retain_history: true,
        }
    }
}

impl DurableOptions {
    fn store_options(&self) -> StoreOptions {
        StoreOptions { sync: self.sync, retain_history: self.retain_history }
    }
}

/// A durable session: a backend (deref'd, full session API available) plus
/// the store its commits append to. See the module documentation.
pub struct Durable<B: DurableBackend> {
    backend: B,
    store: Arc<Mutex<Store>>,
    opts: DurableOptions,
    /// Node-arena dead-slot count when the last checkpoint was written; the
    /// churn trigger compares against it.
    dead_at_checkpoint: usize,
}

impl<B: DurableBackend> Durable<B> {
    /// Creates a fresh store in `dir` (which must not already hold one),
    /// writes a base checkpoint of `backend` at its current version, and
    /// installs the commit sink. Every commit from here on is logged.
    pub fn create(dir: impl AsRef<Path>, backend: B, opts: DurableOptions) -> Result<Durable<B>> {
        let store = Store::create(dir, opts.store_options()).map_err(store_err)?;
        let mut durable =
            Durable { backend, store: Arc::new(Mutex::new(store)), opts, dead_at_checkpoint: 0 };
        durable.checkpoint()?;
        durable.install();
        Ok(durable)
    }

    /// Recovers a session from `dir`: loads the last checkpoint, replays the
    /// WAL tail through the journaled apply path (any torn or corrupt tail
    /// record was already discarded by the store scan), and installs the
    /// commit sink. The recovered state is bit-identical to the last durable
    /// version's.
    pub fn open(dir: impl AsRef<Path>, opts: DurableOptions) -> Result<Durable<B>> {
        let store = Store::open(dir, opts.store_options()).map_err(store_err)?;
        let base = store
            .last_checkpoint()
            .ok_or_else(|| Error::Store("store holds no checkpoint".into()))?;
        let state = store.load_checkpoint(base).map_err(store_err)?;
        let mut backend = B::restore(&state)?;
        for record in store.replay_records(base, u64::MAX).map_err(store_err)? {
            backend.replay(&CommitPayload::decode(&record.payload)?)?;
            if backend.backend_version() != record.version {
                return Err(Error::Store(format!(
                    "WAL replay reached version {} where the record claims {}",
                    backend.backend_version(),
                    record.version
                )));
            }
        }
        let dead = backend.session_slab_stats().nodes.dead;
        let mut durable =
            Durable { backend, store: Arc::new(Mutex::new(store)), opts, dead_at_checkpoint: dead };
        durable.install();
        Ok(durable)
    }

    fn install(&mut self) {
        let sink: SharedSink = Arc::new(Mutex::new(StoreSink { store: Arc::clone(&self.store) }));
        self.backend.install_sink(Some(sink));
    }

    /// The wrapped backend (also reachable through deref).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Unwraps the backend, removing its commit sink. The store files stay on
    /// disk; later commits on the returned session are **not** logged.
    pub fn into_backend(mut self) -> B {
        self.backend.install_sink(None);
        self.backend
    }

    /// Bytes in the live WAL segment.
    pub fn wal_bytes(&self) -> u64 {
        self.store.lock().expect("store mutex poisoned").wal_bytes()
    }

    /// Version of the most recent durable checkpoint.
    pub fn last_checkpoint(&self) -> Option<u64> {
        self.store.lock().expect("store mutex poisoned").last_checkpoint()
    }

    /// Versions of every retained checkpoint, ascending.
    pub fn checkpoints(&self) -> Vec<u64> {
        self.store.lock().expect("store mutex poisoned").checkpoints().to_vec()
    }

    /// Writes a checkpoint of the current state unconditionally and rotates
    /// the WAL. Returns the checkpointed version.
    pub fn checkpoint(&mut self) -> Result<u64> {
        let state = self.backend.checkpoint_state();
        let version = state.version;
        self.store
            .lock()
            .expect("store mutex poisoned")
            .write_checkpoint(&state)
            .map_err(store_err)?;
        self.dead_at_checkpoint = self.backend.session_slab_stats().nodes.dead;
        Ok(version)
    }

    /// Checkpoints if a trigger fires: the live WAL segment reached
    /// `checkpoint_wal_bytes`, or dead-slot churn since the last checkpoint
    /// reached `checkpoint_dead_ratio` of the live population. No-op while
    /// the current version is already checkpointed.
    pub fn checkpoint_if_due(&mut self) -> Result<bool> {
        let version = self.backend.backend_version();
        let (wal_bytes, last) = {
            let store = self.store.lock().expect("store mutex poisoned");
            (store.wal_bytes(), store.last_checkpoint())
        };
        if last.is_some_and(|c| c >= version) {
            return Ok(false);
        }
        let nodes = self.backend.session_slab_stats().nodes;
        let churn =
            nodes.dead.saturating_sub(self.dead_at_checkpoint) as f64 / nodes.live.max(1) as f64;
        if wal_bytes >= self.opts.checkpoint_wal_bytes || churn >= self.opts.checkpoint_dead_ratio {
            self.checkpoint()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Commits everything pending durably, then runs the checkpoint triggers:
    /// the one-call maintenance loop body for long-lived sessions.
    pub fn commit_durable(&mut self) -> Result<u64> {
        let version = self.backend.commit_all()?;
        self.checkpoint_if_due()?;
        Ok(version)
    }

    /// Materialises the session as it was at `version` (a point-in-time
    /// read): restores the greatest retained checkpoint at or below it and
    /// replays deltas forward. The returned session is a plain backend with
    /// no sink — committing to it never touches this store. Requires
    /// `retain_history`; fails with `XPUL-E07` for pruned or never-durable
    /// versions.
    pub fn read_at(&self, version: u64) -> Result<B> {
        let store = self.store.lock().expect("store mutex poisoned");
        let base = store.checkpoint_at_or_before(version).ok_or_else(|| {
            Error::Store(format!("no checkpoint at or below version {version} is retained"))
        })?;
        let state = store.load_checkpoint(base).map_err(store_err)?;
        let mut backend = B::restore(&state)?;
        for record in store.replay_records(base, version).map_err(store_err)? {
            backend.replay(&CommitPayload::decode(&record.payload)?)?;
            if backend.backend_version() != record.version {
                return Err(Error::Store(format!(
                    "WAL replay reached version {} where the record claims {}",
                    backend.backend_version(),
                    record.version
                )));
            }
        }
        if backend.backend_version() != version {
            return Err(Error::Store(format!(
                "version {version} is not durable (replay stopped at {})",
                backend.backend_version()
            )));
        }
        Ok(backend)
    }
}

impl<B: DurableBackend> Deref for Durable<B> {
    type Target = B;
    fn deref(&self) -> &B {
        &self.backend
    }
}

impl<B: DurableBackend> DerefMut for Durable<B> {
    fn deref_mut(&mut self) -> &mut B {
        &mut self.backend
    }
}

impl<B: DurableBackend + fmt::Debug> fmt::Debug for Durable<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Durable")
            .field("backend", &self.backend)
            .field("opts", &self.opts)
            .finish_non_exhaustive()
    }
}

/// The ingestion pipeline runs over a durable backend unchanged: one WAL
/// record per committed round (the backend's sink fires inside
/// `commit_pending`), with the checkpoint triggers evaluated between rounds.
impl<B: DurableBackend + IngestBackend> IngestBackend for Durable<B> {
    type Resolution = B::Resolution;

    fn admit(&mut self, pul: Pul, policy: pul_core::Policy, reduced: Option<Pul>) -> SubmissionId {
        self.backend.admit(pul, policy, reduced)
    }

    fn resolve_pending(&self) -> Result<B::Resolution> {
        self.backend.resolve_pending()
    }

    fn commit_pending(&mut self, resolution: B::Resolution) -> Result<BatchCommit> {
        let commit = self.backend.commit_pending(resolution)?;
        self.checkpoint_if_due()?;
        Ok(commit)
    }

    fn discard(&mut self, id: SubmissionId) {
        self.backend.discard(id)
    }

    fn current_version(&self) -> u64 {
        self.backend.current_version()
    }

    fn reduction_strategy(&self) -> ReductionStrategy {
        self.backend.reduction_strategy()
    }

    fn default_policy(&self) -> pul_core::Policy {
        self.backend.default_policy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pul::UpdateOp;
    use std::path::PathBuf;
    use xdm::Tree;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xmlpul_durable_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const DOC: &str = "<lib><b1><t>A</t></b1><b2><t>B</t></b2><b3><t>C</t></b3></lib>";

    fn commit_rename(session: &mut Executor, target: &str, to: &str) {
        let id = session.document().find_element(target).unwrap();
        let pul = session.pul_from_ops(vec![UpdateOp::rename(id, to)]);
        session.submit(pul);
        session.commit().unwrap();
    }

    #[test]
    fn executor_recovers_bit_identical() {
        let dir = tmp_dir("exec_recover");
        let session = Executor::parse(DOC).unwrap();
        let mut durable = Durable::create(&dir, session, DurableOptions::default()).unwrap();
        commit_rename(&mut durable, "b1", "book");
        let pul = durable.produce("insert nodes <b4/> as last into /lib").unwrap();
        durable.submit(pul);
        durable.commit().unwrap();
        let reference = durable.backend().clone();
        drop(durable);

        let recovered: Durable<Executor> = Durable::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(recovered.version(), 2);
        assert!(recovered.document().deep_eq(reference.document()));
        assert!(recovered.labeling().deep_eq(reference.labeling()));
        recovered.assert_consistent();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovered_sessions_keep_committing_durably() {
        let dir = tmp_dir("exec_continue");
        let mut durable =
            Durable::create(&dir, Executor::parse(DOC).unwrap(), DurableOptions::default())
                .unwrap();
        commit_rename(&mut durable, "b1", "x");
        drop(durable);
        let mut durable: Durable<Executor> =
            Durable::open(&dir, DurableOptions::default()).unwrap();
        commit_rename(&mut durable, "b2", "y");
        drop(durable);
        let recovered: Durable<Executor> = Durable::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(recovered.version(), 2);
        assert!(recovered.serialize().contains("<x>"));
        assert!(recovered.serialize().contains("<y>"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_at_materialises_every_version() {
        let dir = tmp_dir("exec_read_at");
        let mut durable =
            Durable::create(&dir, Executor::parse(DOC).unwrap(), DurableOptions::default())
                .unwrap();
        let mut serializations = vec![durable.serialize()];
        for (target, to) in [("b1", "v1"), ("b2", "v2"), ("b3", "v3")] {
            commit_rename(&mut durable, target, to);
            serializations.push(durable.serialize());
        }
        // a mid-history checkpoint must not break earlier reads
        durable.checkpoint().unwrap();
        commit_rename(&mut durable, "v1", "v4");
        serializations.push(durable.serialize());

        for (v, expect) in serializations.iter().enumerate() {
            let at = durable.read_at(v as u64).unwrap();
            assert_eq!(&at.serialize(), expect, "read_at({v})");
            assert_eq!(at.version(), v as u64);
            at.assert_consistent();
        }
        assert_eq!(durable.read_at(99).unwrap_err().code(), "XPUL-E07");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_recovers_bit_identical() {
        let dir = tmp_dir("shard_recover");
        let session = ShardedExecutor::parse(DOC, 2).unwrap();
        let mut durable = Durable::create(&dir, session, DurableOptions::default()).unwrap();
        let pul = durable.pul_from_ops(vec![
            UpdateOp::rename(2u64, "book"),
            UpdateOp::ins_last(8u64, vec![Tree::element_with_text("note", "n")]),
        ]);
        durable.submit(pul);
        durable.commit().unwrap();
        let reference = durable.backend().clone();
        drop(durable);

        let recovered: Durable<ShardedExecutor> =
            Durable::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(recovered.version(), 1);
        assert_eq!(recovered.shard_count(), 2);
        for k in 0..2 {
            assert!(recovered.shard(k).document().deep_eq(reference.shard(k).document()));
            assert!(recovered.shard(k).labeling().deep_eq(reference.shard(k).labeling()));
        }
        recovered.assert_consistent();
        // and it keeps committing with correct routing
        let mut recovered = recovered;
        let pul = recovered.pul_from_ops(vec![UpdateOp::rename(5u64, "renamed")]);
        recovered.submit(pul);
        recovered.commit().unwrap();
        assert!(recovered.serialize().contains("<renamed>"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_growth_triggers_a_checkpoint() {
        let dir = tmp_dir("wal_trigger");
        let opts = DurableOptions { checkpoint_wal_bytes: 64, ..DurableOptions::default() };
        let mut durable = Durable::create(&dir, Executor::parse(DOC).unwrap(), opts).unwrap();
        assert_eq!(durable.last_checkpoint(), Some(0));
        commit_rename(&mut durable, "b1", "renamed-to-something-longer-than-the-threshold");
        assert!(durable.checkpoint_if_due().unwrap());
        assert_eq!(durable.last_checkpoint(), Some(1));
        assert_eq!(durable.wal_bytes(), 0, "checkpoint rotates the WAL");
        assert!(!durable.checkpoint_if_due().unwrap(), "no re-checkpoint at the same version");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dead_slot_churn_triggers_a_checkpoint() {
        let dir = tmp_dir("churn_trigger");
        let opts = DurableOptions {
            checkpoint_wal_bytes: u64::MAX,
            checkpoint_dead_ratio: 0.3,
            ..DurableOptions::default()
        };
        let mut durable = Durable::create(&dir, Executor::parse(DOC).unwrap(), opts).unwrap();
        let b1 = durable.document().find_element("b1").unwrap();
        let b2 = durable.document().find_element("b2").unwrap();
        let pul = durable.pul_from_ops(vec![UpdateOp::delete(b1), UpdateOp::delete(b2)]);
        durable.submit(pul);
        durable.commit().unwrap();
        assert!(durable.checkpoint_if_due().unwrap(), "churn past the ratio checkpoints");
        assert!(!durable.checkpoint_if_due().unwrap(), "churn counter rebased at the checkpoint");
        let reread = durable.read_at(1).unwrap();
        assert!(reread.document().deep_eq(durable.document()));
        reread.assert_consistent();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transaction_rollback_truncates_the_wal() {
        let dir = tmp_dir("tx_rollback");
        let mut durable =
            Durable::create(&dir, Executor::parse(DOC).unwrap(), DurableOptions::default())
                .unwrap();
        commit_rename(&mut durable, "b1", "kept");
        {
            let mut tx = durable.transaction();
            let pul = tx.produce("rename node /lib/b2 as \"discarded\"").unwrap();
            tx.submit(pul);
            tx.apply().unwrap();
            assert_eq!(tx.version(), 2);
        } // rollback: version 2's record must leave the WAL too
        assert_eq!(durable.version(), 1);
        drop(durable);
        let recovered: Durable<Executor> = Durable::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(recovered.version(), 1, "rolled-back commit must not be replayed");
        assert!(!recovered.serialize().contains("discarded"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_commits_are_logged_and_recovered() {
        let dir = tmp_dir("streaming");
        let mut durable =
            Durable::create(&dir, Executor::parse(DOC).unwrap(), DurableOptions::default())
                .unwrap();
        let pul = durable.produce("rename node /lib/b1 as \"streamed\"").unwrap();
        durable.submit(pul);
        let input = durable.serialize_identified();
        let mut output = Vec::new();
        durable.commit_streaming(&mut input.as_bytes(), &mut output).unwrap();
        let reference = durable.backend().clone();
        drop(durable);
        let recovered: Durable<Executor> = Durable::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(recovered.version(), 1);
        assert!(recovered.document().deep_eq(reference.document()));
        assert!(recovered.labeling().deep_eq(reference.labeling()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cloned_sessions_do_not_inherit_the_sink() {
        let dir = tmp_dir("clone_sink");
        let mut durable =
            Durable::create(&dir, Executor::parse(DOC).unwrap(), DurableOptions::default())
                .unwrap();
        let mut divergent = durable.backend().clone();
        commit_rename(&mut divergent, "b1", "divergent");
        commit_rename(&mut durable, "b1", "durable");
        drop(durable);
        let recovered: Durable<Executor> = Durable::open(&dir, DurableOptions::default()).unwrap();
        assert!(recovered.serialize().contains("<durable>"), "only the original's history");
        assert!(!recovered.serialize().contains("<divergent>"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ingest_queue_runs_over_a_durable_backend() {
        use crate::ingest::IngestQueue;
        let dir = tmp_dir("ingest");
        let durable =
            Durable::create(&dir, Executor::parse(DOC).unwrap(), DurableOptions::default())
                .unwrap();
        let reference = {
            let queue = IngestQueue::new(durable);
            let session = Executor::parse(DOC).unwrap();
            let b1 = session.document().find_element("b1").unwrap();
            let b2 = session.document().find_element("b2").unwrap();
            let t1 =
                queue.enqueue(session.pul_from_ops(vec![UpdateOp::rename(b1, "first")])).unwrap();
            let t2 =
                queue.enqueue(session.pul_from_ops(vec![UpdateOp::rename(b2, "second")])).unwrap();
            t1.wait().unwrap();
            t2.wait().unwrap();
            let durable = queue.close();
            durable.backend().clone()
        };
        let recovered: Durable<Executor> = Durable::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(recovered.version(), reference.version());
        assert!(recovered.document().deep_eq(reference.document()));
        assert!(recovered.labeling().deep_eq(reference.labeling()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn payload_codec_round_trips() {
        let session = Executor::parse(DOC).unwrap();
        let b1 = session.document().find_element("b1").unwrap();
        let pul = session.pul_from_ops(vec![
            UpdateOp::rename(b1, "renamed"),
            UpdateOp::ins_last(b1, vec![Tree::element_with_text("note", "n")]),
        ]);
        let bytes = CommitRecord::Delta(&pul).encode();
        match CommitPayload::decode(&bytes).unwrap() {
            CommitPayload::Delta(decoded) => {
                assert_eq!(decoded.len(), pul.len());
                assert_eq!(decoded.targets(), pul.targets());
            }
            other => panic!("wrong payload kind: {other:?}"),
        }
        let bytes = CommitRecord::Sharded(&[pul.clone(), Pul::new()]).encode();
        match CommitPayload::decode(&bytes).unwrap() {
            CommitPayload::Sharded(decoded) => {
                assert_eq!(decoded.len(), 2);
                assert_eq!(decoded[0].len(), pul.len());
                assert!(decoded[1].is_empty());
            }
            other => panic!("wrong payload kind: {other:?}"),
        }
        let bytes = CommitRecord::Swap("<r xml:id=\"1\"/>").encode();
        assert!(matches!(CommitPayload::decode(&bytes).unwrap(), CommitPayload::Swap(_)));
        assert_eq!(CommitPayload::decode(b"").unwrap_err().code(), "XPUL-E07");
        assert_eq!(CommitPayload::decode(b"Zjunk").unwrap_err().code(), "XPUL-E07");
    }
}
