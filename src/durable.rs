//! Durability and time travel for executor sessions.
//!
//! [`Durable<B>`] wraps a session backend — [`Executor`] or
//! [`ShardedExecutor`] — around an on-disk [`Store`] (crate `pul_store`):
//!
//! - every committed PUL round is appended to a **write-ahead log** *before*
//!   the commit becomes observable (the backend runs the apply inside a
//!   journal scope and rewinds it if the append fails, so the WAL record is
//!   the commit point);
//! - **checkpoints** snapshot the whole session — arena, labeling, version —
//!   as one contiguous checksummed image, triggered by WAL growth or by
//!   dead-slot churn (`slab_stats().dead_ratio`), and rotate the log;
//! - **recovery** ([`Durable::open`]) loads the last checkpoint, replays the
//!   WAL tail through the very same journaled apply path as the live commits,
//!   and discards any torn or corrupt tail record;
//! - **[`read_at`](Durable::read_at)** pins any retained version into an
//!   immutable [`Snapshot`](crate::Snapshot) by replaying deltas forward from
//!   the nearest checkpoint at or below it — memoized, so repeated reads of a
//!   version replay once; [`restore_at`](Durable::restore_at) materialises a
//!   full mutable session instead.
//!
//! The wrapper derefs to its backend, so the whole session API —
//! `submit` / `resolve` / `commit` — stays available unchanged; commits made
//! through the deref'd backend are logged by the installed [`CommitSink`]
//! automatically. The [`IngestQueue`](crate::IngestQueue) works unchanged
//! too: `Durable<B>` implements [`IngestBackend`] by delegation, logging one
//! WAL record per committed round and checkpointing between rounds.
//!
//! ```
//! use xmlpul::prelude::*;
//! use xmlpul::{Durable, DurableOptions};
//!
//! let dir = std::env::temp_dir().join(format!("xmlpul-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let session = Executor::parse("<doc><a/></doc>").unwrap();
//! let mut durable = Durable::create(&dir, session, DurableOptions::default()).unwrap();
//!
//! let pul = durable.produce("insert nodes <b/> as last into /doc").unwrap();
//! durable.submit(pul);
//! durable.commit().unwrap();       // appended to the WAL before it reports
//!
//! // Crash? Reopen and find version 1 again, bit-identical.
//! drop(durable);
//! let recovered: Durable<Executor> = Durable::open(&dir, DurableOptions::default()).unwrap();
//! assert_eq!(recovered.version(), 1);
//!
//! // Time travel: any retained version can be materialised.
//! let v0 = recovered.read_at(0).unwrap();
//! assert!(!v0.serialize().contains("<b/>"));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pul::Pul;
use pul_store::{
    site, CheckpointState, Faults, ShardSnapshot, Store, StoreError, StoreOptions, StoreResult,
    SyncPolicy,
};
use pul_telemetry::{EventKind, Telemetry};
use xdm::NodeId;
use xlabel::{LabelInterval, Labeling, NodeLabel, OrderKey};

use crate::error::{Error, Result};
use crate::executor::{Executor, ExecutorCore, ReductionStrategy, SessionSlabStats, SubmissionId};
use crate::ingest::{BatchCommit, IngestBackend};
use crate::shard::{ShardedExecutor, ShardedResolution};
use crate::snapshot::{Snapshot, SnapshotCache};

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// How transient store failures (see [`Error::is_transient`]) are retried:
/// bounded attempts with exponential backoff, all under one per-operation
/// deadline. Permanent failures are never retried. An operation that
/// exhausts this budget tips the session into sticky degraded mode
/// (`XPUL-E09`).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (default 4).
    pub max_retries: u32,
    /// Sleep before the first retry (default 1 ms); doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling (default 50 ms).
    pub max_backoff: Duration,
    /// Wall-clock budget for the operation including backoff sleeps
    /// (default 1 s). Retries stop once the next sleep would cross it.
    pub op_deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            op_deadline: Duration::from_secs(1),
        }
    }
}

enum RetryOutcome<T> {
    /// An attempt succeeded.
    Done(T),
    /// A permanent failure: not worth retrying, session stays usable.
    Permanent(StoreError),
    /// Transient failures exhausted the attempt or deadline budget.
    Exhausted(StoreError),
}

/// Runs `f` under the policy: transient errors retry with exponential
/// backoff until the attempt count or the operation deadline runs out.
/// Every backoff retry is counted (and journaled) through `telemetry`.
fn with_retry<T>(
    retry: &RetryPolicy,
    telemetry: &Telemetry,
    mut f: impl FnMut() -> StoreResult<T>,
) -> RetryOutcome<T> {
    let start = Instant::now();
    let mut backoff = retry.base_backoff;
    let mut attempts = 0u32;
    loop {
        match f() {
            Ok(v) => return RetryOutcome::Done(v),
            Err(e) if !e.is_transient() => return RetryOutcome::Permanent(e),
            Err(e) => {
                attempts += 1;
                if attempts > retry.max_retries
                    || start.elapsed().saturating_add(backoff) > retry.op_deadline
                {
                    return RetryOutcome::Exhausted(e);
                }
                telemetry.count(|m| &m.retry_attempts);
                telemetry.event(EventKind::Retry, 0, || {
                    format!("transient store failure, retrying (attempt {attempts}): {e}")
                });
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                backoff = backoff.saturating_mul(2).min(retry.max_backoff);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// WAL record payloads
// ---------------------------------------------------------------------------

/// What one commit writes to the WAL, borrowed from the committing session.
/// The payload byte format is one kind byte — for `D`/`S` followed by one
/// identifier-discipline byte (`P`: the commit grafted parameter trees with
/// their identifiers preserved, `F`: it minted fresh ones) — then the
/// existing XML wire encodings (`pul::xmlio`). Replay must re-apply under
/// the same discipline: a delta committed with `preserve_content_ids` grafts
/// the tree identifiers the record carries, while a fresh-minting commit
/// re-mints deterministically from the restored identifier counter. Either
/// way the recovered arena is bit-identical to the one the live commit built.
#[derive(Debug, Clone, Copy)]
pub enum CommitRecord<'a> {
    /// A single-executor commit: the resolved PUL that was applied (`D`).
    Delta {
        /// The resolved round PUL.
        pul: &'a Pul,
        /// The committing session's `ApplyOptions::preserve_content_ids`.
        preserve_content_ids: bool,
    },
    /// A sharded commit: the per-shard resolved PULs, in shard order (`S`).
    Sharded {
        /// The per-shard slices of the resolved round.
        puls: &'a [Pul],
        /// The committing session's `ApplyOptions::preserve_content_ids`.
        preserve_content_ids: bool,
    },
    /// A sharded commit applied through the **parallel lane** path (`L`):
    /// same payload as `S`, but replay must go through
    /// `ShardedExecutor::commit_resolution_lanes` — the striped identifier
    /// fences mint different (still deterministic) identifiers than the
    /// serial path's threaded fence, and replay must mint the same ones the
    /// live commit did.
    ShardedLanes {
        /// The per-shard slices of the resolved round.
        puls: &'a [Pul],
        /// The committing session's `ApplyOptions::preserve_content_ids`.
        preserve_content_ids: bool,
    },
    /// A streaming commit: the identified serialization it wrote (`W`).
    Swap(&'a str),
    /// A compaction: the session renumbered densely and opened `epoch` (`E`).
    /// Renumbering is deterministic, so the record carries only the epoch it
    /// opened — replay re-runs the same renumbering over the recovered state.
    Epoch {
        /// The epoch the compaction opened.
        epoch: u64,
    },
}

impl CommitRecord<'_> {
    /// Encodes the record into its WAL payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Encodes the record's payload into `out` (appending), so the sink can
    /// host it in a recycled buffer instead of allocating per commit.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let discipline = |preserve: bool| if preserve { b'P' } else { b'F' };
        match self {
            CommitRecord::Delta { pul, preserve_content_ids } => {
                out.push(b'D');
                out.push(discipline(*preserve_content_ids));
                out.extend_from_slice(pul::xmlio::pul_to_xml(pul).as_bytes());
            }
            CommitRecord::Sharded { puls, preserve_content_ids } => {
                out.push(b'S');
                out.push(discipline(*preserve_content_ids));
                out.extend_from_slice(pul::xmlio::puls_to_xml(puls).as_bytes());
            }
            CommitRecord::ShardedLanes { puls, preserve_content_ids } => {
                out.push(b'L');
                out.push(discipline(*preserve_content_ids));
                out.extend_from_slice(pul::xmlio::puls_to_xml(puls).as_bytes());
            }
            CommitRecord::Swap(xml) => {
                out.push(b'W');
                out.extend_from_slice(xml.as_bytes());
            }
            CommitRecord::Epoch { epoch } => {
                out.push(b'E');
                out.extend_from_slice(epoch.to_string().as_bytes());
            }
        }
    }
}

/// An owned, decoded WAL payload — what recovery replays.
#[derive(Debug, Clone)]
pub enum CommitPayload {
    /// See [`CommitRecord::Delta`].
    Delta {
        /// The resolved round PUL.
        pul: Pul,
        /// The identifier discipline the commit applied under.
        preserve_content_ids: bool,
    },
    /// See [`CommitRecord::Sharded`].
    Sharded {
        /// The per-shard slices of the resolved round.
        puls: Vec<Pul>,
        /// The identifier discipline the commit applied under.
        preserve_content_ids: bool,
    },
    /// See [`CommitRecord::ShardedLanes`].
    ShardedLanes {
        /// The per-shard slices of the resolved round.
        puls: Vec<Pul>,
        /// The identifier discipline the commit applied under.
        preserve_content_ids: bool,
    },
    /// See [`CommitRecord::Swap`].
    Swap(String),
    /// See [`CommitRecord::Epoch`].
    Epoch(u64),
}

impl CommitPayload {
    /// Decodes a WAL payload (the CRC of the frame already checked).
    pub fn decode(bytes: &[u8]) -> Result<CommitPayload> {
        let (&kind, rest) = bytes.split_first().ok_or_else(|| Error::store("empty WAL payload"))?;
        let discipline = |rest: &[u8]| -> Result<(bool, String)> {
            let (&flag, body) = rest
                .split_first()
                .ok_or_else(|| Error::store("WAL payload missing its discipline byte"))?;
            let preserve = match flag {
                b'P' => true,
                b'F' => false,
                other => {
                    return Err(Error::store(format!(
                        "unknown WAL identifier discipline {other:#04x}"
                    )))
                }
            };
            let text =
                std::str::from_utf8(body).map_err(|_| Error::store("WAL payload is not UTF-8"))?;
            Ok((preserve, text.to_string()))
        };
        match kind {
            b'D' => {
                let (preserve_content_ids, text) = discipline(rest)?;
                Ok(CommitPayload::Delta {
                    pul: pul::xmlio::pul_from_xml(&text)?,
                    preserve_content_ids,
                })
            }
            b'S' => {
                let (preserve_content_ids, text) = discipline(rest)?;
                Ok(CommitPayload::Sharded {
                    puls: pul::xmlio::puls_from_xml(&text)?,
                    preserve_content_ids,
                })
            }
            b'L' => {
                let (preserve_content_ids, text) = discipline(rest)?;
                Ok(CommitPayload::ShardedLanes {
                    puls: pul::xmlio::puls_from_xml(&text)?,
                    preserve_content_ids,
                })
            }
            b'W' => {
                let text = std::str::from_utf8(rest)
                    .map_err(|_| Error::store("WAL payload is not UTF-8"))?;
                Ok(CommitPayload::Swap(text.to_string()))
            }
            b'E' => {
                let text = std::str::from_utf8(rest)
                    .map_err(|_| Error::store("WAL payload is not UTF-8"))?;
                let epoch = text
                    .parse()
                    .map_err(|_| Error::store(format!("malformed epoch record {text:?}")))?;
                Ok(CommitPayload::Epoch(epoch))
            }
            other => Err(Error::store(format!("unknown WAL payload kind {other:#04x}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// The commit sink hook
// ---------------------------------------------------------------------------

/// The hook a session calls at its commit point. `on_commit` runs while the
/// commit is still revocable (journal scopes open): returning an error aborts
/// the commit, which rewinds as if the apply itself had failed. `on_rollback`
/// runs after a transaction rollback and must discard every record above
/// `version`; it is infallible by signature — an implementation that cannot
/// guarantee the discard must panic rather than leave phantom records for
/// recovery to replay.
pub trait CommitSink: Send {
    /// Called with the version the commit produces and the record to persist.
    fn on_commit(&mut self, version: u64, record: CommitRecord<'_>) -> Result<()>;
    /// Called after a rollback restored the session to `version`.
    fn on_rollback(&mut self, version: u64);
}

/// A shareable sink handle, installable into a session.
pub type SharedSink = Arc<Mutex<dyn CommitSink>>;

/// The sink slot embedded in `Executor` / `ShardedExecutor`. **Cloning a
/// session empties the slot**: a clone is a divergent copy, and two sessions
/// appending to one WAL would interleave two histories.
#[derive(Default)]
pub(crate) struct SinkSlot(Option<SharedSink>);

impl SinkSlot {
    pub(crate) fn get(&self) -> Option<SharedSink> {
        self.0.clone()
    }

    pub(crate) fn set(&mut self, sink: Option<SharedSink>) {
        self.0 = sink;
    }
}

impl Clone for SinkSlot {
    fn clone(&self) -> Self {
        SinkSlot(None)
    }
}

impl fmt::Debug for SinkSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SinkSlot({})", if self.0.is_some() { "installed" } else { "empty" })
    }
}

/// The production sink: appends to the shared [`Store`], retrying transient
/// failures under the session's [`RetryPolicy`]. An exhausted retry budget
/// flips the shared degraded flag — from then on every commit is refused
/// with `XPUL-E09` until the store is reopened.
struct StoreSink {
    store: Arc<Mutex<Store>>,
    faults: Faults,
    retry: RetryPolicy,
    degraded: Arc<AtomicBool>,
    /// Recycled commit-payload encode buffers: one commit's payload is dead
    /// once its frame is appended, so the backbone is reused.
    payload_pool: pul_store::Pool<Vec<u8>>,
    /// The durable session's `read_at` snapshot cache, shared so a rollback
    /// invalidates the snapshots of the versions it discards.
    snapshots: Arc<SnapshotCache>,
    /// Telemetry handle shared with the whole durable stack: retry counters,
    /// degraded-mode transition events, rollback truncation events.
    telemetry: Telemetry,
}

/// Idle payload buffers the sink retains (one commit in flight per session).
const PAYLOAD_POOL_IDLE: usize = 2;

impl CommitSink for StoreSink {
    fn on_commit(&mut self, version: u64, record: CommitRecord<'_>) -> Result<()> {
        if self.degraded.load(Ordering::SeqCst) {
            return Err(Error::Degraded(
                "session is read-only after an exhausted WAL retry budget".into(),
            ));
        }
        let mut payload = self.payload_pool.take_buf();
        record.encode_into(&mut payload);
        let outcome = with_retry(&self.retry, &self.telemetry, || {
            if let Some(kind) = self.faults.check(site::SINK_COMMIT) {
                self.telemetry.count(|m| &m.fault_hits);
                self.telemetry.event(EventKind::FaultHit, version, || {
                    format!("{}: injected {kind:?}", site::SINK_COMMIT)
                });
                return Err(StoreError::injected(site::SINK_COMMIT, kind));
            }
            self.store.lock().expect("store mutex poisoned").append(version, &payload)
        });
        payload.clear();
        self.payload_pool.put(payload);
        match outcome {
            RetryOutcome::Done(()) => Ok(()),
            RetryOutcome::Permanent(e) => Err(Error::Store(e)),
            RetryOutcome::Exhausted(e) => {
                note_degraded(&self.degraded, &self.telemetry, version, &e);
                Err(Error::Degraded(format!("WAL append retries exhausted: {e}")))
            }
        }
    }

    fn on_rollback(&mut self, version: u64) {
        // A failed truncation would leave records for commits the session
        // rolled back; recovery would replay them over the restored state.
        // There is no way to continue safely, so this is fatal.
        self.store
            .lock()
            .expect("store mutex poisoned")
            .truncate_to_version(version)
            .expect("WAL truncation failed while rolling back a transaction");
        // The rolled-back versions' numbers will be reused with different
        // contents; their cached snapshots must not survive them.
        self.snapshots.purge_above(version);
        self.telemetry
            .event(EventKind::Rollback, version, || format!("WAL truncated back to v{version}"));
    }
}

/// Flips the sticky degraded flag, recording the *transition* (not every
/// refused commit afterwards) as a counter bump plus an `XPUL-E09` journal
/// event — so the flip is observable the moment it happens, not only through
/// the next failing commit.
fn note_degraded(degraded: &AtomicBool, telemetry: &Telemetry, version: u64, cause: &StoreError) {
    let was = degraded.swap(true, Ordering::SeqCst);
    if !was {
        telemetry.count(|m| &m.degraded_transitions);
        telemetry.event(EventKind::Degraded, version, || {
            format!("session degraded to read-only: retries exhausted: {cause}")
        });
    }
}

// ---------------------------------------------------------------------------
// Backend adapters
// ---------------------------------------------------------------------------

/// What [`Durable`] needs from a session backend: snapshot/restore through
/// the checkpoint image, record replay through the journaled apply path, and
/// the sink installation point. Implemented by [`Executor`] and
/// [`ShardedExecutor`].
pub trait DurableBackend: Sized + Send + 'static {
    /// Freezes the full session state at the current version.
    fn checkpoint_state(&self) -> CheckpointState;
    /// Rebuilds a session from a checkpoint image. Session configuration
    /// (policy, reduction strategy, apply options) reverts to the defaults —
    /// it is not durable state.
    fn restore(state: &CheckpointState) -> Result<Self>;
    /// Re-applies one WAL record, advancing the version by exactly one.
    fn replay(&mut self, payload: &CommitPayload) -> Result<()>;
    /// Installs (or removes) the commit sink.
    fn install_sink(&mut self, sink: Option<SharedSink>);
    /// Installs the failpoint handle the backend consults during its own
    /// commit phases (e.g. shard apply). Backends without failpoints ignore
    /// it.
    fn install_faults(&mut self, _faults: Faults) {}
    /// Installs the telemetry handle the backend records its own commit and
    /// snapshot metrics through. Backends without instrumentation ignore it.
    fn install_telemetry(&mut self, _telemetry: Telemetry) {}
    /// The current session version.
    fn backend_version(&self) -> u64;
    /// Pins the current version into an immutable MVCC [`Snapshot`] (the
    /// backend's own `snapshot()`, memoized per `(version, epoch)`).
    fn snapshot_now(&self) -> Snapshot;
    /// Resolves and commits everything pending (the backend's `commit`),
    /// returning the new version.
    fn commit_all(&mut self) -> Result<u64>;
    /// The session's slab-churn observable (drives checkpoint and compaction
    /// triggering).
    fn session_slab_stats(&self) -> SessionSlabStats;
    /// The session's compaction epoch.
    fn session_epoch(&self) -> u64;
    /// Submissions waiting in the session — auto-compaction declines while
    /// any are pending, so it never fences work already admitted.
    fn pending_submissions(&self) -> usize;
    /// The fraction of the live population held in *reclaimable* dead slots
    /// (drives the compaction trigger). Backends whose layout carries
    /// structural, unreclaimable dead slots — the sharded partition gaps —
    /// subtract them here, or the trigger would re-fire forever on a freshly
    /// compacted session.
    fn reclaimable_dead_ratio(&self) -> f64;
    /// Compacts the session: renumbers densely and opens a new epoch. The
    /// installed sink appends the epoch record before the renumbering, so a
    /// failed append leaves session and store on the pre-compaction version.
    fn compact_session(&mut self) -> Result<crate::CompactionReport>;
}

/// Snapshots one executor core into a shard image. Labels are stored in
/// id-sorted order so the checkpoint bytes are deterministic.
fn snapshot_core(core: &ExecutorCore, lo: Vec<u8>, hi: Vec<u8>) -> ShardSnapshot {
    let mut labels: Vec<(u64, String)> = core
        .labeling()
        .iter()
        .map(|l| (l.id.as_u64(), format!("{} {}", l.id.as_u64(), l.to_compact_string())))
        .collect();
    labels.sort_unstable_by_key(|&(id, _)| id);
    ShardSnapshot {
        doc: core.serialize_identified(),
        labels: labels.into_iter().map(|(_, line)| line).collect(),
        next_id: core.document().next_id(),
        version: core.version(),
        interval_lo: lo,
        interval_hi: hi,
    }
}

/// Rebuilds one executor core from a shard image: the identified parse
/// restores the arena with original identifiers, `reserve_ids` lifts the
/// fresh-identifier counter over the snapshotted fence (so dead slots are
/// never re-minted), and the compact labels restore the labeling verbatim.
fn core_from_snapshot(snap: &ShardSnapshot) -> Result<ExecutorCore> {
    let mut doc = xdm::parser::parse_document_identified(&snap.doc)?;
    doc.reserve_ids(snap.next_id);
    let mut labeling = Labeling::new();
    for line in &snap.labels {
        let bad = || Error::store(format!("malformed checkpoint label line {line:?}"));
        let (id, compact) = line.split_once(' ').ok_or_else(bad)?;
        let id: u64 = id.parse().map_err(|_| bad())?;
        labeling.insert(NodeLabel::parse_compact(NodeId::new(id), compact).ok_or_else(bad)?);
    }
    let mut core = ExecutorCore::from_parts(doc, labeling);
    core.version = snap.version;
    Ok(core)
}

impl DurableBackend for Executor {
    fn checkpoint_state(&self) -> CheckpointState {
        CheckpointState {
            version: self.version(),
            epoch: self.epoch(),
            sharded: false,
            root_id: 0,
            root_label: String::new(),
            shards: vec![snapshot_core(self.core(), Vec::new(), Vec::new())],
        }
    }

    fn restore(state: &CheckpointState) -> Result<Executor> {
        if state.sharded || state.shards.len() != 1 {
            return Err(Error::store(
                "checkpoint was written by a sharded session; restore a ShardedExecutor",
            ));
        }
        let mut session = Executor::from_core(core_from_snapshot(&state.shards[0])?);
        session.set_epoch(state.epoch);
        Ok(session)
    }

    fn replay(&mut self, payload: &CommitPayload) -> Result<()> {
        match payload {
            CommitPayload::Delta { pul, preserve_content_ids } => {
                self.replay_delta(pul, *preserve_content_ids)
            }
            CommitPayload::Swap(xml) => self.replay_swap(xml),
            CommitPayload::Epoch(epoch) => {
                self.replay_epoch(*epoch);
                Ok(())
            }
            CommitPayload::Sharded { .. } | CommitPayload::ShardedLanes { .. } => {
                Err(Error::store("sharded WAL record replayed into a single executor"))
            }
        }
    }

    fn install_sink(&mut self, sink: Option<SharedSink>) {
        self.set_sink(sink);
    }

    fn install_telemetry(&mut self, telemetry: Telemetry) {
        self.set_telemetry(telemetry);
    }

    fn backend_version(&self) -> u64 {
        self.version()
    }

    fn snapshot_now(&self) -> Snapshot {
        self.snapshot()
    }

    fn commit_all(&mut self) -> Result<u64> {
        self.commit().map(|report| report.version)
    }

    fn session_slab_stats(&self) -> SessionSlabStats {
        self.slab_stats()
    }

    fn session_epoch(&self) -> u64 {
        self.epoch()
    }

    fn pending_submissions(&self) -> usize {
        self.pending()
    }

    fn reclaimable_dead_ratio(&self) -> f64 {
        self.reclaimable_dead_ratio()
    }

    fn compact_session(&mut self) -> Result<crate::CompactionReport> {
        self.compact()
    }
}

impl DurableBackend for ShardedExecutor {
    fn checkpoint_state(&self) -> CheckpointState {
        let (root_id, root_label) = self.root_identity();
        CheckpointState {
            version: self.version(),
            epoch: self.epoch(),
            sharded: true,
            root_id: root_id.as_u64(),
            root_label: root_label.to_compact_string(),
            shards: (0..self.shard_count())
                .map(|k| {
                    let interval = self.shard_interval(k);
                    snapshot_core(
                        self.shard(k),
                        interval.lo().digits().to_vec(),
                        interval.hi().digits().to_vec(),
                    )
                })
                .collect(),
        }
    }

    fn restore(state: &CheckpointState) -> Result<ShardedExecutor> {
        if !state.sharded {
            return Err(Error::store(
                "checkpoint was written by a single executor; restore an Executor",
            ));
        }
        let root_id = NodeId::new(state.root_id);
        let root_label = NodeLabel::parse_compact(root_id, &state.root_label)
            .ok_or_else(|| Error::store("malformed checkpoint root label"))?;
        let mut shards = Vec::with_capacity(state.shards.len());
        for snap in &state.shards {
            let interval = LabelInterval::new(
                OrderKey::from_digits(snap.interval_lo.clone()),
                OrderKey::from_digits(snap.interval_hi.clone()),
            );
            shards.push((core_from_snapshot(snap)?, interval));
        }
        let mut session =
            ShardedExecutor::from_restored(shards, root_id, root_label, state.version);
        session.set_epoch(state.epoch);
        Ok(session)
    }

    fn replay(&mut self, payload: &CommitPayload) -> Result<()> {
        // Both sharded record kinds feed the live commit path a synthetic
        // resolution against the current version with no submissions to
        // consume, under the identifier discipline the record was committed
        // with; the record kind selects the path (`S` = serial threaded
        // fence, `L` = striped lanes), so replay mints the exact identifiers
        // the live commit did. The sink is never installed while replaying,
        // so nothing is re-appended.
        let replay_sharded =
            |session: &mut Self, per_shard: &[Pul], preserve: bool, lanes: bool| -> Result<()> {
                if per_shard.len() != session.shard_count() {
                    return Err(Error::store(format!(
                        "WAL record fans out to {} shards, session has {}",
                        per_shard.len(),
                        session.shard_count()
                    )));
                }
                let live = session.set_preserve_content_ids(preserve);
                let resolution = ShardedResolution {
                    version: session.version(),
                    submission_ids: Vec::new(),
                    per_shard: per_shard.to_vec(),
                    conflicts: Vec::new(),
                };
                let replayed = if lanes {
                    session.commit_resolution_lanes(resolution)
                } else {
                    session.commit_resolution(resolution)
                };
                session.set_preserve_content_ids(live);
                replayed.map(|_| ())
            };
        match payload {
            CommitPayload::Sharded { puls, preserve_content_ids } => {
                replay_sharded(self, puls, *preserve_content_ids, false)
            }
            CommitPayload::ShardedLanes { puls, preserve_content_ids } => {
                replay_sharded(self, puls, *preserve_content_ids, true)
            }
            CommitPayload::Epoch(epoch) => self.replay_epoch(*epoch),
            _ => Err(Error::store("single-executor WAL record replayed into a sharded session")),
        }
    }

    fn install_sink(&mut self, sink: Option<SharedSink>) {
        self.set_sink(sink);
    }

    fn install_faults(&mut self, faults: Faults) {
        self.set_faults(faults);
    }

    fn install_telemetry(&mut self, telemetry: Telemetry) {
        self.set_telemetry(telemetry);
    }

    fn backend_version(&self) -> u64 {
        self.version()
    }

    fn snapshot_now(&self) -> Snapshot {
        self.snapshot()
    }

    fn commit_all(&mut self) -> Result<u64> {
        self.commit().map(|report| report.version)
    }

    fn session_slab_stats(&self) -> SessionSlabStats {
        self.slab_stats()
    }

    fn session_epoch(&self) -> u64 {
        self.epoch()
    }

    fn pending_submissions(&self) -> usize {
        self.pending()
    }

    fn reclaimable_dead_ratio(&self) -> f64 {
        self.reclaimable_dead_ratio()
    }

    fn compact_session(&mut self) -> Result<crate::CompactionReport> {
        self.compact()
    }
}

// ---------------------------------------------------------------------------
// The durable façade
// ---------------------------------------------------------------------------

/// Configuration of a [`Durable`] session.
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// WAL sync policy (default: [`SyncPolicy::PerCommit`] — a reported
    /// commit is durable).
    pub sync: SyncPolicy,
    /// Checkpoint once the live WAL segment reaches this many bytes
    /// (default 1 MiB).
    pub checkpoint_wal_bytes: u64,
    /// Checkpoint once the node arena's dead-slot growth since the last
    /// checkpoint reaches this fraction of the live population (default 0.5).
    /// Identifiers are never reused, so a checkpoint is the only point where
    /// the on-disk image sheds dead slots.
    pub checkpoint_dead_ratio: f64,
    /// Compact the session (see [`Durable::compact`]) once the backend's
    /// reclaimable dead ratio reaches this value (default `f64::INFINITY`:
    /// never — compaction renumbers every identifier and fences producers,
    /// so auto-triggering is opt-in). The trigger is evaluated between
    /// committed rounds and declines while submissions are pending.
    pub compact_dead_ratio: f64,
    /// Keep sealed WAL segments and superseded checkpoints (default true).
    /// Required for [`Durable::read_at`] over the full history; turn off for
    /// a fixed-size store that only ever recovers the latest version.
    pub retain_history: bool,
    /// How transient WAL-append and checkpoint failures are retried.
    pub retry: RetryPolicy,
    /// Idle buffers the commit path retains per pool (WAL frames, checkpoint
    /// payload encodes). Default 2 — a steady-state commit reuses its
    /// buffers instead of round-tripping the allocator. 0 disables pooling:
    /// the unpooled baseline the `pool_reuse` bench suite gates against.
    pub pool_idle: usize,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            sync: SyncPolicy::PerCommit,
            checkpoint_wal_bytes: 1 << 20,
            checkpoint_dead_ratio: 0.5,
            compact_dead_ratio: f64::INFINITY,
            retain_history: true,
            retry: RetryPolicy::default(),
            pool_idle: PAYLOAD_POOL_IDLE,
        }
    }
}

impl DurableOptions {
    fn store_options(&self) -> StoreOptions {
        StoreOptions {
            sync: self.sync,
            retain_history: self.retain_history,
            frame_pool_idle: self.pool_idle,
        }
    }
}

/// A durable session: a backend (deref'd, full session API available) plus
/// the store its commits append to. See the module documentation.
pub struct Durable<B: DurableBackend> {
    backend: B,
    store: Arc<Mutex<Store>>,
    opts: DurableOptions,
    /// Node-arena dead-slot count when the last checkpoint was written; the
    /// churn trigger compares against it.
    dead_at_checkpoint: usize,
    /// Failpoint handle shared with the store, the sink and the backend.
    faults: Faults,
    /// Sticky read-only flag, shared with the sink: set when a WAL append or
    /// checkpoint write exhausts its retry budget.
    degraded: Arc<AtomicBool>,
    /// Memoized [`read_at`](Durable::read_at) snapshots, keyed by version and
    /// shared with the sink (a rollback purges the versions it discards).
    snapshots: Arc<SnapshotCache>,
    /// The most recent background-maintenance failure — see
    /// [`last_maintenance_error`](Durable::last_maintenance_error).
    last_maintenance_error: Option<Error>,
    /// How many background-maintenance attempts have failed.
    maintenance_failures: u64,
    /// Telemetry handle shared with the store, the sink and the backend (see
    /// [`set_telemetry`](Durable::set_telemetry)). Disabled by default.
    telemetry: Telemetry,
}

impl<B: DurableBackend> Durable<B> {
    /// Creates a fresh store in `dir` (which must not already hold one),
    /// writes a base checkpoint of `backend` at its current version, and
    /// installs the commit sink. Every commit from here on is logged.
    pub fn create(dir: impl AsRef<Path>, backend: B, opts: DurableOptions) -> Result<Durable<B>> {
        let store = Store::create(dir, opts.store_options())?;
        let mut durable = Durable {
            backend,
            store: Arc::new(Mutex::new(store)),
            opts,
            dead_at_checkpoint: 0,
            faults: Faults::disabled(),
            degraded: Arc::new(AtomicBool::new(false)),
            snapshots: Arc::new(SnapshotCache::default()),
            last_maintenance_error: None,
            maintenance_failures: 0,
            telemetry: Telemetry::disabled(),
        };
        durable.checkpoint()?;
        durable.install();
        Ok(durable)
    }

    /// Recovers a session from `dir`: loads the last checkpoint, replays the
    /// WAL tail through the journaled apply path (any torn or corrupt tail
    /// record was already discarded by the store scan), and installs the
    /// commit sink. The recovered state is bit-identical to the last durable
    /// version's.
    pub fn open(dir: impl AsRef<Path>, opts: DurableOptions) -> Result<Durable<B>> {
        let store = Store::open(dir, opts.store_options())?;
        let base =
            store.last_checkpoint().ok_or_else(|| Error::store("store holds no checkpoint"))?;
        let state = store.load_checkpoint(base)?;
        let mut backend = B::restore(&state)?;
        for record in store.replay_records(base, u64::MAX)? {
            backend.replay(&CommitPayload::decode(&record.payload)?)?;
            if backend.backend_version() != record.version {
                return Err(Error::store(format!(
                    "WAL replay reached version {} where the record claims {}",
                    backend.backend_version(),
                    record.version
                )));
            }
        }
        let dead = backend.session_slab_stats().nodes.dead;
        let mut durable = Durable {
            backend,
            store: Arc::new(Mutex::new(store)),
            opts,
            dead_at_checkpoint: dead,
            faults: Faults::disabled(),
            degraded: Arc::new(AtomicBool::new(false)),
            snapshots: Arc::new(SnapshotCache::default()),
            last_maintenance_error: None,
            maintenance_failures: 0,
            telemetry: Telemetry::disabled(),
        };
        durable.install();
        Ok(durable)
    }

    fn install(&mut self) {
        let sink: SharedSink = Arc::new(Mutex::new(StoreSink {
            store: Arc::clone(&self.store),
            faults: self.faults.clone(),
            retry: self.opts.retry,
            degraded: Arc::clone(&self.degraded),
            payload_pool: pul_store::Pool::new(self.opts.pool_idle),
            snapshots: Arc::clone(&self.snapshots),
            telemetry: self.telemetry.clone(),
        }));
        self.backend.install_sink(Some(sink));
    }

    /// Installs one telemetry handle across the whole durable stack: the
    /// store (WAL/checkpoint timings), the commit sink (retry counters,
    /// degraded transitions), and the backend (commit spans, snapshot cache
    /// probes). Pass [`Telemetry::enabled`] to arm; clones of the same handle
    /// observe into the same registry.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.store.lock().expect("store mutex poisoned").set_telemetry(telemetry.clone());
        self.backend.install_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self.install();
    }

    /// The installed telemetry handle (disabled unless
    /// [`set_telemetry`](Durable::set_telemetry) armed one).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The unified observability snapshot of the durable stack: the shared
    /// registry and journal tail, the backend session's slab statistics, and
    /// the WAL frame-pool counters (the reduction-cache component belongs to
    /// the in-memory executor and is zero here).
    pub fn telemetry_snapshot(&self) -> crate::TelemetrySnapshot {
        crate::TelemetrySnapshot::gather(
            &self.telemetry,
            self.backend.session_slab_stats(),
            Default::default(),
            self.frame_pool_stats(),
        )
    }

    /// Installs an armed failpoint handle across the whole durable stack:
    /// the store (WAL append/sync/rotation, checkpoint write/rename), the
    /// commit sink, and the backend (shard apply). Tests only; a handle is
    /// never installed in production paths.
    pub fn inject_faults(&mut self, faults: Faults) {
        self.store.lock().expect("store mutex poisoned").set_faults(faults.clone());
        self.faults = faults.clone();
        self.backend.install_faults(faults);
        self.install();
    }

    /// Whether the session is in sticky read-only degraded mode: a WAL
    /// append or checkpoint write exhausted its retry budget. Commits and
    /// checkpoints are refused with `XPUL-E09`; reads (including
    /// [`Durable::read_at`]) still work. Reopening the store is the recovery
    /// path.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// The wrapped backend (also reachable through deref).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Unwraps the backend, removing its commit sink. The store files stay on
    /// disk; later commits on the returned session are **not** logged.
    pub fn into_backend(mut self) -> B {
        self.backend.install_sink(None);
        self.backend
    }

    /// Bytes in the live WAL segment.
    pub fn wal_bytes(&self) -> u64 {
        self.store.lock().expect("store mutex poisoned").wal_bytes()
    }

    /// Reuse counters of the store's WAL frame buffer pool (see
    /// [`DurableOptions::pool_idle`]).
    pub fn frame_pool_stats(&self) -> pul_store::PoolStats {
        self.store.lock().expect("store mutex poisoned").frame_pool_stats()
    }

    /// Version of the most recent durable checkpoint.
    pub fn last_checkpoint(&self) -> Option<u64> {
        self.store.lock().expect("store mutex poisoned").last_checkpoint()
    }

    /// Versions of every retained checkpoint, ascending.
    pub fn checkpoints(&self) -> Vec<u64> {
        self.store.lock().expect("store mutex poisoned").checkpoints().to_vec()
    }

    /// Writes a checkpoint of the current state unconditionally and rotates
    /// the WAL, retrying transient failures under the session's
    /// [`RetryPolicy`]. Returns the checkpointed version. An exhausted retry
    /// budget degrades the session (`XPUL-E09`).
    pub fn checkpoint(&mut self) -> Result<u64> {
        if self.is_degraded() {
            return Err(Error::Degraded(
                "session is read-only after an exhausted retry budget".into(),
            ));
        }
        let state = self.backend.checkpoint_state();
        let version = state.version;
        let outcome = {
            let mut store = self.store.lock().expect("store mutex poisoned");
            with_retry(&self.opts.retry, &self.telemetry, || store.write_checkpoint(&state))
        };
        match outcome {
            RetryOutcome::Done(()) => {
                self.dead_at_checkpoint = self.backend.session_slab_stats().nodes.dead;
                Ok(version)
            }
            RetryOutcome::Permanent(e) => Err(Error::Store(e)),
            RetryOutcome::Exhausted(e) => {
                note_degraded(&self.degraded, &self.telemetry, version, &e);
                Err(Error::Degraded(format!("checkpoint retries exhausted: {e}")))
            }
        }
    }

    /// Checkpoints if a trigger fires: the live WAL segment reached
    /// `checkpoint_wal_bytes`, or dead-slot churn since the last checkpoint
    /// reached `checkpoint_dead_ratio` of the live population. No-op while
    /// the current version is already checkpointed. In degraded mode the
    /// call fails with `XPUL-E09` — stickiness is observable here too.
    pub fn checkpoint_if_due(&mut self) -> Result<bool> {
        if self.is_degraded() {
            return Err(Error::Degraded(
                "session is read-only after an exhausted retry budget".into(),
            ));
        }
        let version = self.backend.backend_version();
        let (wal_bytes, last) = {
            let store = self.store.lock().expect("store mutex poisoned");
            (store.wal_bytes(), store.last_checkpoint())
        };
        if last.is_some_and(|c| c >= version) {
            return Ok(false);
        }
        let nodes = self.backend.session_slab_stats().nodes;
        let churn =
            nodes.dead.saturating_sub(self.dead_at_checkpoint) as f64 / nodes.live.max(1) as f64;
        if wal_bytes >= self.opts.checkpoint_wal_bytes || churn >= self.opts.checkpoint_dead_ratio {
            self.checkpoint()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Compacts the session durably: the backend renumbers densely behind an
    /// epoch record (appended through the sink *before* the renumbering, so a
    /// failed append leaves session and store on the pre-compaction version),
    /// then a fresh checkpoint freezes the dense image. The checkpoint is
    /// best-effort — the epoch record alone already recovers bit-identically,
    /// so its failure must not fail the durably-committed compaction.
    pub fn compact(&mut self) -> Result<crate::CompactionReport> {
        if self.is_degraded() {
            return Err(Error::Degraded(
                "session is read-only after an exhausted retry budget".into(),
            ));
        }
        let report = self.backend.compact_session()?;
        let after = self.checkpoint();
        self.note_maintenance(after);
        Ok(report)
    }

    /// Compacts if the trigger fires: the backend's *reclaimable* dead ratio
    /// (dead slots a renumbering can actually free — the sharded session
    /// subtracts its structural partition gaps) reached `compact_dead_ratio`
    /// and no submission is pending (compacting under
    /// pending submissions would fence work already admitted — the ingest
    /// pipeline calls this between rounds, when the queue has drained). In
    /// degraded mode the call fails with `XPUL-E09`.
    pub fn compact_if_due(&mut self) -> Result<bool> {
        if self.is_degraded() {
            return Err(Error::Degraded(
                "session is read-only after an exhausted retry budget".into(),
            ));
        }
        if self.backend.pending_submissions() > 0 {
            return Ok(false);
        }
        let ratio = self.backend.reclaimable_dead_ratio();
        if ratio > 0.0 && ratio >= self.opts.compact_dead_ratio {
            self.compact()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Commits everything pending durably, then runs the compaction and
    /// checkpoint triggers: the one-call maintenance loop body for long-lived
    /// sessions.
    pub fn commit_durable(&mut self) -> Result<u64> {
        let version = self.backend.commit_all()?;
        // The commit's WAL record is durable at this point: a compaction or
        // checkpoint failure must not fail the commit (a caller retrying it
        // would re-apply an applied round). Degradation surfaces on the
        // *next* commit through the sink; the failure itself is recorded in
        // `last_maintenance_error` rather than swallowed.
        let compacted = self.compact_if_due();
        self.note_maintenance(compacted);
        let checkpointed = self.checkpoint_if_due();
        self.note_maintenance(checkpointed);
        Ok(version)
    }

    /// Records a background-maintenance outcome: commit paths must stay
    /// infallible once the round's WAL record is durable, so a failed
    /// opportunistic compaction or checkpoint is *recorded* here instead of
    /// surfacing from the commit (where a retry would re-apply the round).
    fn note_maintenance<T>(&mut self, outcome: Result<T>) {
        if let Err(e) = outcome {
            self.maintenance_failures += 1;
            self.telemetry.count(|m| &m.maintenance_failures);
            let version = self.backend.backend_version();
            self.telemetry.event(EventKind::MaintenanceFailure, version, || {
                format!("background maintenance failed: {e}")
            });
            self.last_maintenance_error = Some(e);
        }
    }

    /// The most recent failure of opportunistic background maintenance — the
    /// post-commit `compact_if_due` / `checkpoint_if_due` triggers and the
    /// best-effort checkpoint after a durable compaction. `None` when every
    /// attempt so far succeeded. The error is sticky until a later failure
    /// replaces it; a degraded session additionally refuses commits with
    /// `XPUL-E09`.
    pub fn last_maintenance_error(&self) -> Option<&Error> {
        self.last_maintenance_error.as_ref()
    }

    /// How many background-maintenance attempts have failed over this
    /// session's lifetime (each also recorded, last one in
    /// [`last_maintenance_error`](Durable::last_maintenance_error)).
    pub fn maintenance_failures(&self) -> u64 {
        self.maintenance_failures
    }

    /// Pins `version` into an immutable [`Snapshot`] (a point-in-time read).
    /// The first read of a version restores the nearest checkpoint and
    /// replays deltas forward — O(history); repeated reads of the same
    /// version are served from a small per-session cache as reference-count
    /// bumps, and the current version is pinned straight from the live
    /// backend without touching the store at all. Requires `retain_history`
    /// for historical versions; fails with `XPUL-E07` for pruned or
    /// never-durable ones.
    pub fn read_at(&self, version: u64) -> Result<Snapshot> {
        if let Some(hit) = self.snapshots.get_version(version) {
            self.telemetry.count(|m| &m.snapshot_hits);
            return Ok(hit);
        }
        self.telemetry.count(|m| &m.snapshot_misses);
        let snapshot = if version == self.backend.backend_version() {
            self.backend.snapshot_now()
        } else {
            self.restore_at(version)?.snapshot_now()
        };
        self.snapshots.insert(snapshot.clone());
        Ok(snapshot)
    }

    /// Materialises the session as it was at `version` (a mutable
    /// point-in-time restore): restores the greatest retained checkpoint at
    /// or below it and replays deltas forward. The returned session is a
    /// plain backend with no sink — committing to it never touches this
    /// store. Requires `retain_history`; fails with `XPUL-E07` for pruned or
    /// never-durable versions. For read-only access prefer
    /// [`read_at`](Durable::read_at), which memoizes.
    pub fn restore_at(&self, version: u64) -> Result<B> {
        let store = self.store.lock().expect("store mutex poisoned");
        let base = store.checkpoint_at_or_before(version).ok_or_else(|| {
            Error::store(format!("no checkpoint at or below version {version} is retained"))
        })?;
        let state = store.load_checkpoint(base)?;
        let mut backend = B::restore(&state)?;
        for record in store.replay_records(base, version)? {
            backend.replay(&CommitPayload::decode(&record.payload)?)?;
            if backend.backend_version() != record.version {
                return Err(Error::store(format!(
                    "WAL replay reached version {} where the record claims {}",
                    backend.backend_version(),
                    record.version
                )));
            }
        }
        if backend.backend_version() != version {
            return Err(Error::store(format!(
                "version {version} is not durable (replay stopped at {})",
                backend.backend_version()
            )));
        }
        Ok(backend)
    }
}

impl<B: DurableBackend> Deref for Durable<B> {
    type Target = B;
    fn deref(&self) -> &B {
        &self.backend
    }
}

impl<B: DurableBackend> DerefMut for Durable<B> {
    fn deref_mut(&mut self) -> &mut B {
        &mut self.backend
    }
}

impl<B: DurableBackend + fmt::Debug> fmt::Debug for Durable<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Durable")
            .field("backend", &self.backend)
            .field("opts", &self.opts)
            .finish_non_exhaustive()
    }
}

/// The ingestion pipeline runs over a durable backend unchanged: one WAL
/// record per committed round (the backend's sink fires inside
/// `commit_pending`), with the checkpoint triggers evaluated between rounds.
impl<B: DurableBackend + IngestBackend> IngestBackend for Durable<B> {
    type Resolution = B::Resolution;

    fn admit(&mut self, pul: Pul, policy: pul_core::Policy, reduced: Option<Pul>) -> SubmissionId {
        self.backend.admit(pul, policy, reduced)
    }

    fn resolve_pending(&self) -> Result<B::Resolution> {
        self.backend.resolve_pending()
    }

    fn commit_pending(&mut self, resolution: B::Resolution) -> Result<BatchCommit> {
        let commit = self.backend.commit_pending(resolution)?;
        // The round is durably committed: a checkpoint failure here must not
        // fail it, or the ingest pipeline would retry (and re-apply) an
        // already-applied round. Degradation surfaces on the next round.
        // Compaction does NOT run here — a single flush can carry several
        // dependent rounds, and renumbering between them would silently
        // re-target the later rounds' identifiers. The pipeline calls
        // `maintain` at its quiescent boundaries instead.
        let checkpointed = self.checkpoint_if_due();
        self.note_maintenance(checkpointed);
        Ok(commit)
    }

    fn commit_pending_lanes(&mut self, resolution: B::Resolution) -> Result<BatchCommit> {
        let commit = self.backend.commit_pending_lanes(resolution)?;
        // Same contract as `commit_pending`: the round is already durable.
        let checkpointed = self.checkpoint_if_due();
        self.note_maintenance(checkpointed);
        Ok(commit)
    }

    fn snapshot_view(&self) -> Option<crate::Snapshot> {
        self.backend.snapshot_view()
    }

    fn maintain(&mut self) {
        // Only reached when the whole ingest pipeline is quiescent, so the
        // renumbering cannot strand any in-flight producer. Failures degrade
        // the session, surface on the next commit, and are recorded in
        // `last_maintenance_error`.
        let compacted = self.compact_if_due();
        self.note_maintenance(compacted);
    }

    fn discard(&mut self, id: SubmissionId) {
        self.backend.discard(id)
    }

    fn current_version(&self) -> u64 {
        self.backend.current_version()
    }

    fn reduction_strategy(&self) -> ReductionStrategy {
        self.backend.reduction_strategy()
    }

    fn default_policy(&self) -> pul_core::Policy {
        self.backend.default_policy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pul::UpdateOp;
    use std::path::PathBuf;
    use xdm::Tree;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xmlpul_durable_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const DOC: &str = "<lib><b1><t>A</t></b1><b2><t>B</t></b2><b3><t>C</t></b3></lib>";

    fn commit_rename(session: &mut Executor, target: &str, to: &str) {
        let id = session.document().find_element(target).unwrap();
        let pul = session.pul_from_ops(vec![UpdateOp::rename(id, to)]);
        session.submit(pul);
        session.commit().unwrap();
    }

    #[test]
    fn executor_recovers_bit_identical() {
        let dir = tmp_dir("exec_recover");
        let session = Executor::parse(DOC).unwrap();
        let mut durable = Durable::create(&dir, session, DurableOptions::default()).unwrap();
        commit_rename(&mut durable, "b1", "book");
        let pul = durable.produce("insert nodes <b4/> as last into /lib").unwrap();
        durable.submit(pul);
        durable.commit().unwrap();
        let reference = durable.backend().clone();
        drop(durable);

        let recovered: Durable<Executor> = Durable::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(recovered.version(), 2);
        assert!(recovered.document().deep_eq(reference.document()));
        assert!(recovered.labeling().deep_eq(reference.labeling()));
        recovered.assert_consistent();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovered_sessions_keep_committing_durably() {
        let dir = tmp_dir("exec_continue");
        let mut durable =
            Durable::create(&dir, Executor::parse(DOC).unwrap(), DurableOptions::default())
                .unwrap();
        commit_rename(&mut durable, "b1", "x");
        drop(durable);
        let mut durable: Durable<Executor> =
            Durable::open(&dir, DurableOptions::default()).unwrap();
        commit_rename(&mut durable, "b2", "y");
        drop(durable);
        let recovered: Durable<Executor> = Durable::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(recovered.version(), 2);
        assert!(recovered.serialize().contains("<x>"));
        assert!(recovered.serialize().contains("<y>"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_at_materialises_every_version() {
        let dir = tmp_dir("exec_read_at");
        let mut durable =
            Durable::create(&dir, Executor::parse(DOC).unwrap(), DurableOptions::default())
                .unwrap();
        let mut serializations = vec![durable.serialize()];
        for (target, to) in [("b1", "v1"), ("b2", "v2"), ("b3", "v3")] {
            commit_rename(&mut durable, target, to);
            serializations.push(durable.serialize());
        }
        // a mid-history checkpoint must not break earlier reads
        durable.checkpoint().unwrap();
        commit_rename(&mut durable, "v1", "v4");
        serializations.push(durable.serialize());

        for (v, expect) in serializations.iter().enumerate() {
            let at = durable.read_at(v as u64).unwrap();
            assert_eq!(&at.serialize(), expect, "read_at({v})");
            assert_eq!(at.version(), v as u64);
            at.assert_consistent();
        }
        assert_eq!(durable.read_at(99).unwrap_err().code(), "XPUL-E07");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_recovers_bit_identical() {
        let dir = tmp_dir("shard_recover");
        let session = ShardedExecutor::parse(DOC, 2).unwrap();
        let mut durable = Durable::create(&dir, session, DurableOptions::default()).unwrap();
        let pul = durable.pul_from_ops(vec![
            UpdateOp::rename(2u64, "book"),
            UpdateOp::ins_last(8u64, vec![Tree::element_with_text("note", "n")]),
        ]);
        durable.submit(pul);
        durable.commit().unwrap();
        let reference = durable.backend().clone();
        drop(durable);

        let recovered: Durable<ShardedExecutor> =
            Durable::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(recovered.version(), 1);
        assert_eq!(recovered.shard_count(), 2);
        for k in 0..2 {
            assert!(recovered.shard(k).document().deep_eq(reference.shard(k).document()));
            assert!(recovered.shard(k).labeling().deep_eq(reference.shard(k).labeling()));
        }
        recovered.assert_consistent();
        // and it keeps committing with correct routing
        let mut recovered = recovered;
        let pul = recovered.pul_from_ops(vec![UpdateOp::rename(5u64, "renamed")]);
        recovered.submit(pul);
        recovered.commit().unwrap();
        assert!(recovered.serialize().contains("<renamed>"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_growth_triggers_a_checkpoint() {
        let dir = tmp_dir("wal_trigger");
        let opts = DurableOptions { checkpoint_wal_bytes: 64, ..DurableOptions::default() };
        let mut durable = Durable::create(&dir, Executor::parse(DOC).unwrap(), opts).unwrap();
        assert_eq!(durable.last_checkpoint(), Some(0));
        commit_rename(&mut durable, "b1", "renamed-to-something-longer-than-the-threshold");
        assert!(durable.checkpoint_if_due().unwrap());
        assert_eq!(durable.last_checkpoint(), Some(1));
        assert_eq!(durable.wal_bytes(), 0, "checkpoint rotates the WAL");
        assert!(!durable.checkpoint_if_due().unwrap(), "no re-checkpoint at the same version");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dead_slot_churn_triggers_a_checkpoint() {
        let dir = tmp_dir("churn_trigger");
        let opts = DurableOptions {
            checkpoint_wal_bytes: u64::MAX,
            checkpoint_dead_ratio: 0.3,
            ..DurableOptions::default()
        };
        let mut durable = Durable::create(&dir, Executor::parse(DOC).unwrap(), opts).unwrap();
        let b1 = durable.document().find_element("b1").unwrap();
        let b2 = durable.document().find_element("b2").unwrap();
        let pul = durable.pul_from_ops(vec![UpdateOp::delete(b1), UpdateOp::delete(b2)]);
        durable.submit(pul);
        durable.commit().unwrap();
        assert!(durable.checkpoint_if_due().unwrap(), "churn past the ratio checkpoints");
        assert!(!durable.checkpoint_if_due().unwrap(), "churn counter rebased at the checkpoint");
        let reread = durable.read_at(1).unwrap();
        assert!(reread.document().deep_eq(durable.document()));
        reread.assert_consistent();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transaction_rollback_truncates_the_wal() {
        let dir = tmp_dir("tx_rollback");
        let mut durable =
            Durable::create(&dir, Executor::parse(DOC).unwrap(), DurableOptions::default())
                .unwrap();
        commit_rename(&mut durable, "b1", "kept");
        {
            let mut tx = durable.transaction();
            let pul = tx.produce("rename node /lib/b2 as \"discarded\"").unwrap();
            tx.submit(pul);
            tx.apply().unwrap();
            assert_eq!(tx.version(), 2);
        } // rollback: version 2's record must leave the WAL too
        assert_eq!(durable.version(), 1);
        drop(durable);
        let recovered: Durable<Executor> = Durable::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(recovered.version(), 1, "rolled-back commit must not be replayed");
        assert!(!recovered.serialize().contains("discarded"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_commits_are_logged_and_recovered() {
        let dir = tmp_dir("streaming");
        let mut durable =
            Durable::create(&dir, Executor::parse(DOC).unwrap(), DurableOptions::default())
                .unwrap();
        let pul = durable.produce("rename node /lib/b1 as \"streamed\"").unwrap();
        durable.submit(pul);
        let input = durable.serialize_identified();
        let mut output = Vec::new();
        durable.commit_streaming(&mut input.as_bytes(), &mut output).unwrap();
        let reference = durable.backend().clone();
        drop(durable);
        let recovered: Durable<Executor> = Durable::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(recovered.version(), 1);
        assert!(recovered.document().deep_eq(reference.document()));
        assert!(recovered.labeling().deep_eq(reference.labeling()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cloned_sessions_do_not_inherit_the_sink() {
        let dir = tmp_dir("clone_sink");
        let mut durable =
            Durable::create(&dir, Executor::parse(DOC).unwrap(), DurableOptions::default())
                .unwrap();
        let mut divergent = durable.backend().clone();
        commit_rename(&mut divergent, "b1", "divergent");
        commit_rename(&mut durable, "b1", "durable");
        drop(durable);
        let recovered: Durable<Executor> = Durable::open(&dir, DurableOptions::default()).unwrap();
        assert!(recovered.serialize().contains("<durable>"), "only the original's history");
        assert!(!recovered.serialize().contains("<divergent>"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ingest_queue_runs_over_a_durable_backend() {
        use crate::ingest::IngestQueue;
        let dir = tmp_dir("ingest");
        let durable =
            Durable::create(&dir, Executor::parse(DOC).unwrap(), DurableOptions::default())
                .unwrap();
        let reference = {
            let queue = IngestQueue::new(durable);
            let session = Executor::parse(DOC).unwrap();
            let b1 = session.document().find_element("b1").unwrap();
            let b2 = session.document().find_element("b2").unwrap();
            let t1 =
                queue.enqueue(session.pul_from_ops(vec![UpdateOp::rename(b1, "first")])).unwrap();
            let t2 =
                queue.enqueue(session.pul_from_ops(vec![UpdateOp::rename(b2, "second")])).unwrap();
            t1.wait().unwrap();
            t2.wait().unwrap();
            let durable = queue.close().unwrap();
            durable.backend().clone()
        };
        let recovered: Durable<Executor> = Durable::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(recovered.version(), reference.version());
        assert!(recovered.document().deep_eq(reference.document()));
        assert!(recovered.labeling().deep_eq(reference.labeling()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Zero-backoff policy: retry semantics without test-suite sleeps.
    fn fast_retry(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            op_deadline: Duration::from_secs(5),
        }
    }

    #[test]
    fn transient_faults_are_retried_and_the_commit_succeeds() {
        use pul_store::{FaultKind, FaultPlan, Trigger};
        let dir = tmp_dir("retry_transient");
        let opts = DurableOptions { retry: fast_retry(4), ..DurableOptions::default() };
        let mut durable = Durable::create(&dir, Executor::parse(DOC).unwrap(), opts).unwrap();
        let faults =
            FaultPlan::new(1).fail(site::WAL_APPEND, Trigger::Nth(1), FaultKind::Transient).arm();
        durable.inject_faults(faults.clone());
        commit_rename(&mut durable, "b1", "retried");
        assert_eq!(faults.injected_at(site::WAL_APPEND), 1, "the fault fired once");
        assert!(!durable.is_degraded());
        let reference = durable.backend().clone();
        drop(durable);
        let recovered: Durable<Executor> = Durable::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(recovered.version(), 1);
        assert!(recovered.document().deep_eq(reference.document()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn permanent_faults_fail_the_commit_but_not_the_session() {
        use pul_store::{FaultKind, FaultPlan, Trigger};
        let dir = tmp_dir("permanent_fault");
        let opts = DurableOptions { retry: fast_retry(4), ..DurableOptions::default() };
        let mut durable = Durable::create(&dir, Executor::parse(DOC).unwrap(), opts).unwrap();
        durable.inject_faults(
            FaultPlan::new(1).fail(site::SINK_COMMIT, Trigger::Nth(1), FaultKind::Permanent).arm(),
        );
        let before = durable.serialize();
        let id = durable.document().find_element("b1").unwrap();
        let pul = durable.pul_from_ops(vec![UpdateOp::rename(id, "kept")]);
        durable.submit(pul);
        let err = durable.commit().unwrap_err();
        assert_eq!(err.code(), "XPUL-E07", "{err}");
        assert!(!err.is_transient());
        assert!(!durable.is_degraded(), "a permanent fault does not degrade the session");
        assert_eq!(durable.serialize(), before, "the failed commit rewound bit-identically");
        assert_eq!(durable.version(), 0);
        durable.assert_consistent();
        // The failed submission is still pending (the rewind restored the
        // pre-commit state exactly): an explicit caller retry goes through
        // now that the injected fault is spent.
        durable.commit().unwrap();
        drop(durable);
        let recovered: Durable<Executor> = Durable::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(recovered.version(), 1);
        assert!(recovered.serialize().contains("<kept>"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exhausted_retries_degrade_the_session_stickily() {
        use pul_store::{FaultKind, FaultPlan, Trigger};
        let dir = tmp_dir("degraded_sticky");
        let opts = DurableOptions { retry: fast_retry(2), ..DurableOptions::default() };
        let mut durable = Durable::create(&dir, Executor::parse(DOC).unwrap(), opts).unwrap();
        commit_rename(&mut durable, "b1", "durable");
        let faults =
            FaultPlan::new(1).fail(site::SINK_COMMIT, Trigger::Always, FaultKind::Transient).arm();
        durable.inject_faults(faults.clone());
        let id = durable.document().find_element("b2").unwrap();
        let pul = durable.pul_from_ops(vec![UpdateOp::rename(id, "refused")]);
        durable.submit(pul);
        let err = durable.commit().unwrap_err();
        assert_eq!(err.code(), "XPUL-E09", "{err}");
        assert!(durable.is_degraded());
        assert_eq!(faults.injected_at(site::SINK_COMMIT), 3, "initial attempt + 2 retries");
        // Sticky: every further write path is refused with E09 without
        // touching the failpoint again — including checkpoint_if_due.
        let id = durable.document().find_element("b3").unwrap();
        let pul = durable.pul_from_ops(vec![UpdateOp::rename(id, "still-refused")]);
        durable.submit(pul);
        assert_eq!(durable.commit().unwrap_err().code(), "XPUL-E09");
        assert_eq!(durable.checkpoint_if_due().unwrap_err().code(), "XPUL-E09");
        assert_eq!(durable.checkpoint().unwrap_err().code(), "XPUL-E09");
        assert_eq!(faults.injected_at(site::SINK_COMMIT), 3, "degraded mode short-circuits");
        // Reads still work in degraded mode.
        assert!(durable.read_at(1).unwrap().serialize().contains("<durable>"));
        drop(durable);
        // Reopening the store is the recovery path: the durable prefix is
        // intact and the fresh session accepts commits again.
        let mut recovered: Durable<Executor> =
            Durable::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(recovered.version(), 1);
        assert!(!recovered.is_degraded());
        assert!(!recovered.serialize().contains("refused"));
        commit_rename(&mut recovered, "b2", "healed");
        assert_eq!(recovered.version(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_writes_poison_the_wal_until_a_checkpoint_heals_it() {
        use pul_store::{FaultKind, FaultPlan, Trigger};
        let dir = tmp_dir("torn_heal");
        let opts = DurableOptions { retry: fast_retry(2), ..DurableOptions::default() };
        let mut durable = Durable::create(&dir, Executor::parse(DOC).unwrap(), opts).unwrap();
        commit_rename(&mut durable, "b1", "before");
        durable.inject_faults(
            FaultPlan::new(1).fail(site::WAL_APPEND, Trigger::Nth(1), FaultKind::Torn).arm(),
        );
        let id = durable.document().find_element("b2").unwrap();
        let pul = durable.pul_from_ops(vec![UpdateOp::rename(id, "torn")]);
        durable.submit(pul);
        let err = durable.commit().unwrap_err();
        assert_eq!(err.code(), "XPUL-E07", "{err}");
        assert_eq!(durable.version(), 1, "the torn commit rewound");
        // The WAL tail now holds torn bytes: appends are refused until the
        // log rotates. A checkpoint rotates and heals.
        durable.checkpoint().unwrap();
        commit_rename(&mut durable, "b2", "after");
        let reference = durable.backend().clone();
        drop(durable);
        let recovered: Durable<Executor> = Durable::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(recovered.version(), 2);
        assert!(recovered.document().deep_eq(reference.document()));
        recovered.assert_consistent();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn payload_codec_round_trips() {
        let session = Executor::parse(DOC).unwrap();
        let b1 = session.document().find_element("b1").unwrap();
        let pul = session.pul_from_ops(vec![
            UpdateOp::rename(b1, "renamed"),
            UpdateOp::ins_last(b1, vec![Tree::element_with_text("note", "n")]),
        ]);
        let bytes = CommitRecord::Delta { pul: &pul, preserve_content_ids: true }.encode();
        match CommitPayload::decode(&bytes).unwrap() {
            CommitPayload::Delta { pul: decoded, preserve_content_ids } => {
                assert_eq!(decoded.len(), pul.len());
                assert_eq!(decoded.targets(), pul.targets());
                assert!(preserve_content_ids, "the identifier discipline rides the record");
            }
            other => panic!("wrong payload kind: {other:?}"),
        }
        let bytes =
            CommitRecord::Sharded { puls: &[pul.clone(), Pul::new()], preserve_content_ids: false }
                .encode();
        match CommitPayload::decode(&bytes).unwrap() {
            CommitPayload::Sharded { puls: decoded, preserve_content_ids } => {
                assert_eq!(decoded.len(), 2);
                assert_eq!(decoded[0].len(), pul.len());
                assert!(decoded[1].is_empty());
                assert!(!preserve_content_ids);
            }
            other => panic!("wrong payload kind: {other:?}"),
        }
        let bytes = CommitRecord::Swap("<r xml:id=\"1\"/>").encode();
        assert!(matches!(CommitPayload::decode(&bytes).unwrap(), CommitPayload::Swap(_)));
        assert_eq!(CommitPayload::decode(b"").unwrap_err().code(), "XPUL-E07");
        assert_eq!(CommitPayload::decode(b"Zjunk").unwrap_err().code(), "XPUL-E07");
        // a D/S record truncated before its discipline byte is corrupt
        assert_eq!(CommitPayload::decode(b"D").unwrap_err().code(), "XPUL-E07");
        assert_eq!(CommitPayload::decode(b"DXjunk").unwrap_err().code(), "XPUL-E07");
    }
}
