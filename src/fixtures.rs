//! Shared fixtures: the SigmodRecord fragment of Figure 1.
//!
//! The paper's running example is a fragment of the SigmodRecord document. The
//! exact node identifiers used by the paper (1–19) are reproduced here so that
//! the tests mirroring Examples 1–9 can be written with the same numbers:
//!
//! ```text
//! 1  issue
//! 2    volume          3    "30"            (text)
//! 4    paper
//! 5      title         6    "Database Replication …"   (text)
//! 7      author        8    "A.Chaudhri"    (text)
//! 9      initPage      (attribute of paper 4, value "12")
//! 10   paper
//! 11     title         12   "XML Views"     (text)
//! 13     initPage      (attribute of paper 10, value "87")
//! 14     abstract      15   "Report on …"   (text)
//! 16     authors
//! 17       author      18   "B.Catania"     (text)
//! 19       author      20   "E.Ferrari"     (text)
//! ```

use xdm::{Document, NodeId};
use xlabel::Labeling;

/// Builds the Figure 1 fixture with the identifiers listed in the module
/// documentation, and its labeling.
pub fn figure1() -> (Document, Labeling) {
    let mut d = Document::new();
    let issue = d.new_element_with_id(1u64, "issue").unwrap();
    d.set_root(issue).unwrap();

    let volume = d.new_element_with_id(2u64, "volume").unwrap();
    let volume_text = d.new_text_with_id(3u64, "30").unwrap();
    d.append_child(issue, volume).unwrap();
    d.append_child(volume, volume_text).unwrap();

    let paper1 = d.new_element_with_id(4u64, "paper").unwrap();
    d.append_child(issue, paper1).unwrap();
    let title1 = d.new_element_with_id(5u64, "title").unwrap();
    let title1_text = d.new_text_with_id(6u64, "Database Replication Techniques").unwrap();
    d.append_child(paper1, title1).unwrap();
    d.append_child(title1, title1_text).unwrap();
    let author1 = d.new_element_with_id(7u64, "author").unwrap();
    let author1_text = d.new_text_with_id(8u64, "A.Chaudhri").unwrap();
    d.append_child(paper1, author1).unwrap();
    d.append_child(author1, author1_text).unwrap();
    let init_page1 = d.new_attribute_with_id(9u64, "initPage", "12").unwrap();
    d.add_attribute(paper1, init_page1).unwrap();

    let paper2 = d.new_element_with_id(10u64, "paper").unwrap();
    d.append_child(issue, paper2).unwrap();
    let title2 = d.new_element_with_id(11u64, "title").unwrap();
    let title2_text = d.new_text_with_id(12u64, "XML Views").unwrap();
    d.append_child(paper2, title2).unwrap();
    d.append_child(title2, title2_text).unwrap();
    let init_page2 = d.new_attribute_with_id(13u64, "initPage", "87").unwrap();
    d.add_attribute(paper2, init_page2).unwrap();
    let abstract_el = d.new_element_with_id(14u64, "abstract").unwrap();
    let abstract_text = d.new_text_with_id(15u64, "Report on the workshop").unwrap();
    d.append_child(paper2, abstract_el).unwrap();
    d.append_child(abstract_el, abstract_text).unwrap();
    let authors = d.new_element_with_id(16u64, "authors").unwrap();
    d.append_child(paper2, authors).unwrap();
    let author2 = d.new_element_with_id(17u64, "author").unwrap();
    let author2_text = d.new_text_with_id(18u64, "B.Catania").unwrap();
    d.append_child(authors, author2).unwrap();
    d.append_child(author2, author2_text).unwrap();
    let author3 = d.new_element_with_id(19u64, "author").unwrap();
    let author3_text = d.new_text_with_id(20u64, "E.Ferrari").unwrap();
    d.append_child(authors, author3).unwrap();
    d.append_child(author3, author3_text).unwrap();

    let labeling = Labeling::assign(&d);
    (d, labeling)
}

/// Shorthand for `NodeId::new`, handy when mirroring the paper's numbering.
pub fn n(id: u64) -> NodeId {
    NodeId::new(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdm::NodeKind;

    #[test]
    fn figure1_shape_and_ids() {
        let (d, labels) = figure1();
        assert_eq!(d.node_count(), 20);
        assert_eq!(d.name(n(1)).unwrap(), Some("issue"));
        assert_eq!(d.kind(n(9)).unwrap(), NodeKind::Attribute);
        assert_eq!(d.kind(n(15)).unwrap(), NodeKind::Text);
        assert_eq!(d.children(n(16)).unwrap().len(), 2, "two authors in the second paper");
        assert!(labels.is_child(n(17), n(16)));
        assert!(labels.is_descendant(n(20), n(10)));
        assert!(labels.is_attribute(n(13), n(10)));
        assert!(labels.precedes(n(4), n(10)));
    }
}
