//! The unified observability surface: one [`TelemetrySnapshot`] gathering the
//! metric registry of [`pul_telemetry`], the session's slab/cache/pool
//! statistics, and the tail of the structured event journal.
//!
//! The pre-existing getters ([`Executor::slab_stats`](crate::Executor),
//! [`Executor::cache_stats`](crate::Executor),
//! [`Executor::pool_stats`](crate::Executor) and the sharded/ingest
//! equivalents) remain as thin views of the same state; new code should read
//! everything through `telemetry_snapshot()` and, for scrape-style export,
//! [`TelemetrySnapshot::render_text`].

use pul_store::PoolStats;
use pul_telemetry::{Event, MetricsSnapshot, Telemetry};

use crate::executor::{CacheStats, SessionSlabStats};

/// A point-in-time freeze of everything a session can tell about itself:
/// the telemetry registry (when armed), the always-available structural
/// statistics, and the most recent journal events.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// The frozen metric registry — `None` when no telemetry handle was
    /// armed (the structural statistics below are collected regardless).
    pub metrics: Option<MetricsSnapshot>,
    /// Slot occupancy of the dense id-indexed stores (node arena, labeling).
    pub slab: SessionSlabStats,
    /// Hit/miss counters of the wire-submission reduction cache (always zero
    /// for surfaces without one, e.g. the sharded executor).
    pub reduction_cache: CacheStats,
    /// Reuse counters of the session's recycled scratch pools.
    pub pools: PoolStats,
    /// The tail of the bounded event journal, oldest first (empty when
    /// telemetry is disabled).
    pub recent_events: Vec<Event>,
    /// Events evicted from the journal ring since arming.
    pub events_dropped: u64,
}

impl TelemetrySnapshot {
    /// Assembles a snapshot from a telemetry handle plus the structural
    /// statistics the owning surface collects for itself.
    pub(crate) fn gather(
        telemetry: &Telemetry,
        slab: SessionSlabStats,
        reduction_cache: CacheStats,
        pools: PoolStats,
    ) -> TelemetrySnapshot {
        TelemetrySnapshot {
            metrics: telemetry.snapshot(),
            slab,
            reduction_cache,
            pools,
            recent_events: telemetry.recent_events(),
            events_dropped: telemetry.events_dropped(),
        }
    }

    /// Prometheus-style text exposition: the registry series first (when
    /// armed), then the structural statistics as gauges. Deterministic
    /// ordering, suitable for golden tests and scrape endpoints.
    pub fn render_text(&self) -> String {
        let mut out = match &self.metrics {
            Some(metrics) => metrics.render_text(),
            None => String::new(),
        };
        let mut gauge = |name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP xmlpul_{name} {help}\n# TYPE xmlpul_{name} gauge\nxmlpul_{name} {v}\n"
            ));
        };
        gauge(
            "slab_nodes_live",
            "Live dense slots in the node arena.",
            self.slab.nodes.live as u64,
        );
        gauge(
            "slab_nodes_dead",
            "Dead (never-reused) dense slots in the node arena.",
            self.slab.nodes.dead as u64,
        );
        gauge(
            "slab_nodes_spill",
            "Sparse spill entries of the node arena.",
            self.slab.nodes.spill as u64,
        );
        gauge(
            "slab_labels_live",
            "Live dense slots in the label store.",
            self.slab.labels.live as u64,
        );
        gauge(
            "slab_labels_dead",
            "Dead (never-reused) dense slots in the label store.",
            self.slab.labels.dead as u64,
        );
        gauge(
            "slab_labels_spill",
            "Sparse spill entries of the label store.",
            self.slab.labels.spill as u64,
        );
        gauge(
            "slab_epoch",
            "Compaction epoch the slab statistics were taken under.",
            self.slab.epoch,
        );
        gauge(
            "reduction_cache_hits",
            "Wire submissions whose reduction came from the cache.",
            self.reduction_cache.hits,
        );
        gauge(
            "reduction_cache_misses",
            "Wire submissions that had to be reduced.",
            self.reduction_cache.misses,
        );
        gauge("pool_reused", "Scratch objects served from the idle pool.", self.pools.reused);
        gauge(
            "pool_minted",
            "Scratch objects created because the pool was empty.",
            self.pools.minted,
        );
        gauge(
            "pool_trimmed",
            "Idle scratch objects dropped or shrunk by trimming.",
            self.pools.trimmed,
        );
        gauge("pool_idle", "Scratch objects currently idle in the pool.", self.pools.idle as u64);
        gauge(
            "events_dropped",
            "Events evicted from the bounded journal ring.",
            self.events_dropped,
        );
        out
    }
}
