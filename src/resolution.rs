//! The typed outcome of [`Executor::resolve`](crate::Executor::resolve).
//!
//! A [`Resolution`] is the result of reasoning on everything submitted to a
//! session — each producer PUL reduced, all of them integrated, the detected
//! conflicts reconciled under the producer policies, and the survivor reduced
//! once more — *without the document having been touched*. It carries the
//! final PUL together with a full conflict report, and remembers the executor
//! version it was computed against so a stale resolution can never be
//! committed over a newer document.

use std::collections::BTreeMap;
use std::fmt;

use pul::Pul;
use pul_core::{Conflict, ConflictType};

/// The outcome of the reduce → integrate → reconcile → aggregate reasoning
/// pass over a session's submissions.
#[derive(Debug, Clone)]
pub struct Resolution {
    pub(crate) version: u64,
    pub(crate) submission_ids: Vec<crate::SubmissionId>,
    pub(crate) pul: Pul,
    pub(crate) conflicts: Vec<Conflict>,
    pub(crate) submitted_puls: usize,
    pub(crate) submitted_ops: usize,
}

impl Resolution {
    /// The single PUL that, applied to the session document, realises every
    /// non-excluded submitted operation.
    pub fn pul(&self) -> &Pul {
        &self.pul
    }

    /// Consumes the resolution, returning its PUL.
    pub fn into_pul(self) -> Pul {
        self.pul
    }

    /// The conflicts detected while integrating the submissions (all of them
    /// were solved under the producer policies, or `resolve` would have
    /// failed).
    pub fn conflicts(&self) -> &[Conflict] {
        &self.conflicts
    }

    /// Whether the submissions integrated without any conflict (in which case
    /// the resolution coincides with the W3C merge, Prop. 2).
    pub fn is_conflict_free(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// Conflict counts per type, for reporting.
    pub fn conflict_counts(&self) -> BTreeMap<ConflictType, usize> {
        let mut out = BTreeMap::new();
        for c in &self.conflicts {
            *out.entry(c.ctype).or_insert(0) += 1;
        }
        out
    }

    /// The executor version this resolution was computed against.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// How many PULs went into the resolution.
    pub fn submitted_puls(&self) -> usize {
        self.submitted_puls
    }

    /// How many operations the submissions contained in total.
    pub fn submitted_ops(&self) -> usize {
        self.submitted_ops
    }

    /// How many operations survived reduction, reconciliation and the final
    /// reduction.
    pub fn resolved_ops(&self) -> usize {
        self.pul.len()
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resolution@v{}: {} PULs / {} ops -> {} ops, {} conflicts",
            self.version,
            self.submitted_puls,
            self.submitted_ops,
            self.pul.len(),
            self.conflicts.len()
        )
    }
}
