//! Sharded executors: one document, N independent single-threaded cores.
//!
//! The labeling of §4.1 assigns every node a containment interval in a
//! totally ordered key space, and intervals of disjoint subtrees are
//! disjoint. [`ShardedExecutor`] exploits exactly that property: the
//! authoritative document is partitioned **by top-level subtree** into N
//! contiguous slices, each owned by its own [`ExecutorCore`] (document +
//! labeling slice + apply journal), and a router dispatches every submitted
//! operation to the shard whose [`LabelInterval`] contains its target label.
//!
//! ```text
//!                          ┌────────── ShardedExecutor ──────────┐
//!  producers ──submit()──▶ │ reduce → split by label interval    │
//!  (PULs, wire XML)        │   ├─ shard 0: integrate·reconcile ─┐│
//!                          │   ├─ shard 1: integrate·reconcile ─┤│──commit()─▶ D'
//!                          │   └─ shard k: integrate·reconcile ─┘│  (two-phase
//!                          └─────────────────────────────────────┘   journal)
//! ```
//!
//! **Routing.** Shard `k` owns the half-open key slice `[b_k, b_{k+1})`,
//! where the boundary keys are generated *between* the label hulls of
//! neighbouring runs of top-level subtrees at construction time. Because new
//! labels are always generated strictly inside the owning shard's synthetic
//! root interval, the slices stay disjoint for the lifetime of the session —
//! a node inserted by commit 7 routes correctly in commit 8 without any
//! routing-table maintenance. Operations targeting the root element itself
//! are routed by kind (`ins↙`/`ins↓`/attributes/rename to the first shard,
//! `ins↘` to the last); whole-root replacements (`del`/`repN`/`repC` on the
//! root) would cross every shard and are rejected with `XPUL-E05`.
//!
//! **Independence.** A PUL whose targets fall inside one shard's interval is
//! provably independent of every other shard: reduction rules pair
//! operations related by Table-1 predicates (same target, descendant,
//! sibling), conflicts arise on a shared target or along an
//! ancestor/descendant chain, and none of these relations crosses two
//! disjoint top-level subtrees. Each shard therefore reduces, integrates and
//! reconciles its sub-PULs in isolation. The only cross-boundary pairs the
//! global Fig. 2 reduction could additionally merge are the sibling-gap
//! rules (I18/IR19/IR20) on the two nodes flanking a shard boundary; those
//! merges are *result-neutral* under the deterministic apply order — both
//! sides insert into the same gap in the same order — so the committed
//! document is bit-identical to a single executor's (the
//! `randomized_differential` suite proves this over hundreds of seeded
//! document/PUL pairs).
//!
//! **Two-phase commit.** Shards apply their slices one after the other, each
//! inside an open journal scope. Any shard's failure replays *every* open
//! scope — the PR 3 inverse journal — restoring the global pre-commit state
//! at O(change) cost; success closes the scopes and bumps the session
//! version. Fresh node identifiers stay globally unique across shard
//! documents through an *identifier fence* ([`xdm::Document::reserve_ids`])
//! threaded from shard to shard.

use std::collections::HashMap;
use std::sync::Arc;

use pul::apply::{ApplyOptions, JournalStats};
use pul::{OpName, Pul, UpdateOp};
use pul_core::{integrate, reconcile_integration, Conflict, Policy};
use pul_store::{site, Faults, PoolStats, SharedPool};
use pul_telemetry::{EventKind, Telemetry};
use xdm::{Document, NodeId, SharedDocument};
use xlabel::{LabelInterval, Labeling, NodeLabel, OrderKey};

use crate::durable::{CommitRecord, SharedSink, SinkSlot};
use crate::error::{Error, Result};
use crate::executor::{
    check_resolution_fresh, CompactionReport, CoreScope, ExecutorCore, ReductionStrategy,
    SessionSlabStats, SubmissionId, DEFAULT_POOL_IDLE,
};
use crate::ingest::{BatchCommit, IngestBackend};
use crate::snapshot::{Snapshot, SnapshotCache};

/// One shard: an executor core over a slice of the document, plus the label
/// interval it owns for routing.
#[derive(Debug, Clone)]
struct Shard {
    core: ExecutorCore,
    interval: LabelInterval,
}

/// A pending producer submission (the full, unsplit PUL: splitting happens at
/// resolve time, against the reduced form). Submissions admitted through the
/// ingestion pipeline carry their reduction along, so `resolve` skips
/// reducing them.
#[derive(Debug, Clone)]
struct ShardedSubmission {
    id: SubmissionId,
    pul: Pul,
    policy: Policy,
    pre_reduced: Option<Pul>,
    /// The compaction epoch the submission was admitted under; fenced at
    /// resolve time with `XPUL-E10` (compaction renumbers every identifier).
    epoch: u64,
}

/// The outcome of a sharded resolve: one resolved PUL per shard, ready for
/// the two-phase commit, plus the union of the per-shard conflict reports.
#[derive(Debug, Clone)]
pub struct ShardedResolution {
    pub(crate) version: u64,
    pub(crate) submission_ids: Vec<SubmissionId>,
    pub(crate) per_shard: Vec<Pul>,
    pub(crate) conflicts: Vec<Conflict>,
}

impl ShardedResolution {
    /// The resolved sub-PUL of each shard (empty PULs for untouched shards).
    pub fn per_shard(&self) -> &[Pul] {
        &self.per_shard
    }

    /// The conflicts detected across all shards.
    pub fn conflicts(&self) -> &[Conflict] {
        &self.conflicts
    }

    /// Whether every shard integrated without conflicts.
    pub fn is_conflict_free(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// Total operations surviving resolution, across all shards.
    pub fn resolved_ops(&self) -> usize {
        self.per_shard.iter().map(|p| p.len()).sum()
    }

    /// The session version this resolution was computed against.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// Summary of a successful sharded commit.
#[derive(Debug, Clone)]
pub struct ShardedCommitReport {
    /// The session version produced by the commit.
    pub version: u64,
    /// Total operations applied across all shards.
    pub applied_ops: usize,
    /// Operations applied by each shard.
    pub per_shard_ops: Vec<usize>,
    /// The conflicts that were detected (and solved) on the way.
    pub conflicts: Vec<Conflict>,
    /// Journal entries recorded across all shards during the two-phase apply.
    pub journal: JournalStats,
}

/// A sharded executor session: N single-threaded [`ExecutorCore`] shards
/// behind one submit → resolve → commit façade, with label-interval routing
/// and a two-phase journal commit. See the module documentation for the
/// architecture.
#[derive(Debug, Clone)]
pub struct ShardedExecutor {
    shards: Vec<Shard>,
    root_id: NodeId,
    /// The *global* root label (`[start, end]` spanning every shard), attached
    /// to root-targeted operations by [`pul_from_ops`]
    /// (ShardedExecutor::pul_from_ops) so their reduction sees the true
    /// whole-document interval rather than one shard's synthetic slice.
    root_label: NodeLabel,
    default_policy: Policy,
    strategy: ReductionStrategy,
    submissions: Vec<ShardedSubmission>,
    next_submission: u64,
    version: u64,
    /// The compaction epoch (see [`Executor::epoch`](crate::Executor::epoch)):
    /// bumped by every [`compact`](ShardedExecutor::compact), fencing all
    /// identifiers submitted before the renumbering.
    epoch: u64,
    /// Aggregate dead slots right after construction or the last compaction:
    /// every shard document copies the root and skips the slices owned by its
    /// siblings, so its arena carries a *structural* gap of dead slots that no
    /// renumbering can reclaim. Only dead slots above this floor are churn.
    dead_floor: usize,
    /// Recycled per-shard resolve scratch: the inner sub-PUL vectors of the
    /// split phase. Clones share the pool; capacity 0 disables pooling.
    scratch: SharedPool<Vec<Pul>>,
    /// The durability hook (see [`Executor`](crate::Executor)'s field of the
    /// same name): under a sink the WAL append becomes the commit point of
    /// the two-phase protocol — it happens while every shard scope is still
    /// open, so an append failure aborts exactly like a shard failure.
    sink: SinkSlot,
    /// Failpoint handle consulted before each shard applies its sub-PUL
    /// (disabled unless a test injects a plan).
    faults: Faults,
    /// Memoized MVCC snapshots of the reassembled document, keyed by
    /// `(version, epoch)`: repeated [`document`](ShardedExecutor::document) /
    /// [`serialize`](ShardedExecutor::serialize) calls between commits stop
    /// re-grafting the whole tree. Clones start cold.
    snapshots: SnapshotCache,
    /// Telemetry handle (see [`Executor`](crate::Executor)'s field of the same
    /// name): disabled by default, a single branch per probe; clones share the
    /// installed registry.
    telemetry: Telemetry,
}

impl ShardedExecutor {
    // ------------------------------------------------------------ construction

    /// Partitions `doc` by top-level subtree into `n_shards` contiguous,
    /// balanced slices and opens one executor core per slice. The labeling is
    /// assigned once, globally, and sliced — no label is ever re-keyed, so
    /// labels carried by producer PULs route correctly against any shard
    /// count.
    pub fn new(doc: Document, n_shards: usize) -> Result<Self> {
        if n_shards == 0 {
            return Err(Error::Shard("at least one shard is required".into()));
        }
        let root_id = doc
            .root()
            .ok_or_else(|| Error::Shard("cannot shard a document without a root".into()))?;
        let global = Labeling::assign(&doc);
        let root_label = global.require(root_id).clone();
        let children: Vec<NodeId> = doc.children(root_id)?.to_vec();
        let root_attrs: Vec<NodeId> = doc.attributes(root_id)?.to_vec();

        // Contiguous balanced partition: sizes differ by at most one, trailing
        // groups may be empty when there are fewer subtrees than shards.
        let base = children.len() / n_shards;
        let extra = children.len() % n_shards;
        let mut groups: Vec<&[NodeId]> = Vec::with_capacity(n_shards);
        let mut at = 0usize;
        for k in 0..n_shards {
            let size = base + usize::from(k < extra);
            groups.push(&children[at..at + size]);
            at += size;
        }

        // Boundary keys: b_k strictly between the previous run's label hull
        // (or the last root attribute — attribute keys live between the root's
        // start and its first child) and the next run's hull. Every label a
        // shard will ever generate stays strictly inside its synthetic root
        // interval [b_k, b_{k+1}), so the slices stay disjoint forever.
        let hulls: Vec<Option<LabelInterval>> = groups
            .iter()
            .map(|g| LabelInterval::hull(g.iter().map(|&c| global.require(c))))
            .collect();
        let mut cursor = root_attrs
            .last()
            .map(|&a| global.require(a).end.clone())
            .unwrap_or_else(|| root_label.start.clone());
        let mut los: Vec<OrderKey> = Vec::with_capacity(n_shards);
        for (k, hull) in hulls.iter().enumerate() {
            if k == 0 {
                los.push(root_label.start.clone());
            } else {
                let next_start = hulls[k..]
                    .iter()
                    .flatten()
                    .next()
                    .map(|h| h.lo().clone())
                    .unwrap_or_else(|| root_label.end.clone());
                los.push(OrderKey::between(&cursor, &next_start));
            }
            match hull {
                Some(h) => cursor = h.hi().clone(),
                None if k > 0 => cursor = los[k].clone(),
                None => {}
            }
        }

        let mut shards = Vec::with_capacity(n_shards);
        for (k, group) in groups.iter().enumerate() {
            let lo = los[k].clone();
            let hi = if k + 1 < n_shards { los[k + 1].clone() } else { root_label.end.clone() };
            let interval = LabelInterval::new(lo.clone(), hi.clone());

            // Shard document: a copy of the root element (same identifier),
            // the root attributes (first shard only — it is the root
            // authority), and this slice's subtrees, identifiers preserved.
            let mut sdoc = Document::with_first_id(doc.next_id());
            let root_name = doc.name(root_id)?.unwrap_or("").to_string();
            let sroot = sdoc.new_element_with_id(root_id, root_name)?;
            sdoc.set_root(sroot)?;
            if k == 0 {
                for &a in &root_attrs {
                    let (na, _) = sdoc.graft(&doc, a, true)?;
                    sdoc.add_attribute(sroot, na)?;
                }
            }
            for &c in group.iter() {
                let (nc, _) = sdoc.graft(&doc, c, true)?;
                sdoc.append_child(sroot, nc)?;
            }

            // Shard labeling: the global labels, bit-identical, except for the
            // root copy, whose interval is narrowed to the shard's slice so
            // that keys generated for future insertions stay inside it.
            // Sibling metadata of the top-level children is refreshed to be
            // shard-local (the shard's first child has no left sibling *here*).
            let mut slabels = Labeling::new();
            // Root label first: it carries the smallest identifier, and the
            // label slab anchors its dense range at the first insert —
            // inserting it last would strand it in the spill map.
            let mut shard_root = root_label.clone();
            shard_root.start = lo;
            shard_root.end = hi;
            slabels.insert(shard_root);
            for id in sdoc.preorder_from_root() {
                if id == root_id {
                    continue;
                }
                slabels.insert(global.require(id).clone());
            }
            slabels.refresh_sibling_flags(&sdoc, root_id);

            shards.push(Shard { core: ExecutorCore::from_parts(sdoc, slabels), interval });
        }

        let mut session = ShardedExecutor {
            shards,
            root_id,
            root_label,
            default_policy: Policy::default(),
            strategy: ReductionStrategy::default(),
            submissions: Vec::new(),
            next_submission: 0,
            version: 0,
            epoch: 0,
            dead_floor: 0,
            scratch: SharedPool::new(DEFAULT_POOL_IDLE),
            sink: SinkSlot::default(),
            faults: Faults::disabled(),
            snapshots: SnapshotCache::default(),
            telemetry: Telemetry::disabled(),
        };
        session.dead_floor = session.slab_stats().nodes.dead;
        Ok(session)
    }

    /// Rebuilds a session from restored parts (checkpoint recovery): the
    /// shard cores and routing intervals exactly as snapshotted, the root
    /// identity, and the session version. Session configuration (policy,
    /// strategy) reverts to the defaults — it is not part of durable state.
    pub(crate) fn from_restored(
        shards: Vec<(ExecutorCore, LabelInterval)>,
        root_id: NodeId,
        root_label: NodeLabel,
        version: u64,
    ) -> Self {
        let mut session = ShardedExecutor {
            shards: shards.into_iter().map(|(core, interval)| Shard { core, interval }).collect(),
            root_id,
            root_label,
            default_policy: Policy::default(),
            strategy: ReductionStrategy::default(),
            submissions: Vec::new(),
            next_submission: 0,
            version,
            epoch: 0,
            dead_floor: 0,
            scratch: SharedPool::new(DEFAULT_POOL_IDLE),
            sink: SinkSlot::default(),
            faults: Faults::disabled(),
            snapshots: SnapshotCache::default(),
            telemetry: Telemetry::disabled(),
        };
        // A restored arena mixes structural and churn dead slots and the split
        // is not recorded; floor at the current count — conservative (never
        // over-triggers compaction), self-correcting at the next compaction.
        session.dead_floor = session.slab_stats().nodes.dead;
        session
    }

    /// The root element identifier and global root label (checkpointing).
    pub(crate) fn root_identity(&self) -> (NodeId, &NodeLabel) {
        (self.root_id, &self.root_label)
    }

    /// Installs (or removes) the commit sink (see [`Executor::set_sink`]
    /// (crate::Executor)).
    pub(crate) fn set_sink(&mut self, sink: Option<SharedSink>) {
        self.sink.set(sink);
    }

    /// Installs the failpoint handle consulted in the two-phase commit.
    pub(crate) fn set_faults(&mut self, faults: Faults) {
        self.faults = faults;
    }

    /// Installs a telemetry handle: commit/lane timings, snapshot cache
    /// probes, and structured events are recorded into its registry. Pass
    /// [`Telemetry::disabled`] to turn instrumentation back off.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The installed telemetry handle (disabled unless
    /// [`set_telemetry`](ShardedExecutor::set_telemetry) armed one).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Opens a sharded session on the document serialized in `xml`.
    pub fn parse(xml: &str, n_shards: usize) -> Result<Self> {
        ShardedExecutor::new(xdm::parser::parse_document(xml)?, n_shards)
    }

    /// Sets the policy assumed for submissions that do not carry their own
    /// (builder style).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.default_policy = policy;
        self
    }

    /// Sets the reduction strategy (builder style). Applied both to each
    /// submission before splitting and to every shard's reconciled survivor.
    pub fn reduction(mut self, strategy: ReductionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the apply options of every shard (builder style).
    pub fn apply_options(mut self, options: ApplyOptions) -> Self {
        for shard in &mut self.shards {
            shard.core.set_apply_options(options.clone());
        }
        self
    }

    /// Sets the resolve-scratch pool retention (builder style). A capacity of
    /// 0 disables pooling — the unpooled baseline the benches compare against.
    pub fn pooling(mut self, max_idle: usize) -> Self {
        self.scratch = SharedPool::new(max_idle);
        self
    }

    /// The identifier discipline the shards currently apply under. Every
    /// shard shares one set of apply options, so the first shard speaks for
    /// all of them.
    pub(crate) fn preserve_content_ids(&self) -> bool {
        self.shards.first().is_some_and(|s| s.core.apply_options().preserve_content_ids)
    }

    /// Flips the identifier discipline on every shard, returning the
    /// previous one. WAL replay uses this to re-apply a record under the
    /// discipline it was committed with, then restore the session's own.
    pub(crate) fn set_preserve_content_ids(&mut self, preserve: bool) -> bool {
        let previous = self.preserve_content_ids();
        for shard in &mut self.shards {
            let mut options = shard.core.apply_options().clone();
            options.preserve_content_ids = preserve;
            shard.core.set_apply_options(options);
        }
        previous
    }

    // -------------------------------------------------------------- inspection

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The executor core of shard `k`.
    pub fn shard(&self, k: usize) -> &ExecutorCore {
        &self.shards[k].core
    }

    /// The label interval shard `k` routes on.
    pub fn shard_interval(&self, k: usize) -> &LabelInterval {
        &self.shards[k].interval
    }

    /// The session version: 0 at start, +1 per successful commit.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of submissions waiting to be resolved.
    pub fn pending(&self) -> usize {
        self.submissions.len()
    }

    /// The session's compaction epoch: 0 at start, +1 per
    /// [`compact`](ShardedExecutor::compact).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Behaviour counters of the pooled resolve scratch.
    pub fn pool_stats(&self) -> PoolStats {
        self.scratch.stats()
    }

    /// The unified observability snapshot (see
    /// [`Executor::telemetry_snapshot`](crate::Executor::telemetry_snapshot)):
    /// registry, aggregated shard slab statistics, pool counters and the
    /// journal tail. The sharded façade has no wire-reduction cache, so that
    /// component is always zero.
    pub fn telemetry_snapshot(&self) -> crate::TelemetrySnapshot {
        crate::TelemetrySnapshot::gather(
            &self.telemetry,
            self.slab_stats(),
            crate::CacheStats::default(),
            self.pool_stats(),
        )
    }

    /// Reassembles the authoritative document from the shard slices: the root
    /// (name and attributes from the first shard — the root authority) with
    /// every shard's top-level subtrees concatenated in shard order.
    /// Identifiers are preserved, and the fresh-identifier counter is the
    /// maximum across shards, so the result is exactly the document a single
    /// executor would hold. O(document) — the compaction rebuild and the
    /// snapshot freeze call this; everything else reads through the memoized
    /// [`snapshot`](ShardedExecutor::snapshot).
    fn reassemble(&self) -> Document {
        let next = self.shards.iter().map(|s| s.core.document().next_id()).max().unwrap_or(1);
        let mut out = Document::with_first_id(next);
        let first = self.shards[0].core.document();
        let root_name = first.name(self.root_id).ok().flatten().unwrap_or("").to_string();
        let root = out
            .new_element_with_id(self.root_id, root_name)
            .expect("fresh arena accepts the root id");
        out.set_root(root).expect("fresh arena has no root");
        let attrs: Vec<NodeId> =
            first.attributes(self.root_id).map(|a| a.to_vec()).unwrap_or_default();
        for a in attrs {
            let (na, _) = out.graft(first, a, true).expect("shard ids are disjoint");
            out.add_attribute(root, na).expect("grafted attribute attaches");
        }
        for shard in &self.shards {
            let doc = shard.core.document();
            let children: Vec<NodeId> =
                doc.children(self.root_id).map(|c| c.to_vec()).unwrap_or_default();
            for c in children {
                let (nc, _) = out.graft(doc, c, true).expect("shard ids are disjoint");
                out.append_child(root, nc).expect("grafted subtree attaches");
            }
        }
        out
    }

    /// The global labeling of the reassembled document: every shard's labels
    /// (bit-identical to the global assignment — shards never re-key), with
    /// the root's true whole-document interval instead of a shard's synthetic
    /// slice, and sibling metadata refreshed across shard boundaries.
    fn reassemble_labeling(&self, doc: &Document) -> Labeling {
        let mut labels = Labeling::new();
        labels.insert(self.root_label.clone());
        for shard in &self.shards {
            for label in shard.core.labeling().iter() {
                if label.id != self.root_id {
                    labels.insert(label.clone());
                }
            }
        }
        labels.refresh_sibling_flags(doc, self.root_id);
        labels
    }

    /// Pins the current version into an immutable MVCC [`Snapshot`] of the
    /// reassembled authoritative document (plus its global labeling). The
    /// first call at a version pays the O(document) reassembly; repeated
    /// calls at an unchanged `(version, epoch)` are served from the snapshot
    /// cache as reference-count bumps, and readers holding clones are never
    /// blocked by — and never block — later commits.
    pub fn snapshot(&self) -> Snapshot {
        if let Some(hit) = self.snapshots.get(self.version, self.epoch) {
            self.telemetry.count(|m| &m.snapshot_hits);
            return hit;
        }
        self.telemetry.count(|m| &m.snapshot_misses);
        let doc = self.reassemble();
        let labeling = self.reassemble_labeling(&doc);
        let snapshot = Snapshot::new(self.version, self.epoch, doc.to_shared(), Arc::new(labeling));
        self.snapshots.insert(snapshot.clone());
        snapshot
    }

    /// The reassembled authoritative document, as a shared immutable handle.
    /// Served through the `(version, epoch)`-keyed snapshot cache: repeated
    /// calls between commits do no O(document) work.
    pub fn document(&self) -> SharedDocument {
        self.snapshot().shared_document()
    }

    /// Serializes the reassembled authoritative document (memoized alongside
    /// the snapshot — repeated calls between commits re-copy, not re-walk).
    pub fn serialize(&self) -> String {
        self.snapshot().serialize()
    }

    /// Debug invariant walker: every shard core's document/labeling agreement,
    /// pairwise-disjoint routing intervals chained in shard order, and a
    /// consistent reassembled document. O(document); for tests.
    pub fn assert_consistent(&self) {
        for shard in &self.shards {
            shard.core.assert_consistent();
        }
        for pair in self.shards.windows(2) {
            assert!(
                pair[0].interval.is_disjoint_from(&pair[1].interval),
                "shard intervals overlap: {} vs {}",
                pair[0].interval,
                pair[1].interval
            );
            assert!(
                pair[0].interval.hi() <= pair[1].interval.lo(),
                "shard intervals out of order: {} before {}",
                pair[0].interval,
                pair[1].interval
            );
        }
        self.document().assert_consistent();
    }

    /// Builds a PUL from operations, attaching the labels found in the shard
    /// labelings (root-targeted operations get the global root label). Note
    /// that first/last-child and left-sibling metadata at shard boundaries is
    /// shard-local; producers holding the original document's labeling should
    /// label their PULs themselves, as usual.
    pub fn pul_from_ops(&self, ops: Vec<UpdateOp>) -> Pul {
        let mut pul: Pul = ops.into_iter().collect();
        for shard in &self.shards {
            pul.attach_labels(shard.core.labeling());
        }
        if pul.ops().iter().any(|op| op.target() == self.root_id) {
            pul.add_label(self.root_label.clone());
        }
        pul
    }

    // -------------------------------------------------------------- submission

    /// Submits a producer PUL under the session's default policy.
    pub fn submit(&mut self, pul: Pul) -> SubmissionId {
        self.submit_with_policy(pul, self.default_policy)
    }

    /// Submits a producer PUL with an explicit producer policy.
    pub fn submit_with_policy(&mut self, pul: Pul, policy: Policy) -> SubmissionId {
        self.submit_inner(pul, policy, None)
    }

    fn submit_inner(&mut self, pul: Pul, policy: Policy, pre_reduced: Option<Pul>) -> SubmissionId {
        let id = SubmissionId(self.next_submission);
        self.next_submission += 1;
        let epoch = self.epoch;
        self.submissions.push(ShardedSubmission { id, pul, policy, pre_reduced, epoch });
        id
    }

    /// Submits a producer PUL received in the XML exchange format (§4).
    pub fn submit_xml(&mut self, wire: &str) -> Result<SubmissionId> {
        let pul = pul::xmlio::pul_from_xml(wire)?;
        Ok(self.submit(pul))
    }

    /// Withdraws a pending submission, returning its PUL.
    pub fn withdraw(&mut self, id: SubmissionId) -> Result<Pul> {
        match self.submissions.iter().position(|s| s.id == id) {
            Some(i) => Ok(self.submissions.remove(i).pul),
            None => Err(Error::UnknownSubmission(id)),
        }
    }

    // ----------------------------------------------------------------- routing

    /// Routes every operation of a (reduced) PUL to its shard, in op order.
    /// Operations targeting nodes carried in the *content* of an earlier
    /// operation of the same PUL (aggregated sequences) follow that
    /// operation's shard.
    fn route_ops(&self, pul: &Pul) -> Result<Vec<usize>> {
        let mut routes = Vec::with_capacity(pul.len());
        let mut content_homes: HashMap<NodeId, usize> = HashMap::new();
        for op in pul.ops() {
            let k = self.route_op(op, pul, &content_homes)?;
            if let Some(trees) = op.content() {
                for tree in trees {
                    for id in tree.as_document().node_ids() {
                        content_homes.insert(id, k);
                    }
                }
            }
            routes.push(k);
        }
        Ok(routes)
    }

    fn route_op(
        &self,
        op: &UpdateOp,
        pul: &Pul,
        content_homes: &HashMap<NodeId, usize>,
    ) -> Result<usize> {
        let target = op.target();
        if target == self.root_id {
            return self.route_root_op(op);
        }
        if let Some(label) = pul.label(target) {
            if label.parent.is_none() {
                return self.route_root_op(op);
            }
            // The shard whose half-open slice contains the label's start key.
            // Labels never change once assigned (§4.1), so a label carried by
            // a producer PUL routes correctly however old it is.
            let idx = self.shards.partition_point(|s| s.interval.lo() <= &label.start);
            if idx > 0 && self.shards[idx - 1].interval.contains_key(&label.start) {
                return Ok(idx - 1);
            }
        }
        // No (routable) label: a node inserted by an earlier op of this PUL,
        // or a label-less producer op — fall back to ownership lookups.
        if let Some(&k) = content_homes.get(&target) {
            return Ok(k);
        }
        if let Some(k) = self.shards.iter().position(|s| s.core.document().contains(target)) {
            return Ok(k);
        }
        Err(Error::Shard(format!("operation target {target} is not part of any shard")))
    }

    /// Root-targeted operations route by kind: prepending forms go to the
    /// first shard, appending forms to the last (matching reassembly order),
    /// root metadata (name, attributes) to the first shard — the root
    /// authority. Whole-root replacements would cross every shard.
    fn route_root_op(&self, op: &UpdateOp) -> Result<usize> {
        match op.name() {
            OpName::InsLast => Ok(self.shards.len() - 1),
            OpName::Delete | OpName::ReplaceNode | OpName::ReplaceContent => {
                Err(Error::Shard(format!(
                    "{} on the document root crosses every shard; use a single executor for \
                     whole-root replacements",
                    op.name().paper_notation()
                )))
            }
            // ins↙/ins↓ prepend; rename/insA mutate the root authority; the
            // sibling insertions are inapplicable on a root and are routed to
            // the first shard so validation rejects them exactly as a single
            // executor would.
            _ => Ok(0),
        }
    }

    // -------------------------------------------------------------- resolution

    /// Reasons on the pending submissions without touching any shard: every
    /// PUL is reduced with the session strategy (against the labels it
    /// carries), split by target label interval, and each shard independently
    /// integrates its sub-PULs, reconciles the detected conflicts under the
    /// producer policies and reduces its survivor once more.
    pub fn resolve(&self) -> Result<ShardedResolution> {
        let _span = self.telemetry.span(|m| &m.resolve_ns);
        // Epoch fence: a submission admitted before a compaction reasons in
        // renumbered-away identifiers and labels — resolving it would route
        // and conflict-check against the wrong nodes.
        if let Some(fenced) = self.submissions.iter().find(|s| s.epoch != self.epoch) {
            return Err(Error::EpochFenced {
                submission: fenced.id,
                submission_epoch: fenced.epoch,
                current_epoch: self.epoch,
            });
        }
        let n = self.shards.len();
        let policies: Vec<Policy> = self.submissions.iter().map(|s| s.policy).collect();
        // Per-submission reduction is independent work too: one scoped thread
        // per producer PUL (reduction dominates resolve, §4.3). Submissions
        // admitted through the ingestion pipeline already carry their
        // reduction, so they spawn no thread at all.
        let strategy = self.strategy;
        let to_reduce = self.submissions.iter().filter(|s| s.pre_reduced.is_none()).count();
        let reduced: Vec<Pul> = if to_reduce <= 1 {
            self.submissions
                .iter()
                .map(|s| match &s.pre_reduced {
                    Some(r) => r.clone(),
                    None => strategy.reduce(&s.pul),
                })
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .submissions
                    .iter()
                    .map(|s| match &s.pre_reduced {
                        Some(r) => Ok(r.clone()),
                        None => Err(scope.spawn(move || strategy.reduce(&s.pul))),
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h {
                        Ok(r) => r,
                        Err(h) => h.join().expect("reduction thread panicked"),
                    })
                    .collect()
            })
        };

        // Split every reduced submission into per-shard sub-PULs. All
        // producers stay represented in every shard (possibly with an empty
        // sub-PUL) so conflict references keep their producer indices. The
        // vectors come from the session's scratch pool — resolve runs once
        // per commit round, so recycling them takes the split off the
        // allocator's hot path.
        let mut per_shard_subs: Vec<Vec<Pul>> = (0..n).map(|_| self.scratch.take_vec()).collect();
        for pul in &reduced {
            let routes = self.route_ops(pul)?;
            let mut i = 0;
            let parts = pul.split_by_target(n, |_| {
                let r = routes[i];
                i += 1;
                r
            });
            for (k, part) in parts.into_iter().enumerate() {
                per_shard_subs[k].push(part);
            }
        }

        // Per-shard independent reasoning. The routing above guarantees no
        // conflict or reduction dependency crosses two shards, so the shards
        // reason on their sub-PULs *in parallel* (one scoped thread each);
        // outcomes are collected in shard order, so errors and conflict
        // reports stay deterministic whatever the thread interleaving.
        // Spawning costs tens of microseconds per shard, so small resolutions
        // (a few hundred ops — the batched-ingestion common case) run inline.
        const PARALLEL_RESOLVE_MIN_OPS: usize = 512;
        let strategy = self.strategy;
        let total_ops: usize = per_shard_subs.iter().flat_map(|s| s.iter()).map(|p| p.len()).sum();
        let busy = per_shard_subs.iter().filter(|s| s.iter().any(|p| !p.is_empty())).count();
        let outcomes: Vec<Result<(Pul, Vec<Conflict>)>> = if busy <= 1
            || total_ops < PARALLEL_RESOLVE_MIN_OPS
        {
            per_shard_subs.iter().map(|s| Self::resolve_shard(s, &policies, strategy)).collect()
        } else {
            let policies = &policies;
            std::thread::scope(|scope| {
                let handles: Vec<_> = per_shard_subs
                    .iter()
                    .map(|subs| scope.spawn(move || Self::resolve_shard(subs, policies, strategy)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard resolution thread panicked"))
                    .collect()
            })
        };
        for mut subs in per_shard_subs {
            subs.clear();
            self.scratch.put(subs);
        }
        let mut per_shard = Vec::with_capacity(n);
        let mut conflicts = Vec::new();
        for outcome in outcomes {
            let (pul, shard_conflicts) = outcome?;
            per_shard.push(pul);
            conflicts.extend(shard_conflicts);
        }

        Ok(ShardedResolution {
            version: self.version,
            submission_ids: self.submissions.iter().map(|s| s.id).collect(),
            per_shard,
            conflicts,
        })
    }

    /// One shard's independent reasoning pass: integrate the sub-PULs,
    /// reconcile the detected conflicts under the producer policies, reduce
    /// the survivor. Runs on its own thread when several shards have work.
    fn resolve_shard(
        subs: &[Pul],
        policies: &[Policy],
        strategy: ReductionStrategy,
    ) -> Result<(Pul, Vec<Conflict>)> {
        if subs.iter().all(|p| p.is_empty()) {
            return Ok((Pul::new(), Vec::new()));
        }
        let integration = integrate(subs);
        let reconciled = reconcile_integration(subs, &integration, policies)?;
        Ok((strategy.reduce(&reconciled), integration.conflicts))
    }

    // ------------------------------------------------------------------ commit

    /// Resolves the pending submissions and commits the resolution across all
    /// shards with the two-phase journal protocol.
    pub fn commit(&mut self) -> Result<ShardedCommitReport> {
        let resolution = self.resolve()?;
        self.commit_resolution(resolution)
    }

    /// Applies a previously computed [`ShardedResolution`].
    ///
    /// Phase 1 applies each shard's sub-PUL inside an *open* journal scope:
    /// the shard's own apply is already atomic (a mid-apply failure rewinds
    /// that shard), and the scope keeps the applied changes revocable while
    /// later shards run. Any failure replays every open scope in reverse,
    /// restoring all shards — documents, labelings, versions, identifier
    /// counters — to the exact pre-commit state. Phase 2 closes the scopes
    /// (success = discard) and advances the session version.
    ///
    /// Fresh identifiers are fenced: before a shard applies, its counter is
    /// lifted past every identifier minted by the shards before it, so ids
    /// stay globally unique without any cross-shard coordination at run time.
    pub fn commit_resolution(
        &mut self,
        resolution: ShardedResolution,
    ) -> Result<ShardedCommitReport> {
        self.check_fresh(&resolution)?;
        let _span = self.telemetry.span(|m| &m.commit_ns);
        let mut fence = self.shards.iter().map(|s| s.core.document().next_id()).max().unwrap_or(1);
        let mut open: Vec<(usize, CoreScope)> = Vec::new();
        let mut per_shard_ops = vec![0usize; self.shards.len()];
        let mut journal = JournalStats::default();

        for (k, pul) in resolution.per_shard.iter().enumerate() {
            if pul.is_empty() {
                continue;
            }
            if let Some(kind) = self.faults.check(site::SHARD_APPLY) {
                // An injected shard failure aborts exactly like a real one:
                // every already-applied shard's journal replays in reverse.
                for (j, scope) in open.iter().rev() {
                    let core = &mut self.shards[*j].core;
                    core.scope_rewind(scope);
                    core.scope_close(scope);
                }
                self.telemetry.count(|m| &m.fault_hits);
                let version = self.version;
                self.telemetry.event(EventKind::FaultHit, version, || {
                    format!("{}: injected {kind:?}", site::SHARD_APPLY)
                });
                return Err(Error::injected(site::SHARD_APPLY, kind));
            }
            let outcome = {
                let core = &mut self.shards[k].core;
                let scope = core.scope_open();
                core.doc.reserve_ids(fence);
                match core.commit_pul(pul) {
                    Ok(report) => Ok((report, scope)),
                    Err(e) => {
                        // The failed shard's own apply already rewound its
                        // partial work; the scope still holds the id fence.
                        core.scope_rewind(&scope);
                        core.scope_close(&scope);
                        Err(e)
                    }
                }
            };
            match outcome {
                Ok((report, scope)) => {
                    journal.doc_entries += report.journal.doc_entries;
                    journal.label_entries += report.journal.label_entries;
                    per_shard_ops[k] = pul.len();
                    fence = self.shards[k].core.document().next_id();
                    open.push((k, scope));
                }
                Err(e) => {
                    // Two-phase abort: replay every already-applied shard's
                    // journal, most recent first.
                    for (j, scope) in open.iter().rev() {
                        let core = &mut self.shards[*j].core;
                        core.scope_rewind(scope);
                        core.scope_close(scope);
                    }
                    return Err(e);
                }
            }
        }

        // The WAL append is the commit point: it happens while every shard
        // scope is still open, so a failed append aborts the whole two-phase
        // commit exactly like a shard failure would.
        if let Some(sink) = self.sink.get() {
            let appended = sink.lock().expect("commit sink mutex poisoned").on_commit(
                self.version + 1,
                CommitRecord::Sharded {
                    puls: &resolution.per_shard,
                    preserve_content_ids: self.preserve_content_ids(),
                },
            );
            if let Err(e) = appended {
                for (j, scope) in open.iter().rev() {
                    let core = &mut self.shards[*j].core;
                    core.scope_rewind(scope);
                    core.scope_close(scope);
                }
                self.telemetry.count(|m| &m.rollbacks);
                return Err(e);
            }
        }
        for (j, scope) in open.drain(..) {
            self.shards[j].core.scope_close(&scope);
        }
        self.version += 1;
        self.submissions.retain(|s| !resolution.submission_ids.contains(&s.id));
        let version = self.version;
        self.telemetry.count(|m| &m.commits);
        self.telemetry.event(EventKind::Commit, version, || {
            let ops: usize = per_shard_ops.iter().sum();
            format!("committed v{version} ({ops} ops across shards)")
        });
        Ok(ShardedCommitReport {
            version: self.version,
            applied_ops: per_shard_ops.iter().sum(),
            per_shard_ops,
            conflicts: resolution.conflicts,
            journal,
        })
    }

    /// Resolves everything pending and commits it through the parallel lanes
    /// of [`commit_resolution_lanes`](ShardedExecutor::commit_resolution_lanes).
    pub fn commit_lanes(&mut self) -> Result<ShardedCommitReport> {
        let resolution = self.resolve()?;
        self.commit_resolution_lanes(resolution)
    }

    /// Applies a [`ShardedResolution`] with **parallel commit lanes**: every
    /// busy shard applies its sub-PUL on its own thread, concurrently,
    /// instead of one after the other.
    ///
    /// The serial path threads one identifier fence from shard to shard —
    /// shard `k+1` cannot even *start* before shard `k` finished minting.
    /// Lanes replace the threaded fence with **striped fences** computed up
    /// front: each busy shard's sub-PUL can mint at most
    /// `Σ_ops(content nodes + 2)` fresh identifiers, so each lane is handed
    /// the half-open stripe `[start_k, start_k + bound_k)` where `start_k` is
    /// the prefix sum of the bounds of the busy shards before it (in shard
    /// order) above the global fence. The stripes are disjoint and depend
    /// only on the resolution — never on thread scheduling — so a WAL replay
    /// of the same record mints bit-identical identifiers. A lane that
    /// overruns its stripe (the bound is a hard contract, not a heuristic)
    /// aborts the whole commit.
    ///
    /// Atomicity is unchanged from [`commit_resolution`]
    /// (ShardedExecutor::commit_resolution): every lane applies inside an
    /// open journal scope; any lane's failure rewinds every successful
    /// lane's scope, restoring the exact pre-commit state. The WAL append
    /// (`L` record) is still the commit point, after every lane succeeded
    /// and while all scopes are open.
    ///
    /// Identifier assignment *differs* from the serial path (stripes leave
    /// gaps where the threaded fence packs densely), so a session must not
    /// mix the two paths under one WAL history for the same commit — the
    /// `L`/`S` record kinds keep replay on the path that wrote the record.
    pub fn commit_resolution_lanes(
        &mut self,
        resolution: ShardedResolution,
    ) -> Result<ShardedCommitReport> {
        self.check_fresh(&resolution)?;
        let busy: Vec<usize> = resolution
            .per_shard
            .iter()
            .enumerate()
            .filter(|(_, pul)| !pul.is_empty())
            .map(|(k, _)| k)
            .collect();
        if busy.len() <= 1 {
            // Nothing to overlap — the serial path writes an `S` record and
            // mints the exact identifiers a single executor would.
            return self.commit_resolution(resolution);
        }

        let _span = self.telemetry.span(|m| &m.commit_ns);

        // The serial path consults the shard failpoint once per busy shard,
        // in shard order; lanes preserve that schedule by performing every
        // check on this thread before any lane spawns, so seeded Nth-commit
        // triggers stay deterministic under concurrency.
        for _ in &busy {
            if let Some(kind) = self.faults.check(site::SHARD_APPLY) {
                self.telemetry.count(|m| &m.fault_hits);
                let version = self.version;
                self.telemetry.event(EventKind::FaultHit, version, || {
                    format!("{}: injected {kind:?}", site::SHARD_APPLY)
                });
                return Err(Error::injected(site::SHARD_APPLY, kind));
            }
        }

        // The lane prologue — fence computation and stripe carving — is the
        // serial region every lane waits behind; its latency bounds how much
        // of the commit can actually overlap.
        let prologue = self.telemetry.span(|m| &m.fence_lane_prologue_ns);

        // The global fence: above every identifier any shard has minted, and
        // — under the preserving discipline — above every identifier the
        // parameter trees carry, so a lane's `note_explicit_id` can never
        // climb out of its stripe.
        let mut fence = self.shards.iter().map(|s| s.core.document().next_id()).max().unwrap_or(1);
        if self.preserve_content_ids() {
            for pul in &resolution.per_shard {
                for op in pul.iter() {
                    for tree in op.content().unwrap_or_default() {
                        fence = fence.max(tree.as_document().next_id());
                    }
                }
            }
        }
        let mut stripes = vec![(0u64, 0u64); self.shards.len()];
        let mut next_start = fence;
        for &k in &busy {
            let bound = lane_id_bound(&resolution.per_shard[k]);
            stripes[k] = (next_start, next_start + bound);
            next_start += bound;
        }

        drop(prologue);

        // Phase 1, fanned out: disjoint `&mut` shard borrows, one scoped
        // thread per busy shard. A failed lane rewinds its own scope before
        // returning, so after the join only successful lanes are open.
        let telemetry = &self.telemetry;
        let outcomes: Vec<(usize, Result<(pul::apply::ApplyReport, CoreScope)>)> =
            std::thread::scope(|s| {
                let per_shard = &resolution.per_shard;
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .enumerate()
                    .filter(|(k, _)| !per_shard[*k].is_empty())
                    .map(|(k, shard)| {
                        let pul = &per_shard[k];
                        let (start, end) = stripes[k];
                        (
                            k,
                            s.spawn(move || {
                                let _lane_span = telemetry.span(|m| &m.lane_commit_ns);
                                let core = &mut shard.core;
                                let scope = core.scope_open();
                                core.doc.reserve_ids(start);
                                let fail = |core: &mut ExecutorCore, scope: &CoreScope, e| {
                                    core.scope_rewind(scope);
                                    core.scope_close(scope);
                                    Err(e)
                                };
                                match core.commit_pul(pul) {
                                    Ok(_) if core.document().next_id() > end => {
                                        let e = Error::Shard(format!(
                                            "commit lane {k} overran its identifier stripe \
                                             [{start}, {end})"
                                        ));
                                        fail(core, &scope, e)
                                    }
                                    Ok(report) => Ok((report, scope)),
                                    Err(e) => fail(core, &scope, e),
                                }
                            }),
                        )
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|(k, h)| (k, h.join().expect("commit lane panicked")))
                    .collect()
            });

        let mut open: Vec<(usize, CoreScope)> = Vec::new();
        let mut per_shard_ops = vec![0usize; self.shards.len()];
        let mut journal = JournalStats::default();
        let mut failure: Option<Error> = None;
        for (k, outcome) in outcomes {
            match outcome {
                Ok((report, scope)) => {
                    journal.doc_entries += report.journal.doc_entries;
                    journal.label_entries += report.journal.label_entries;
                    per_shard_ops[k] = resolution.per_shard[k].len();
                    open.push((k, scope));
                }
                // Lanes join in shard order, so the error surfaced is the
                // first busy shard's — the same one the serial path reports.
                Err(e) => failure = failure.or(Some(e)),
            }
        }
        let abort = |shards: &mut Vec<Shard>, open: &[(usize, CoreScope)]| {
            for (j, scope) in open.iter().rev() {
                let core = &mut shards[*j].core;
                core.scope_rewind(scope);
                core.scope_close(scope);
            }
        };
        if let Some(e) = failure {
            abort(&mut self.shards, &open);
            self.telemetry.count(|m| &m.rollbacks);
            return Err(e);
        }

        // The WAL append is still the commit point, while every lane's scope
        // is open. The `L` kind routes replay through this striped path, so
        // recovery mints the same identifiers the live commit did.
        if let Some(sink) = self.sink.get() {
            let appended = sink.lock().expect("commit sink mutex poisoned").on_commit(
                self.version + 1,
                CommitRecord::ShardedLanes {
                    puls: &resolution.per_shard,
                    preserve_content_ids: self.preserve_content_ids(),
                },
            );
            if let Err(e) = appended {
                abort(&mut self.shards, &open);
                self.telemetry.count(|m| &m.rollbacks);
                return Err(e);
            }
        }
        for (j, scope) in open.drain(..) {
            self.shards[j].core.scope_close(&scope);
        }
        self.version += 1;
        self.submissions.retain(|s| !resolution.submission_ids.contains(&s.id));
        let version = self.version;
        let lanes = busy.len();
        self.telemetry.count(|m| &m.commits);
        self.telemetry.count(|m| &m.laned_commits);
        self.telemetry.event(EventKind::Commit, version, || {
            let ops: usize = per_shard_ops.iter().sum();
            format!("committed v{version} ({ops} ops across {lanes} lanes)")
        });
        Ok(ShardedCommitReport {
            version: self.version,
            applied_ops: per_shard_ops.iter().sum(),
            per_shard_ops,
            conflicts: resolution.conflicts,
            journal,
        })
    }

    fn check_fresh(&self, resolution: &ShardedResolution) -> Result<()> {
        check_resolution_fresh(resolution.version, self.version, &resolution.submission_ids, |id| {
            self.submissions.iter().any(|s| s.id == id)
        })
    }

    // -------------------------------------------------------------- compaction

    /// Compacts the sharded session: reassembles the authoritative document,
    /// renumbers it in preorder from 1 and re-partitions it into the same
    /// number of shards with a dense labeling per slice (see
    /// [`Executor::compact`](crate::Executor::compact) for the epoch/fencing
    /// contract — it is identical here). Under a sink the epoch record append
    /// is the commit point: it happens *before* the rebuilt shards are
    /// installed, so a failed append leaves session and store on the
    /// pre-compaction version, untouched.
    pub fn compact(&mut self) -> Result<CompactionReport> {
        for (k, shard) in self.shards.iter().enumerate() {
            assert!(
                !shard.core.doc.journal_is_active(),
                "compact() inside shard {k}'s open transaction scope: rollback could not \
                 replay inverses across the renumbering"
            );
        }
        let before = self.slab_stats();
        // The fallible part first: build the compacted replacement off to the
        // side, so neither a rebuild error nor a sink error can leave the
        // session half-renumbered.
        let rebuilt = self.rebuild_compacted()?;
        if let Some(sink) = self.sink.get() {
            sink.lock()
                .expect("commit sink mutex poisoned")
                .on_commit(self.version + 1, CommitRecord::Epoch { epoch: self.epoch + 1 })?;
        }
        self.install_compacted(rebuilt);
        self.version += 1;
        self.epoch += 1;
        let (epoch, version) = (self.epoch, self.version);
        self.telemetry.event(EventKind::CompactionEpoch, version, || {
            format!("compaction opened epoch {epoch} at v{version}")
        });
        Ok(CompactionReport {
            epoch: self.epoch,
            version: self.version,
            before,
            after: self.slab_stats(),
        })
    }

    /// The renumber-and-repartition core of [`compact`](ShardedExecutor::compact):
    /// a fresh sharded executor over the preorder-renumbered reassembly, same
    /// shard count. Deterministic — `reassemble()` walks in shard order,
    /// the renumbering walks preorder, and `new` partitions contiguously — so
    /// the WAL-replay path rebuilds bit-identical state.
    fn rebuild_compacted(&self) -> Result<ShardedExecutor> {
        let mut doc = self.reassemble();
        let _mapping = doc.assign_preorder_ids(1);
        ShardedExecutor::new(doc, self.shards.len())
    }

    /// Installs the rebuilt shards, keeping this session's apply options (the
    /// identifier discipline is session configuration, not document state).
    fn install_compacted(&mut self, rebuilt: ShardedExecutor) {
        let options = self.shards[0].core.apply_options().clone();
        let ShardedExecutor { mut shards, root_id, root_label, dead_floor, .. } = rebuilt;
        for shard in &mut shards {
            shard.core.set_apply_options(options.clone());
        }
        self.shards = shards;
        self.root_id = root_id;
        self.root_label = root_label;
        self.dead_floor = dead_floor;
    }

    /// Re-applies a WAL `Epoch` record during recovery: the same rebuild as a
    /// live [`compact`](ShardedExecutor::compact), minus the sink (replay
    /// must not re-append what it reads).
    pub(crate) fn replay_epoch(&mut self, epoch: u64) -> Result<()> {
        let rebuilt = self.rebuild_compacted()?;
        self.install_compacted(rebuilt);
        self.version += 1;
        self.epoch = epoch;
        Ok(())
    }

    /// Restores the epoch fence from a checkpoint (recovery only).
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Slot-occupancy statistics of the dense id-indexed stores, aggregated
    /// across every shard (see [`Executor::slab_stats`]
    /// (crate::Executor::slab_stats)). Dead slots accumulate per shard —
    /// identifiers are never reused — so this is the churn observable for
    /// long-lived sharded sessions too.
    pub fn slab_stats(&self) -> SessionSlabStats {
        self.shards.iter().fold(
            SessionSlabStats { epoch: self.epoch, ..SessionSlabStats::default() },
            |acc, shard| {
                acc.merged(SessionSlabStats {
                    nodes: shard.core.document().slab_stats(),
                    labels: shard.core.labeling().slab_stats(),
                    epoch: self.epoch,
                })
            },
        )
    }

    /// The fraction of the live population held in *reclaimable* dead slots:
    /// aggregate dead above the structural partition floor (each shard's
    /// arena skips the slices owned by its siblings — those gaps survive any
    /// renumbering and must not count as churn, or the compaction trigger
    /// would re-fire forever on a freshly compacted sharded session).
    pub fn reclaimable_dead_ratio(&self) -> f64 {
        let nodes = self.slab_stats().nodes;
        nodes.dead.saturating_sub(self.dead_floor) as f64 / nodes.live.max(1) as f64
    }

    /// The structural dead-slot floor (construction or last compaction).
    pub fn dead_floor(&self) -> usize {
        self.dead_floor
    }
}

/// How many fresh identifiers one shard's sub-PUL can mint, as a hard upper
/// bound: each grafted parameter node takes at most one (`rep`/`ins` under
/// the fresh-minting discipline; zero when preserving), plus two per
/// operation of slack for the implicit text nodes `rep_v`/`rep_c` may
/// create. The bound depends only on the PUL, so the lane stripes derived
/// from it are replay-deterministic.
fn lane_id_bound(pul: &Pul) -> u64 {
    pul.iter()
        .map(|op| {
            let content: u64 =
                op.content().unwrap_or_default().iter().map(|t| t.size() as u64).sum();
            content + 2
        })
        .sum()
}

/// The ingestion pipeline drives a sharded session through the same
/// submit → resolve → commit verbs as a single executor; the label-interval
/// routing and the two-phase journal commit stay internal to the backend.
impl IngestBackend for ShardedExecutor {
    type Resolution = ShardedResolution;

    fn admit(&mut self, pul: Pul, policy: Policy, reduced: Option<Pul>) -> SubmissionId {
        self.submit_inner(pul, policy, reduced)
    }

    fn resolve_pending(&self) -> Result<ShardedResolution> {
        self.resolve()
    }

    fn commit_pending(&mut self, resolution: ShardedResolution) -> Result<BatchCommit> {
        let report = self.commit_resolution(resolution)?;
        Ok(BatchCommit {
            version: report.version,
            applied_ops: report.applied_ops,
            conflicts: report.conflicts,
        })
    }

    fn commit_pending_lanes(&mut self, resolution: ShardedResolution) -> Result<BatchCommit> {
        let report = self.commit_resolution_lanes(resolution)?;
        Ok(BatchCommit {
            version: report.version,
            applied_ops: report.applied_ops,
            conflicts: report.conflicts,
        })
    }

    fn snapshot_view(&self) -> Option<Snapshot> {
        Some(self.snapshot())
    }

    fn discard(&mut self, id: SubmissionId) {
        let _ = self.withdraw(id);
    }

    fn current_version(&self) -> u64 {
        self.version
    }

    fn reduction_strategy(&self) -> ReductionStrategy {
        self.strategy
    }

    fn default_policy(&self) -> Policy {
        self.default_policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use xdm::Tree;

    /// ids: lib=1, year=2, b1=3, t=4, "A"=5, b2=6, t=7, "B"=8,
    ///      b3=9, t=10, "C"=11, b4=12, t=13, "D"=14
    const LIB: &str = "<lib year=\"2011\"><b1><t>A</t></b1><b2><t>B</t></b2>\
                       <b3><t>C</t></b3><b4><t>D</t></b4></lib>";

    fn sharded(n: usize) -> ShardedExecutor {
        ShardedExecutor::parse(LIB, n).unwrap()
    }

    fn oracle() -> Executor {
        Executor::parse(LIB).unwrap()
    }

    /// Commits `ops` through a sharded session and a single executor and
    /// asserts the same serialized document comes out of both.
    fn assert_equivalent(n: usize, ops: Vec<UpdateOp>) {
        let mut sharded = sharded(n);
        let pul = sharded.pul_from_ops(ops.clone());
        sharded.submit(pul);
        sharded.commit().unwrap();
        sharded.assert_consistent();
        let mut single = oracle();
        let pul = single.pul_from_ops(ops);
        single.submit(pul);
        single.commit().unwrap();
        single.assert_consistent();
        assert_eq!(sharded.serialize(), single.serialize(), "{n}-shard commit diverged");
    }

    #[test]
    fn construction_slices_the_document_and_labeling() {
        let s = sharded(2);
        assert_eq!(s.shard_count(), 2);
        // contiguous balanced partition: b1,b2 | b3,b4
        assert_eq!(s.shard(0).document().children(NodeId::new(1)).unwrap().len(), 2);
        assert_eq!(s.shard(1).document().children(NodeId::new(1)).unwrap().len(), 2);
        // root attributes live in the first shard only
        assert_eq!(s.shard(0).document().attributes(NodeId::new(1)).unwrap().len(), 1);
        assert_eq!(s.shard(1).document().attributes(NodeId::new(1)).unwrap().len(), 0);
        // every shard's subtree labels fall inside its routing interval
        for k in 0..2 {
            let core = s.shard(k);
            for &c in core.document().children(NodeId::new(1)).unwrap() {
                assert!(
                    s.shard_interval(k).contains_label(core.labeling().require(c)),
                    "top-level label outside its shard interval"
                );
            }
        }
        s.assert_consistent();
        // the reassembled document is the original, bit for bit
        let original = xdm::parser::parse_document(LIB).unwrap();
        assert!(s.document().deep_eq(&original));
        assert_eq!(s.serialize(), oracle().serialize());
    }

    #[test]
    fn single_shard_commit_is_bit_identical_to_the_executor() {
        let mut s = sharded(1);
        let mut single = oracle();
        let ops = vec![
            UpdateOp::rename(3u64, "book"),
            UpdateOp::replace_value(11u64, "C2"),
            UpdateOp::ins_last(6u64, vec![Tree::element_with_text("note", "n")]),
            UpdateOp::delete(12u64),
        ];
        let pul = s.pul_from_ops(ops.clone());
        s.submit(pul);
        s.commit().unwrap();
        let pul = single.pul_from_ops(ops);
        single.submit(pul);
        single.commit().unwrap();
        // one shard, same apply order, same id minting: deep_eq, not just
        // structural equality
        assert!(s.document().deep_eq(single.document()));
        s.assert_consistent();
    }

    #[test]
    fn boundary_targets_route_to_their_owning_shard() {
        let s = sharded(2);
        // b2 (6) is the last subtree of shard 0, b3 (9) the first of shard 1
        let pul = s.pul_from_ops(vec![
            UpdateOp::rename(6u64, "lastOfShard0"),
            UpdateOp::rename(9u64, "firstOfShard1"),
        ]);
        let mut s = s;
        s.submit(pul);
        let resolution = s.resolve().unwrap();
        assert_eq!(resolution.per_shard()[0].targets(), vec![NodeId::new(6)]);
        assert_eq!(resolution.per_shard()[1].targets(), vec![NodeId::new(9)]);
        s.commit_resolution(resolution).unwrap();
        assert!(s.serialize().contains("<lastOfShard0>"));
        assert!(s.serialize().contains("<firstOfShard1>"));
    }

    #[test]
    fn sibling_insertions_at_a_shard_boundary_match_the_oracle() {
        // ins→ on the last subtree of shard 0 and ins← on the first subtree
        // of shard 1 insert into the same gap: the sibling-gap reduction rule
        // (I18) merges them before the split, and the committed document must
        // match the single executor's exactly.
        for n in [1, 2, 4] {
            assert_equivalent(
                n,
                vec![
                    UpdateOp::ins_after(6u64, vec![Tree::element("afterB2")]),
                    UpdateOp::ins_before(9u64, vec![Tree::element("beforeB3")]),
                ],
            );
        }
    }

    #[test]
    fn root_targeted_ops_route_by_kind() {
        let mut s = sharded(4);
        let pul = s.pul_from_ops(vec![
            UpdateOp::rename(1u64, "library"),
            UpdateOp::ins_attributes(1u64, vec![Tree::attribute("edition", "2nd")]),
            UpdateOp::ins_first(1u64, vec![Tree::element("preface")]),
            UpdateOp::ins_last(1u64, vec![Tree::element("index")]),
        ]);
        s.submit(pul);
        let resolution = s.resolve().unwrap();
        // prepending + root-authority ops to the first shard, appending to the last
        assert_eq!(resolution.per_shard()[0].len(), 3);
        assert_eq!(resolution.per_shard()[3].len(), 1);
        assert!(resolution.per_shard()[1].is_empty());
        s.commit_resolution(resolution).unwrap();
        s.assert_consistent();
        let xml = s.serialize();
        assert!(xml.starts_with("<library year=\"2011\" edition=\"2nd\"><preface/>"), "{xml}");
        assert!(xml.ends_with("<index/></library>"), "{xml}");
        // and the whole thing matches the unsharded pipeline
        assert_equivalent(
            4,
            vec![
                UpdateOp::rename(1u64, "library"),
                UpdateOp::ins_attributes(1u64, vec![Tree::attribute("edition", "2nd")]),
                UpdateOp::ins_first(1u64, vec![Tree::element("preface")]),
                UpdateOp::ins_last(1u64, vec![Tree::element("index")]),
            ],
        );
    }

    #[test]
    fn whole_root_replacements_are_rejected() {
        for op in [
            UpdateOp::delete(1u64),
            UpdateOp::replace_node(1u64, vec![Tree::element("other")]),
            UpdateOp::replace_content(1u64, Some("flat".into())),
        ] {
            let mut s = sharded(2);
            let pul = s.pul_from_ops(vec![op]);
            s.submit(pul);
            let err = s.commit().unwrap_err();
            assert_eq!(err.code(), "XPUL-E05", "{err}");
            assert_eq!(s.version(), 0);
            s.assert_consistent();
        }
    }

    #[test]
    fn empty_shards_are_supported() {
        // more shards than top-level subtrees: shards 2 and 3 own empty slices
        let mut s =
            ShardedExecutor::parse("<lib><b1><t>A</t></b1><b2><t>B</t></b2></lib>", 4).unwrap();
        s.assert_consistent();
        assert!(s
            .shard(2)
            .document()
            .children(s.shard(2).document().root().unwrap())
            .unwrap()
            .is_empty());
        // appending to the root lands in the last (empty) shard
        let pul = s.pul_from_ops(vec![
            UpdateOp::rename(2u64, "book"),
            UpdateOp::ins_last(1u64, vec![Tree::element_with_text("b3", "C")]),
        ]);
        s.submit(pul);
        let resolution = s.resolve().unwrap();
        assert_eq!(resolution.per_shard()[3].len(), 1, "ins↘ on the root goes to the last shard");
        s.commit_resolution(resolution).unwrap();
        s.assert_consistent();
        let mut single = Executor::parse("<lib><b1><t>A</t></b1><b2><t>B</t></b2></lib>").unwrap();
        let pul = single.pul_from_ops(vec![
            UpdateOp::rename(2u64, "book"),
            UpdateOp::ins_last(1u64, vec![Tree::element_with_text("b3", "C")]),
        ]);
        single.submit(pul);
        single.commit().unwrap();
        assert_eq!(s.serialize(), single.serialize());
    }

    #[test]
    fn nodes_inserted_in_the_session_route_on_later_commits() {
        let mut s = sharded(2);
        let mut single = oracle();
        let ops = vec![
            UpdateOp::ins_last(9u64, vec![Tree::element_with_text("note", "draft")]),
            UpdateOp::ins_after(6u64, vec![Tree::element("extra")]),
        ];
        let pul = s.pul_from_ops(ops.clone());
        s.submit(pul);
        s.commit().unwrap();
        let pul = single.pul_from_ops(ops);
        single.submit(pul);
        single.commit().unwrap();

        // target the nodes the first commit created, locating them in each
        // session's own document (fresh-id minting may differ across layouts)
        let second = |doc: &Document| {
            let note = doc.find_element("note").unwrap();
            let extra = doc.find_element("extra").unwrap();
            vec![
                UpdateOp::rename(note, "annotation"),
                UpdateOp::ins_last(extra, vec![Tree::element_with_text("t", "E")]),
            ]
        };
        let reassembled = s.document();
        let note = reassembled.find_element("note").unwrap();
        let pul = s.pul_from_ops(second(&reassembled));
        s.submit(pul);
        let resolution = s.resolve().unwrap();
        // the note lives inside b3's subtree: shard 1, routed via the interval
        // of the label the patch assigned at the previous commit
        assert!(resolution.per_shard()[1].targets().contains(&note));
        s.commit_resolution(resolution).unwrap();
        s.assert_consistent();

        let pul = single.pul_from_ops(second(single.document()));
        single.submit(pul);
        single.commit().unwrap();
        assert_eq!(s.serialize(), single.serialize());
        assert_eq!(s.version(), 2);
    }

    #[test]
    fn two_phase_commit_rolls_back_every_shard() {
        let mut s = sharded(2);
        let before: Vec<ExecutorCore> = (0..2).map(|k| s.shard(k).clone()).collect();
        // shard 0's rename applies first; shard 1's duplicate attribute
        // insertion fails mid-apply — the two-phase abort must also undo the
        // already-applied shard 0
        let pul = s.pul_from_ops(vec![
            UpdateOp::rename(3u64, "applied-then-undone"),
            UpdateOp::ins_attributes(
                12u64,
                vec![Tree::attribute("id", "1"), Tree::attribute("id", "2")],
            ),
        ]);
        s.submit(pul);
        let err = s.commit().unwrap_err();
        assert_eq!(err.code(), "XPUL-P03", "duplicate attribute is a dynamic error: {err}");
        for (k, oracle) in before.iter().enumerate() {
            assert!(
                s.shard(k).document().deep_eq(oracle.document()),
                "shard {k} document not restored"
            );
            assert!(
                s.shard(k).labeling().deep_eq(oracle.labeling()),
                "shard {k} labeling not restored"
            );
            assert_eq!(s.shard(k).version(), 0);
            assert!(!s.shard(k).document().journal_is_active(), "shard {k} journal left open");
        }
        assert_eq!(s.version(), 0);
        assert_eq!(s.pending(), 1, "the failed submission stays pending");
        s.assert_consistent();
        // the session stays fully usable
        let id = s.submissions[0].id;
        s.withdraw(id).unwrap();
        let pul = s.pul_from_ops(vec![UpdateOp::rename(3u64, "fine")]);
        s.submit(pul);
        s.commit().unwrap();
        assert!(s.serialize().contains("<fine>"));
        assert_eq!(s.version(), 1);
    }

    #[test]
    fn stale_resolutions_and_withdrawn_submissions_are_rejected() {
        let mut s = sharded(2);
        let pul = s.pul_from_ops(vec![UpdateOp::rename(3u64, "a")]);
        s.submit(pul);
        let resolution = s.resolve().unwrap();
        s.commit().unwrap();
        let err = s.commit_resolution(resolution).unwrap_err();
        assert_eq!(err.code(), "XPUL-E01");

        let pul = s.pul_from_ops(vec![UpdateOp::rename(6u64, "b")]);
        let id = s.submit(pul);
        let resolution = s.resolve().unwrap();
        s.withdraw(id).unwrap();
        let err = s.commit_resolution(resolution).unwrap_err();
        assert_eq!(err.code(), "XPUL-E02");
    }

    #[test]
    fn conflicting_producers_reconcile_per_shard() {
        let mut s = sharded(2).policy(Policy::relaxed());
        // two producers rename the same node (shard 1) — a repeated
        // modification conflict solved by keeping one of them
        let p1 = s.pul_from_ops(vec![UpdateOp::rename(9u64, "first")]);
        let p2 = s.pul_from_ops(vec![UpdateOp::rename(9u64, "second")]);
        s.submit(p1);
        s.submit(p2);
        let resolution = s.resolve().unwrap();
        assert_eq!(resolution.conflicts().len(), 1);
        assert!(!resolution.is_conflict_free());
        assert_eq!(resolution.per_shard()[1].len(), 1, "one survivor after reconciliation");
        let report = s.commit_resolution(resolution).unwrap();
        assert_eq!(report.applied_ops, 1);
        assert_eq!(report.per_shard_ops, vec![0, 1]);
        assert!(report.journal.total() > 0);
        s.assert_consistent();
    }

    #[test]
    fn wire_submissions_round_trip_through_the_router() {
        let mut s = sharded(4);
        let pul = s.pul_from_ops(vec![UpdateOp::rename(12u64, "renamed")]);
        let wire = pul::xmlio::pul_to_xml(&pul);
        s.submit_xml(&wire).unwrap();
        let report = s.commit().unwrap();
        assert_eq!(report.per_shard_ops, vec![0, 0, 0, 1], "b4 lives in the last shard");
        assert!(s.serialize().contains("<renamed>"));
    }
}
