//! The unified error hierarchy of the façade.
//!
//! The workspace crates each have a focused error type (`xdm::XdmError`,
//! `pul::PulError`, `pul_core::ReconcileError`, `xqupdate::XqError`). Callers
//! of the [`Executor`](crate::Executor) session API never have to juggle them:
//! every fallible operation of the façade returns [`Error`], which wraps the
//! crate-level errors (with `From` impls, so `?` just works) and adds the
//! executor-level failure modes.
//!
//! Every error maps to a **stable error code** ([`Error::code`]) of the form
//! `XPUL-<layer><number>`, intended for logs, metrics and cross-service
//! matching: the code of an existing variant never changes, new variants get
//! new codes.

use std::fmt;
use std::io;

use pul::PulError;
use pul_core::ReconcileError;
use pul_store::StoreError;
use xdm::XdmError;
use xqupdate::XqError;

/// Convenience result alias for the façade API.
pub type Result<T> = std::result::Result<T, Error>;

/// The unified error type of the `xmlpul` façade.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Document-model or XML syntax error.
    Xdm(XdmError),
    /// PUL validation, evaluation or exchange-format error.
    Pul(PulError),
    /// Reconciliation failed: a conflict cannot be solved without violating a
    /// producer policy.
    Reconcile(ReconcileError),
    /// The XQuery Update front-end rejected an expression.
    Query(XqError),
    /// A [`Resolution`](crate::Resolution) was computed against an earlier
    /// version of the executor's document and can no longer be committed.
    StaleResolution {
        /// The version the resolution was computed against.
        resolved_at: u64,
        /// The executor's current version.
        current: u64,
    },
    /// A submission identifier does not name a pending submission.
    UnknownSubmission(crate::SubmissionId),
    /// `commit_streaming` was asked to stream a serialization that does not
    /// correspond to the executor's document.
    StreamMismatch(String),
    /// An I/O error. The originating [`std::io::ErrorKind`] is preserved so
    /// retry policies can classify the failure (see [`Error::is_transient`]).
    Io {
        /// The preserved kind of the underlying `std::io::Error`.
        kind: io::ErrorKind,
        /// Human-readable detail.
        msg: String,
    },
    /// A sharded-executor routing or partitioning failure: an operation that
    /// cannot be assigned to any shard (e.g. a whole-root replacement, or a
    /// target unknown to every shard).
    Shard(String),
    /// An ingestion-pipeline failure: the queue was closed when a submission
    /// arrived, or a ticket was poisoned by the pipeline shutting down before
    /// its submission could be committed.
    Ingest(String),
    /// A durable-store failure: the WAL could not be appended, a checkpoint
    /// could not be written or loaded, or recovery/`read_at` met a record
    /// stream inconsistent with the session it was replayed into. Carries the
    /// structured [`StoreError`] (operation, `io::ErrorKind`, WAL position).
    Store(StoreError),
    /// Admission control rejected a submission: the ingest queue was at
    /// capacity (`try_enqueue` sheds load rather than block) or the ticket's
    /// deadline expired before its round committed.
    Overload(String),
    /// The durable session is in sticky read-only degraded mode: a WAL or
    /// checkpoint write exhausted its retry budget, so further commits are
    /// refused rather than risking a torn state. Reads still work; recovery
    /// is reopening the store.
    Degraded(String),
    /// A pending submission was admitted before the session's last compaction
    /// epoch: `compact()` renumbered every node identifier, so the ids the
    /// submission's PUL targets no longer name the nodes its producer meant.
    /// The submission is fenced rather than silently applied to the wrong
    /// nodes; the producer must withdraw it and re-submit against the
    /// current epoch's identifiers.
    EpochFenced {
        /// The fenced pending submission.
        submission: crate::SubmissionId,
        /// The epoch the submission was admitted under.
        submission_epoch: u64,
        /// The session's current epoch.
        current_epoch: u64,
    },
}

impl Error {
    /// The stable error code: `XPUL-` followed by a layer prefix (`D` for the
    /// document model, `P` for PULs, `C` for the reasoning core, `Q` for the
    /// query front-end, `E` for the executor) and a two-digit number.
    pub fn code(&self) -> &'static str {
        fn xdm_code(e: &XdmError) -> &'static str {
            match e {
                XdmError::NodeNotFound(_) => "XPUL-D01",
                XdmError::DuplicateNodeId(_) => "XPUL-D02",
                XdmError::InvalidStructure(_) => "XPUL-D03",
                XdmError::NoRoot => "XPUL-D04",
                XdmError::Parse { .. } => "XPUL-D05",
                XdmError::Detached(_) => "XPUL-D06",
            }
        }
        match self {
            Error::Xdm(e) => xdm_code(e),
            Error::Pul(e) => match e {
                PulError::NotApplicable { .. } => "XPUL-P01",
                PulError::Incompatible { .. } => "XPUL-P02",
                PulError::Dynamic(_) => "XPUL-P03",
                // `From<PulError>` flattens this variant into `Error::Xdm`;
                // a hand-built value still reports the document-model code.
                PulError::Xdm(inner) => xdm_code(inner),
                PulError::Format(_) => "XPUL-P05",
                PulError::TooManyOutcomes { .. } => "XPUL-P06",
            },
            Error::Reconcile(_) => "XPUL-C01",
            Error::Query(_) => "XPUL-Q01",
            Error::StaleResolution { .. } => "XPUL-E01",
            Error::UnknownSubmission(_) => "XPUL-E02",
            Error::StreamMismatch(_) => "XPUL-E03",
            Error::Io { .. } => "XPUL-E04",
            Error::Shard(_) => "XPUL-E05",
            Error::Ingest(_) => "XPUL-E06",
            Error::Store(_) => "XPUL-E07",
            Error::Overload(_) => "XPUL-E08",
            Error::Degraded(_) => "XPUL-E09",
            Error::EpochFenced { .. } => "XPUL-E10",
        }
    }

    /// A session-level (logical) store error: malformed checkpoint contents,
    /// a replayed record stream inconsistent with the session, and the like.
    /// Surfaces as `XPUL-E07` with kind [`io::ErrorKind::InvalidData`].
    pub fn store(msg: impl Into<String>) -> Error {
        Error::Store(StoreError::new("session", io::ErrorKind::InvalidData, msg))
    }

    /// The error an armed fault of `kind` injects at a failpoint `site`
    /// outside the store (shard apply, ingest drainer/committer).
    pub fn injected(site: &'static str, kind: pul_store::FaultKind) -> Error {
        Error::Io { kind: kind.io_kind(), msg: format!("injected fault at {site}") }
    }

    /// The underlying `std::io::ErrorKind`, when this error carries one.
    pub fn io_kind(&self) -> Option<io::ErrorKind> {
        match self {
            Error::Io { kind, .. } => Some(*kind),
            Error::Store(e) => Some(e.kind),
            _ => None,
        }
    }

    /// Whether a retry of the failed operation may succeed. Only I/O-carrying
    /// errors with an interrupted / would-block / timed-out kind are
    /// transient; logical failures, overload shedding and degraded mode are
    /// permanent for the operation that observed them.
    pub fn is_transient(&self) -> bool {
        self.io_kind().is_some_and(pul_store::transient_kind)
    }

    /// The conflict that made reconciliation fail, when there is one.
    pub fn unsolvable_conflict(&self) -> Option<&pul_core::Conflict> {
        match self {
            Error::Reconcile(e) => Some(&e.conflict),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.code())?;
        match self {
            Error::Xdm(e) => write!(f, "{e}"),
            Error::Pul(e) => write!(f, "{e}"),
            Error::Reconcile(e) => write!(f, "{e}"),
            Error::Query(e) => write!(f, "{e}"),
            Error::StaleResolution { resolved_at, current } => write!(
                f,
                "stale resolution: computed against version {resolved_at}, executor is at version {current}"
            ),
            Error::UnknownSubmission(id) => write!(f, "no pending submission {id}"),
            Error::StreamMismatch(msg) => write!(f, "streamed document mismatch: {msg}"),
            Error::Io { kind, msg } => write!(f, "I/O error ({kind:?}): {msg}"),
            Error::Shard(msg) => write!(f, "sharding error: {msg}"),
            Error::Ingest(msg) => write!(f, "ingestion error: {msg}"),
            Error::Store(e) => write!(f, "durable store error: {e}"),
            Error::Overload(msg) => write!(f, "admission control: {msg}"),
            Error::Degraded(msg) => write!(f, "degraded mode: {msg}"),
            Error::EpochFenced { submission, submission_epoch, current_epoch } => write!(
                f,
                "{submission} was admitted under epoch {submission_epoch}, but compaction \
                 renumbered the document (epoch {current_epoch}): withdraw and re-submit \
                 against the current identifiers"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Xdm(e) => Some(e),
            Error::Pul(e) => Some(e),
            Error::Reconcile(e) => Some(e),
            Error::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XdmError> for Error {
    fn from(e: XdmError) -> Self {
        Error::Xdm(e)
    }
}

impl From<PulError> for Error {
    fn from(e: PulError) -> Self {
        // Flatten the document-model errors that bubbled up through the PUL
        // layer, so matching on `Error::Xdm` is reliable.
        match e {
            PulError::Xdm(inner) => Error::Xdm(inner),
            other => Error::Pul(other),
        }
    }
}

impl From<ReconcileError> for Error {
    fn from(e: ReconcileError) -> Self {
        Error::Reconcile(e)
    }
}

impl From<XqError> for Error {
    fn from(e: XqError) -> Self {
        Error::Query(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io { kind: e.kind(), msg: e.to_string() }
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Self {
        Error::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_prefixed() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::from(XdmError::NoRoot), "XPUL-D04"),
            (Error::from(PulError::Dynamic("x".into())), "XPUL-P03"),
            (Error::from(XqError("bad".into())), "XPUL-Q01"),
            (Error::StaleResolution { resolved_at: 1, current: 2 }, "XPUL-E01"),
            (Error::Ingest("queue closed".into()), "XPUL-E06"),
            (Error::store("wal append failed"), "XPUL-E07"),
            (Error::Overload("queue at capacity".into()), "XPUL-E08"),
            (Error::Degraded("retries exhausted".into()), "XPUL-E09"),
            (
                Error::EpochFenced {
                    submission: crate::SubmissionId(7),
                    submission_epoch: 0,
                    current_epoch: 1,
                },
                "XPUL-E10",
            ),
        ];
        for (e, code) in cases {
            assert_eq!(e.code(), code);
            assert!(e.to_string().starts_with(&format!("[{code}]")), "{e}");
        }
    }

    #[test]
    fn io_errors_preserve_the_kind() {
        let e = Error::from(io::Error::new(io::ErrorKind::Interrupted, "try again"));
        assert_eq!(e.code(), "XPUL-E04");
        assert_eq!(e.io_kind(), Some(io::ErrorKind::Interrupted));
        assert!(e.is_transient());
        let e = Error::from(io::Error::other("gone"));
        assert!(!e.is_transient());
        let e = Error::from(StoreError::new(
            pul_store::site::WAL_APPEND,
            io::ErrorKind::TimedOut,
            "slow disk",
        ));
        assert_eq!(e.code(), "XPUL-E07");
        assert!(e.is_transient());
        assert!(!Error::store("malformed checkpoint").is_transient());
        assert!(!Error::Overload("shed".into()).is_transient());
        assert!(!Error::Degraded("sticky".into()).is_transient());
    }

    #[test]
    fn pul_wrapped_xdm_errors_are_flattened() {
        let e = Error::from(PulError::Xdm(XdmError::NoRoot));
        assert!(matches!(e, Error::Xdm(XdmError::NoRoot)));
        assert_eq!(e.code(), "XPUL-D04");
        // Even a hand-built (unflattened) value reports the inner D-code, so
        // one failure mode never maps to two codes.
        let e = Error::Pul(PulError::Xdm(XdmError::NoRoot));
        assert_eq!(e.code(), "XPUL-D04");
    }

    #[test]
    fn sources_are_linked() {
        let e = Error::from(PulError::Dynamic("boom".into()));
        assert!(std::error::Error::source(&e).is_some());
    }
}
