//! The ingestion pipeline: a batched submission queue in front of an executor.
//!
//! The session API of [`Executor`](crate::Executor) (and its sharded sibling)
//! is synchronous: every producer round-trips through
//! `submit → resolve → commit`, so a burst of small PULs pays the full
//! resolution cost once *per submission* even when the updates are
//! independent. [`IngestQueue`] decouples the two sides:
//!
//! ```text
//!  writers ──enqueue()──▶ ┌──────────── IngestQueue ─────────────┐
//!  (PULs, wire XML,       │ queue ─▶ drainer: coalesce + reduce  │
//!   many threads)         │             │  PreparedRound k+1     │
//!    ◀──Ticket────        │             ▼                        │
//!                         │          committer: admit, resolve,  │──▶ Document'
//!                         │          commit round k (backend)    │
//!                         └──────────────────────────────────────┘
//! ```
//!
//! * **Batching.** `enqueue` returns immediately with a [`Ticket`] — a
//!   completion handle that later yields the committed version and the
//!   submission's conflict report, or the error that failed it. A drainer
//!   thread flushes the queue when it reaches a size threshold or when a tick
//!   elapses since the window opened, whichever comes first ([`IngestConfig`]).
//!
//! * **Coalescing.** A drained batch is partitioned into *rounds*: queued
//!   PULs whose **target label intervals** are pairwise disjoint (and whose
//!   sibling-gap slots do not collide — see the footprint machinery below)
//!   are independent in the sense of the Table-1 predicates, so they are
//!   merged into a single resolution and committed together; a PUL
//!   overlapping an earlier one is serialized into a later round, preserving
//!   enqueue order wherever order can be observed. This is the commutativity
//!   condition of query/update independence, decided dynamically on the
//!   labels the PULs already carry — no document access.
//!
//! * **Pipelining.** Per-submission reduction — the dominant cost of
//!   resolution — is document-independent (it reasons on labels only), so the
//!   drainer pre-reduces round *k+1* while the committer is still applying
//!   round *k*. The executor version counter fences the stages: each round is
//!   resolved against, and committed at, exactly one version, and a commit
//!   failure replays only that round's own journal scopes.
//!
//! * **Failure isolation.** A failing round first rewinds bit-identically
//!   (the PR 3 journal), then its members are retried *individually* in
//!   enqueue order, so only the tickets of the genuinely failing submissions
//!   report an error — batched ingestion fails exactly the submissions a
//!   sequential executor would have failed.
//!
//! The queue is backend-generic over [`IngestBackend`], implemented by both
//! [`Executor`](crate::Executor) and [`ShardedExecutor`](crate::ShardedExecutor).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pul::{OpName, Pul};
use pul_core::{Conflict, Policy};
use pul_store::{site, Faults, PoolStats, SharedPool};
use pul_telemetry::{EventKind, Telemetry};
use xdm::NodeId;
use xlabel::LabelInterval;

use crate::error::{Error, Result};
use crate::executor::{ReductionStrategy, DEFAULT_POOL_IDLE};
use crate::SubmissionId;

// ---------------------------------------------------------------------------
// backend abstraction
// ---------------------------------------------------------------------------

/// Unified summary of one batched commit, whatever the backend.
#[derive(Debug, Clone)]
pub struct BatchCommit {
    /// The backend version produced by the commit.
    pub version: u64,
    /// Total operations applied by the commit.
    pub applied_ops: usize,
    /// The conflicts detected (and solved) while resolving the batch.
    /// [`OpRef::pul`](pul_core::OpRef) indexes the batch's submissions in
    /// admission order.
    pub conflicts: Vec<Conflict>,
}

/// The resolve + commit surface the ingestion pipeline drives. Both
/// [`Executor`](crate::Executor) and [`ShardedExecutor`](crate::ShardedExecutor)
/// implement it, so an [`IngestQueue`] can front either backend.
///
/// The queue owns the backend exclusively: `admit` fills the pending set,
/// `resolve_pending` reasons on *everything* pending, and `commit_pending`
/// applies the resolution atomically. Submissions are pre-reduced by the
/// queue's drainer thread (pipelined with the previous round's commit), so
/// `admit` takes the reduction alongside the PUL and `resolve_pending` skips
/// the reduction stage for it.
pub trait IngestBackend: Send + 'static {
    /// The backend's resolution type ([`Resolution`](crate::Resolution) or
    /// [`ShardedResolution`](crate::ShardedResolution)).
    type Resolution: Send;

    /// Admits one producer PUL with its policy and an optional precomputed
    /// reduction (computed under
    /// [`reduction_strategy`](IngestBackend::reduction_strategy)).
    fn admit(&mut self, pul: Pul, policy: Policy, reduced: Option<Pul>) -> SubmissionId;

    /// Reasons on every pending submission without touching the document.
    fn resolve_pending(&self) -> Result<Self::Resolution>;

    /// Atomically applies a resolution, consuming the submissions it covers.
    /// On failure the backend state is exactly as before the call (journal
    /// replay), with the submissions still pending.
    fn commit_pending(&mut self, resolution: Self::Resolution) -> Result<BatchCommit>;

    /// Like [`commit_pending`](IngestBackend::commit_pending), but the
    /// backend may fan the resolution's disjoint slices out to **parallel
    /// commit lanes** (the sharded backend commits each busy shard on its
    /// own thread). Backends without an intra-commit parallel path — the
    /// single executor, and `Durable<Executor>` — fall back to the serial
    /// commit; atomicity and ticket semantics are identical either way.
    fn commit_pending_lanes(&mut self, resolution: Self::Resolution) -> Result<BatchCommit> {
        self.commit_pending(resolution)
    }

    /// Pins the backend's current version into an MVCC
    /// [`Snapshot`](crate::Snapshot), for the pipeline to publish to readers
    /// between rounds. Backends without snapshot support return `None` (the
    /// default).
    fn snapshot_view(&self) -> Option<crate::Snapshot> {
        None
    }

    /// Drops a pending submission (after a failed commit, so later rounds do
    /// not resurrect it).
    fn discard(&mut self, id: SubmissionId);

    /// The backend's current version counter — the fence the pipeline orders
    /// rounds by.
    fn current_version(&self) -> u64;

    /// The reduction strategy the drainer must pre-reduce with.
    fn reduction_strategy(&self) -> ReductionStrategy;

    /// The policy assumed for submissions that do not carry their own.
    fn default_policy(&self) -> Policy;

    /// Background maintenance, invoked by the pipeline only at a *quiescent*
    /// boundary: nothing queued, nothing drained, nothing in flight. This is
    /// the sole point where maintenance that renumbers node identifiers
    /// (slab compaction) may run — anywhere else it would silently re-target
    /// PULs already inside the pipeline that were minted against the old
    /// numbering. Errors are the backend's to surface on a later round.
    fn maintain(&mut self) {}
}

// ---------------------------------------------------------------------------
// tickets
// ---------------------------------------------------------------------------

/// What a successfully committed submission reports back to its producer.
#[derive(Debug, Clone)]
pub struct TicketOutcome {
    /// The backend version whose commit included this submission. Coalesced
    /// submissions share a version; serialized ones get successive versions.
    pub version: u64,
    /// The conflicts this submission was involved in (all solved under the
    /// producer policies, or the ticket would have failed instead).
    pub conflicts: Vec<Conflict>,
}

#[derive(Debug)]
struct TicketShared {
    outcome: Mutex<Option<Result<TicketOutcome>>>,
    done: Condvar,
}

/// The completion handle returned by [`IngestQueue::enqueue`]: it resolves to
/// the committed version and per-submission conflict report, or to the error
/// that failed the submission. Dropping a ticket is fine — the submission
/// still commits.
#[derive(Debug, Clone)]
pub struct Ticket {
    shared: Arc<TicketShared>,
}

impl Ticket {
    fn new() -> (Ticket, TicketCompleter) {
        let shared = Arc::new(TicketShared { outcome: Mutex::new(None), done: Condvar::new() });
        (Ticket { shared: shared.clone() }, TicketCompleter { shared, completed: false })
    }

    /// Blocks until the submission is committed or failed.
    pub fn wait(&self) -> Result<TicketOutcome> {
        let mut outcome = self.shared.outcome.lock().expect("ticket lock");
        while outcome.is_none() {
            outcome = self.shared.done.wait(outcome).expect("ticket lock");
        }
        outcome.as_ref().expect("just checked").clone()
    }

    /// The outcome, if the submission has already been committed or failed.
    pub fn try_outcome(&self) -> Option<Result<TicketOutcome>> {
        self.shared.outcome.lock().expect("ticket lock").clone()
    }

    /// Whether the submission has reached its outcome.
    pub fn is_done(&self) -> bool {
        self.shared.outcome.lock().expect("ticket lock").is_some()
    }
}

/// The write side of a ticket, held by the pipeline. Exactly one completion
/// ever happens; if the completer is dropped on a panic or shutdown path
/// before completing, the ticket is *poisoned* so no producer blocks forever.
#[derive(Debug)]
struct TicketCompleter {
    shared: Arc<TicketShared>,
    completed: bool,
}

impl TicketCompleter {
    fn complete(mut self, outcome: Result<TicketOutcome>) {
        self.completed = true;
        let mut slot = self.shared.outcome.lock().expect("ticket lock");
        *slot = Some(outcome);
        self.shared.done.notify_all();
    }
}

impl Drop for TicketCompleter {
    fn drop(&mut self) {
        if !self.completed {
            let mut slot = self.shared.outcome.lock().expect("ticket lock");
            if slot.is_none() {
                *slot = Some(Err(Error::Ingest(
                    "ticket poisoned: the pipeline shut down before the submission was committed"
                        .into(),
                )));
                self.shared.done.notify_all();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// independence footprints
// ---------------------------------------------------------------------------

/// A sibling-gap slot an operation may insert into (or vacate): a position in
/// the child list of `parent`. Two operations on *disjoint* subtrees can
/// still interact through a gap they share — the sibling-gap reduction rules
/// (I18/IR19/IR20) pair an `ins→` on one subtree with an `ins←` on the next —
/// so a footprint records the slots its operations touch in addition to the
/// interval hull. Slots are canonical: inserting after the last child and
/// inserting "as last into" the parent name the same [`GapSlot::End`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GapSlot {
    /// Before the first child of the parent.
    Start(NodeId),
    /// Immediately after a given (non-last) child of the parent.
    After(NodeId, NodeId),
    /// After the last child of the parent.
    End(NodeId),
    /// Anywhere in the parent's child list (`ins↓`, position
    /// implementation-defined until reduction pins it down).
    Any(NodeId),
}

impl GapSlot {
    fn parent(self) -> NodeId {
        match self {
            GapSlot::Start(p) | GapSlot::After(p, _) | GapSlot::End(p) | GapSlot::Any(p) => p,
        }
    }

    fn collides(self, other: GapSlot) -> bool {
        match (self, other) {
            (GapSlot::Any(_), _) | (_, GapSlot::Any(_)) => self.parent() == other.parent(),
            _ => self == other,
        }
    }
}

/// The independence footprint of one queued PUL: the convex hull of its
/// target intervals plus the sibling-gap slots its operations touch. `None`
/// when the PUL carries an operation whose target has no label (a node only
/// its own content introduces, or an unlabeled producer op) — such a PUL is
/// *opaque* and serializes against everything.
#[derive(Debug, Clone)]
struct Footprint {
    hull: LabelInterval,
    gaps: Vec<GapSlot>,
}

impl Footprint {
    /// Computes the footprint, or `None` for an opaque PUL.
    fn of(pul: &Pul) -> Option<Footprint> {
        let mut labels = Vec::with_capacity(pul.len());
        let mut gaps = Vec::new();
        for op in pul.ops() {
            let label = pul.label(op.target())?;
            labels.push(label);
            match op.name() {
                OpName::InsBefore => gaps.push(if label.is_first_child {
                    GapSlot::Start(label.parent?)
                } else {
                    GapSlot::After(label.parent?, label.left_sibling?)
                }),
                OpName::InsAfter => gaps.push(if label.is_last_child {
                    GapSlot::End(label.parent?)
                } else {
                    GapSlot::After(label.parent?, label.id)
                }),
                OpName::InsFirst => gaps.push(GapSlot::Start(label.id)),
                OpName::InsLast => gaps.push(GapSlot::End(label.id)),
                OpName::InsInto => gaps.push(GapSlot::Any(label.id)),
                OpName::Delete | OpName::ReplaceNode => {
                    // Removing (or replacing) a child merges the two gaps
                    // flanking it: any other PUL inserting into either gap
                    // must be ordered against this one. Attributes live
                    // outside the sibling order — deleting one touches no
                    // gap (and its label carries no sibling metadata, so
                    // falling through would misclassify the PUL as opaque).
                    if label.kind != xdm::NodeKind::Attribute {
                        if let Some(parent) = label.parent {
                            gaps.push(if label.is_first_child {
                                GapSlot::Start(parent)
                            } else {
                                GapSlot::After(parent, label.left_sibling?)
                            });
                            gaps.push(if label.is_last_child {
                                GapSlot::End(parent)
                            } else {
                                GapSlot::After(parent, label.id)
                            });
                        }
                    }
                }
                OpName::InsAttributes
                | OpName::ReplaceValue
                | OpName::ReplaceContent
                | OpName::Rename => {}
            }
        }
        let hull = LabelInterval::hull(labels)?;
        Some(Footprint { hull, gaps })
    }

    /// Whether two footprints may interact: interval hulls overlap (covering
    /// shared targets and every ancestor/descendant relation), or a
    /// sibling-gap slot collides.
    fn overlaps(&self, other: &Footprint) -> bool {
        if !self.hull.is_disjoint_from(&other.hull) {
            return true;
        }
        self.gaps.iter().any(|&a| other.gaps.iter().any(|&b| a.collides(b)))
    }
}

// ---------------------------------------------------------------------------
// queue plumbing
// ---------------------------------------------------------------------------

/// Flush policy of the ingestion queue.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Drain as soon as this many submissions are queued — and cap every
    /// drained batch (hence every coalesced commit) at this size; a backlog
    /// beyond it drains as successive batches without waiting for a tick.
    pub flush_threshold: usize,
    /// Drain whatever is queued once this much time has passed since the
    /// first submission of the current window.
    pub tick: Duration,
    /// Hard bound on the number of submissions waiting to be drained.
    /// [`enqueue`](IngestQueue::enqueue) blocks while the queue is full;
    /// [`try_enqueue`](IngestQueue::try_enqueue) sheds load with `XPUL-E08`
    /// instead of blocking.
    pub capacity: usize,
    /// Failpoints the pipeline consults: the drainer at
    /// [`site::INGEST_PREPARE`] and the committer at [`site::INGEST_COMMIT`].
    /// Disabled by default — a single branch per check.
    pub faults: Faults,
    /// Commit each round through the backend's **parallel lane** path
    /// ([`IngestBackend::commit_pending_lanes`]) when greater than 1: a
    /// sharded backend applies the round's busy shards concurrently instead
    /// of serially. Default 1 (serial) — the laned path stripes fresh
    /// identifiers differently than the serial path (deterministically, but
    /// not bit-identically), so it is opt-in.
    pub commit_lanes: usize,
    /// Publish an MVCC snapshot of the backend after every committed round,
    /// readable through [`IngestQueue::latest_snapshot`] without stopping
    /// the pipeline. Default false — pinning a snapshot keeps the round's
    /// whole arena alive until readers drop it.
    pub publish_snapshots: bool,
    /// Telemetry handle shared by the queue façade and both pipeline threads:
    /// queue depth, enqueue-block and per-ticket latencies, coalescing and
    /// shedding counters, and shed/expired events. Disabled by default — a
    /// single branch per probe.
    pub telemetry: Telemetry,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            flush_threshold: 16,
            tick: Duration::from_millis(2),
            capacity: 1024,
            faults: Faults::disabled(),
            commit_lanes: 1,
            publish_snapshots: false,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// One entry waiting in the queue.
struct QueuedEntry {
    pul: Pul,
    policy: Policy,
    /// Absolute deadline: the entry fails with `XPUL-E08` instead of
    /// committing once this instant passes (checked at drain and again at
    /// commit). `None` means no deadline.
    expires: Option<Instant>,
    /// When the entry was enqueued — `None` when telemetry is disabled, so
    /// the disabled pipeline never reads the clock. Feeds the per-ticket
    /// latency histogram at completion.
    enqueued: Option<Instant>,
    completer: TicketCompleter,
}

/// One entry of a prepared round: the original PUL plus its reduction
/// (computed by the drainer, pipelined with the previous round's commit).
struct PreparedEntry {
    pul: Pul,
    reduced: Pul,
    policy: Policy,
    expires: Option<Instant>,
    enqueued: Option<Instant>,
    completer: TicketCompleter,
}

struct QueueState {
    queue: VecDeque<QueuedEntry>,
    /// Entries drained but whose tickets are not yet completed.
    in_flight: usize,
    /// When the first entry of the current batching window was enqueued.
    window_start: Option<Instant>,
    /// Set by [`IngestQueue::flush`]: drain immediately, skip the tick wait.
    flush_hint: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signaled on enqueue / close / flush — wakes the drainer.
    enqueued: Condvar,
    /// Signaled when in-flight work completes — wakes `flush`.
    settled: Condvar,
    closed: AtomicBool,
    /// The snapshot of the most recently committed round, published by the
    /// committer when [`IngestConfig::publish_snapshots`] is on. Readers
    /// clone it out (a reference-count bump) while commits proceed.
    latest_snapshot: Mutex<Option<crate::Snapshot>>,
}

/// A batched, coalescing, pipelined submission queue in front of an
/// [`IngestBackend`]. See the module documentation for the architecture.
///
/// The queue is `Sync`: writers on any number of threads share one
/// `&IngestQueue` and call [`enqueue`](IngestQueue::enqueue) concurrently.
pub struct IngestQueue<B: IngestBackend> {
    shared: Arc<Shared>,
    default_policy: Policy,
    capacity: usize,
    /// Clone of [`IngestConfig::telemetry`] for the enqueue façade (queue
    /// depth, block latency, shed accounting).
    telemetry: Telemetry,
    /// Recycled round vectors: the drainer fills one per prepared round, the
    /// committer returns it emptied after the round commits — one steady-state
    /// allocation instead of one per round.
    scratch: SharedPool<Vec<PreparedEntry>>,
    drainer: Option<JoinHandle<()>>,
    committer: Option<JoinHandle<B>>,
}

impl<B: IngestBackend> IngestQueue<B> {
    /// Spawns the pipeline over `backend` with the default [`IngestConfig`].
    pub fn new(backend: B) -> Self {
        IngestQueue::with_config(backend, IngestConfig::default())
    }

    /// Spawns the pipeline over `backend` with an explicit flush policy.
    pub fn with_config(backend: B, config: IngestConfig) -> Self {
        let strategy = backend.reduction_strategy();
        let default_policy = backend.default_policy();
        let capacity = config.capacity.max(1);
        let faults = config.faults.clone();
        let telemetry = config.telemetry.clone();
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                in_flight: 0,
                window_start: None,
                flush_hint: false,
            }),
            enqueued: Condvar::new(),
            settled: Condvar::new(),
            closed: AtomicBool::new(false),
            latest_snapshot: Mutex::new(None),
        });
        let lanes = config.commit_lanes > 1;
        let publish = config.publish_snapshots;
        // Depth-1 channel: the drainer prepares (coalesces + reduces) round
        // k+1 while the committer applies round k — deeper pipelining would
        // only delay what the coalescer gets to see together.
        let (tx, rx): (SyncSender<Vec<PreparedEntry>>, Receiver<Vec<PreparedEntry>>) =
            sync_channel(1);
        let scratch: SharedPool<Vec<PreparedEntry>> = SharedPool::new(DEFAULT_POOL_IDLE);
        let drainer = {
            let shared = shared.clone();
            let scratch = scratch.clone();
            std::thread::Builder::new()
                .name("ingest-drainer".into())
                .spawn(move || drainer_loop(&shared, &config, strategy, tx, &scratch))
                .expect("spawn ingest drainer")
        };
        let committer = {
            let shared = shared.clone();
            let scratch = scratch.clone();
            let cfg = CommitterCfg {
                faults: faults.clone(),
                telemetry: telemetry.clone(),
                lanes,
                publish,
            };
            std::thread::Builder::new()
                .name("ingest-committer".into())
                .spawn(move || committer_loop(&shared, backend, rx, &cfg, &scratch))
                .expect("spawn ingest committer")
        };
        IngestQueue {
            shared,
            default_policy,
            capacity,
            telemetry,
            scratch,
            drainer: Some(drainer),
            committer: Some(committer),
        }
    }

    /// Enqueues a producer PUL under the backend's default policy, returning
    /// its completion ticket. Blocks while the queue is at
    /// [`capacity`](IngestConfig::capacity); fails with `XPUL-E06` once the
    /// queue is closed.
    pub fn enqueue(&self, pul: Pul) -> Result<Ticket> {
        self.enqueue_with_policy(pul, self.default_policy)
    }

    /// Enqueues a producer PUL with an explicit producer policy (blocking at
    /// capacity, like [`enqueue`](IngestQueue::enqueue)).
    pub fn enqueue_with_policy(&self, pul: Pul, policy: Policy) -> Result<Ticket> {
        self.enqueue_inner(pul, policy, None, true)
    }

    /// Non-blocking enqueue: if the queue is at capacity the submission is
    /// shed with `XPUL-E08` instead of waiting for space — the admission-
    /// control path for producers that would rather drop than stall.
    pub fn try_enqueue(&self, pul: Pul) -> Result<Ticket> {
        self.enqueue_inner(pul, self.default_policy, None, false)
    }

    /// Non-blocking enqueue with an explicit producer policy.
    pub fn try_enqueue_with_policy(&self, pul: Pul, policy: Policy) -> Result<Ticket> {
        self.enqueue_inner(pul, policy, None, false)
    }

    /// Enqueues with a per-ticket deadline: if the submission has not
    /// committed when `deadline` elapses, its ticket fails with `XPUL-E08`
    /// (checked when the entry is drained and again just before its round
    /// commits). Other members of the same round are unaffected.
    pub fn enqueue_with_deadline(&self, pul: Pul, deadline: Duration) -> Result<Ticket> {
        let expires = Instant::now().checked_add(deadline);
        self.enqueue_inner(pul, self.default_policy, expires, true)
    }

    fn enqueue_inner(
        &self,
        pul: Pul,
        policy: Policy,
        expires: Option<Instant>,
        block: bool,
    ) -> Result<Ticket> {
        let closed_err = || Error::Ingest("queue closed: no further submissions accepted".into());
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(closed_err());
        }
        let mut state = self.shared.state.lock().expect("queue lock");
        let mut blocked_at: Option<Instant> = None;
        while state.queue.len() >= self.capacity {
            if !block {
                self.telemetry.count(|m| &m.tickets_shed);
                self.telemetry.event(EventKind::Shed, 0, || {
                    format!("submission shed: ingest queue at capacity ({})", self.capacity)
                });
                return Err(Error::Overload(format!(
                    "ingest queue at capacity ({} waiting submissions)",
                    self.capacity
                )));
            }
            if blocked_at.is_none() && self.telemetry.is_enabled() {
                blocked_at = Some(Instant::now());
            }
            if self.shared.closed.load(Ordering::Acquire) {
                return Err(closed_err());
            }
            if self.drainer.as_ref().is_none_or(|h| h.is_finished()) {
                return Err(Error::Ingest(
                    "ingest pipeline is dead: the drainer exited with the queue full".into(),
                ));
            }
            // The drainer signals `settled` after every drain (space freed);
            // the timeout re-polls closed/liveness so a crash that happens
            // while we wait is noticed too.
            let (s, _) = self
                .shared
                .settled
                .wait_timeout(state, Duration::from_millis(50))
                .expect("queue lock");
            state = s;
        }
        if let Some(t0) = blocked_at {
            self.telemetry.observe_since(|m| &m.enqueue_block_ns, t0);
        }
        let (ticket, completer) = Ticket::new();
        if state.queue.is_empty() {
            state.window_start = Some(Instant::now());
        }
        let enqueued = self.telemetry.is_enabled().then(Instant::now);
        state.queue.push_back(QueuedEntry { pul, policy, expires, enqueued, completer });
        self.telemetry.gauge_set(|m| &m.queue_depth, state.queue.len() as i64);
        drop(state);
        self.shared.enqueued.notify_all();
        Ok(ticket)
    }

    /// Enqueues a producer PUL received in the XML exchange format (§4).
    /// Parse errors are reported synchronously; everything later comes
    /// through the ticket.
    pub fn enqueue_xml(&self, wire: &str) -> Result<Ticket> {
        let pul = pul::xmlio::pul_from_xml(wire)?;
        self.enqueue(pul)
    }

    /// Number of submissions waiting to be drained (in-flight rounds not
    /// included).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().expect("queue lock").queue.len()
    }

    /// Behaviour counters of the recycled round-vector pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.scratch.stats()
    }

    /// The telemetry handle installed through [`IngestConfig::telemetry`]
    /// (disabled unless one was armed): read the pipeline's counters and
    /// journal from it, or hand clones to more components.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The unified observability snapshot of the queue façade: the registry
    /// and journal tail plus the round-vector pool counters. The backend's
    /// slab statistics live behind the pipeline threads — read them from the
    /// backend's own `telemetry_snapshot()` after [`close`](IngestQueue::close).
    pub fn telemetry_snapshot(&self) -> crate::TelemetrySnapshot {
        crate::TelemetrySnapshot::gather(
            &self.telemetry,
            Default::default(),
            Default::default(),
            self.pool_stats(),
        )
    }

    /// The MVCC snapshot of the most recently committed round — a
    /// cheaply-cloned pinned view readers hold while the pipeline keeps
    /// committing. `None` until the first round commits, or when
    /// [`IngestConfig::publish_snapshots`] is off (or the backend has no
    /// snapshot support).
    pub fn latest_snapshot(&self) -> Option<crate::Snapshot> {
        self.shared.latest_snapshot.lock().expect("snapshot slot mutex poisoned").clone()
    }

    /// Blocks until everything enqueued so far has been committed or failed.
    /// If the pipeline dies (a backend panic), the orphaned tickets are
    /// poisoned and `flush` returns instead of waiting forever.
    pub fn flush(&self) {
        let mut state = self.shared.state.lock().expect("queue lock");
        while !state.queue.is_empty() || state.in_flight > 0 {
            state.flush_hint = true;
            self.shared.enqueued.notify_all();
            // A dead pipeline settles nothing ever again: bail out. (The
            // timeout below re-polls liveness, so a crash that happens while
            // we wait is noticed too.)
            let drainer_dead = self.drainer.as_ref().is_none_or(|h| h.is_finished());
            let committer_dead = self.committer.as_ref().is_none_or(|h| h.is_finished());
            if drainer_dead && committer_dead {
                break;
            }
            let (s, _) = self
                .shared
                .settled
                .wait_timeout(state, Duration::from_millis(50))
                .expect("queue lock");
            state = s;
        }
    }

    /// Closes the queue: everything already enqueued is drained and
    /// committed, both pipeline threads stop, and the backend is returned.
    /// Subsequent `enqueue` calls fail with `XPUL-E06`.
    ///
    /// If the committer thread panicked (a backend crash mid-commit), the
    /// backend is lost with it: `close` reports a typed `XPUL-E06` error
    /// instead of propagating the panic into the caller.
    pub fn close(mut self) -> Result<B> {
        self.shutdown();
        let committer = self.committer.take().expect("committer joined once");
        committer.join().map_err(|panic| {
            let what = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Error::Ingest(format!("ingest committer panicked: {what}"))
        })
    }

    fn shutdown(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        self.shared.enqueued.notify_all();
        if let Some(drainer) = self.drainer.take() {
            let _ = drainer.join();
        }
    }
}

impl<B: IngestBackend> Drop for IngestQueue<B> {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(committer) = self.committer.take() {
            let _ = committer.join();
        }
    }
}

// ---------------------------------------------------------------------------
// drainer: window → batch → rounds → pre-reduction
// ---------------------------------------------------------------------------

fn drainer_loop(
    shared: &Shared,
    config: &IngestConfig,
    strategy: ReductionStrategy,
    tx: SyncSender<Vec<PreparedEntry>>,
    scratch: &SharedPool<Vec<PreparedEntry>>,
) {
    loop {
        let batch = {
            let mut state = shared.state.lock().expect("queue lock");
            loop {
                let closed = shared.closed.load(Ordering::Acquire);
                if state.queue.is_empty() {
                    if closed {
                        return; // dropping `tx` stops the committer
                    }
                    state = shared.enqueued.wait(state).expect("queue lock");
                    continue;
                }
                let window_elapsed =
                    state.window_start.map(|t| t.elapsed() >= config.tick).unwrap_or(true);
                if closed
                    || state.flush_hint
                    || state.queue.len() >= config.flush_threshold
                    || window_elapsed
                {
                    break;
                }
                let remaining = config
                    .tick
                    .saturating_sub(state.window_start.map(|t| t.elapsed()).unwrap_or_default());
                let (s, _) = shared.enqueued.wait_timeout(state, remaining).expect("queue lock");
                state = s;
            }
            state.flush_hint = false;
            // A batch is capped at the threshold; the remainder (window_start
            // cleared, so its window counts as elapsed) drains immediately as
            // the next batch.
            state.window_start = None;
            let take = state.queue.len().min(config.flush_threshold.max(1));
            state.in_flight += take;
            let batch = state.queue.drain(..take).collect::<Vec<QueuedEntry>>();
            config.telemetry.gauge_set(|m| &m.queue_depth, state.queue.len() as i64);
            batch
        };
        // Space was freed: wake any producer blocked on the capacity bound.
        shared.settled.notify_all();

        // Fail deadline-expired entries before spending any preparation work
        // on them. The rest of the batch is coalesced and committed as if
        // the expired entries had never been enqueued.
        let now = Instant::now();
        let (batch, expired): (Vec<QueuedEntry>, Vec<QueuedEntry>) =
            batch.into_iter().partition(|e| e.expires.is_none_or(|t| t > now));
        if !expired.is_empty() {
            let n = expired.len();
            for e in expired {
                expire(
                    &config.telemetry,
                    e.enqueued,
                    e.completer,
                    "ticket deadline expired before the submission was drained",
                );
            }
            settle(shared, n);
        }

        let rounds = coalesce(batch);
        for round in &rounds {
            if round.len() > 1 {
                config.telemetry.count(|m| &m.rounds_coalesced);
            } else {
                config.telemetry.count(|m| &m.rounds_serialized);
            }
        }
        let mut rounds = rounds.into_iter();
        while let Some(round) = rounds.next() {
            // Failpoint: an injected preparation fault fails this round's
            // tickets and nothing reaches the committer; later rounds of the
            // batch (and the pipeline itself) continue.
            if let Some(kind) = config.faults.check(site::INGEST_PREPARE) {
                config.telemetry.count(|m| &m.fault_hits);
                config.telemetry.event(EventKind::FaultHit, 0, || {
                    format!("{}: injected {kind:?}", site::INGEST_PREPARE)
                });
                let n = round.len();
                for e in round {
                    finish(
                        &config.telemetry,
                        e.enqueued,
                        e.completer,
                        Err(Error::injected(site::INGEST_PREPARE, kind)),
                    );
                }
                settle(shared, n);
                continue;
            }
            // Pre-reduce here, on the drainer thread: reduction dominates
            // resolution (§4.3) and is document-independent, so it overlaps
            // the committer applying the previous round. The round vector is
            // recycled — the committer returns it to the shared pool once the
            // round settles.
            let mut entries = scratch.take_vec();
            entries.extend(round.into_iter().map(|e| PreparedEntry {
                reduced: strategy.reduce(&e.pul),
                pul: e.pul,
                policy: e.policy,
                expires: e.expires,
                enqueued: e.enqueued,
                completer: e.completer,
            }));
            if let Err(failed) = tx.send(entries) {
                // Committer gone (panic): the entries of this and all later
                // rounds are dropped — poisoning their tickets — and their
                // in-flight counts are returned so `flush` can settle.
                let mut orphaned = failed.0.len();
                drop(failed);
                for round in rounds {
                    orphaned += round.len();
                }
                settle(shared, orphaned);
                return;
            }
        }
    }
}

/// Completes a ticket, recording its end-to-end latency and the
/// committed/failed counter for its outcome. Deadline expiry goes through
/// [`expire`] instead, so the three completion counters stay disjoint:
/// `tickets_committed + tickets_failed + tickets_expired` = completed tickets.
fn finish(
    telemetry: &Telemetry,
    enqueued: Option<Instant>,
    completer: TicketCompleter,
    outcome: Result<TicketOutcome>,
) {
    if let Some(t0) = enqueued {
        telemetry.observe_since(|m| &m.ticket_latency_ns, t0);
    }
    match &outcome {
        Ok(_) => telemetry.count(|m| &m.tickets_committed),
        Err(_) => telemetry.count(|m| &m.tickets_failed),
    }
    completer.complete(outcome);
}

/// Fails a deadline-expired ticket with `XPUL-E08`, counting it under
/// `tickets_expired` and journaling a `DeadlineExpired` event.
fn expire(
    telemetry: &Telemetry,
    enqueued: Option<Instant>,
    completer: TicketCompleter,
    detail: &'static str,
) {
    if let Some(t0) = enqueued {
        telemetry.observe_since(|m| &m.ticket_latency_ns, t0);
    }
    telemetry.count(|m| &m.tickets_expired);
    telemetry.event(EventKind::DeadlineExpired, 0, || detail.to_string());
    completer.complete(Err(Error::Overload(detail.into())));
}

/// Settles `n` drained-but-uncommitted entries: decrements the in-flight
/// count and wakes both `flush` waiters and capacity-blocked producers.
fn settle(shared: &Shared, n: usize) {
    if n == 0 {
        return;
    }
    let mut state = shared.state.lock().expect("queue lock");
    state.in_flight -= n;
    drop(state);
    shared.settled.notify_all();
}

/// Partitions a drained batch into rounds of pairwise-independent PULs,
/// preserving enqueue order between any two PULs that may interact: each PUL
/// lands in the earliest round after every earlier PUL it overlaps (an opaque
/// PUL — one with an unlabeled target — overlaps everything).
fn coalesce(batch: Vec<QueuedEntry>) -> Vec<Vec<QueuedEntry>> {
    let footprints: Vec<Option<Footprint>> = batch.iter().map(|e| Footprint::of(&e.pul)).collect();
    let n = batch.len();
    let mut level = vec![0usize; n];
    for i in 0..n {
        for j in 0..i {
            let interact = match (&footprints[i], &footprints[j]) {
                (Some(a), Some(b)) => a.overlaps(b),
                _ => true, // opaque: serialize against everything
            };
            if interact {
                level[i] = level[i].max(level[j] + 1);
            }
        }
    }
    let n_rounds = level.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    let mut rounds: Vec<Vec<QueuedEntry>> = (0..n_rounds).map(|_| Vec::new()).collect();
    for (entry, lvl) in batch.into_iter().zip(level) {
        rounds[lvl].push(entry);
    }
    rounds
}

// ---------------------------------------------------------------------------
// committer: admit → resolve → commit → complete tickets
// ---------------------------------------------------------------------------

/// Decrements the in-flight count when dropped — *including* during a panic
/// unwind, so a backend crash inside `commit_round` cannot strand `flush`
/// waiting on work no thread will ever settle (the tickets themselves are
/// poisoned by their completers' own drops).
struct InFlightGuard<'a> {
    shared: &'a Shared,
    n: usize,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if let Ok(mut state) = self.shared.state.lock() {
            state.in_flight -= self.n;
        }
        self.shared.settled.notify_all();
    }
}

/// The committer thread's bundled configuration (one struct, so the loop and
/// `commit_round` keep small signatures as probes accumulate).
struct CommitterCfg {
    faults: Faults,
    telemetry: Telemetry,
    lanes: bool,
    publish: bool,
}

fn committer_loop<B: IngestBackend>(
    shared: &Shared,
    mut backend: B,
    rx: Receiver<Vec<PreparedEntry>>,
    cfg: &CommitterCfg,
    scratch: &SharedPool<Vec<PreparedEntry>>,
) -> B {
    loop {
        let mut entries = match rx.try_recv() {
            Ok(entries) => entries,
            Err(TryRecvError::Empty) => {
                // No prepared round waiting. If the producers' queue is empty
                // and nothing is in flight anywhere in the pipeline, this is
                // a quiescent round boundary — the only point where id-
                // renumbering maintenance (compaction) is safe to run.
                let quiescent = shared
                    .state
                    .lock()
                    .map(|state| state.queue.is_empty() && state.in_flight == 0)
                    .unwrap_or(false);
                if quiescent {
                    backend.maintain();
                }
                match rx.recv() {
                    Ok(entries) => entries,
                    Err(_) => {
                        backend.maintain();
                        break;
                    }
                }
            }
            // Disconnection means the drainer drained everything and exited:
            // the pipeline is quiescent by construction, so give maintenance
            // its final chance before the backend is handed back.
            Err(TryRecvError::Disconnected) => {
                backend.maintain();
                break;
            }
        };
        let _settle = InFlightGuard { shared, n: entries.len() };
        commit_round(&mut backend, &mut entries, true, cfg);
        if cfg.publish {
            if let Some(snapshot) = backend.snapshot_view() {
                *shared.latest_snapshot.lock().expect("snapshot slot mutex poisoned") =
                    Some(snapshot);
            }
        }
        scratch.put(entries);
    }
    backend
}

/// Commits one round. Members of a coalesced round are *proven* independent
/// (disjoint footprints, validated as one compatible Def. 5 union), so the
/// round is admitted as a **single merged submission** — `mergeUpdates` of
/// the pre-reduced PULs — and the backend's cross-submission integration,
/// which costs O(n²) in the number of producers, is skipped entirely: for an
/// independent batch it could only confirm what the footprints already
/// guarantee. Resolution then amounts to one final reduce over the union
/// (near-linear worklist) and one atomic apply.
///
/// On failure, the journal has already rewound the document bit-identically;
/// a multi-member round is then retried one entry at a time (in enqueue
/// order), so only the genuinely failing submissions fail — exactly the
/// outcome a sequential `submit → resolve → commit` per producer would have
/// produced.
fn commit_round<B: IngestBackend>(
    backend: &mut B,
    entries: &mut Vec<PreparedEntry>,
    retry: bool,
    cfg: &CommitterCfg,
) {
    let commit = |backend: &mut B, r: B::Resolution| {
        if cfg.lanes {
            backend.commit_pending_lanes(r)
        } else {
            backend.commit_pending(r)
        }
    };
    // Deadline check at commit time: expired members fail with `XPUL-E08`
    // and leave the round *before* the merge, so one expired ticket neither
    // blocks the survivors nor pushes them onto the serialized singleton
    // path — they still coalesce into a single commit. The round vector is
    // drained (left empty for the caller to recycle).
    let now = Instant::now();
    let mut live = Vec::with_capacity(entries.len());
    for entry in entries.drain(..) {
        if entry.expires.is_some_and(|t| t <= now) {
            expire(
                &cfg.telemetry,
                entry.enqueued,
                entry.completer,
                "ticket deadline expired before its round committed",
            );
        } else {
            live.push(entry);
        }
    }
    let mut entries = live;
    if entries.len() > 1 {
        // Failpoint: an injected committer fault fails the merged attempt
        // exactly like a real commit failure — the round degrades to the
        // singleton retries below, each of which re-checks the failpoint.
        let injected = cfg.faults.check(site::INGEST_COMMIT);
        if let Some(kind) = injected {
            cfg.telemetry.count(|m| &m.fault_hits);
            cfg.telemetry.event(EventKind::FaultHit, 0, || {
                format!("{}: injected {kind:?}", site::INGEST_COMMIT)
            });
        }
        if injected.is_none() {
            let merged = Pul::merge_all(entries.iter().map(|e| &e.pul)).and_then(|pul| {
                Pul::merge_all(entries.iter().map(|e| &e.reduced)).map(|r| (pul, r))
            });
            // An Err here (not a well-formed union) falls through to singletons.
            if let Ok((pul, reduced)) = merged {
                // Policies steer conflict reconciliation only, and an
                // independent round cannot conflict — any policy serves.
                let id = backend.admit(pul, entries[0].policy, Some(reduced));
                match backend.resolve_pending().and_then(|r| commit(backend, r)) {
                    Ok(batch) => {
                        for entry in entries {
                            finish(
                                &cfg.telemetry,
                                entry.enqueued,
                                entry.completer,
                                Ok(TicketOutcome { version: batch.version, conflicts: Vec::new() }),
                            );
                        }
                        return;
                    }
                    Err(_) => backend.discard(id),
                }
            }
        }
        // The merged commit failed (or the union was not well-formed — a
        // footprint bug backstop): degrade to sequential singleton rounds so
        // only the failing members fail.
        if retry {
            let mut single = Vec::with_capacity(1);
            for entry in entries {
                single.push(entry);
                commit_round(backend, &mut single, false, cfg);
            }
            return;
        }
        // Unreachable in practice (multi-member rounds always retry), but
        // keep the contract: fail every ticket rather than hang it.
        let err = Error::Ingest("batched commit failed and retry was disabled".into());
        for entry in entries {
            finish(&cfg.telemetry, entry.enqueued, entry.completer, Err(err.clone()));
        }
        return;
    }

    let Some(entry) = entries.pop() else { return };
    if let Some(kind) = cfg.faults.check(site::INGEST_COMMIT) {
        cfg.telemetry.count(|m| &m.fault_hits);
        cfg.telemetry.event(EventKind::FaultHit, 0, || {
            format!("{}: injected {kind:?}", site::INGEST_COMMIT)
        });
        finish(
            &cfg.telemetry,
            entry.enqueued,
            entry.completer,
            Err(Error::injected(site::INGEST_COMMIT, kind)),
        );
        return;
    }
    let id = backend.admit(entry.pul, entry.policy, Some(entry.reduced));
    match backend.resolve_pending().and_then(|r| commit(backend, r)) {
        Ok(batch) => {
            // Per-submission conflict report: OpRef.pul indexes the admission
            // order (a singleton round is index 0 of its own resolution).
            let conflicts: Vec<Conflict> = batch
                .conflicts
                .iter()
                .filter(|c| c.all_ops().iter().any(|r| r.pul == 0))
                .cloned()
                .collect();
            finish(
                &cfg.telemetry,
                entry.enqueued,
                entry.completer,
                Ok(TicketOutcome { version: batch.version, conflicts }),
            );
        }
        Err(e) => {
            backend.discard(id);
            finish(&cfg.telemetry, entry.enqueued, entry.completer, Err(e));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Executor, ShardedExecutor};
    use pul::UpdateOp;
    use xdm::Tree;

    /// ids: lib=1, year=2, b1=3, t=4, "A"=5, b2=6, t=7, "B"=8,
    ///      b3=9, t=10, "C"=11, b4=12, t=13, "D"=14
    const LIB: &str = "<lib year=\"2011\"><b1><t>A</t></b1><b2><t>B</t></b2>\
                       <b3><t>C</t></b3><b4><t>D</t></b4></lib>";

    fn giant_tick() -> IngestConfig {
        // Threshold-driven draining only: keeps round formation deterministic
        // in tests that enqueue faster than any realistic tick.
        IngestConfig {
            flush_threshold: 64,
            tick: Duration::from_secs(3600),
            ..IngestConfig::default()
        }
    }

    #[test]
    fn footprints_coalesce_disjoint_subtrees_and_serialize_overlaps() {
        let session = Executor::parse(LIB).unwrap();
        let p1 = session.pul_from_ops(vec![UpdateOp::rename(3u64, "x")]);
        let p2 = session.pul_from_ops(vec![UpdateOp::replace_value(8u64, "B2")]);
        let p3 = session.pul_from_ops(vec![UpdateOp::delete(4u64)]); // inside b1: overlaps p1
        let f1 = Footprint::of(&p1).unwrap();
        let f2 = Footprint::of(&p2).unwrap();
        let f3 = Footprint::of(&p3).unwrap();
        assert!(!f1.overlaps(&f2), "disjoint subtrees are independent");
        assert!(f1.overlaps(&f3), "nested targets overlap");
        assert!(f3.overlaps(&f1), "overlap is symmetric");
    }

    #[test]
    fn sibling_gap_slots_force_serialization_across_disjoint_hulls() {
        let session = Executor::parse(LIB).unwrap();
        // b2 (6) and b3 (9) are adjacent: ins→ on b2 and ins← on b3 name the
        // same gap even though the subtree hulls are disjoint.
        let p1 = session.pul_from_ops(vec![UpdateOp::ins_after(6u64, vec![Tree::element("x")])]);
        let p2 = session.pul_from_ops(vec![UpdateOp::ins_before(9u64, vec![Tree::element("y")])]);
        let f1 = Footprint::of(&p1).unwrap();
        let f2 = Footprint::of(&p2).unwrap();
        assert!(f1.hull.is_disjoint_from(&f2.hull), "hulls alone would miss this");
        assert!(f1.overlaps(&f2), "shared gap slot detected");
        // a deletion of b3 also merges the flanking gaps
        let p3 = session.pul_from_ops(vec![UpdateOp::delete(9u64)]);
        let f3 = Footprint::of(&p3).unwrap();
        assert!(f1.overlaps(&f3));
        // but an ins↘ deep inside b4 shares nothing with b2's right gap
        let p4 = session.pul_from_ops(vec![UpdateOp::ins_last(12u64, vec![Tree::element("z")])]);
        let f4 = Footprint::of(&p4).unwrap();
        assert!(!f1.overlaps(&f4));
    }

    #[test]
    fn attribute_deletions_keep_their_footprint() {
        // Attribute labels carry no sibling metadata; deleting one must not
        // make the PUL opaque (it touches no sibling gap at all).
        let session = Executor::parse(LIB).unwrap();
        let year = session.document().attributes(xdm::NodeId::new(1)).unwrap()[0];
        let p1 = session.pul_from_ops(vec![UpdateOp::delete(year)]);
        let f1 = Footprint::of(&p1).expect("attribute deletion is not opaque");
        assert!(f1.gaps.is_empty(), "attributes live outside the sibling order");
        // and it coalesces with an edit on a disjoint subtree
        let p2 = session.pul_from_ops(vec![UpdateOp::rename(9u64, "x")]);
        let f2 = Footprint::of(&p2).unwrap();
        assert!(!f1.overlaps(&f2));
    }

    #[test]
    fn unlabeled_puls_are_opaque() {
        let mut pul = Pul::new();
        pul.push(UpdateOp::rename(3u64, "x")); // no label attached
        assert!(Footprint::of(&pul).is_none());
    }

    #[test]
    fn independent_submissions_coalesce_into_one_version() {
        let session = Executor::parse(LIB).unwrap();
        let puls: Vec<Pul> = [(3u64, "x1"), (6u64, "x2"), (9u64, "x3"), (12u64, "x4")]
            .iter()
            .map(|&(id, name)| session.pul_from_ops(vec![UpdateOp::rename(id, name)]))
            .collect();
        let queue = IngestQueue::with_config(session, giant_tick());
        let tickets: Vec<Ticket> = puls.into_iter().map(|p| queue.enqueue(p).unwrap()).collect();
        queue.flush();
        let outcomes: Vec<TicketOutcome> =
            tickets.iter().map(|t| t.wait().expect("independent renames commit")).collect();
        // all four commit — and in a single coalesced version
        let versions: Vec<u64> = outcomes.iter().map(|o| o.version).collect();
        assert!(versions.iter().all(|&v| v == versions[0]), "coalesced: {versions:?}");
        assert!(outcomes.iter().all(|o| o.conflicts.is_empty()));
        let session = queue.close().unwrap();
        assert_eq!(session.version(), 1, "one commit for four independent submissions");
        let xml = session.serialize();
        for name in ["<x1>", "<x2>", "<x3>", "<x4>"] {
            assert!(xml.contains(name), "{xml}");
        }
        session.assert_consistent();
    }

    #[test]
    fn overlapping_submissions_serialize_in_enqueue_order() {
        let session = Executor::parse(LIB).unwrap();
        let p1 = session.pul_from_ops(vec![UpdateOp::replace_value(5u64, "first")]);
        let p2 = session.pul_from_ops(vec![UpdateOp::replace_value(5u64, "second")]);
        let queue = IngestQueue::with_config(session, giant_tick());
        let t1 = queue.enqueue(p1).unwrap();
        let t2 = queue.enqueue(p2).unwrap();
        queue.flush();
        let o1 = t1.wait().unwrap();
        let o2 = t2.wait().unwrap();
        assert!(o1.version < o2.version, "serialized rounds get successive versions");
        let session = queue.close().unwrap();
        assert_eq!(session.version(), 2);
        assert!(session.serialize().contains("second"), "the later submission wins");
    }

    #[test]
    fn failing_submissions_fail_alone_and_the_document_rewinds() {
        let session = Executor::parse(LIB).unwrap();
        let good1 = session.pul_from_ops(vec![UpdateOp::rename(3u64, "kept1")]);
        // duplicate attribute insertion: fails mid-apply (dynamic error)
        let poison = session.pul_from_ops(vec![UpdateOp::ins_attributes(
            6u64,
            vec![Tree::attribute("id", "1"), Tree::attribute("id", "2")],
        )]);
        let good2 = session.pul_from_ops(vec![UpdateOp::rename(12u64, "kept2")]);
        let queue = IngestQueue::with_config(session, giant_tick());
        let t1 = queue.enqueue(good1).unwrap();
        let tp = queue.enqueue(poison).unwrap();
        let t2 = queue.enqueue(good2).unwrap();
        queue.flush();
        t1.wait().expect("independent good submission commits");
        t2.wait().expect("independent good submission commits");
        let err = tp.wait().unwrap_err();
        assert_eq!(err.code(), "XPUL-P03", "{err}");
        let session = queue.close().unwrap();
        let xml = session.serialize();
        assert!(xml.contains("<kept1>") && xml.contains("<kept2>"), "{xml}");
        assert!(!xml.contains("id=\"1\""), "the poison PUL left no trace");
        session.assert_consistent();
        assert_eq!(session.pending(), 0, "failed submissions are discarded");
    }

    #[test]
    fn sharded_backend_works_behind_the_queue() {
        let session = ShardedExecutor::parse(LIB, 2).unwrap();
        let p1 = session.pul_from_ops(vec![UpdateOp::rename(3u64, "s0")]);
        let p2 = session.pul_from_ops(vec![UpdateOp::rename(12u64, "s1")]);
        let queue = IngestQueue::with_config(session, giant_tick());
        let t1 = queue.enqueue(p1).unwrap();
        let t2 = queue.enqueue(p2).unwrap();
        queue.flush();
        let o1 = t1.wait().unwrap();
        let o2 = t2.wait().unwrap();
        assert_eq!(o1.version, o2.version, "independent cross-shard PULs coalesce");
        let session = queue.close().unwrap();
        assert_eq!(session.version(), 1);
        assert!(session.serialize().contains("<s0>"));
        assert!(session.serialize().contains("<s1>"));
        session.assert_consistent();
    }

    #[test]
    fn enqueue_after_close_is_rejected_with_e06() {
        let session = Executor::parse(LIB).unwrap();
        let pul = session.pul_from_ops(vec![UpdateOp::rename(3u64, "x")]);
        let mut queue = IngestQueue::with_config(session, giant_tick());
        queue.shutdown();
        let err = queue.enqueue(pul).unwrap_err();
        assert_eq!(err.code(), "XPUL-E06", "{err}");
    }

    #[test]
    fn close_flushes_the_remaining_queue() {
        let session = Executor::parse(LIB).unwrap();
        let pul = session.pul_from_ops(vec![UpdateOp::rename(3u64, "flushed")]);
        let queue = IngestQueue::with_config(session, giant_tick());
        let ticket = queue.enqueue(pul).unwrap();
        // no flush(): close() must still drain and commit the entry
        let session = queue.close().unwrap();
        ticket.wait().expect("close drains the queue");
        assert!(session.serialize().contains("<flushed>"));
    }

    #[test]
    fn tick_flushes_below_the_threshold() {
        let session = Executor::parse(LIB).unwrap();
        let pul = session.pul_from_ops(vec![UpdateOp::rename(3u64, "ticked")]);
        let queue = IngestQueue::with_config(
            session,
            IngestConfig {
                flush_threshold: 1_000,
                tick: Duration::from_millis(1),
                ..IngestConfig::default()
            },
        );
        let ticket = queue.enqueue(pul).unwrap();
        let outcome = ticket.wait().expect("the tick drains a sub-threshold window");
        assert_eq!(outcome.version, 1);
        drop(queue);
    }

    /// Backend double that panics on commit — the crash-in-pipeline case.
    struct PanickingBackend(Executor);

    impl IngestBackend for PanickingBackend {
        type Resolution = crate::Resolution;
        fn admit(&mut self, pul: Pul, policy: Policy, reduced: Option<Pul>) -> SubmissionId {
            self.0.admit(pul, policy, reduced)
        }
        fn resolve_pending(&self) -> Result<crate::Resolution> {
            self.0.resolve_pending()
        }
        fn commit_pending(&mut self, _resolution: crate::Resolution) -> Result<BatchCommit> {
            panic!("injected commit panic");
        }
        fn discard(&mut self, id: SubmissionId) {
            self.0.discard(id);
        }
        fn current_version(&self) -> u64 {
            self.0.current_version()
        }
        fn reduction_strategy(&self) -> ReductionStrategy {
            self.0.reduction_strategy()
        }
        fn default_policy(&self) -> Policy {
            self.0.default_policy()
        }
    }

    #[test]
    fn committer_panic_poisons_tickets_and_flush_returns() {
        let session = Executor::parse(LIB).unwrap();
        let p1 = session.pul_from_ops(vec![UpdateOp::rename(3u64, "x")]);
        let p2 = session.pul_from_ops(vec![UpdateOp::rename(6u64, "y")]);
        let queue = IngestQueue::with_config(
            PanickingBackend(session),
            IngestConfig {
                flush_threshold: 2,
                tick: Duration::from_millis(1),
                ..IngestConfig::default()
            },
        );
        let t1 = queue.enqueue(p1).unwrap();
        let t2 = queue.enqueue(p2).unwrap();
        // must return (in-flight counts are settled by the unwind guard and
        // the drainer's orphan accounting), not hang forever
        queue.flush();
        assert_eq!(t1.wait().unwrap_err().code(), "XPUL-E06");
        assert_eq!(t2.wait().unwrap_err().code(), "XPUL-E06");
        drop(queue); // joins the panicked committer without propagating
    }

    #[test]
    fn try_enqueue_sheds_load_at_capacity() {
        let session = Executor::parse(LIB).unwrap();
        let puls: Vec<Pul> = [(3u64, "x1"), (6u64, "x2"), (9u64, "x3")]
            .iter()
            .map(|&(id, name)| session.pul_from_ops(vec![UpdateOp::rename(id, name)]))
            .collect();
        // Giant tick + high threshold: nothing drains until flush, so the
        // queue genuinely fills to its bound.
        let queue = IngestQueue::with_config(session, IngestConfig { capacity: 2, ..giant_tick() });
        let mut puls = puls.into_iter();
        let t1 = queue.try_enqueue(puls.next().unwrap()).unwrap();
        let t2 = queue.try_enqueue(puls.next().unwrap()).unwrap();
        let err = queue.try_enqueue(puls.next().unwrap()).unwrap_err();
        assert_eq!(err.code(), "XPUL-E08", "{err}");
        queue.flush();
        t1.wait().expect("admitted submissions commit");
        t2.wait().expect("admitted submissions commit");
        let session = queue.close().unwrap();
        let xml = session.serialize();
        assert!(xml.contains("<x1>") && xml.contains("<x2>"), "{xml}");
        assert!(!xml.contains("<x3>"), "the shed submission left no trace");
    }

    #[test]
    fn enqueue_blocks_at_capacity_until_space_frees() {
        let session = Executor::parse(LIB).unwrap();
        let p1 = session.pul_from_ops(vec![UpdateOp::rename(3u64, "x1")]);
        let p2 = session.pul_from_ops(vec![UpdateOp::rename(6u64, "x2")]);
        // capacity 1 with an eager drainer: the second enqueue finds the
        // queue full and must wait for the drain, not error out.
        let queue = IngestQueue::with_config(
            session,
            IngestConfig {
                flush_threshold: 1,
                tick: Duration::from_millis(1),
                capacity: 1,
                ..IngestConfig::default()
            },
        );
        let t1 = queue.enqueue(p1).unwrap();
        let t2 = queue.enqueue(p2).unwrap();
        queue.flush();
        t1.wait().unwrap();
        t2.wait().unwrap();
        let session = queue.close().unwrap();
        assert!(session.serialize().contains("<x2>"));
        session.assert_consistent();
    }

    #[test]
    fn expired_tickets_are_shed_at_drain_with_e08() {
        let session = Executor::parse(LIB).unwrap();
        let pul = session.pul_from_ops(vec![UpdateOp::rename(3u64, "late")]);
        let queue = IngestQueue::with_config(session, giant_tick());
        let ticket = queue.enqueue_with_deadline(pul, Duration::ZERO).unwrap();
        queue.flush();
        let err = ticket.wait().unwrap_err();
        assert_eq!(err.code(), "XPUL-E08", "{err}");
        let session = queue.close().unwrap();
        assert_eq!(session.version(), 0, "the expired submission never committed");
        assert!(!session.serialize().contains("<late>"));
    }

    #[test]
    fn mid_batch_expiry_does_not_serialize_the_round() {
        // Drive commit_round directly: three independent entries, the middle
        // one already expired. The survivors must still coalesce into a
        // single merged commit — one version, not two serialized ones.
        let mut session = Executor::parse(LIB).unwrap();
        let strategy = session.reduction_strategy();
        let policy = session.default_policy();
        let mut entries = Vec::new();
        let mut tickets = Vec::new();
        for (i, &(id, name)) in [(3u64, "x1"), (6u64, "gone"), (9u64, "x3")].iter().enumerate() {
            let pul = session.pul_from_ops(vec![UpdateOp::rename(id, name)]);
            let (ticket, completer) = Ticket::new();
            let expired = i == 1;
            entries.push(PreparedEntry {
                reduced: strategy.reduce(&pul),
                pul,
                policy,
                expires: expired.then(Instant::now),
                enqueued: None,
                completer,
            });
            tickets.push(ticket);
        }
        let cfg = CommitterCfg {
            faults: Faults::disabled(),
            telemetry: Telemetry::disabled(),
            lanes: false,
            publish: false,
        };
        commit_round(&mut session, &mut entries, true, &cfg);
        assert!(entries.is_empty(), "the round vector is drained for recycling");
        let o1 = tickets[0].wait().expect("live member commits");
        let o3 = tickets[2].wait().expect("live member commits");
        let err = tickets[1].wait().unwrap_err();
        assert_eq!(err.code(), "XPUL-E08", "{err}");
        assert_eq!(o1.version, o3.version, "survivors coalesce into one commit");
        assert_eq!(session.version(), 1, "one merged commit, no singleton fallback");
        assert!(!session.serialize().contains("<gone>"));
        session.assert_consistent();
    }

    #[test]
    fn close_after_committer_panic_returns_a_typed_error() {
        let session = Executor::parse(LIB).unwrap();
        let pul = session.pul_from_ops(vec![UpdateOp::rename(3u64, "x")]);
        let queue = IngestQueue::with_config(
            PanickingBackend(session),
            IngestConfig {
                flush_threshold: 1,
                tick: Duration::from_millis(1),
                ..IngestConfig::default()
            },
        );
        let ticket = queue.enqueue(pul).unwrap();
        queue.flush();
        assert_eq!(ticket.wait().unwrap_err().code(), "XPUL-E06");
        // Regression: close() used to propagate the committer's panic into
        // the caller; it must report a typed error instead.
        let err = match queue.close() {
            Ok(_) => panic!("close must fail after a committer panic"),
            Err(e) => e,
        };
        assert_eq!(err.code(), "XPUL-E06", "{err}");
        assert!(err.to_string().contains("panicked"), "{err}");
    }

    #[test]
    fn injected_commit_fault_degrades_to_singleton_retries() {
        use pul_store::{FaultKind, FaultPlan, Trigger};
        let session = Executor::parse(LIB).unwrap();
        let p1 = session.pul_from_ops(vec![UpdateOp::rename(3u64, "x1")]);
        let p2 = session.pul_from_ops(vec![UpdateOp::rename(6u64, "x2")]);
        let faults = FaultPlan::new(7)
            .fail(site::INGEST_COMMIT, Trigger::Nth(1), FaultKind::Transient)
            .arm();
        let queue = IngestQueue::with_config(
            session,
            IngestConfig { faults: faults.clone(), ..giant_tick() },
        );
        let t1 = queue.enqueue(p1).unwrap();
        let t2 = queue.enqueue(p2).unwrap();
        queue.flush();
        // The merged attempt was failed by the injection; the singleton
        // retries commit both members, just in separate versions.
        let o1 = t1.wait().expect("singleton retry commits");
        let o2 = t2.wait().expect("singleton retry commits");
        assert!(o1.version < o2.version, "degraded to serialized singletons");
        assert_eq!(faults.injected_at(site::INGEST_COMMIT), 1);
        let session = queue.close().unwrap();
        assert_eq!(session.version(), 2);
        let xml = session.serialize();
        assert!(xml.contains("<x1>") && xml.contains("<x2>"), "{xml}");
        session.assert_consistent();
    }

    #[test]
    fn injected_prepare_fault_fails_the_round_and_the_pipeline_survives() {
        use pul_store::{FaultKind, FaultPlan, Trigger};
        let session = Executor::parse(LIB).unwrap();
        let p1 = session.pul_from_ops(vec![UpdateOp::rename(3u64, "dropped")]);
        let p2 = session.pul_from_ops(vec![UpdateOp::rename(6u64, "kept")]);
        let faults = FaultPlan::new(7)
            .fail(site::INGEST_PREPARE, Trigger::Nth(1), FaultKind::Permanent)
            .arm();
        let queue = IngestQueue::with_config(session, IngestConfig { faults, ..giant_tick() });
        let t1 = queue.enqueue(p1).unwrap();
        queue.flush();
        let err = t1.wait().unwrap_err();
        assert_eq!(err.code(), "XPUL-E04", "injected faults keep the I/O code: {err}");
        // The pipeline survives the injection: later rounds still commit.
        let t2 = queue.enqueue(p2).unwrap();
        queue.flush();
        t2.wait().expect("the pipeline survives an injected prepare fault");
        let session = queue.close().unwrap();
        let xml = session.serialize();
        assert!(xml.contains("<kept>") && !xml.contains("<dropped>"), "{xml}");
        session.assert_consistent();
    }

    #[test]
    fn conflicting_producers_in_one_round_report_their_conflicts() {
        // Two relaxed producers renaming the same node are *not* independent:
        // they serialize, so each commits alone and cleanly. To see a conflict
        // report we coalesce via an overlapping pair that reconciliation can
        // solve: handled by the round fallback? No — same-target renames
        // serialize by footprint. Conflicts surface when a PUL is opaque and
        // integrate() still reconciles; exercise via the backend directly.
        let mut session = Executor::parse(LIB).unwrap().policy(Policy::relaxed());
        let p1 = session.pul_from_ops(vec![UpdateOp::rename(9u64, "first")]);
        let p2 = session.pul_from_ops(vec![UpdateOp::rename(9u64, "second")]);
        session.admit(p1, Policy::relaxed(), None);
        session.admit(p2, Policy::relaxed(), None);
        let resolution = session.resolve_pending().unwrap();
        let batch = session.commit_pending(resolution).unwrap();
        assert_eq!(batch.conflicts.len(), 1);
        assert_eq!(batch.version, 1);
    }
}
