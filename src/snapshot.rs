//! MVCC snapshot reads: pinned-version, immutable views of a session.
//!
//! A [`Snapshot`] freezes one committed version of a session — document,
//! labeling, version and compaction epoch — into a cheaply clonable handle
//! that keeps serving `select`-style reads, serialization and Table-1
//! predicate checks while the live session commits ahead. The snapshot holds
//! shared (`Arc`) views, so it never blocks a committer and a committer never
//! tears it: a commit mutates the session's own copy, the snapshot's arena is
//! immutable for as long as any reader holds it.
//!
//! Snapshots are produced by `Executor::snapshot`,
//! `ShardedExecutor::snapshot` and (for historical versions)
//! `Durable::read_at`. Each producer memoizes the last few snapshots in a
//! [`SnapshotCache`] keyed by `(version, epoch)`: the *first* read at a
//! version pays the O(document) freeze (or WAL replay), every later read at
//! the same version is a reference-count bump.
//!
//! What pins memory: a snapshot keeps its whole document arena and labeling
//! alive until the last clone is dropped — including across compaction epoch
//! bumps of the live session (the snapshot still shows the pre-compaction
//! identifiers it pinned). Long-held snapshots of large documents are the
//! price of never blocking readers; drop them to release the arena.

use std::sync::{Arc, Mutex, OnceLock};

use xdm::{Document, SharedDocument};
use xlabel::Labeling;

/// An immutable, cheaply clonable view of one committed session version.
/// See the module documentation for the pinning semantics.
#[derive(Debug, Clone)]
pub struct Snapshot {
    version: u64,
    epoch: u64,
    doc: SharedDocument,
    labeling: Arc<Labeling>,
    /// Memoized serialization: the first `serialize` pays the O(document)
    /// walk, clones afterwards share the result.
    serialized: Arc<OnceLock<String>>,
}

impl Snapshot {
    pub(crate) fn new(
        version: u64,
        epoch: u64,
        doc: SharedDocument,
        labeling: Arc<Labeling>,
    ) -> Snapshot {
        Snapshot { version, epoch, doc, labeling, serialized: Arc::new(OnceLock::new()) }
    }

    /// The session version this snapshot pinned.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The compaction epoch the pinned version was committed under. The
    /// snapshot's identifiers are only meaningful against this epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The pinned document.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// The pinned document as a shared handle (a reference-count bump).
    pub fn shared_document(&self) -> SharedDocument {
        Arc::clone(&self.doc)
    }

    /// The pinned labeling — Table-1 predicate checks against this version's
    /// node labels.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// The pinned document's serialization, memoized across calls and clones.
    pub fn serialized(&self) -> &str {
        self.serialized.get_or_init(|| xdm::writer::write_document(&self.doc))
    }

    /// The pinned document's serialization as an owned string (the session
    /// `serialize()` signature). The walk itself is memoized; repeated calls
    /// only copy the bytes out.
    pub fn serialize(&self) -> String {
        self.serialized().to_string()
    }

    /// Debug invariant walker over the pinned document (O(document)).
    pub fn assert_consistent(&self) {
        self.doc.assert_consistent();
    }
}

/// How many snapshots a cache retains (LRU): the current version plus a few
/// recently read historical ones.
const SNAPSHOT_CACHE_CAP: usize = 8;

/// A small `(version, epoch)`-keyed LRU of [`Snapshot`]s with interior
/// mutability, so `&self` read paths can memoize. **Cloning a session empties
/// the cache** (same rationale as the sink slot: a clone diverges).
#[derive(Debug, Default)]
pub(crate) struct SnapshotCache {
    inner: Mutex<Vec<Snapshot>>,
}

impl SnapshotCache {
    /// The cached snapshot for `(version, epoch)`, refreshed to
    /// most-recently-used.
    pub(crate) fn get(&self, version: u64, epoch: u64) -> Option<Snapshot> {
        let mut slots = self.inner.lock().expect("snapshot cache mutex poisoned");
        let at = slots.iter().position(|s| s.version == version && s.epoch == epoch)?;
        let hit = slots.remove(at);
        slots.push(hit.clone());
        Some(hit)
    }

    /// The cached snapshot for `version` under *any* epoch, refreshed to
    /// most-recently-used. The durable layer keys by version alone: within
    /// one WAL history a version determines its epoch, and the epoch is not
    /// known until the version has been restored.
    pub(crate) fn get_version(&self, version: u64) -> Option<Snapshot> {
        let mut slots = self.inner.lock().expect("snapshot cache mutex poisoned");
        let at = slots.iter().position(|s| s.version == version)?;
        let hit = slots.remove(at);
        slots.push(hit.clone());
        Some(hit)
    }

    /// Memoizes a snapshot, evicting the least recently used beyond the cap.
    pub(crate) fn insert(&self, snapshot: Snapshot) {
        let mut slots = self.inner.lock().expect("snapshot cache mutex poisoned");
        slots.retain(|s| !(s.version == snapshot.version && s.epoch == snapshot.epoch));
        slots.push(snapshot);
        if slots.len() > SNAPSHOT_CACHE_CAP {
            slots.remove(0);
        }
    }

    /// Drops every cached snapshot above `version` — the rollback
    /// invalidation hook (a rolled-back commit's version number will be
    /// reused by the next commit, with different contents).
    pub(crate) fn purge_above(&self, version: u64) {
        self.inner.lock().expect("snapshot cache mutex poisoned").retain(|s| s.version <= version);
    }
}

/// A cloned session must not serve the original's cached snapshots once the
/// two histories diverge (same version numbers, different contents), so the
/// clone starts cold.
impl Clone for SnapshotCache {
    fn clone(&self) -> Self {
        SnapshotCache::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(version: u64, epoch: u64) -> Snapshot {
        let doc = xdm::parser::parse_document("<r/>").unwrap();
        let labeling = Labeling::assign(&doc);
        Snapshot::new(version, epoch, doc.to_shared(), Arc::new(labeling))
    }

    #[test]
    fn cache_hits_are_keyed_by_version_and_epoch() {
        let cache = SnapshotCache::default();
        cache.insert(snap(3, 0));
        assert!(cache.get(3, 0).is_some());
        assert!(cache.get(3, 1).is_none(), "an epoch bump invalidates the key");
        assert!(cache.get(2, 0).is_none());
    }

    #[test]
    fn purge_above_drops_rolled_back_versions() {
        let cache = SnapshotCache::default();
        cache.insert(snap(1, 0));
        cache.insert(snap(2, 0));
        cache.insert(snap(3, 0));
        cache.purge_above(1);
        assert!(cache.get(1, 0).is_some());
        assert!(cache.get(2, 0).is_none());
        assert!(cache.get(3, 0).is_none());
    }

    #[test]
    fn cache_is_bounded_lru() {
        let cache = SnapshotCache::default();
        for v in 0..20 {
            cache.insert(snap(v, 0));
        }
        cache.get(12, 0).expect("recent entries are retained");
        cache.insert(snap(99, 0)); // evicts the oldest untouched entry
        assert!(cache.get(12, 0).is_some(), "the refreshed entry survived");
        assert!(cache.get(0, 0).is_none(), "old entries evicted");
        let cloned = cache.clone();
        assert!(cloned.get(12, 0).is_none(), "clones start cold");
    }

    #[test]
    fn serialization_is_memoized_across_clones() {
        let s = snap(0, 0);
        let c = s.clone();
        assert_eq!(s.serialized(), "<r/>");
        assert!(
            std::ptr::eq(s.serialized().as_ptr(), c.serialized().as_ptr()),
            "clones share the memoized serialization"
        );
        assert_eq!(s.serialize(), c.serialize());
    }
}
