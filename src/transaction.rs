//! Build-apply-rollback transactions over an [`Executor`] session.
//!
//! A [`Transaction`] opens a *journal scope* on the session when it is created
//! and exposes the full session API through `Deref`/`DerefMut`. While the
//! scope is open, every document and labeling mutation records its inverse in
//! the apply journal; dropping the guard — explicitly with
//! [`Transaction::rollback`], or implicitly on panic or early return — replays
//! the inverses, restoring the session at a cost proportional to what the
//! transaction changed (never to the size of the document; no snapshot clone
//! is ever taken). Calling [`Transaction::commit`] discards the journal and
//! *keeps* the result.
//!
//! Transactions nest: an inner transaction marks the same journal and rewinds
//! only to its own mark, while the outer transaction can still undo
//! everything.
//!
//! ```
//! use xmlpul::prelude::*;
//!
//! let mut session = Executor::parse("<doc><a>1</a></doc>").unwrap();
//! {
//!     let mut tx = session.transaction();
//!     let pul = tx.produce("rename node /doc/a as \"b\"").unwrap();
//!     tx.submit(pul);
//!     tx.apply().unwrap();                     // the document now has <b>
//!     assert!(tx.serialize().contains("<b>"));
//! }                                            // dropped: rolled back
//! assert!(session.serialize().contains("<a>"));
//! assert_eq!(session.version(), 0);
//! ```

use std::ops::{Deref, DerefMut};

use crate::error::Result;
use crate::executor::{CommitReport, Executor, TxScope};

/// A guard over an executor session that rolls the session back on drop
/// unless it is [committed](Transaction::commit). Rollback replays the apply
/// journal in reverse — O(change), no whole-session snapshot.
#[derive(Debug)]
pub struct Transaction<'a> {
    executor: &'a mut Executor,
    scope: Option<TxScope>,
}

impl<'a> Transaction<'a> {
    pub(crate) fn new(executor: &'a mut Executor) -> Self {
        let scope = executor.tx_begin();
        Transaction { executor, scope: Some(scope) }
    }

    /// Resolves and applies the pending submissions *inside* the transaction:
    /// the document advances, but the change is still undone by a rollback.
    /// Equivalent to [`Executor::commit`] through the guard.
    pub fn apply(&mut self) -> Result<CommitReport> {
        self.executor.commit()
    }

    /// Makes everything done inside the transaction permanent and dissolves
    /// the guard: the recorded journal is discarded (success = discard).
    /// Pending (unapplied) submissions stay pending in the session.
    pub fn commit(mut self) {
        if let Some(scope) = self.scope.take() {
            self.executor.tx_commit(scope);
        }
    }

    /// Explicitly restores the session to its state at transaction start by
    /// replaying the journal. (Dropping the guard does the same; this just
    /// names the intent.)
    pub fn rollback(self) {}
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if let Some(scope) = self.scope.take() {
            self.executor.tx_rollback(scope);
        }
    }
}

impl Deref for Transaction<'_> {
    type Target = Executor;

    fn deref(&self) -> &Executor {
        self.executor
    }
}

impl DerefMut for Transaction<'_> {
    fn deref_mut(&mut self) -> &mut Executor {
        self.executor
    }
}
