//! Build-apply-rollback transactions over an [`Executor`] session.
//!
//! A [`Transaction`] snapshots the session (document, labeling, pending
//! submissions, version) when it is opened and exposes the full session API
//! through `Deref`/`DerefMut`. Dropping the guard — explicitly with
//! [`Transaction::rollback`], or implicitly on panic or early return —
//! restores the snapshot; calling [`Transaction::commit`] resolves and
//! applies the pending submissions and *keeps* the result.
//!
//! ```
//! use xmlpul::prelude::*;
//!
//! let mut session = Executor::parse("<doc><a>1</a></doc>").unwrap();
//! {
//!     let mut tx = session.transaction();
//!     let pul = tx.produce("rename node /doc/a as \"b\"").unwrap();
//!     tx.submit(pul);
//!     tx.apply().unwrap();                     // the document now has <b>
//!     assert!(tx.serialize().contains("<b>"));
//! }                                            // dropped: rolled back
//! assert!(session.serialize().contains("<a>"));
//! assert_eq!(session.version(), 0);
//! ```

use std::ops::{Deref, DerefMut};

use crate::error::Result;
use crate::executor::{CommitReport, Executor, ExecutorSnapshot};

/// A guard over an executor session that rolls the session back on drop
/// unless it is [committed](Transaction::commit).
#[derive(Debug)]
pub struct Transaction<'a> {
    executor: &'a mut Executor,
    snapshot: Option<ExecutorSnapshot>,
}

impl<'a> Transaction<'a> {
    pub(crate) fn new(executor: &'a mut Executor) -> Self {
        let snapshot = executor.snapshot();
        Transaction { executor, snapshot: Some(snapshot) }
    }

    /// Resolves and applies the pending submissions *inside* the transaction:
    /// the document advances, but the change is still undone by a rollback.
    /// Equivalent to [`Executor::commit`] through the guard.
    pub fn apply(&mut self) -> Result<CommitReport> {
        self.executor.commit()
    }

    /// Makes everything done inside the transaction permanent and dissolves
    /// the guard. Pending (unapplied) submissions stay pending in the session.
    pub fn commit(mut self) {
        self.snapshot = None;
    }

    /// Explicitly restores the session to its state at transaction start.
    /// (Dropping the guard does the same; this just names the intent.)
    pub fn rollback(self) {}
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if let Some(snapshot) = self.snapshot.take() {
            self.executor.restore(snapshot);
        }
    }
}

impl Deref for Transaction<'_> {
    type Target = Executor;

    fn deref(&self) -> &Executor {
        self.executor
    }
}

impl DerefMut for Transaction<'_> {
    fn deref_mut(&mut self) -> &mut Executor {
        self.executor
    }
}
