//! # xmlpul — Dynamic Reasoning on XML Updates
//!
//! A Rust reproduction of *F. Cavalieri, G. Guerrini, M. Mesiti — “Dynamic
//! Reasoning on XML Updates”, EDBT 2011*: a complete system for exchanging,
//! reasoning on and executing XQuery Update Facility **Pending Update Lists
//! (PULs)** without accessing the documents they refer to.
//!
//! This crate is a façade re-exporting the workspace crates:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`xdm`] | XML document model, parser/serializer, SAX events |
//! | [`xlabel`] | update-tolerant labeling scheme (Table 1 predicates) |
//! | [`pul`] | update primitives, PULs, semantics, in-memory & streaming evaluation, exchange format |
//! | [`pul_core`] | **the paper's contribution**: reduction, integration, reconciliation, aggregation |
//! | [`xqupdate`] | a miniature XQuery Update front-end producing PULs |
//! | [`workload`] | XMark-style documents and synthetic PUL generators |
//!
//! ## Quick start
//!
//! ```
//! use xmlpul::prelude::*;
//!
//! // The executor holds the authoritative document and its labeling.
//! let doc = xdm::parser::parse_document(
//!     "<issue><paper><title>Old</title></paper></issue>").unwrap();
//! let labels = Labeling::assign(&doc);
//!
//! // A producer expresses updates as a PUL (here, built directly).
//! let title = doc.find_element("title").unwrap();
//! let pul = Pul::from_ops(vec![
//!     UpdateOp::rename(title, "heading"),
//!     UpdateOp::ins_after(title, vec![Tree::element_with_text("author", "G.Guerrini")]),
//! ], &labels);
//!
//! // PULs travel as XML, are reduced by the executor, and applied.
//! let wire = pul::xmlio::pul_to_xml(&pul);
//! let received = pul::xmlio::pul_from_xml(&wire).unwrap();
//! let reduced = pul_core::reduce(&received);
//! let mut updated = doc.clone();
//! pul::apply_pul(&mut updated, &reduced, &Default::default()).unwrap();
//! assert!(xdm::writer::write_document(&updated).contains("<heading>"));
//! ```

pub use pul;
pub use pul_core;
pub use workload;
pub use xdm;
pub use xlabel;
pub use xqupdate;

pub mod fixtures;

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use pul::{apply_pul, ApplyOptions, OpClass, OpName, Pul, PulError, UpdateOp};
    pub use pul_core::{
        aggregate, canonical_form, deterministic_reduce, integrate, reconcile, reduce, Conflict,
        ConflictType, Policy,
    };
    pub use xdm::{Document, NodeId, NodeKind, Tree};
    pub use xlabel::{Labeling, NodeLabel, OrderKey};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable() {
        let doc = xdm::parser::parse_document("<a><b>t</b></a>").unwrap();
        let labels = Labeling::assign(&doc);
        let b = doc.find_element("b").unwrap();
        let pul = Pul::from_ops(vec![UpdateOp::rename(b, "c")], &labels);
        let reduced = reduce(&pul);
        assert_eq!(reduced.len(), 1);
    }
}
