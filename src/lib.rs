//! # xmlpul — Dynamic Reasoning on XML Updates
//!
//! A Rust reproduction of *F. Cavalieri, G. Guerrini, M. Mesiti — “Dynamic
//! Reasoning on XML Updates”, EDBT 2011*: a complete system for exchanging,
//! reasoning on and executing XQuery Update Facility **Pending Update Lists
//! (PULs)** without accessing the documents they refer to.
//!
//! The heart of the crate is the [`Executor`] session API — one façade for the
//! whole pipeline:
//!
//! ```text
//!  producers ──submit()──▶ ┌───────────────────────────────┐
//!  (PULs, wire XML,        │  Executor session              │
//!   sequences, queries)    │   reduce → integrate →         │──commit()──▶ Document'
//!                          │   reconcile → aggregate        │   (in memory or streaming)
//!                          └──────────resolve()─────────────┘
//!                                       │
//!                                       ▼
//!                            Resolution (PUL + conflict report)
//! ```
//!
//! ## Quick start
//!
//! ```
//! use xmlpul::prelude::*;
//!
//! // The executor session owns the authoritative document and its labeling.
//! let mut session = Executor::parse(
//!     "<issue><paper><title>Old</title></paper></issue>").unwrap()
//!     .policy(Policy::relaxed())
//!     .reduction(ReductionStrategy::Deterministic);
//!
//! // Producers express updates as PULs — here through the XQuery Update
//! // front-end — and ship them over the wire.
//! let pul = session.produce(
//!     "rename node /issue/paper/title as \"heading\", \
//!      insert nodes <author>G.Guerrini</author> after /issue/paper/title").unwrap();
//! let wire = pul::xmlio::pul_to_xml(&pul);
//!
//! // The executor admits submissions, reasons on them without touching the
//! // document, and commits the resolution.
//! session.submit_xml(&wire).unwrap();
//! let resolution = session.resolve().unwrap();
//! assert!(resolution.is_conflict_free());
//! let report = session.commit_resolution(resolution).unwrap();
//! assert_eq!(report.version, 1);
//! assert!(session.serialize().contains("<heading>"));
//! assert!(session.serialize().contains("G.Guerrini"));
//! ```
//!
//! Everything fallible returns the unified [`Error`] with a stable
//! [`code`](Error::code); [`Transaction`] adds build-apply-rollback on top;
//! [`Executor::commit_streaming`] applies a resolution in one pass over the
//! identified serialization without materialising the document;
//! [`IngestQueue`] fronts an executor (single or
//! [sharded](ShardedExecutor)) with a batched, coalescing, pipelined
//! submission queue for multi-writer ingestion.
//!
//! ## Workspace layout
//!
//! | crate | contents |
//! |-------|----------|
//! | [`xdm`] | XML document model, parser/serializer, SAX events |
//! | [`xlabel`] | update-tolerant labeling scheme (Table 1 predicates) |
//! | [`pul`] | update primitives, PULs, semantics, in-memory & streaming evaluation, exchange format |
//! | [`pul_core`] | **the paper's contribution**: reduction, integration, reconciliation, aggregation |
//! | [`xqupdate`] | a miniature XQuery Update front-end producing PULs |
//! | [`workload`] | XMark-style documents and synthetic PUL generators |
//!
//! The free functions of `pul_core` remain available for operator-level work.
//! The historical reduction function zoo (`reduce`, `deterministic_reduce`,
//! `canonical_form`) has been removed: use [`ReductionStrategy`] (or
//! `pul_core::reduce_with` directly).

pub use pul;
pub use pul_core;
pub use pul_store;
pub use workload;
pub use xdm;
pub use xlabel;
pub use xqupdate;

mod durable;
mod error;
mod executor;
mod ingest;
mod observe;
mod resolution;
mod shard;
mod snapshot;
mod transaction;

pub mod fixtures;

pub use durable::{
    CommitPayload, CommitRecord, CommitSink, Durable, DurableBackend, DurableOptions, RetryPolicy,
    SharedSink,
};
pub use error::{Error, Result};
pub use executor::{
    CacheStats, CommitReport, CompactionReport, Executor, ExecutorCore, ReductionStrategy,
    SessionSlabStats, SubmissionId,
};
pub use ingest::{BatchCommit, IngestBackend, IngestConfig, IngestQueue, Ticket, TicketOutcome};
pub use observe::TelemetrySnapshot;
pub use pul_store::{
    site as fault_site, FaultKind, FaultPlan, FaultSpec, Faults, StoreError, SyncPolicy, Trigger,
};
pub use pul_telemetry::{
    Event, EventKind, HistogramSummary, Metrics, MetricsSnapshot, Telemetry, EVENT_JOURNAL_CAP,
};
pub use resolution::Resolution;
pub use shard::{ShardedCommitReport, ShardedExecutor, ShardedResolution};
pub use snapshot::Snapshot;
pub use transaction::Transaction;

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::{
        BatchCommit, CacheStats, CommitReport, CompactionReport, Durable, DurableOptions, Error,
        Event, EventKind, Executor, ExecutorCore, FaultKind, FaultPlan, Faults, IngestBackend,
        IngestConfig, IngestQueue, MetricsSnapshot, ReductionStrategy, Resolution, Result,
        RetryPolicy, SessionSlabStats, ShardedCommitReport, ShardedExecutor, ShardedResolution,
        Snapshot, SubmissionId, SyncPolicy, Telemetry, TelemetrySnapshot, Ticket, TicketOutcome,
        Transaction, Trigger,
    };
    pub use pul::{ApplyOptions, OpClass, OpName, Pul, UpdateOp};
    pub use pul_core::{Conflict, ConflictType, Policy};
    pub use xdm::{Document, NodeId, NodeKind, Tree};
    pub use xlabel::{LabelInterval, Labeling, NodeLabel, OrderKey};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_session_is_usable() {
        let mut session = Executor::parse("<a><b>t</b></a>").unwrap();
        let b = session.document().find_element("b").unwrap();
        let pul = session.pul_from_ops(vec![UpdateOp::rename(b, "c")]);
        session.submit(pul);
        let resolution = session.resolve().unwrap();
        assert_eq!(resolution.resolved_ops(), 1);
        session.commit_resolution(resolution).unwrap();
        assert!(session.serialize().contains("<c>"));
        assert_eq!(session.version(), 1);
    }

    #[test]
    fn slab_stats_expose_churn() {
        let mut session = Executor::parse("<r><a/><b/><c/><d/></r>").unwrap();
        let before = session.slab_stats();
        assert_eq!(before.nodes.dead, 0);
        assert_eq!(
            before.nodes.live + before.nodes.spill,
            before.labels.live + before.labels.spill,
            "arena and labeling store the same population"
        );
        // churn: delete two subtrees, insert one — dead slots accumulate
        // because identifiers are never reused
        let a = session.document().find_element("a").unwrap();
        let b = session.document().find_element("b").unwrap();
        let c = session.document().find_element("c").unwrap();
        let pul = session.pul_from_ops(vec![
            UpdateOp::delete(a),
            UpdateOp::delete(b),
            UpdateOp::ins_last(c, vec![Tree::element("fresh")]),
        ]);
        session.submit(pul);
        session.commit().unwrap();
        let after = session.slab_stats();
        assert!(after.nodes.dead >= 2, "removed slots stay dead: {after:?}");
        assert!(after.labels.dead >= 2);
        assert!(after.nodes.dead_ratio() > 0.0);
        // the sharded façade aggregates across shards
        let sharded = ShardedExecutor::parse("<r><a/><b/><c/><d/></r>", 2).unwrap();
        let stats = sharded.slab_stats();
        assert!(stats.nodes.live >= 5, "root copies + subtrees: {stats:?}");
        assert_eq!(stats.nodes.spill, 0);
    }

    #[test]
    fn stale_resolutions_are_rejected() {
        let mut session = Executor::parse("<a><b>t</b></a>").unwrap();
        let b = session.document().find_element("b").unwrap();
        session.submit(Pul::from_ops(vec![UpdateOp::rename(b, "c")], session.labeling()));
        let resolution = session.resolve().unwrap();
        session.commit().unwrap();
        let err = session.commit_resolution(resolution).unwrap_err();
        assert_eq!(err.code(), "XPUL-E01");
    }
}
