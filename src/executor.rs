//! The executor session API: one façade for the whole PUL pipeline.
//!
//! The paper's architecture (§4) centres on an *executor* that owns the
//! authoritative document, receives PULs from many producers, reasons on them
//! — reducing, integrating, reconciling, aggregating — and only touches the
//! document at commit time. [`Executor`] is that object:
//!
//! ```text
//!  producers ──submit()──▶ ┌──────────────────────────────┐
//!  (PULs, wire XML,        │  Executor session             │
//!   sequences, queries)    │   reduce ─ integrate ─        │──commit()──▶ Document'
//!                          │   reconcile ─ aggregate       │
//!                          └───────────resolve()───────────┘
//!                                        │
//!                                        ▼
//!                               Resolution (PUL + conflicts)
//! ```
//!
//! See the crate-level quick start for a complete tour.

use std::io::{Read, Write};

use pul::apply::{apply_pul_with_labeling, ApplyOptions, ApplyReport};
use pul::stream::apply_streaming_with;
use pul::{Pul, UpdateOp};
use pul_core::reduce::{reduce_naive, reduce_with, ReductionKind};
use pul_core::{aggregate, integrate, reconcile_integration, Policy};
use xdm::{parser, writer, Document};
use xlabel::Labeling;

use crate::error::{Error, Result};
use crate::resolution::Resolution;
use crate::transaction::Transaction;

/// How the executor reduces PULs — the session-level replacement for the
/// historical `reduce` / `deterministic_reduce` / `canonical_form` /
/// `reduce_naive` free functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReductionStrategy {
    /// No reduction at all: submissions are integrated as sent.
    None,
    /// Fig. 2 stages 1–9 (Def. 7); `ins↓` may survive, so the result can have
    /// several obtainable documents.
    Standard,
    /// Stages 1–10 (Def. 8): `ins↓` is rewritten into `ins↙`, making the PUL
    /// semantics deterministic. The executor default.
    #[default]
    Deterministic,
    /// Def. 9: deterministic reduction with `<p`-least pair selection — the
    /// unique canonical form, at the price of a per-stage search.
    Canonical,
    /// The O(k²) baseline examining every ordered pair (ablation only).
    Naive,
}

impl ReductionStrategy {
    /// Reduces one PUL according to the strategy.
    pub fn reduce(self, pul: &Pul) -> Pul {
        match self {
            ReductionStrategy::None => pul.clone(),
            ReductionStrategy::Standard => reduce_with(pul, ReductionKind::Plain),
            ReductionStrategy::Deterministic => reduce_with(pul, ReductionKind::Deterministic),
            ReductionStrategy::Canonical => reduce_with(pul, ReductionKind::Canonical),
            ReductionStrategy::Naive => reduce_naive(pul),
        }
    }
}

/// Identifier of a pending submission within a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubmissionId(pub(crate) u64);

impl std::fmt::Display for SubmissionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "submission#{}", self.0)
    }
}

/// One producer PUL waiting in the session, with the policy its producer
/// attached. Wire submissions that hit (or populate) the reduction cache
/// carry their reduction along, so [`Executor::resolve`] skips reducing them.
#[derive(Debug, Clone)]
struct Submission {
    id: SubmissionId,
    pul: Pul,
    policy: Policy,
    pre_reduced: Option<Pul>,
}

/// LRU memo of wire-submission reductions, keyed by a hash of the exchange
/// XML: producers frequently re-send identical PULs (retries, fan-out, idle
/// heartbeats with the same delta), and reduction is by far the most
/// expensive step of `resolve`. Capacity is small and lookups are a linear
/// scan — the map holds a handful of entries, and each holds a reduced PUL.
#[derive(Debug, Clone)]
struct CacheEntry {
    hash: u64,
    /// The full wire bytes, compared on every hash hit: a 64-bit hash alone
    /// would let a (possibly crafted) collision substitute another
    /// submission's reduction.
    wire: String,
    reduced: Pul,
}

#[derive(Debug, Clone)]
struct ReductionCache {
    capacity: usize,
    /// Most recently used last.
    entries: Vec<CacheEntry>,
    hits: u64,
    misses: u64,
}

impl ReductionCache {
    fn new(capacity: usize) -> Self {
        ReductionCache { capacity, entries: Vec::new(), hits: 0, misses: 0 }
    }

    fn hash(wire: &str) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        wire.hash(&mut h);
        h.finish()
    }

    fn get(&mut self, key: u64, wire: &str) -> Option<Pul> {
        match self.entries.iter().position(|e| e.hash == key && e.wire == wire) {
            Some(i) => {
                let entry = self.entries.remove(i);
                let pul = entry.reduced.clone();
                self.entries.push(entry);
                self.hits += 1;
                Some(pul)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn put(&mut self, key: u64, wire: &str, reduced: Pul) {
        if self.capacity == 0 {
            return;
        }
        self.entries.retain(|e| !(e.hash == key && e.wire == wire));
        if self.entries.len() >= self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(CacheEntry { hash: key, wire: wire.to_string(), reduced });
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Hit/miss counters of the executor's reduction cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Wire submissions whose reduction was served from the cache.
    pub hits: u64,
    /// Wire submissions that had to be reduced.
    pub misses: u64,
}

/// Summary of a successful commit.
#[derive(Debug, Clone)]
pub struct CommitReport {
    /// The document version produced by the commit.
    pub version: u64,
    /// Number of operations applied to the document.
    pub applied_ops: usize,
    /// The conflicts that were detected (and solved) on the way.
    pub conflicts: Vec<pul_core::Conflict>,
    /// Structural effects of the application (inserted / removed roots, id
    /// mapping). Empty for streaming commits, which never materialise the
    /// document.
    pub apply: ApplyReport,
}

/// A stateful executor session owning the authoritative document, its
/// labeling and the session defaults, and exposing the
/// reduce → integrate → reconcile → aggregate → apply pipeline behind four
/// verbs: [`submit`](Executor::submit), [`resolve`](Executor::resolve),
/// [`commit`](Executor::commit) and
/// [`commit_streaming`](Executor::commit_streaming).
#[derive(Debug, Clone)]
pub struct Executor {
    doc: Document,
    labeling: Labeling,
    default_policy: Policy,
    strategy: ReductionStrategy,
    apply_options: ApplyOptions,
    submissions: Vec<Submission>,
    next_submission: u64,
    version: u64,
    reduction_cache: ReductionCache,
}

/// Default capacity of the wire-submission reduction cache.
const DEFAULT_REDUCTION_CACHE_CAPACITY: usize = 32;

impl Executor {
    // ------------------------------------------------------------ construction

    /// Opens a session on a document. The labeling (§4.1) is assigned here,
    /// once; commits maintain it incrementally.
    pub fn new(doc: Document) -> Self {
        let labeling = Labeling::assign(&doc);
        Executor {
            doc,
            labeling,
            default_policy: Policy::default(),
            strategy: ReductionStrategy::default(),
            apply_options: ApplyOptions::default(),
            submissions: Vec::new(),
            next_submission: 0,
            version: 0,
            reduction_cache: ReductionCache::new(DEFAULT_REDUCTION_CACHE_CAPACITY),
        }
    }

    /// Opens a session on the document serialized in `xml`.
    pub fn parse(xml: &str) -> Result<Self> {
        Ok(Executor::new(parser::parse_document(xml)?))
    }

    /// Sets the policy assumed for submissions that do not carry their own
    /// (builder style).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.default_policy = policy;
        self
    }

    /// Sets the reduction strategy applied to every submission and to the
    /// reconciled result (builder style). Memoized reductions — the wire
    /// cache and the pre-reductions of pending wire submissions — were
    /// computed under the previous strategy, so they are discarded.
    pub fn reduction(mut self, strategy: ReductionStrategy) -> Self {
        if strategy != self.strategy {
            self.reduction_cache.clear();
            for submission in &mut self.submissions {
                submission.pre_reduced = None;
            }
        }
        self.strategy = strategy;
        self
    }

    /// Sets the options used when committing PULs to the document (builder
    /// style).
    pub fn apply_options(mut self, options: ApplyOptions) -> Self {
        self.apply_options = options;
        self
    }

    /// Sets the capacity of the wire-submission reduction cache (builder
    /// style). `0` disables caching.
    pub fn reduction_cache_capacity(mut self, capacity: usize) -> Self {
        self.reduction_cache = ReductionCache::new(capacity);
        self
    }

    // -------------------------------------------------------------- inspection

    /// The authoritative document.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// The labeling of the authoritative document.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// The current document version: 0 at session start, incremented by every
    /// commit.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of submissions waiting to be resolved.
    pub fn pending(&self) -> usize {
        self.submissions.len()
    }

    /// Hit/miss counters of the wire-submission reduction cache.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats { hits: self.reduction_cache.hits, misses: self.reduction_cache.misses }
    }

    /// Serializes the authoritative document.
    pub fn serialize(&self) -> String {
        writer::write_document(&self.doc)
    }

    /// Serializes the authoritative document with node identifiers — the
    /// executor's on-disk form, consumed by [`commit_streaming`]
    /// (Executor::commit_streaming) and shipped to producers at checkout.
    pub fn serialize_identified(&self) -> String {
        writer::write_document_identified(&self.doc)
    }

    // -------------------------------------------------------------- production

    /// Evaluates an XQuery Update expression against the session document,
    /// returning the PUL a producer would ship (the PUL is *not* submitted).
    pub fn produce(&self, source: &str) -> Result<Pul> {
        Ok(xqupdate::evaluate(&self.doc, &self.labeling, source)?)
    }

    // -------------------------------------------------------------- submission

    /// Submits a producer PUL under the session's default policy.
    pub fn submit(&mut self, pul: Pul) -> SubmissionId {
        self.submit_with_policy(pul, self.default_policy)
    }

    /// Submits a producer PUL with an explicit producer policy.
    pub fn submit_with_policy(&mut self, pul: Pul, policy: Policy) -> SubmissionId {
        self.submit_inner(pul, policy, None)
    }

    fn submit_inner(&mut self, pul: Pul, policy: Policy, pre_reduced: Option<Pul>) -> SubmissionId {
        let id = SubmissionId(self.next_submission);
        self.next_submission += 1;
        self.submissions.push(Submission { id, pul, policy, pre_reduced });
        id
    }

    /// Submits a producer PUL received in the XML exchange format (§4).
    ///
    /// Wire submissions are memoized: the reduction of the PUL is computed
    /// here (or served from an LRU cache keyed by a hash of the wire bytes),
    /// so a producer re-sending an identical exchange document skips the
    /// reduction step of [`resolve`](Executor::resolve) entirely. A PUL is
    /// self-contained — it carries the labels its reduction reasons on — so
    /// the memo stays valid across commits.
    pub fn submit_xml(&mut self, wire: &str) -> Result<SubmissionId> {
        let pul = pul::xmlio::pul_from_xml(wire)?;
        let key = ReductionCache::hash(wire);
        let reduced = match self.reduction_cache.get(key, wire) {
            Some(cached) => cached,
            None => {
                let reduced = self.strategy.reduce(&pul);
                self.reduction_cache.put(key, wire, reduced.clone());
                reduced
            }
        };
        Ok(self.submit_inner(pul, self.default_policy, Some(reduced)))
    }

    /// Submits a *sequence* of PULs from one producer (e.g. the editing
    /// sessions of a disconnected client): the sequence is aggregated into a
    /// single PUL (Def. 13) before entering the session.
    pub fn submit_sequence(&mut self, puls: &[Pul]) -> Result<SubmissionId> {
        let aggregated = aggregate(puls)?;
        Ok(self.submit(aggregated))
    }

    /// Submits a sequence of PULs received as one XML document.
    pub fn submit_sequence_xml(&mut self, wire: &str) -> Result<SubmissionId> {
        let puls = pul::xmlio::puls_from_xml(wire)?;
        self.submit_sequence(&puls)
    }

    /// Withdraws a pending submission, returning its PUL.
    pub fn withdraw(&mut self, id: SubmissionId) -> Result<Pul> {
        match self.submissions.iter().position(|s| s.id == id) {
            Some(i) => Ok(self.submissions.remove(i).pul),
            None => Err(Error::UnknownSubmission(id)),
        }
    }

    // -------------------------------------------------------------- resolution

    /// Reasons on the pending submissions without touching the document:
    /// each PUL is reduced with the session strategy, the reductions are
    /// integrated (Alg. 1), the detected conflicts are reconciled under the
    /// producer policies (Alg. 3), and the survivor is reduced once more.
    /// Fails with [`Error::Reconcile`] when some conflict cannot be solved
    /// without violating a policy.
    pub fn resolve(&self) -> Result<Resolution> {
        let submitted_ops = self.submissions.iter().map(|s| s.pul.len()).sum();
        let reduced: Vec<Pul> = self
            .submissions
            .iter()
            .map(|s| match &s.pre_reduced {
                Some(r) => r.clone(),
                None => self.strategy.reduce(&s.pul),
            })
            .collect();
        let policies: Vec<Policy> = self.submissions.iter().map(|s| s.policy).collect();
        let integration = integrate(&reduced);
        let reconciled = reconcile_integration(&reduced, &integration, &policies)?;
        let pul = self.strategy.reduce(&reconciled);
        Ok(Resolution {
            version: self.version,
            submission_ids: self.submissions.iter().map(|s| s.id).collect(),
            pul,
            conflicts: integration.conflicts,
            submitted_puls: self.submissions.len(),
            submitted_ops,
        })
    }

    // ------------------------------------------------------------------ commit

    /// Resolves the pending submissions and applies the resolution to the
    /// authoritative document, maintaining the labeling. On success the
    /// submissions are consumed and the version is incremented.
    pub fn commit(&mut self) -> Result<CommitReport> {
        let resolution = self.resolve()?;
        self.commit_resolution(resolution)
    }

    /// Applies a previously computed [`Resolution`]. Fails with
    /// [`Error::StaleResolution`] if the document has been committed to since
    /// the resolution was computed, and with [`Error::UnknownSubmission`] if a
    /// resolved submission has been withdrawn in the meantime. Submissions
    /// that arrived *after* the resolution stay pending.
    ///
    /// The commit is atomic: on any failure the session (document, labeling,
    /// version, submissions) is exactly as it was before the call.
    pub fn commit_resolution(&mut self, resolution: Resolution) -> Result<CommitReport> {
        self.check_fresh(&resolution)?;
        // Apply onto working copies and swap in only on success: a mid-apply
        // failure (e.g. one of several ops not applicable) must not leave a
        // half-updated authoritative document behind.
        let mut doc = self.doc.clone();
        let mut labeling = self.labeling.clone();
        let apply =
            apply_pul_with_labeling(&mut doc, &mut labeling, &resolution.pul, &self.apply_options)?;
        self.doc = doc;
        self.labeling = labeling;
        self.finish_commit(&resolution);
        Ok(CommitReport {
            version: self.version,
            applied_ops: resolution.pul.len(),
            conflicts: resolution.conflicts,
            apply,
        })
    }

    /// Resolves the pending submissions and applies the resolution in one
    /// streaming pass over the serialization: the identified serialization of
    /// the document is read from `reader`, the update is applied **without
    /// building a tree for the streamed bytes** (§4.3, Fig. 6.a), and the
    /// updated serialization is written to `writer`.
    ///
    /// Note that this session still holds its in-memory authoritative copy —
    /// it is used for the input correspondence check and synchronised from
    /// the streamed output — so the one-pass benefit is on the I/O path, not
    /// on memory. A fully tree-free executor (fingerprint check, incremental
    /// labeling from the apply report) is tracked in the ROADMAP.
    pub fn commit_streaming<R: Read, W: Write>(
        &mut self,
        reader: &mut R,
        writer: &mut W,
    ) -> Result<CommitReport> {
        let resolution = self.resolve()?;
        self.commit_resolution_streaming(resolution, reader, writer)
    }

    /// Streaming counterpart of [`commit_resolution`]
    /// (Executor::commit_resolution). The reader must supply the session's
    /// own identified serialization ([`serialize_identified`]
    /// (Executor::serialize_identified), possibly persisted at an earlier
    /// point of the *same* version); anything else fails with
    /// [`Error::StreamMismatch`] before a byte is written.
    pub fn commit_resolution_streaming<R: Read, W: Write>(
        &mut self,
        resolution: Resolution,
        reader: &mut R,
        writer: &mut W,
    ) -> Result<CommitReport> {
        self.check_fresh(&resolution)?;
        let mut input = String::new();
        reader.read_to_string(&mut input)?;
        // The resolution reasoned about *this* session's document: applying it
        // to any other serialization would silently commit over the wrong
        // base. The identified serialization is deterministic, so equality
        // with the in-memory copy is the correspondence check.
        if input != self.serialize_identified() {
            return Err(Error::StreamMismatch(
                "the reader's bytes are not this session's identified serialization".into(),
            ));
        }
        // Fresh identifiers must clash neither with the document's nor with
        // the identifiers carried by the resolution's parameter trees.
        let mut first_new_id = self.doc.next_id() + 1;
        for op in resolution.pul.ops() {
            if let Some(trees) = op.content() {
                for tree in trees {
                    first_new_id = first_new_id.max(tree.as_document().next_id() + 1);
                }
            }
        }
        let output = apply_streaming_with(
            &input,
            &resolution.pul,
            first_new_id,
            self.apply_options.preserve_content_ids,
        )?;
        // Synchronise the in-memory authoritative copy *before* anything is
        // written, so a failure leaves both the session and the writer
        // untouched.
        let updated = parser::parse_document_identified(&output)
            .map_err(|e| Error::StreamMismatch(e.to_string()))?;
        writer.write_all(output.as_bytes())?;
        // Incremental labeling (§4.1): only the nodes the stream inserted gain
        // labels and only the removed ones lose theirs — the labels of
        // untouched nodes stay bit-identical, no full re-assignment.
        self.labeling.patch_from_document(&updated);
        self.doc = updated;
        self.finish_commit(&resolution);
        Ok(CommitReport {
            version: self.version,
            applied_ops: resolution.pul.len(),
            conflicts: resolution.conflicts,
            apply: ApplyReport::default(),
        })
    }

    fn check_fresh(&self, resolution: &Resolution) -> Result<()> {
        if resolution.version != self.version {
            return Err(Error::StaleResolution {
                resolved_at: resolution.version,
                current: self.version,
            });
        }
        // Every submission the resolution reasoned about must still be
        // pending: committing over a withdrawn PUL would resurrect it.
        for id in &resolution.submission_ids {
            if !self.submissions.iter().any(|s| s.id == *id) {
                return Err(Error::UnknownSubmission(*id));
            }
        }
        Ok(())
    }

    /// Consumes exactly the submissions the resolution covered (later arrivals
    /// stay pending) and advances the version.
    fn finish_commit(&mut self, resolution: &Resolution) {
        self.submissions.retain(|s| !resolution.submission_ids.contains(&s.id));
        self.version += 1;
    }

    // ------------------------------------------------------------ transactions

    /// Starts a build-apply-rollback transaction: the returned guard exposes
    /// the whole session API (it derefs to the executor) and restores the
    /// document, labeling, submissions and version on drop unless
    /// [`Transaction::commit`] is called.
    pub fn transaction(&mut self) -> Transaction<'_> {
        Transaction::new(self)
    }

    pub(crate) fn snapshot(&self) -> ExecutorSnapshot {
        ExecutorSnapshot {
            doc: self.doc.clone(),
            labeling: self.labeling.clone(),
            submissions: self.submissions.clone(),
            next_submission: self.next_submission,
            version: self.version,
        }
    }

    pub(crate) fn restore(&mut self, snapshot: ExecutorSnapshot) {
        self.doc = snapshot.doc;
        self.labeling = snapshot.labeling;
        self.submissions = snapshot.submissions;
        self.next_submission = snapshot.next_submission;
        self.version = snapshot.version;
    }
}

/// Saved session state used by [`Transaction`] for rollback.
#[derive(Debug, Clone)]
pub(crate) struct ExecutorSnapshot {
    doc: Document,
    labeling: Labeling,
    submissions: Vec<Submission>,
    next_submission: u64,
    version: u64,
}

/// Convenience: build a PUL from loose operations against this session's
/// labeling (the common test/example pattern).
impl Executor {
    /// Builds a PUL from operations, attaching the labels of the session
    /// document — what a well-behaved producer does before shipping.
    pub fn pul_from_ops(&self, ops: Vec<UpdateOp>) -> Pul {
        Pul::from_ops(ops, &self.labeling)
    }
}
