//! The executor session API: one façade for the whole PUL pipeline.
//!
//! The paper's architecture (§4) centres on an *executor* that owns the
//! authoritative document, receives PULs from many producers, reasons on them
//! — reducing, integrating, reconciling, aggregating — and only touches the
//! document at commit time. [`Executor`] is that object:
//!
//! ```text
//!  producers ──submit()──▶ ┌──────────────────────────────┐
//!  (PULs, wire XML,        │  Executor session             │
//!   sequences, queries)    │   reduce ─ integrate ─        │──commit()──▶ Document'
//!                          │   reconcile ─ aggregate       │
//!                          └───────────resolve()───────────┘
//!                                        │
//!                                        ▼
//!                               Resolution (PUL + conflicts)
//! ```
//!
//! See the crate-level quick start for a complete tour.

use std::io::{Read, Write};
use std::sync::Arc;

use pul::apply::{apply_pul_journaled, ApplyOptions, ApplyReport, JournalScope};
use pul::stream::apply_streaming_with;
use pul::{Pul, UpdateOp};
use pul_core::reduce::{reduce_naive, reduce_with, ReductionKind};
use pul_core::{aggregate, integrate, reconcile_integration, Policy};
use pul_store::{PoolStats, SharedPool};
use pul_telemetry::{EventKind, Telemetry};
use xdm::{parser, writer, Document};
use xlabel::Labeling;

use crate::durable::{CommitRecord, SharedSink, SinkSlot};
use crate::error::{Error, Result};
use crate::ingest::{BatchCommit, IngestBackend};
use crate::resolution::Resolution;
use crate::snapshot::{Snapshot, SnapshotCache};
use crate::transaction::Transaction;

/// How the executor reduces PULs — the session-level replacement for the
/// historical `reduce` / `deterministic_reduce` / `canonical_form` /
/// `reduce_naive` free functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReductionStrategy {
    /// No reduction at all: submissions are integrated as sent.
    None,
    /// Fig. 2 stages 1–9 (Def. 7); `ins↓` may survive, so the result can have
    /// several obtainable documents.
    Standard,
    /// Stages 1–10 (Def. 8): `ins↓` is rewritten into `ins↙`, making the PUL
    /// semantics deterministic. The executor default.
    #[default]
    Deterministic,
    /// Def. 9: deterministic reduction with `<p`-least pair selection — the
    /// unique canonical form, at the price of a per-stage search.
    Canonical,
    /// The O(k²) baseline examining every ordered pair (ablation only).
    Naive,
}

impl ReductionStrategy {
    /// Reduces one PUL according to the strategy.
    pub fn reduce(self, pul: &Pul) -> Pul {
        match self {
            ReductionStrategy::None => pul.clone(),
            ReductionStrategy::Standard => reduce_with(pul, ReductionKind::Plain),
            ReductionStrategy::Deterministic => reduce_with(pul, ReductionKind::Deterministic),
            ReductionStrategy::Canonical => reduce_with(pul, ReductionKind::Canonical),
            ReductionStrategy::Naive => reduce_naive(pul),
        }
    }
}

/// Identifier of a pending submission within a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubmissionId(pub(crate) u64);

impl std::fmt::Display for SubmissionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "submission#{}", self.0)
    }
}

/// One producer PUL waiting in the session, with the policy its producer
/// attached. Wire submissions that hit (or populate) the reduction cache
/// carry their reduction along, so [`Executor::resolve`] skips reducing them.
#[derive(Debug, Clone)]
struct Submission {
    id: SubmissionId,
    pul: Pul,
    policy: Policy,
    pre_reduced: Option<Pul>,
    /// The session epoch the submission was admitted under. Compaction
    /// renumbers every identifier, so a submission from an earlier epoch is
    /// fenced at resolve time (`XPUL-E10`) instead of silently targeting
    /// whatever nodes now wear its ids.
    epoch: u64,
}

/// LRU memo of wire-submission reductions, keyed by a hash of the exchange
/// XML: producers frequently re-send identical PULs (retries, fan-out, idle
/// heartbeats with the same delta), and reduction is by far the most
/// expensive step of `resolve`. Capacity is small and lookups are a linear
/// scan — the map holds a handful of entries, and each holds a reduced PUL.
#[derive(Debug, Clone)]
struct CacheEntry {
    hash: u64,
    /// The full wire bytes, compared on every hash hit: a 64-bit hash alone
    /// would let a (possibly crafted) collision substitute another
    /// submission's reduction.
    wire: String,
    reduced: Pul,
}

#[derive(Debug, Clone)]
struct ReductionCache {
    capacity: usize,
    /// Most recently used last.
    entries: Vec<CacheEntry>,
    hits: u64,
    misses: u64,
}

impl ReductionCache {
    fn new(capacity: usize) -> Self {
        ReductionCache { capacity, entries: Vec::new(), hits: 0, misses: 0 }
    }

    fn hash(wire: &str) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        wire.hash(&mut h);
        h.finish()
    }

    fn get(&mut self, key: u64, wire: &str) -> Option<Pul> {
        match self.entries.iter().position(|e| e.hash == key && e.wire == wire) {
            Some(i) => {
                let entry = self.entries.remove(i);
                let pul = entry.reduced.clone();
                self.entries.push(entry);
                self.hits += 1;
                Some(pul)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn put(&mut self, key: u64, wire: &str, reduced: Pul) {
        if self.capacity == 0 {
            return;
        }
        self.entries.retain(|e| !(e.hash == key && e.wire == wire));
        if self.entries.len() >= self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(CacheEntry { hash: key, wire: wire.to_string(), reduced });
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Hit/miss counters of the executor's reduction cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Wire submissions whose reduction was served from the cache.
    pub hits: u64,
    /// Wire submissions that had to be reduced.
    pub misses: u64,
}

/// Summary of a successful commit.
#[derive(Debug, Clone)]
pub struct CommitReport {
    /// The document version produced by the commit.
    pub version: u64,
    /// Number of operations applied to the document.
    pub applied_ops: usize,
    /// The conflicts that were detected (and solved) on the way.
    pub conflicts: Vec<pul_core::Conflict>,
    /// Structural effects of the application (inserted / removed roots, id
    /// mapping) plus the journal entry counts. For streaming commits — which
    /// never materialise per-op effects — the structural fields are empty but
    /// the journal stats are still populated (non-zero inside a transaction).
    pub apply: ApplyReport,
}

/// The shard-agnostic heart of an executor: the authoritative [`Document`],
/// its [`Labeling`], the apply options and the version counter — everything
/// needed to *hold and atomically mutate* one slice of authoritative state,
/// and nothing of the session machinery (submissions, reduction strategy,
/// caches) that reasons about what to apply.
///
/// [`Executor`] owns exactly one core; [`ShardedExecutor`](crate::ShardedExecutor)
/// owns one per shard and drives their journals in lockstep for its two-phase
/// commit. Every mutation goes through the apply journal, so a failure — in
/// this core or, under a sharded commit, in a sibling core — rewinds at
/// O(change) cost.
#[derive(Debug, Clone)]
pub struct ExecutorCore {
    pub(crate) doc: Document,
    pub(crate) labeling: Labeling,
    pub(crate) apply_options: ApplyOptions,
    pub(crate) version: u64,
}

impl ExecutorCore {
    /// Creates a core over a document, assigning its labeling (§4.1) once.
    pub fn new(doc: Document) -> Self {
        let labeling = Labeling::assign(&doc);
        ExecutorCore::from_parts(doc, labeling)
    }

    /// Creates a core over a document and an externally built labeling. The
    /// caller guarantees the labeling covers exactly the document's nodes —
    /// this is how the sharded executor slices one global labeling into
    /// per-shard cores without re-keying any label.
    pub fn from_parts(doc: Document, labeling: Labeling) -> Self {
        ExecutorCore { doc, labeling, apply_options: ApplyOptions::default(), version: 0 }
    }

    /// The authoritative document of this core.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// The labeling of this core's document.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// The version counter: 0 at creation, +1 per successful commit.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The options used when applying PULs to the document.
    pub fn apply_options(&self) -> &ApplyOptions {
        &self.apply_options
    }

    /// Replaces the apply options.
    pub fn set_apply_options(&mut self, options: ApplyOptions) {
        self.apply_options = options;
    }

    /// Atomically applies a resolved PUL: the application runs inside a
    /// journal scope (every mutation recording its inverse), the labeling is
    /// patched incrementally, and the version advances. A mid-apply failure
    /// rewinds document and labeling to the exact pre-call state and leaves
    /// the version untouched.
    pub fn commit_pul(&mut self, pul: &Pul) -> Result<ApplyReport> {
        let report =
            apply_pul_journaled(&mut self.doc, &mut self.labeling, pul, &self.apply_options)?;
        self.version += 1;
        Ok(report)
    }

    /// Serializes the core's document.
    pub fn serialize(&self) -> String {
        writer::write_document(&self.doc)
    }

    /// Serializes the core's document with node identifiers.
    pub fn serialize_identified(&self) -> String {
        writer::write_document_identified(&self.doc)
    }

    /// Debug invariant walker over document and labeling (see
    /// [`Executor::assert_consistent`]).
    pub fn assert_consistent(&self) {
        self.doc.assert_consistent();
        self.labeling.assert_consistent(&self.doc);
    }

    /// Opens a journal scope over this core, capturing the version. Used by
    /// the sharded two-phase commit to keep a shard's changes revocable while
    /// its sibling shards apply theirs.
    pub(crate) fn scope_open(&mut self) -> CoreScope {
        CoreScope {
            journal: JournalScope::open(&mut self.doc, &mut self.labeling),
            version: self.version,
        }
    }

    /// Replays the scope's journal entries and restores the captured version.
    pub(crate) fn scope_rewind(&mut self, scope: &CoreScope) {
        scope.journal.rewind(&mut self.doc, &mut self.labeling);
        self.version = scope.version;
    }

    /// Closes the scope: journals this scope activated are discarded.
    pub(crate) fn scope_close(&mut self, scope: &CoreScope) {
        scope.journal.close(&mut self.doc, &mut self.labeling);
    }
}

/// An open journal scope over one [`ExecutorCore`] (journal marks plus the
/// version to restore on rollback).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CoreScope {
    journal: JournalScope,
    version: u64,
}

/// Shared freshness check for committing a resolution — single-executor and
/// sharded alike: the resolution must have been computed against the current
/// version, and every submission it reasoned about must still be pending
/// (committing over a withdrawn PUL would resurrect it).
pub(crate) fn check_resolution_fresh(
    resolved_at: u64,
    current: u64,
    ids: &[SubmissionId],
    still_pending: impl Fn(SubmissionId) -> bool,
) -> Result<()> {
    if resolved_at != current {
        return Err(Error::StaleResolution { resolved_at, current });
    }
    for &id in ids {
        if !still_pending(id) {
            return Err(Error::UnknownSubmission(id));
        }
    }
    Ok(())
}

/// A stateful executor session owning the authoritative document, its
/// labeling and the session defaults, and exposing the
/// reduce → integrate → reconcile → aggregate → apply pipeline behind four
/// verbs: [`submit`](Executor::submit), [`resolve`](Executor::resolve),
/// [`commit`](Executor::commit) and
/// [`commit_streaming`](Executor::commit_streaming).
#[derive(Debug, Clone)]
pub struct Executor {
    core: ExecutorCore,
    default_policy: Policy,
    strategy: ReductionStrategy,
    submissions: Vec<Submission>,
    next_submission: u64,
    reduction_cache: ReductionCache,
    /// The session's compaction epoch: 0 at creation, +1 per [`compact`]
    /// (Executor::compact). Submissions are stamped with the epoch they were
    /// admitted under; a mismatch at resolve time is the `XPUL-E10` fence.
    epoch: u64,
    /// Recycled resolve scratch — the reduced-PUL and policy backbones die at
    /// the end of every `resolve`, so their allocations are pooled.
    scratch: ResolveScratch,
    /// The durability hook: when a [`Durable`](crate::Durable) wrapper
    /// installs a sink, every commit appends its WAL record *before* the
    /// version fence becomes observable, and a failed append rewinds the
    /// whole commit. Cloned sessions never inherit the sink — two sessions
    /// appending to one log would interleave divergent histories.
    sink: SinkSlot,
    /// Memoized MVCC snapshots keyed by `(version, epoch)` (see
    /// [`snapshot`](Executor::snapshot)). Clones start cold — a divergent
    /// copy reuses version numbers with different contents.
    snapshots: SnapshotCache,
    /// Telemetry handle: commit/resolve spans, snapshot cache probes,
    /// rollback and epoch events. Disabled (a single branch per record call)
    /// unless [`set_telemetry`](Executor::set_telemetry) arms it; clones
    /// share the registry.
    telemetry: Telemetry,
}

/// Default capacity of the wire-submission reduction cache.
const DEFAULT_REDUCTION_CACHE_CAPACITY: usize = 32;

/// Default idle capacity of the resolve scratch pools: one resolve is in
/// flight per session, so one retained backbone per shape is the steady
/// state (a second absorbs clone-shared sessions).
pub(crate) const DEFAULT_POOL_IDLE: usize = 2;

/// The pooled scratch of one session's `resolve` path. Clones share the
/// pools (a pool is a cache; see [`SharedPool`]), and a capacity of 0
/// disables pooling entirely — the unpooled baseline the benches compare
/// against.
#[derive(Debug, Clone)]
pub(crate) struct ResolveScratch {
    pub(crate) puls: SharedPool<Vec<Pul>>,
    pub(crate) policies: SharedPool<Vec<Policy>>,
}

impl ResolveScratch {
    pub(crate) fn new(max_idle: usize) -> Self {
        ResolveScratch { puls: SharedPool::new(max_idle), policies: SharedPool::new(max_idle) }
    }

    /// Component-wise sum of the scratch pools' counters.
    pub(crate) fn stats(&self) -> PoolStats {
        let (a, b) = (self.puls.stats(), self.policies.stats());
        PoolStats {
            reused: a.reused + b.reused,
            minted: a.minted + b.minted,
            trimmed: a.trimmed + b.trimmed,
            idle: a.idle + b.idle,
        }
    }
}

impl Executor {
    // ------------------------------------------------------------ construction

    /// Opens a session on a document. The labeling (§4.1) is assigned here,
    /// once; commits maintain it incrementally.
    pub fn new(doc: Document) -> Self {
        Executor::from_core(ExecutorCore::new(doc))
    }

    /// Opens a session over an already built [`ExecutorCore`] (the sharded
    /// executor uses this to wrap pre-sliced cores).
    pub fn from_core(core: ExecutorCore) -> Self {
        Executor {
            core,
            default_policy: Policy::default(),
            strategy: ReductionStrategy::default(),
            submissions: Vec::new(),
            next_submission: 0,
            reduction_cache: ReductionCache::new(DEFAULT_REDUCTION_CACHE_CAPACITY),
            epoch: 0,
            scratch: ResolveScratch::new(DEFAULT_POOL_IDLE),
            sink: SinkSlot::default(),
            snapshots: SnapshotCache::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Installs (or removes) the commit sink. Crate-internal: sinks are
    /// installed by the [`Durable`](crate::Durable) façade, which owns the
    /// store the sink appends to.
    pub(crate) fn set_sink(&mut self, sink: Option<SharedSink>) {
        self.sink.set(sink);
    }

    /// Installs the telemetry handle the session records commit/resolve
    /// spans, snapshot cache probes and lifecycle events through. Pass
    /// [`Telemetry::enabled`] to arm; the default handle is disabled and
    /// costs one branch per record call.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The installed telemetry handle (disabled unless
    /// [`set_telemetry`](Executor::set_telemetry) armed one).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Opens a session on the document serialized in `xml`.
    pub fn parse(xml: &str) -> Result<Self> {
        Ok(Executor::new(parser::parse_document(xml)?))
    }

    /// Sets the policy assumed for submissions that do not carry their own
    /// (builder style).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.default_policy = policy;
        self
    }

    /// Sets the reduction strategy applied to every submission and to the
    /// reconciled result (builder style). Memoized reductions — the wire
    /// cache and the pre-reductions of pending wire submissions — were
    /// computed under the previous strategy, so they are discarded.
    pub fn reduction(mut self, strategy: ReductionStrategy) -> Self {
        if strategy != self.strategy {
            self.reduction_cache.clear();
            for submission in &mut self.submissions {
                submission.pre_reduced = None;
            }
        }
        self.strategy = strategy;
        self
    }

    /// Sets the options used when committing PULs to the document (builder
    /// style).
    pub fn apply_options(mut self, options: ApplyOptions) -> Self {
        self.core.apply_options = options;
        self
    }

    /// Sets the capacity of the wire-submission reduction cache (builder
    /// style). `0` disables caching.
    pub fn reduction_cache_capacity(mut self, capacity: usize) -> Self {
        self.reduction_cache = ReductionCache::new(capacity);
        self
    }

    /// Sets the idle capacity of the per-commit scratch pools (builder
    /// style). `0` disables pooling — every resolve mints its scratch fresh,
    /// the baseline the `pool_reuse` bench compares against.
    pub fn pooling(mut self, max_idle: usize) -> Self {
        self.scratch = ResolveScratch::new(max_idle);
        self
    }

    // -------------------------------------------------------------- inspection

    /// The authoritative document.
    pub fn document(&self) -> &Document {
        &self.core.doc
    }

    /// The labeling of the authoritative document.
    pub fn labeling(&self) -> &Labeling {
        &self.core.labeling
    }

    /// The shard-agnostic core of the session (document + labeling + version).
    pub fn core(&self) -> &ExecutorCore {
        &self.core
    }

    /// The current document version: 0 at session start, incremented by every
    /// commit.
    pub fn version(&self) -> u64 {
        self.core.version
    }

    /// Number of submissions waiting to be resolved.
    pub fn pending(&self) -> usize {
        self.submissions.len()
    }

    /// The session's compaction epoch: 0 at creation, incremented by every
    /// [`compact`](Executor::compact). Producers holding identifiers from an
    /// earlier epoch must re-read the document before submitting again.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Hit/miss counters of the wire-submission reduction cache.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats { hits: self.reduction_cache.hits, misses: self.reduction_cache.misses }
    }

    /// Reuse counters of the session's resolve scratch pools.
    pub fn pool_stats(&self) -> PoolStats {
        self.scratch.stats()
    }

    /// The unified observability snapshot: the telemetry registry (when a
    /// handle was armed through [`set_telemetry`](Executor::set_telemetry)),
    /// the session's slab/cache/pool statistics, and the tail of the event
    /// journal. Subsumes [`slab_stats`](Executor::slab_stats),
    /// [`cache_stats`](Executor::cache_stats) and
    /// [`pool_stats`](Executor::pool_stats), which remain as thin views.
    pub fn telemetry_snapshot(&self) -> crate::TelemetrySnapshot {
        crate::TelemetrySnapshot::gather(
            &self.telemetry,
            self.slab_stats(),
            self.cache_stats(),
            self.pool_stats(),
        )
    }

    /// Slot-occupancy statistics of the session's dense id-indexed stores
    /// (node arena and labeling): live and dead (never-reused) dense slots
    /// plus spilled sparse entries. Identifiers are never reused (§4.1), so a
    /// long-lived session with heavy insert/delete churn accumulates dead
    /// slots — this is the observable that motivates a slab-compaction
    /// checkpoint (see the ROADMAP).
    pub fn slab_stats(&self) -> SessionSlabStats {
        SessionSlabStats {
            nodes: self.core.doc.slab_stats(),
            labels: self.core.labeling.slab_stats(),
            epoch: self.epoch,
        }
    }

    /// The fraction of the live population held in reclaimable dead slots.
    /// For a single executor every dead slot is reclaimable — compaction
    /// renumbers to a fully dense arena (the sharded session subtracts its
    /// structural partition floor here).
    pub fn reclaimable_dead_ratio(&self) -> f64 {
        self.slab_stats().nodes.dead_ratio()
    }

    /// Pins the current version into an immutable MVCC [`Snapshot`]: a
    /// cheaply clonable view serving reads, serialization and Table-1
    /// predicate checks while this session commits ahead. The first snapshot
    /// at a version freezes the document and labeling once (O(document));
    /// repeated calls at an unchanged `(version, epoch)` are served from the
    /// session's snapshot cache as reference-count bumps.
    pub fn snapshot(&self) -> Snapshot {
        let (version, epoch) = (self.core.version, self.epoch);
        if self.core.doc.journal_is_active() {
            // Mid-transaction state is provisional: a rollback would reuse
            // this version number with different contents, so the view is
            // built fresh and never memoized.
            return Snapshot::new(
                version,
                epoch,
                self.core.doc.to_shared(),
                Arc::new(self.core.labeling.clone()),
            );
        }
        if let Some(hit) = self.snapshots.get(version, epoch) {
            self.telemetry.count(|m| &m.snapshot_hits);
            return hit;
        }
        self.telemetry.count(|m| &m.snapshot_misses);
        let snapshot = Snapshot::new(
            version,
            epoch,
            self.core.doc.to_shared(),
            Arc::new(self.core.labeling.clone()),
        );
        self.snapshots.insert(snapshot.clone());
        snapshot
    }

    /// Serializes the authoritative document.
    pub fn serialize(&self) -> String {
        self.core.serialize()
    }

    /// Serializes the authoritative document with node identifiers — the
    /// executor's on-disk form, consumed by [`commit_streaming`]
    /// (Executor::commit_streaming) and shipped to producers at checkout.
    pub fn serialize_identified(&self) -> String {
        self.core.serialize_identified()
    }

    // -------------------------------------------------------------- production

    /// Evaluates an XQuery Update expression against the session document,
    /// returning the PUL a producer would ship (the PUL is *not* submitted).
    pub fn produce(&self, source: &str) -> Result<Pul> {
        Ok(xqupdate::evaluate(&self.core.doc, &self.core.labeling, source)?)
    }

    // -------------------------------------------------------------- submission

    /// Submits a producer PUL under the session's default policy.
    pub fn submit(&mut self, pul: Pul) -> SubmissionId {
        self.submit_with_policy(pul, self.default_policy)
    }

    /// Submits a producer PUL with an explicit producer policy.
    pub fn submit_with_policy(&mut self, pul: Pul, policy: Policy) -> SubmissionId {
        self.submit_inner(pul, policy, None)
    }

    fn submit_inner(&mut self, pul: Pul, policy: Policy, pre_reduced: Option<Pul>) -> SubmissionId {
        let id = SubmissionId(self.next_submission);
        self.next_submission += 1;
        self.submissions.push(Submission { id, pul, policy, pre_reduced, epoch: self.epoch });
        id
    }

    /// Submits a producer PUL received in the XML exchange format (§4).
    ///
    /// Wire submissions are memoized: the reduction of the PUL is computed
    /// here (or served from an LRU cache keyed by a hash of the wire bytes),
    /// so a producer re-sending an identical exchange document skips the
    /// reduction step of [`resolve`](Executor::resolve) entirely. A PUL is
    /// self-contained — it carries the labels its reduction reasons on — so
    /// the memo stays valid across commits.
    pub fn submit_xml(&mut self, wire: &str) -> Result<SubmissionId> {
        let pul = pul::xmlio::pul_from_xml(wire)?;
        let key = ReductionCache::hash(wire);
        let reduced = match self.reduction_cache.get(key, wire) {
            Some(cached) => cached,
            None => {
                let reduced = self.strategy.reduce(&pul);
                self.reduction_cache.put(key, wire, reduced.clone());
                reduced
            }
        };
        Ok(self.submit_inner(pul, self.default_policy, Some(reduced)))
    }

    /// Submits a *sequence* of PULs from one producer (e.g. the editing
    /// sessions of a disconnected client): the sequence is aggregated into a
    /// single PUL (Def. 13) before entering the session.
    pub fn submit_sequence(&mut self, puls: &[Pul]) -> Result<SubmissionId> {
        let aggregated = aggregate(puls)?;
        Ok(self.submit(aggregated))
    }

    /// Submits a sequence of PULs received as one XML document.
    pub fn submit_sequence_xml(&mut self, wire: &str) -> Result<SubmissionId> {
        let puls = pul::xmlio::puls_from_xml(wire)?;
        self.submit_sequence(&puls)
    }

    /// Withdraws a pending submission, returning its PUL.
    pub fn withdraw(&mut self, id: SubmissionId) -> Result<Pul> {
        match self.submissions.iter().position(|s| s.id == id) {
            Some(i) => Ok(self.submissions.remove(i).pul),
            None => Err(Error::UnknownSubmission(id)),
        }
    }

    // -------------------------------------------------------------- resolution

    /// Reasons on the pending submissions without touching the document:
    /// each PUL is reduced with the session strategy, the reductions are
    /// integrated (Alg. 1), the detected conflicts are reconciled under the
    /// producer policies (Alg. 3), and the survivor is reduced once more.
    /// Fails with [`Error::Reconcile`] when some conflict cannot be solved
    /// without violating a policy, and with [`Error::EpochFenced`] when a
    /// pending submission predates the session's last [`compact`]
    /// (Executor::compact) — its identifiers no longer name the nodes its
    /// producer meant.
    pub fn resolve(&self) -> Result<Resolution> {
        let _span = self.telemetry.span(|m| &m.resolve_ns);
        if let Some(fenced) = self.submissions.iter().find(|s| s.epoch != self.epoch) {
            return Err(Error::EpochFenced {
                submission: fenced.id,
                submission_epoch: fenced.epoch,
                current_epoch: self.epoch,
            });
        }
        let submitted_ops = self.submissions.iter().map(|s| s.pul.len()).sum();
        let mut reduced = self.scratch.puls.take_vec();
        reduced.extend(self.submissions.iter().map(|s| match &s.pre_reduced {
            Some(r) => r.clone(),
            None => self.strategy.reduce(&s.pul),
        }));
        let mut policies = self.scratch.policies.take_vec();
        policies.extend(self.submissions.iter().map(|s| s.policy));
        let integration = integrate(&reduced);
        let reconciled = reconcile_integration(&reduced, &integration, &policies);
        // The backbones go back to the pool on both exit paths; clearing
        // first drops the per-resolve contents so only the capacity is kept.
        reduced.clear();
        self.scratch.puls.put(reduced);
        policies.clear();
        self.scratch.policies.put(policies);
        let pul = self.strategy.reduce(&reconciled?);
        Ok(Resolution {
            version: self.core.version,
            submission_ids: self.submissions.iter().map(|s| s.id).collect(),
            pul,
            conflicts: integration.conflicts,
            submitted_puls: self.submissions.len(),
            submitted_ops,
        })
    }

    // ------------------------------------------------------------------ commit

    /// Resolves the pending submissions and applies the resolution to the
    /// authoritative document, maintaining the labeling. On success the
    /// submissions are consumed and the version is incremented.
    pub fn commit(&mut self) -> Result<CommitReport> {
        let resolution = self.resolve()?;
        self.commit_resolution(resolution)
    }

    /// Applies a previously computed [`Resolution`]. Fails with
    /// [`Error::StaleResolution`] if the document has been committed to since
    /// the resolution was computed, and with [`Error::UnknownSubmission`] if a
    /// resolved submission has been withdrawn in the meantime. Submissions
    /// that arrived *after* the resolution stay pending.
    ///
    /// The commit is atomic *without any whole-session clone*: the
    /// application runs inside a journal scope, every mutation recording its
    /// inverse, so a mid-apply failure replays the inverses and leaves the
    /// session (document, labeling, version, submissions) exactly as it was —
    /// at a cost proportional to the partial change, not to the document. On
    /// success the journal is discarded (or, inside a [`Transaction`], kept
    /// for the transaction's own rollback).
    pub fn commit_resolution(&mut self, resolution: Resolution) -> Result<CommitReport> {
        self.check_fresh(&resolution)?;
        let _span = self.telemetry.span(|m| &m.commit_ns);
        let apply = match self.sink.get() {
            None => self.core.commit_pul(&resolution.pul)?,
            Some(sink) => {
                // Durable sessions make the WAL append the commit point: the
                // apply runs inside an extra journal scope, so a failed append
                // rewinds it and the version never advances without a durable
                // record.
                let scope = self.core.scope_open();
                match self.core.commit_pul(&resolution.pul) {
                    Ok(report) => {
                        let appended = sink.lock().expect("commit sink mutex poisoned").on_commit(
                            self.core.version,
                            CommitRecord::Delta {
                                pul: &resolution.pul,
                                preserve_content_ids: self.core.apply_options.preserve_content_ids,
                            },
                        );
                        match appended {
                            Ok(()) => {
                                self.core.scope_close(&scope);
                                report
                            }
                            Err(e) => {
                                self.core.scope_rewind(&scope);
                                self.core.scope_close(&scope);
                                self.telemetry.count(|m| &m.rollbacks);
                                return Err(e);
                            }
                        }
                    }
                    Err(e) => {
                        // The apply already rewound its own partial work.
                        self.core.scope_close(&scope);
                        return Err(e);
                    }
                }
            }
        };
        self.consume_submissions(&resolution);
        let version = self.core.version;
        self.telemetry.count(|m| &m.commits);
        self.telemetry.event(EventKind::Commit, version, || {
            format!("committed v{version} ({} ops)", resolution.pul.len())
        });
        Ok(CommitReport {
            version,
            applied_ops: resolution.pul.len(),
            conflicts: resolution.conflicts,
            apply,
        })
    }

    /// Resolves the pending submissions and applies the resolution in one
    /// streaming pass over the serialization: the identified serialization of
    /// the document is read from `reader`, the update is applied **without
    /// building a tree for the streamed bytes** (§4.3, Fig. 6.a), and the
    /// updated serialization is written to `writer`.
    ///
    /// Note that this session still holds its in-memory authoritative copy —
    /// it is used for the input correspondence check and synchronised from
    /// the streamed output — so the one-pass benefit is on the I/O path, not
    /// on memory. A fully tree-free executor (fingerprint check, incremental
    /// labeling from the apply report) is tracked in the ROADMAP.
    pub fn commit_streaming<R: Read, W: Write>(
        &mut self,
        reader: &mut R,
        writer: &mut W,
    ) -> Result<CommitReport> {
        let resolution = self.resolve()?;
        self.commit_resolution_streaming(resolution, reader, writer)
    }

    /// Streaming counterpart of [`commit_resolution`]
    /// (Executor::commit_resolution). The reader must supply the session's
    /// own identified serialization ([`serialize_identified`]
    /// (Executor::serialize_identified), possibly persisted at an earlier
    /// point of the *same* version); anything else fails with
    /// [`Error::StreamMismatch`] before a byte is written.
    pub fn commit_resolution_streaming<R: Read, W: Write>(
        &mut self,
        resolution: Resolution,
        reader: &mut R,
        writer: &mut W,
    ) -> Result<CommitReport> {
        self.check_fresh(&resolution)?;
        let _span = self.telemetry.span(|m| &m.commit_ns);
        let mut input = String::new();
        reader.read_to_string(&mut input)?;
        // The resolution reasoned about *this* session's document: applying it
        // to any other serialization would silently commit over the wrong
        // base. The identified serialization is deterministic, so equality
        // with the in-memory copy is the correspondence check.
        if input != self.serialize_identified() {
            return Err(Error::StreamMismatch(
                "the reader's bytes are not this session's identified serialization".into(),
            ));
        }
        // Fresh identifiers must clash neither with the document's nor with
        // the identifiers carried by the resolution's parameter trees.
        let mut first_new_id = self.core.doc.next_id() + 1;
        for op in resolution.pul.ops() {
            if let Some(trees) = op.content() {
                for tree in trees {
                    first_new_id = first_new_id.max(tree.as_document().next_id() + 1);
                }
            }
        }
        let output = apply_streaming_with(
            &input,
            &resolution.pul,
            first_new_id,
            self.core.apply_options.preserve_content_ids,
        )?;
        // Synchronise the in-memory authoritative copy *before* anything is
        // written, so a failure leaves both the session and the writer
        // untouched.
        let updated = parser::parse_document_identified(&output)
            .map_err(|e| Error::StreamMismatch(e.to_string()))?;
        writer.write_all(output.as_bytes())?;
        let doc_entries_before = self.core.doc.journal_len();
        let label_entries_before = self.core.labeling.journal_len();
        let sink = self.sink.get();
        // Durable sessions wrap the swap in a journal scope so a failed WAL
        // append can rewind it; the streamed bytes were already written, so on
        // that failure the caller must discard the writer's output.
        let scope = sink.is_some().then(|| self.core.scope_open());
        // Incremental labeling (§4.1): only the nodes the stream inserted gain
        // labels and only the removed ones lose theirs — the labels of
        // untouched nodes stay bit-identical, no full re-assignment. Inside a
        // transaction the patch records its inverses in the labeling journal.
        self.core.labeling.patch_from_document(&updated);
        // Swap in the re-parsed document. Inside a transaction the previous
        // arena is *moved* into a single journal entry (O(1), no clone), so a
        // rollback restores it.
        self.core.doc.replace_with(updated);
        self.core.version += 1;
        if let Some(sink) = &sink {
            let scope = scope.as_ref().expect("scope opened alongside the sink");
            let appended = sink
                .lock()
                .expect("commit sink mutex poisoned")
                .on_commit(self.core.version, CommitRecord::Swap(&output));
            match appended {
                Ok(()) => self.core.scope_close(scope),
                Err(e) => {
                    self.core.scope_rewind(scope);
                    self.core.scope_close(scope);
                    self.telemetry.count(|m| &m.rollbacks);
                    return Err(e);
                }
            }
        }
        self.consume_submissions(&resolution);
        let version = self.core.version;
        self.telemetry.count(|m| &m.commits);
        self.telemetry.event(EventKind::Commit, version, || {
            format!("streaming-committed v{version} ({} ops)", resolution.pul.len())
        });
        // The structural report stays empty (the stream never materialises
        // per-op effects), but the journal stats are real: entries recorded
        // while an enclosing transaction scope was active (zero otherwise).
        let apply = ApplyReport {
            journal: pul::apply::JournalStats {
                doc_entries: self.core.doc.journal_len() - doc_entries_before,
                label_entries: self.core.labeling.journal_len() - label_entries_before,
            },
            ..Default::default()
        };
        Ok(CommitReport {
            version: self.core.version,
            applied_ops: resolution.pul.len(),
            conflicts: resolution.conflicts,
            apply,
        })
    }

    fn check_fresh(&self, resolution: &Resolution) -> Result<()> {
        check_resolution_fresh(
            resolution.version,
            self.core.version,
            &resolution.submission_ids,
            |id| self.submissions.iter().any(|s| s.id == id),
        )
    }

    /// Consumes exactly the submissions the resolution covered (later arrivals
    /// stay pending). The version advance lives with the core's apply.
    fn consume_submissions(&mut self, resolution: &Resolution) {
        self.submissions.retain(|s| !resolution.submission_ids.contains(&s.id));
    }

    // ------------------------------------------------------------ transactions

    /// Starts a build-apply-rollback transaction: the returned guard exposes
    /// the whole session API (it derefs to the executor) and restores the
    /// document, labeling, submissions and version on drop unless
    /// [`Transaction::commit`] is called. Rollback replays the apply journal —
    /// O(everything changed inside the transaction), never O(document); no
    /// session snapshot is taken.
    pub fn transaction(&mut self) -> Transaction<'_> {
        Transaction::new(self)
    }

    /// Opens a transaction scope: enters (or activates) the document and
    /// labeling journals and saves the small session fields. The cost is
    /// O(pending submissions) — the document and labeling are *not* copied.
    pub(crate) fn tx_begin(&mut self) -> TxScope {
        TxScope {
            // The scope protocol (per-store ownership, marks, rewind order,
            // close-only-what-you-opened) lives once, in `pul::apply`; the
            // version capture lives with the core scope.
            core: self.core.scope_open(),
            submissions: self.submissions.clone(),
            next_submission: self.next_submission,
        }
    }

    /// Rolls the session back to the state captured by [`tx_begin`]
    /// (Executor::tx_begin): the journals replay their inverses down to the
    /// scope's marks and the session fields are restored.
    pub(crate) fn tx_rollback(&mut self, scope: TxScope) {
        self.core.scope_rewind(&scope.core);
        self.core.scope_close(&scope.core);
        self.submissions = scope.submissions;
        self.next_submission = scope.next_submission;
        let version = self.core.version;
        self.telemetry.count(|m| &m.rollbacks);
        self.telemetry.event(EventKind::Rollback, version, || {
            format!("transaction rolled back to v{version}")
        });
        // The rolled-back versions' numbers will be reused by later commits
        // with different contents: cached snapshots above the restored
        // version must not survive.
        self.snapshots.purge_above(self.core.version);
        // Durable sessions truncate the WAL records of the rolled-back
        // commits, so a crash cannot resurrect them.
        if let Some(sink) = self.sink.get() {
            sink.lock().expect("commit sink mutex poisoned").on_rollback(self.core.version);
        }
    }

    /// Makes the scope's changes permanent: the recorded inverses are dropped
    /// (when this scope activated the journals) or left to the enclosing
    /// scope (nested transactions).
    pub(crate) fn tx_commit(&mut self, scope: TxScope) {
        self.core.scope_close(&scope.core);
    }

    // -------------------------------------------------------------- compaction

    /// Renumbers the whole session densely and opens a new epoch.
    ///
    /// Identifiers are never reused across commits (§4.1), so insert/delete
    /// churn strands dead slots in the node arena and the label store until
    /// [`slab_stats`](Executor::slab_stats) is mostly tombstones. Compaction
    /// reclaims them: the document is renumbered in preorder starting from 1
    /// (`assign_preorder_ids`), the labeling is rebuilt densely over the new
    /// identifiers, the version advances (any outstanding [`Resolution`]
    /// becomes stale, `XPUL-E01`), and the session epoch increments — every
    /// submission admitted before the compaction is fenced with `XPUL-E10`
    /// at resolve time, because the identifiers it carries now name
    /// different nodes.
    ///
    /// Durable sessions append an epoch record through the commit sink
    /// *before* renumbering: the append is the commit point (renumbering
    /// itself is infallible), so a failed append leaves the session and the
    /// store untouched on the pre-compaction version.
    ///
    /// Panics if called inside a transaction — a journaled scope records
    /// inverses in terms of the identifiers compaction is about to rewrite.
    pub fn compact(&mut self) -> Result<CompactionReport> {
        assert!(
            !self.core.doc.journal_is_active(),
            "compact() inside a transaction scope: rollback could not replay \
             inverses across the renumbering"
        );
        let before = self.slab_stats();
        if let Some(sink) = self.sink.get() {
            sink.lock()
                .expect("commit sink mutex poisoned")
                .on_commit(self.core.version + 1, CommitRecord::Epoch { epoch: self.epoch + 1 })?;
        }
        self.compact_in_place(self.epoch + 1);
        let (epoch, version) = (self.epoch, self.core.version);
        self.telemetry.event(EventKind::CompactionEpoch, version, || {
            format!("compaction opened epoch {epoch} at v{version}")
        });
        Ok(CompactionReport {
            epoch: self.epoch,
            version: self.core.version,
            before,
            after: self.slab_stats(),
        })
    }

    /// The infallible, deterministic half of a compaction: renumber, rebuild
    /// the labeling densely, advance the fences. Shared by the live
    /// [`compact`](Executor::compact) and by WAL replay of an epoch record,
    /// so recovery reproduces the compacted state bit-identically.
    pub(crate) fn compact_in_place(&mut self, epoch: u64) {
        let _mapping = self.core.doc.assign_preorder_ids(1);
        self.core.labeling = Labeling::assign(&self.core.doc);
        self.core.version += 1;
        self.epoch = epoch;
        // Cached reductions and pre-reductions reason in pre-compaction
        // identifiers; the submissions carrying them are fenced, and the
        // cache must not serve stale ids to post-compaction wire retries.
        self.reduction_cache.clear();
    }

    /// Replays a WAL `Epoch` record. The epoch is *set* (not incremented):
    /// the record is authoritative about the epoch it opened.
    pub(crate) fn replay_epoch(&mut self, epoch: u64) {
        self.compact_in_place(epoch);
    }

    /// Restores the epoch fence from a checkpoint (recovery only).
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    // ---------------------------------------------------------------- recovery

    /// Re-applies a WAL `Delta` record: the resolved PUL a committed round
    /// applied. Same journaled apply path as the live commit, under the
    /// identifier discipline the record was committed with (the restored
    /// session's own apply options are *not* durable state and must not leak
    /// into replay — a producer-discipline delta re-applied with fresh
    /// minting would silently renumber the recovered arena). Bit-identical
    /// recovered state either way.
    pub(crate) fn replay_delta(&mut self, pul: &Pul, preserve_content_ids: bool) -> Result<()> {
        let live = self.core.apply_options.preserve_content_ids;
        self.core.apply_options.preserve_content_ids = preserve_content_ids;
        let replayed = self.core.commit_pul(pul).map(|_| ());
        self.core.apply_options.preserve_content_ids = live;
        replayed
    }

    /// Re-applies a WAL `Swap` record: the identified serialization a
    /// streaming commit wrote. Same parse → patch → replace path as the live
    /// commit (including the re-parsed fresh-identifier counter), so the
    /// recovered state is bit-identical.
    pub(crate) fn replay_swap(&mut self, output: &str) -> Result<()> {
        let updated = parser::parse_document_identified(output)
            .map_err(|e| Error::store(format!("corrupt swap record: {e}")))?;
        self.core.labeling.patch_from_document(&updated);
        self.core.doc.replace_with(updated);
        self.core.version += 1;
        Ok(())
    }

    /// Debug invariant walker over the whole session: document structure
    /// (parent/child symmetry, slab dense/spill agreement, full attachment)
    /// and labeling agreement (no stale or missing labels, metadata in sync,
    /// label-key ordering). Panics with a description on any violation.
    /// O(document) — meant to be called after commits in tests.
    pub fn assert_consistent(&self) {
        self.core.assert_consistent();
    }
}

/// Open transaction scope: the core's journal scope plus the copied *small*
/// session fields (the pending-submission list and one counter — never the
/// document or the labeling).
#[derive(Debug)]
pub(crate) struct TxScope {
    /// The core journal scope (ownership, marks, version, rewind/close).
    core: CoreScope,
    submissions: Vec<Submission>,
    next_submission: u64,
}

/// The historical clone-based snapshot, kept **only** as a differential
/// oracle: tests capture one before a journal-scoped operation and assert
/// that a journaled rollback restores a state `deep_eq`-identical to it. The
/// production paths never clone the document or the labeling.
#[cfg(test)]
pub(crate) struct ExecutorSnapshot {
    doc: Document,
    labeling: Labeling,
    submissions: Vec<Submission>,
    next_submission: u64,
    version: u64,
}

#[cfg(test)]
impl Executor {
    pub(crate) fn oracle_snapshot(&self) -> ExecutorSnapshot {
        ExecutorSnapshot {
            doc: self.core.doc.clone(),
            labeling: self.core.labeling.clone(),
            submissions: self.submissions.clone(),
            next_submission: self.next_submission,
            version: self.core.version,
        }
    }

    /// Asserts that the current session state is bit-identical to the oracle
    /// snapshot: documents and labelings `deep_eq`, same pending submissions,
    /// same counters.
    pub(crate) fn assert_matches_snapshot(&self, oracle: &ExecutorSnapshot) {
        assert!(self.core.doc.deep_eq(&oracle.doc), "document differs from the snapshot oracle");
        assert!(
            self.core.labeling.deep_eq(&oracle.labeling),
            "labeling differs from the snapshot oracle"
        );
        assert_eq!(self.submissions.len(), oracle.submissions.len());
        for (a, b) in self.submissions.iter().zip(oracle.submissions.iter()) {
            assert_eq!(a.id, b.id, "pending submissions differ from the snapshot oracle");
        }
        assert_eq!(self.next_submission, oracle.next_submission);
        assert_eq!(self.core.version, oracle.version);
    }
}

/// Slot-occupancy statistics of one session's dense stores, as reported by
/// [`Executor::slab_stats`] and
/// [`ShardedExecutor::slab_stats`](crate::ShardedExecutor::slab_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionSlabStats {
    /// The document's node arena.
    pub nodes: xdm::SlabStats,
    /// The labeling's label store.
    pub labels: xdm::SlabStats,
    /// The session's compaction epoch the stats were taken under.
    pub epoch: u64,
}

impl SessionSlabStats {
    /// Component-wise sum (used by the sharded façade to aggregate shards).
    /// Both sides come from the same session, so the epoch is shared.
    pub fn merged(self, other: SessionSlabStats) -> SessionSlabStats {
        SessionSlabStats {
            nodes: self.nodes.merged(other.nodes),
            labels: self.labels.merged(other.labels),
            epoch: self.epoch,
        }
    }
}

/// Summary of a successful [`Executor::compact`] /
/// [`ShardedExecutor::compact`](crate::ShardedExecutor::compact): what the
/// renumbering reclaimed and where the fences now stand.
#[derive(Debug, Clone, Copy)]
pub struct CompactionReport {
    /// The epoch the compaction opened.
    pub epoch: u64,
    /// The session version the compaction produced.
    pub version: u64,
    /// Slab occupancy before the renumbering.
    pub before: SessionSlabStats,
    /// Slab occupancy after: dense, no dead slots, no spill.
    pub after: SessionSlabStats,
}

/// The ingestion pipeline drives a single executor exactly like a producer
/// session would: admitted PULs become pending submissions (pre-reduced by
/// the pipeline's drainer, so `resolve` skips their reduction), and the
/// batch commit is [`commit_resolution`](Executor::commit_resolution).
impl IngestBackend for Executor {
    type Resolution = Resolution;

    fn admit(&mut self, pul: Pul, policy: Policy, reduced: Option<Pul>) -> SubmissionId {
        self.submit_inner(pul, policy, reduced)
    }

    fn resolve_pending(&self) -> Result<Resolution> {
        self.resolve()
    }

    fn commit_pending(&mut self, resolution: Resolution) -> Result<BatchCommit> {
        let applied_ops = resolution.pul.len();
        let report = self.commit_resolution(resolution)?;
        Ok(BatchCommit { version: report.version, applied_ops, conflicts: report.conflicts })
    }

    fn snapshot_view(&self) -> Option<Snapshot> {
        Some(self.snapshot())
    }

    fn discard(&mut self, id: SubmissionId) {
        let _ = self.withdraw(id);
    }

    fn current_version(&self) -> u64 {
        self.core.version
    }

    fn reduction_strategy(&self) -> ReductionStrategy {
        self.strategy
    }

    fn default_policy(&self) -> Policy {
        self.default_policy
    }
}

/// Convenience: build a PUL from loose operations against this session's
/// labeling (the common test/example pattern).
impl Executor {
    /// Builds a PUL from operations, attaching the labels of the session
    /// document — what a well-behaved producer does before shipping.
    pub fn pul_from_ops(&self, ops: Vec<UpdateOp>) -> Pul {
        Pul::from_ops(ops, &self.core.labeling)
    }
}

#[cfg(test)]
mod tests {
    //! Differential verification of the journaled rollback against the
    //! historical clone-based snapshot (the `#[cfg(test)]` oracle): after any
    //! failure or transaction rollback the session must be *bit-identical* —
    //! same arena entries, same label keys — to what restoring the snapshot
    //! would have produced.

    use super::*;
    use xdm::Tree;

    /// ids: issue=1, volume=2, article=3, title=4, "T"=5, article=6
    fn session() -> Executor {
        Executor::parse(
            "<issue volume=\"30\"><article><title>T</title></article><article/></issue>",
        )
        .unwrap()
    }

    /// A PUL that fails *partway through* application: rename(3) and repV(5)
    /// apply first (stage 1, smaller targets), then the duplicate attribute
    /// insertion on 6 fails after its first attribute has been attached. The
    /// stage-2 insertion is never reached.
    fn mid_failing_pul(session: &Executor) -> Pul {
        session.pul_from_ops(vec![
            UpdateOp::rename(3u64, "paper"),
            UpdateOp::replace_value(5u64, "changed"),
            UpdateOp::ins_attributes(
                6u64,
                vec![Tree::attribute("id", "1"), Tree::attribute("id", "2")],
            ),
            UpdateOp::ins_last(6u64, vec![Tree::element("never-inserted")]),
        ])
    }

    #[test]
    fn mid_apply_failure_rewinds_to_the_snapshot_oracle() {
        let mut session = session();
        let pul = mid_failing_pul(&session);
        session.submit(pul);
        let oracle = session.oracle_snapshot();
        let err = session.commit();
        assert!(err.is_err(), "duplicate attribute must fail the commit");
        session.assert_matches_snapshot(&oracle);
        session.assert_consistent();
        assert!(
            !session.core.doc.journal_is_active(),
            "failed commit closes its own journal scope"
        );
        assert_eq!(session.version(), 0);
        assert_eq!(session.pending(), 1, "the failed submission stays pending");
        // the session is fully usable afterwards: withdraw the bad PUL, commit a good one
        let id = session.submissions[0].id;
        session.withdraw(id).unwrap();
        let good = session.produce("rename node /issue/article[1] as \"paper\"").unwrap();
        session.submit(good);
        session.commit().unwrap();
        session.assert_consistent();
        assert!(session.serialize().contains("<paper>"));
    }

    #[test]
    fn successful_commit_leaves_no_journal_behind() {
        let mut session = session();
        let pul = session.produce("delete node /issue/article[2]").unwrap();
        session.submit(pul);
        let report = session.commit().unwrap();
        assert!(report.apply.journal.total() > 0, "the commit went through the journal");
        assert!(!session.core.doc.journal_is_active(), "success = discard");
        assert!(!session.core.labeling.journal_is_active());
        session.assert_consistent();
    }

    #[test]
    fn transaction_rollback_matches_the_snapshot_oracle() {
        let mut session = session();
        let oracle = session.oracle_snapshot();
        {
            let mut tx = session.transaction();
            let pul = tx.produce("rename node /issue/article[1] as \"paper\"").unwrap();
            tx.submit(pul);
            tx.apply().unwrap();
            let pul =
                tx.produce("insert nodes <note>draft</note> as last into /issue/paper").unwrap();
            tx.submit(pul);
            tx.apply().unwrap();
            assert_eq!(tx.version(), 2);
            assert!(tx.serialize().contains("<note>draft</note>"));
        } // dropped: rolled back by replaying the journal
        session.assert_matches_snapshot(&oracle);
        session.assert_consistent();
        assert!(!session.core.doc.journal_is_active());
    }

    #[test]
    fn transaction_commit_keeps_changes_and_discards_the_journal() {
        let mut session = session();
        {
            let mut tx = session.transaction();
            let pul = tx.produce("delete node /issue/article[2]").unwrap();
            tx.submit(pul);
            tx.apply().unwrap();
            tx.commit();
        }
        assert_eq!(session.version(), 1);
        assert!(!session.core.doc.journal_is_active());
        session.assert_consistent();
    }

    #[test]
    fn nested_transactions_rewind_to_their_own_marks() {
        let mut session = session();
        let oracle = session.oracle_snapshot();
        {
            let mut outer = session.transaction();
            let pul = outer.produce("rename node /issue/article[1] as \"paper\"").unwrap();
            outer.submit(pul);
            outer.apply().unwrap();
            let after_outer = outer.oracle_snapshot();
            {
                let mut inner = outer.transaction();
                let pul = inner.produce("delete node /issue/article[1]").unwrap();
                inner.submit(pul);
                inner.apply().unwrap();
            } // inner rollback: only the delete is undone
            outer.assert_matches_snapshot(&after_outer);
            assert!(outer.serialize().contains("<paper>"));
        } // outer rollback: everything undone
        session.assert_matches_snapshot(&oracle);
        session.assert_consistent();
    }

    #[test]
    fn streaming_commit_inside_a_transaction_rolls_back() {
        let mut session = session();
        let oracle = session.oracle_snapshot();
        {
            let mut tx = session.transaction();
            let pul = tx.produce("rename node /issue/article[1] as \"paper\"").unwrap();
            tx.submit(pul);
            let input = tx.serialize_identified();
            let mut output = Vec::new();
            let report = tx.commit_streaming(&mut input.as_bytes(), &mut output).unwrap();
            assert!(String::from_utf8(output).unwrap().contains("<paper"));
            assert_eq!(tx.version(), 1);
            assert!(
                report.apply.journal.total() > 0,
                "streaming commits report their journal entries too"
            );
        } // rollback: the whole-document swap entry restores the old arena
        session.assert_matches_snapshot(&oracle);
        session.assert_consistent();
    }

    #[test]
    fn mid_apply_failure_inside_a_transaction_keeps_earlier_commits() {
        let mut session = session();
        let mut tx = session.transaction();
        let pul = tx.produce("replace value of node /issue/@volume with \"31\"").unwrap();
        tx.submit(pul);
        tx.apply().unwrap();
        let after_first = tx.oracle_snapshot();
        let bad = mid_failing_pul(&tx);
        let bad_id = tx.submit(bad);
        assert!(tx.apply().is_err());
        // the failed commit rewound to its own mark: the first commit survives
        // (the failed submission stays pending — drop it before comparing; the
        // submission-id counter is monotonic by design, so compare the state
        // fields rather than the whole snapshot)
        tx.withdraw(bad_id).unwrap();
        assert!(tx.document().deep_eq(&after_first.doc));
        assert!(tx.labeling().deep_eq(&after_first.labeling));
        assert_eq!(tx.version(), after_first.version);
        tx.commit();
        assert!(session.serialize().contains("volume=\"31\""));
        session.assert_consistent();
    }
}
