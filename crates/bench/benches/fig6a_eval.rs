//! Figure 6.a — streaming vs in-memory PUL evaluation.
//!
//! The paper evaluates a 1000-operation PUL over XMark documents of increasing
//! size and reports that streaming evaluation is ≈3× faster than the in-memory
//! (parse → apply → serialize) baseline, with the gap growing with document
//! size. Document sizes are scaled down for CI budgets; the *ratio* is the
//! reproduced quantity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pul_bench::{eval_in_memory, eval_streaming, setup_eval};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6a_eval");
    group.sample_size(10);
    for &nodes in &[10_000usize, 30_000] {
        let w = setup_eval(nodes, 1_000, 42);
        group.bench_with_input(BenchmarkId::new("in_memory", nodes), &w, |b, w| {
            b.iter(|| eval_in_memory(w))
        });
        group.bench_with_input(BenchmarkId::new("streaming", nodes), &w, |b, w| {
            b.iter(|| eval_streaming(w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
