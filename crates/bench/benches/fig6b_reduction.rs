//! Figure 6.b — PUL reduction: deserialize + reduce + re-serialize PULs of
//! increasing size (~1 successful rule application every 10 operations).
//! Includes the reduce-only series and the naive O(k²) ablation baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pul_bench::{
    run_reduction_end_to_end, run_reduction_naive, run_reduction_only, setup_reduction,
};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6b_reduction");
    group.sample_size(10);
    for &n_ops in &[2_000usize, 5_000, 10_000] {
        let w = setup_reduction(n_ops, 42);
        group.bench_with_input(BenchmarkId::new("end_to_end", n_ops), &w, |b, w| {
            b.iter(|| run_reduction_end_to_end(w))
        });
        group.bench_with_input(BenchmarkId::new("reduce_only", n_ops), &w, |b, w| {
            b.iter(|| run_reduction_only(w))
        });
    }
    // the quadratic baseline is only run on a small size (it is the ablation
    // showing why the label-indexed algorithm is needed)
    let w = setup_reduction(500, 42);
    group.bench_function("naive_baseline_500", |b| b.iter(|| run_reduction_naive(&w)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
