//! Figure 6.e — integration of 10 parallel PULs with a varying number of
//! operations each (half involved in conflicts of ~5 operations), including the
//! best-effort conflict resolution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pul_bench::{run_integration, run_integration_and_resolution, setup_integration};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6e_integration");
    group.sample_size(10);
    for &ops in &[400usize, 1_000] {
        let w = setup_integration(10, ops, 42);
        group.bench_with_input(BenchmarkId::new("integration", ops), &w, |b, w| {
            b.iter(|| run_integration(w))
        });
        group.bench_with_input(BenchmarkId::new("integration_and_resolution", ops), &w, |b, w| {
            b.iter(|| run_integration_and_resolution(w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
