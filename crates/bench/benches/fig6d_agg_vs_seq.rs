//! Figure 6.d — evaluating a list of PULs: aggregation followed by a single
//! streaming evaluation vs the sequential streaming evaluation of every PUL.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pul_bench::{run_aggregate_then_evaluate, run_sequential_evaluation, setup_aggregation};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6d_agg_vs_seq");
    group.sample_size(10);
    for &n_puls in &[2usize, 5, 10] {
        let w = setup_aggregation(20_000, n_puls, 300, 42);
        group.bench_with_input(BenchmarkId::new("aggregate_then_evaluate", n_puls), &w, |b, w| {
            b.iter(|| run_aggregate_then_evaluate(w))
        });
        group.bench_with_input(BenchmarkId::new("sequential_evaluation", n_puls), &w, |b, w| {
            b.iter(|| run_sequential_evaluation(w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
