//! Figure 6.c — PUL aggregation: deserialize + aggregate + re-serialize an
//! increasing number of PULs (half of the operations target nodes inserted by
//! previous PULs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pul_bench::{run_aggregation_end_to_end, run_aggregation_only, setup_aggregation};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6c_aggregation");
    group.sample_size(10);
    for &n_puls in &[1usize, 5, 10] {
        let w = setup_aggregation(20_000, n_puls, 500, 42);
        group.bench_with_input(BenchmarkId::new("end_to_end", n_puls), &w, |b, w| {
            b.iter(|| run_aggregation_end_to_end(w))
        });
        group.bench_with_input(BenchmarkId::new("aggregate_only", n_puls), &w, |b, w| {
            b.iter(|| run_aggregation_only(w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
