//! # pul-bench — benchmark harness for the EDBT 2011 evaluation (§4.3)
//!
//! One module per figure of the paper. Each module exposes
//!
//! * a `setup_*` function building the workload (documents, PULs, serialized
//!   forms) exactly as described in the paper, scaled by a size parameter, and
//! * one or more `run_*` functions performing the measured work.
//!
//! The Criterion benches under `benches/` and the `experiments` binary (which
//! prints the paper-style tables recorded in `EXPERIMENTS.md`) are both thin
//! wrappers over these functions, so the measured code paths are identical.

use std::time::{Duration, Instant};

use pul::apply::{apply_pul, ApplyOptions};
use pul::stream::{apply_streaming, apply_streaming_with};
use pul::xmlio::{pul_from_xml, pul_to_xml, puls_from_xml, puls_to_xml};
use pul::{Pul, UpdateOp};
use pul_core::{aggregate, integrate, reconcile_integration, Integration, Policy};
use workload::pulgen::{
    generate_parallel_puls, generate_pul, generate_sequential_puls, ParallelConfig, PulGenConfig,
    SequentialConfig,
};
use workload::xmark::{generate as xmark, XmarkConfig};
use xdm::parser::parse_document_identified;
use xdm::writer::{write_document, write_document_identified};
use xdm::Document;
use xdm::{NodeId, Tree};
use xlabel::Labeling;

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration in milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

// ---------------------------------------------------------------------------
// Figure 6.a — streaming vs in-memory PUL evaluation
// ---------------------------------------------------------------------------

/// Workload for Fig. 6.a: an XMark document (identified serialization) and a
/// PUL of `n_ops` operations on it.
pub struct EvalWorkload {
    /// The document itself.
    pub doc: Document,
    /// Its identified serialization (the executor's on-disk form).
    pub xml: String,
    /// The PUL to evaluate.
    pub pul: Pul,
    /// First identifier free for nodes created during evaluation.
    pub first_new_id: u64,
}

/// Builds the Fig. 6.a workload.
pub fn setup_eval(doc_nodes: usize, n_ops: usize, seed: u64) -> EvalWorkload {
    let doc = xmark(&XmarkConfig { target_nodes: doc_nodes, seed });
    let labeling = Labeling::assign(&doc);
    let pul = generate_pul(
        &doc,
        &labeling,
        &PulGenConfig {
            n_ops,
            reducible_ratio: 0.0,
            content_id_base: doc.next_id() + 1_000_000,
            seed,
        },
    );
    let xml = write_document_identified(&doc);
    let first_new_id = doc.next_id() + 10_000_000;
    EvalWorkload { doc, xml, pul, first_new_id }
}

/// In-memory evaluation: parse the identified document, apply the PUL on the
/// DOM, serialize the result back (the "extended Qizx" baseline of §4.3).
pub fn eval_in_memory(w: &EvalWorkload) -> String {
    let mut doc = parse_document_identified(&w.xml).expect("well-formed identified document");
    apply_pul(&mut doc, &w.pul, &ApplyOptions { validate: false, preserve_content_ids: false })
        .expect("applicable PUL");
    write_document_identified(&doc)
}

/// Streaming evaluation: transform the SAX event stream on the fly (§4.3).
pub fn eval_streaming(w: &EvalWorkload) -> String {
    apply_streaming(&w.xml, &w.pul, w.first_new_id).expect("applicable PUL")
}

// ---------------------------------------------------------------------------
// Figure 6.b — PUL reduction
// ---------------------------------------------------------------------------

/// Workload for Fig. 6.b: a serialized PUL with ~1 successful rule application
/// every 10 operations, on a fixed XMark document.
pub struct ReductionWorkload {
    /// The serialized PUL (reduction is measured end-to-end, including
    /// deserialization and re-serialization, as in the paper).
    pub pul_xml: String,
    /// The in-memory PUL (for measuring the reduction step alone).
    pub pul: Pul,
}

/// Builds the Fig. 6.b workload.
pub fn setup_reduction(n_ops: usize, seed: u64) -> ReductionWorkload {
    let doc = xmark(&XmarkConfig { target_nodes: (n_ops * 4).max(2_000), seed });
    let labeling = Labeling::assign(&doc);
    let pul = generate_pul(
        &doc,
        &labeling,
        &PulGenConfig {
            n_ops,
            reducible_ratio: 0.1,
            content_id_base: doc.next_id() + 1_000_000,
            seed,
        },
    );
    ReductionWorkload { pul_xml: pul_to_xml(&pul), pul }
}

/// Deserialize + reduce + re-serialize (the measurement of Fig. 6.b).
/// Returns the size of the reduced PUL.
pub fn run_reduction_end_to_end(w: &ReductionWorkload) -> usize {
    let pul = pul_from_xml(&w.pul_xml).expect("valid PUL document");
    let reduced = pul_core::reduce_with(&pul, pul_core::ReductionKind::Plain);
    let _xml = pul_to_xml(&reduced);
    reduced.len()
}

/// Reduction alone, on the already-deserialized PUL (the incremental worklist
/// engine).
pub fn run_reduction_only(w: &ReductionWorkload) -> usize {
    pul_core::reduce_with(&w.pul, pul_core::ReductionKind::Plain).len()
}

/// Pre-worklist sweep engine (candidate set rebuilt after every pass) — the
/// "before" of the worklist ablation.
pub fn run_reduction_sweep_baseline(w: &ReductionWorkload) -> usize {
    pul_core::reduce_sweep_baseline(&w.pul, pul_core::ReductionKind::Plain).len()
}

/// Naive O(k²) reduction baseline (ablation).
pub fn run_reduction_naive(w: &ReductionWorkload) -> usize {
    pul_core::reduce::reduce_naive(&w.pul).len()
}

// ---------------------------------------------------------------------------
// Figures 6.c / 6.d — PUL aggregation
// ---------------------------------------------------------------------------

/// Workload for Fig. 6.c/6.d: an XMark document and a sequence of PULs, also
/// available in serialized form.
pub struct AggregationWorkload {
    /// The original document.
    pub doc: Document,
    /// Its identified serialization.
    pub doc_xml: String,
    /// The sequence of PULs.
    pub puls: Vec<Pul>,
    /// The serialized sequence.
    pub puls_xml: String,
    /// First identifier free for nodes created during evaluation.
    pub first_new_id: u64,
}

/// Builds the Fig. 6.c/6.d workload: `n_puls` PULs of `ops_per_pul` operations,
/// half of them on nodes inserted by previous PULs (the paper's setting).
pub fn setup_aggregation(
    doc_nodes: usize,
    n_puls: usize,
    ops_per_pul: usize,
    seed: u64,
) -> AggregationWorkload {
    let doc = xmark(&XmarkConfig { target_nodes: doc_nodes, seed });
    let puls = generate_sequential_puls(
        &doc,
        &SequentialConfig { n_puls, ops_per_pul, new_node_ratio: 0.5, seed },
    );
    let puls_xml = puls_to_xml(&puls);
    let doc_xml = write_document_identified(&doc);
    let first_new_id = doc.next_id() + 10_000_000;
    AggregationWorkload { doc, doc_xml, puls, puls_xml, first_new_id }
}

/// Deserialize + aggregate + re-serialize (the measurement of Fig. 6.c).
/// Returns the size of the aggregated PUL.
pub fn run_aggregation_end_to_end(w: &AggregationWorkload) -> usize {
    let puls = puls_from_xml(&w.puls_xml).expect("valid PUL list");
    let agg = aggregate(&puls).expect("aggregable sequence");
    let _xml = pul_to_xml(&agg);
    agg.len()
}

/// Aggregation alone, on already-deserialized PULs.
pub fn run_aggregation_only(w: &AggregationWorkload) -> usize {
    aggregate(&w.puls).expect("aggregable sequence").len()
}

/// Fig. 6.d, aggregated side: aggregate the list, then evaluate the single
/// resulting PUL in streaming over the document. Returns the output size.
pub fn run_aggregate_then_evaluate(w: &AggregationWorkload) -> usize {
    let agg = aggregate(&w.puls).expect("aggregable sequence");
    let out = apply_streaming_with(&w.doc_xml, &agg, w.first_new_id, true).expect("applicable PUL");
    out.len()
}

/// Fig. 6.d, sequential side: evaluate each PUL in streaming, one after the
/// other, re-reading the (updated) document each time. Returns the output size.
pub fn run_sequential_evaluation(w: &AggregationWorkload) -> usize {
    let mut xml = w.doc_xml.clone();
    let mut next_id = w.first_new_id;
    for pul in &w.puls {
        xml = apply_streaming_with(&xml, pul, next_id, true).expect("applicable PUL");
        next_id += 1_000_000;
    }
    xml.len()
}

// ---------------------------------------------------------------------------
// Figure 6.e — PUL integration and conflict resolution
// ---------------------------------------------------------------------------

/// Workload for Fig. 6.e: parallel PULs with injected conflicts.
pub struct IntegrationWorkload {
    /// The parallel PULs.
    pub puls: Vec<Pul>,
    /// One (relaxed) policy per producer.
    pub policies: Vec<Policy>,
}

/// Builds the Fig. 6.e workload: `n_puls` PULs of `ops_per_pul` operations,
/// half of the operations involved in conflicts of ~5 operations each.
pub fn setup_integration(n_puls: usize, ops_per_pul: usize, seed: u64) -> IntegrationWorkload {
    let doc_nodes = (n_puls * ops_per_pul * 4).max(20_000);
    let doc = xmark(&XmarkConfig { target_nodes: doc_nodes, seed });
    let labeling = Labeling::assign(&doc);
    let puls = generate_parallel_puls(
        &doc,
        &labeling,
        &ParallelConfig { n_puls, ops_per_pul, conflict_fraction: 0.5, ops_per_conflict: 5, seed },
    );
    let policies = vec![Policy::relaxed(); n_puls];
    IntegrationWorkload { puls, policies }
}

/// Integration (conflict detection) alone. Returns the number of conflicts.
pub fn run_integration(w: &IntegrationWorkload) -> Integration {
    integrate(&w.puls)
}

/// Integration followed by best-effort conflict resolution. Returns the size
/// of the reconciled PUL.
pub fn run_integration_and_resolution(w: &IntegrationWorkload) -> usize {
    let integration = integrate(&w.puls);
    let reconciled = reconcile_integration(&w.puls, &integration, &w.policies)
        .expect("relaxed policies always reconcile");
    reconciled.len()
}

/// Serialized size (bytes) of a document, used when reporting workloads.
pub fn document_size_bytes(doc: &Document) -> usize {
    write_document(doc).len()
}

// ---------------------------------------------------------------------------
// Session overhead — raw operator calls vs `Executor::resolve`
// ---------------------------------------------------------------------------

/// Workload for the session-overhead benchmark: the same parallel PULs fed
/// once through the raw reduce + integrate + reconcile + reduce pipeline and
/// once through an [`xmlpul::Executor`] session, to keep the façade zero-cost.
pub struct SessionWorkload {
    /// The parallel PULs.
    pub puls: Vec<Pul>,
    /// One (relaxed) policy per producer.
    pub policies: Vec<Policy>,
    /// A session with the PULs already submitted (resolution is `&self`, so
    /// one setup serves any number of measured `resolve` calls).
    pub executor: xmlpul::Executor,
}

/// Builds the session-overhead workload.
pub fn setup_session(n_puls: usize, ops_per_pul: usize, seed: u64) -> SessionWorkload {
    let doc_nodes = (n_puls * ops_per_pul * 4).max(20_000);
    let doc = xmark(&XmarkConfig { target_nodes: doc_nodes, seed });
    let labeling = Labeling::assign(&doc);
    let puls = generate_parallel_puls(
        &doc,
        &labeling,
        &ParallelConfig { n_puls, ops_per_pul, conflict_fraction: 0.2, ops_per_conflict: 4, seed },
    );
    let policies = vec![Policy::relaxed(); n_puls];
    let mut executor = xmlpul::Executor::new(doc)
        .policy(Policy::relaxed())
        .reduction(xmlpul::ReductionStrategy::Deterministic);
    for pul in &puls {
        executor.submit(pul.clone());
    }
    SessionWorkload { puls, policies, executor }
}

/// The raw pipeline, exactly mirroring what `Executor::resolve` does: reduce
/// every PUL, integrate, reconcile under the policies, reduce the survivor.
/// Returns the size of the final PUL.
pub fn run_raw_pipeline(w: &SessionWorkload) -> usize {
    use pul_core::ReductionKind;
    let reduced: Vec<Pul> =
        w.puls.iter().map(|p| pul_core::reduce_with(p, ReductionKind::Deterministic)).collect();
    let integration = integrate(&reduced);
    let reconciled = reconcile_integration(&reduced, &integration, &w.policies)
        .expect("relaxed policies always reconcile");
    pul_core::reduce_with(&reconciled, ReductionKind::Deterministic).len()
}

/// The same work through the session façade. Returns the size of the resolved
/// PUL.
pub fn run_executor_resolve(w: &SessionWorkload) -> usize {
    w.executor.resolve().expect("relaxed policies always reconcile").pul().len()
}

// ---------------------------------------------------------------------------
// Shard scaling — resolve/commit throughput vs shard count
// ---------------------------------------------------------------------------

/// Workload for the shard-scaling suite: an XMark document and parallel
/// producer PULs (with a moderate injected-conflict rate), submitted
/// identically to sharded sessions of growing shard counts.
pub struct ShardScalingWorkload {
    /// The document to shard.
    pub doc: Document,
    /// The parallel producer PULs.
    pub puls: Vec<Pul>,
}

/// Builds the shard-scaling workload.
pub fn setup_shard_scaling(
    doc_nodes: usize,
    n_puls: usize,
    ops_per_pul: usize,
    seed: u64,
) -> ShardScalingWorkload {
    let doc = xmark(&XmarkConfig { target_nodes: doc_nodes, seed });
    let labeling = Labeling::assign(&doc);
    let puls = generate_parallel_puls(
        &doc,
        &labeling,
        &ParallelConfig { n_puls, ops_per_pul, conflict_fraction: 0.2, ops_per_conflict: 4, seed },
    );
    ShardScalingWorkload { doc, puls }
}

/// Opens a sharded session over the workload document and submits every
/// producer PUL (resolution is `&self`, so one session serves any number of
/// measured `resolve` calls; commits run on clones).
pub fn setup_sharded_session(w: &ShardScalingWorkload, n_shards: usize) -> xmlpul::ShardedExecutor {
    let mut session = xmlpul::ShardedExecutor::new(w.doc.clone(), n_shards)
        .expect("the workload document has a root")
        .policy(Policy::relaxed());
    for pul in &w.puls {
        session.submit(pul.clone());
    }
    session
}

/// One measured sharded resolve: per-producer reduction, interval split, and
/// per-shard integrate + reconcile + reduce. Returns the resolved op count.
pub fn run_sharded_resolve(session: &xmlpul::ShardedExecutor) -> usize {
    session.resolve().expect("relaxed policies always reconcile").resolved_ops()
}

/// One measured sharded commit (two-phase journal protocol across all
/// shards). Returns the number of applied operations.
pub fn run_sharded_commit(session: &mut xmlpul::ShardedExecutor) -> usize {
    session.commit().expect("the generated workload commits").applied_ops
}

/// One measured laned commit: busy shards apply on parallel lanes under
/// striped identifier fences. Returns the number of applied operations.
pub fn run_laned_commit(session: &mut xmlpul::ShardedExecutor) -> usize {
    session.commit_lanes().expect("the generated workload commits").applied_ops
}

// ---------------------------------------------------------------------------
// Ingest throughput — committed submissions/sec vs batch size × backend
// ---------------------------------------------------------------------------

/// Workload for the ingest-throughput suite: an XMark document and many
/// **independent** single-operation producer PULs, each renaming its own
/// XMark unit subtree, so the ingestion queue's coalescer can legally merge
/// any number of them into one resolution. Minimal per-submission work is the
/// point: it is the regime where the per-round fixed costs (resolution
/// bookkeeping, journal scope, labeling patch, version fence, queue
/// handoffs) dominate, i.e. where batching pays.
pub struct IngestWorkload {
    /// The document the sessions open on.
    pub doc: Document,
    /// One small PUL per submission, pairwise independent.
    pub puls: Vec<Pul>,
}

/// Builds the ingest-throughput workload: `n_submissions` one-op rename PULs
/// (the "burst of tiny deltas" shape that motivates batched ingestion) on
/// distinct unit subtrees.
pub fn setup_ingest(doc_nodes: usize, n_submissions: usize, seed: u64) -> IngestWorkload {
    let doc = xmark(&XmarkConfig { target_nodes: doc_nodes, seed });
    let labeling = Labeling::assign(&doc);
    let mut units: Vec<NodeId> = ["item", "person", "open_auction", "closed_auction", "category"]
        .iter()
        .flat_map(|n| doc.find_elements(n))
        .collect();
    assert!(
        units.len() >= n_submissions,
        "document too small: {} units for {n_submissions} submissions",
        units.len()
    );
    units.truncate(n_submissions);
    let puls = units
        .iter()
        .enumerate()
        .map(|(i, &unit)| {
            Pul::from_ops(vec![UpdateOp::rename(unit, format!("unit{i}"))], &labeling)
        })
        .collect();
    IngestWorkload { doc, puls }
}

/// Outcome of one measured ingest run.
pub struct IngestRunReport {
    /// Wall-clock of the whole run (enqueue → close, all tickets settled).
    pub elapsed: Duration,
    /// Commits the backend performed (== resolution rounds).
    pub commits: u64,
    /// Submissions that committed successfully.
    pub committed: usize,
    /// Total operations across the committed submissions.
    pub total_ops: usize,
}

/// Drives every workload PUL through an [`xmlpul::IngestQueue`] over the
/// given backend with `flush_threshold = batch` (tick effectively disabled,
/// so the threshold alone shapes the rounds) and waits for every ticket.
pub fn run_ingest_queue<B: xmlpul::IngestBackend>(
    backend: B,
    puls: &[Pul],
    batch: usize,
) -> IngestRunReport {
    let total_ops = puls.iter().map(|p| p.len()).sum();
    let queue = xmlpul::IngestQueue::with_config(
        backend,
        xmlpul::IngestConfig {
            flush_threshold: batch,
            tick: Duration::from_secs(3600),
            ..xmlpul::IngestConfig::default()
        },
    );
    let start = Instant::now();
    let tickets: Vec<xmlpul::Ticket> =
        puls.iter().map(|p| queue.enqueue(p.clone()).expect("queue open")).collect();
    queue.flush();
    let committed = tickets.iter().filter(|t| t.wait().is_ok()).count();
    let elapsed = start.elapsed();
    let backend = queue.close().expect("ingest queue closed");
    IngestRunReport { elapsed, commits: backend.current_version(), committed, total_ops }
}

/// Baseline without the queue: one `submit → resolve → commit` round trip per
/// submission on a bare executor — what a queue-less server loop costs.
pub fn run_ingest_sequential_baseline(doc: &Document, puls: &[Pul]) -> IngestRunReport {
    let mut session = xmlpul::Executor::new(doc.clone());
    let total_ops = puls.iter().map(|p| p.len()).sum();
    let start = Instant::now();
    let mut committed = 0;
    for pul in puls {
        session.submit(pul.clone());
        if session.commit().is_ok() {
            committed += 1;
        }
    }
    let elapsed = start.elapsed();
    IngestRunReport { elapsed, commits: session.version(), committed, total_ops }
}

/// Per-submission resolve cost at a given batch size, measured directly on
/// a backend (no queue, no threads) the way the pipeline resolves coalesced
/// rounds: the whole workload is chunked into rounds of `batch` submissions,
/// each round merged into one submission (`mergeUpdates` of independent PULs
/// — what the coalescer does) and resolved once, and the total cost is
/// divided by the number of submissions. Chunking over the *whole* workload
/// keeps the number fair — every submission is resolved exactly once at every
/// batch size. This isolates the resolution amortization the acceptance gate
/// tracks from queueing and commit costs; the per-resolve fixed work being
/// amortized is most visible on the sharded backend, whose resolve pays
/// routing, interval splitting and per-shard reasoning on every call.
pub fn measure_resolve_per_submission<B: xmlpul::IngestBackend>(
    session: &mut B,
    puls: &[Pul],
    batch: usize,
) -> Duration {
    let policy = session.default_policy();
    let strategy = session.reduction_strategy();
    let reps: u32 = 7;
    let mut total = Duration::ZERO;
    for chunk in puls.chunks(batch.max(1)) {
        let merged = Pul::merge_all(chunk).expect("independent PULs form one union");
        // Pre-reduce outside the window, as the pipeline's drainer does: the
        // per-submission reduction is paid once per submission at any batch
        // size, so it is not part of the amortizable resolve cost.
        let reduced = strategy.reduce(&merged);
        let id = session.admit(merged, policy, Some(reduced));
        session.resolve_pending().expect("warm-up resolve");
        // min-of-reps: robust against preemption on a loaded/virtualized box
        let best = (0..reps)
            .map(|_| {
                let (r, d) = timed(|| session.resolve_pending().expect("independent PULs resolve"));
                drop(r);
                d
            })
            .min()
            .expect("at least one rep");
        total += best;
        session.discard(id);
    }
    total / puls.len() as u32
}

// ---------------------------------------------------------------------------
// Commit memory — peak allocation per commit vs document size
// ---------------------------------------------------------------------------

/// A counting global allocator used by the `commit_memory` suite: tracks the
/// live allocation level and its high-water mark so a measurement can report
/// the *peak bytes allocated above the starting level* during one operation.
/// Register it in a binary with `#[global_allocator]`.
///
/// Counting is **off by default** (one relaxed atomic load per allocation, so
/// the timing suites of the same binary stay uncontaminated) and is switched
/// on only for the duration of [`measure_peak`]. The balance is signed and
/// clamped at zero from below: frees of memory allocated *before* the window
/// neither crash the counter nor bank credit against later allocations, so a
/// clear-then-rebuild pattern that allocates O(document) after freeing
/// O(document) still registers an O(document) peak.
pub mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

    /// System allocator wrapper counting live bytes and their high-water mark
    /// while a measurement window is open.
    pub struct CountingAllocator;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static CURRENT: AtomicI64 = AtomicI64::new(0);
    static PEAK: AtomicI64 = AtomicI64::new(0);
    static GROSS: AtomicI64 = AtomicI64::new(0);

    fn on_alloc(size: usize) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        GROSS.fetch_add(size as i64, Ordering::Relaxed);
        let cur = CURRENT.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
        PEAK.fetch_max(cur, Ordering::Relaxed);
    }

    fn on_dealloc(size: usize) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        // Clamp the balance at zero: frees of pre-window memory must not bank
        // "credit" that would hide a later burst of fresh allocation (a
        // clear-then-rebuild O(document) pattern has to show up in PEAK).
        let prev = CURRENT.fetch_sub(size as i64, Ordering::Relaxed);
        if prev - (size as i64) < 0 {
            CURRENT.fetch_max(0, Ordering::Relaxed);
        }
    }

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let ptr = System.alloc(layout);
            if !ptr.is_null() {
                on_alloc(layout.size());
            }
            ptr
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let ptr = System.alloc_zeroed(layout);
            if !ptr.is_null() {
                on_alloc(layout.size());
            }
            ptr
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            on_dealloc(layout.size());
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let new_ptr = System.realloc(ptr, layout, new_size);
            if !new_ptr.is_null() {
                on_dealloc(layout.size());
                on_alloc(new_size);
            }
            new_ptr
        }
    }

    /// Allocation measurement of one window: the peak net balance above the
    /// entry level, and the gross bytes allocated.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AllocStats {
        /// High-water mark of the net in-window balance. Approximate when
        /// frees of pre-window memory interleave with in-window allocations
        /// (the zero-clamp can absorb live in-window bytes).
        pub peak_bytes: usize,
        /// Total bytes allocated during the window — monotone, so immune to
        /// both credit-banking and clamp artifacts. This is what the CI
        /// flatness gate asserts on: for a fixed-size PUL it must not grow
        /// with the document.
        pub gross_bytes: usize,
    }

    /// Runs `f` and returns its result plus the window's [`AllocStats`].
    /// Single-threaded measurements only — concurrent allocations would be
    /// attributed to `f`.
    pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, AllocStats) {
        CURRENT.store(0, Ordering::Relaxed);
        PEAK.store(0, Ordering::Relaxed);
        GROSS.store(0, Ordering::Relaxed);
        ENABLED.store(true, Ordering::Relaxed);
        let out = f();
        ENABLED.store(false, Ordering::Relaxed);
        let peak = PEAK.load(Ordering::Relaxed);
        let gross = GROSS.load(Ordering::Relaxed);
        (out, AllocStats { peak_bytes: peak.max(0) as usize, gross_bytes: gross.max(0) as usize })
    }
}

/// Workload for the commit-memory suite: a session on an XMark document. The
/// measured PUL touches a handful of leaf-level nodes (rename, value
/// replacement, a small subtree insertion, a leaf deletion) so that its
/// effect — and therefore the journal — has constant size while the document
/// grows 10× between rows.
pub struct CommitMemoryWorkload {
    /// The session under measurement.
    pub executor: xmlpul::Executor,
}

/// Builds the commit-memory workload.
pub fn setup_commit_memory(doc_nodes: usize, seed: u64) -> CommitMemoryWorkload {
    let doc = xmark(&XmarkConfig { target_nodes: doc_nodes, seed });
    CommitMemoryWorkload { executor: xmlpul::Executor::new(doc) }
}

/// Builds a small fixed-shape PUL over trailing leaves of the current session
/// document: one rename, one value replacement, one two-node insertion, one
/// leaf deletion. Constant effect size by construction, whatever the document
/// size.
fn fixed_small_pul(executor: &xmlpul::Executor) -> Pul {
    let doc = executor.document();
    // trailing leaf elements and text nodes: deterministic, disjoint targets
    let mut leaf_elements: Vec<NodeId> = Vec::new();
    let mut text_nodes: Vec<NodeId> = Vec::new();
    for id in doc.preorder_from_root().into_iter().rev() {
        match doc.kind(id) {
            Ok(xdm::NodeKind::Element)
                if doc.children(id).map(|c| c.is_empty()).unwrap_or(false) =>
            {
                leaf_elements.push(id)
            }
            Ok(xdm::NodeKind::Text) => text_nodes.push(id),
            _ => {}
        }
        if leaf_elements.len() >= 3 && !text_nodes.is_empty() {
            break;
        }
    }
    assert!(leaf_elements.len() >= 3 && !text_nodes.is_empty(), "document too small");
    let ops = vec![
        UpdateOp::rename(leaf_elements[0], "renamed"),
        UpdateOp::replace_value(text_nodes[0], "replaced"),
        UpdateOp::ins_last(leaf_elements[1], vec![Tree::element_with_text("note", "inserted")]),
        UpdateOp::delete(leaf_elements[2]),
    ];
    executor.pul_from_ops(ops)
}

/// One measured commit: a warm-up commit first (so amortised container growth
/// — the dense slabs doubling their capacity — does not land in the
/// measurement), then the allocation of `commit_resolution` alone (resolution
/// computed outside the measurement). Returns the window's [`AllocStats`]
/// (alloc_counter::AllocStats) and the number of journal entries recorded.
pub fn run_commit_memory(w: &mut CommitMemoryWorkload) -> (alloc_counter::AllocStats, usize) {
    let warm = fixed_small_pul(&w.executor);
    w.executor.submit(warm);
    let resolution = w.executor.resolve().expect("warm-up resolves");
    w.executor.commit_resolution(resolution).expect("warm-up commits");

    // the measured PUL targets the post-warm-up document
    let pul = fixed_small_pul(&w.executor);
    w.executor.submit(pul);
    let resolution = w.executor.resolve().expect("measured PUL resolves");
    let (report, stats) = alloc_counter::measure_peak(|| w.executor.commit_resolution(resolution));
    let report = report.expect("measured PUL commits");
    (stats, report.apply.journal.total())
}

/// Allocation of the historical whole-session snapshot (one document +
/// labeling clone) — the baseline the journal replaced, reported for contrast.
pub fn run_snapshot_clone_baseline(w: &CommitMemoryWorkload) -> alloc_counter::AllocStats {
    let (clone, stats) = alloc_counter::measure_peak(|| {
        (w.executor.document().clone(), w.executor.labeling().clone())
    });
    drop(clone);
    stats
}

// ---------------------------------------------------------------------------
// Durability — WAL overhead and recovery time
// ---------------------------------------------------------------------------

/// Workload for the durability suites: an XMark document and `n_commits`
/// pairwise-independent PULs, one per commit round, each renaming
/// `ops_per_commit` distinct unit subtrees. Independence keeps every round
/// committable in isolation, so the same workload drives a plain session, a
/// durable session under any sync policy, and a recovery replay identically.
pub struct DurabilityWorkload {
    /// The document the sessions open on.
    pub doc: Document,
    /// One PUL per commit round.
    pub puls: Vec<Pul>,
}

/// Builds the durability workload.
pub fn setup_durability(
    doc_nodes: usize,
    n_commits: usize,
    ops_per_commit: usize,
    seed: u64,
) -> DurabilityWorkload {
    let doc = xmark(&XmarkConfig { target_nodes: doc_nodes, seed });
    let labeling = Labeling::assign(&doc);
    let mut units: Vec<NodeId> = ["item", "person", "open_auction", "closed_auction", "category"]
        .iter()
        .flat_map(|n| doc.find_elements(n))
        .collect();
    let needed = n_commits * ops_per_commit;
    assert!(
        units.len() >= needed,
        "document too small: {} units for {n_commits}x{ops_per_commit} ops",
        units.len()
    );
    units.truncate(needed);
    let puls = units
        .chunks(ops_per_commit)
        .enumerate()
        .map(|(i, chunk)| {
            let ops = chunk
                .iter()
                .enumerate()
                .map(|(j, &unit)| UpdateOp::rename(unit, format!("u{i}_{j}")))
                .collect();
            Pul::from_ops(ops, &labeling)
        })
        .collect();
    DurabilityWorkload { doc, puls }
}

/// Durable options that never checkpoint on their own, so the WAL-overhead
/// numbers measure append + sync cost only and the recovery workload controls
/// its own tail length.
fn no_checkpoint_opts(sync: xmlpul::SyncPolicy) -> xmlpul::DurableOptions {
    xmlpul::DurableOptions {
        sync,
        checkpoint_wal_bytes: u64::MAX,
        checkpoint_dead_ratio: f64::INFINITY,
        ..xmlpul::DurableOptions::default()
    }
}

/// Baseline: the same commit loop on a bare executor — what the WAL overhead
/// is measured against.
pub fn run_commit_plain(w: &DurabilityWorkload) -> Duration {
    let mut session = xmlpul::Executor::new(w.doc.clone());
    let start = Instant::now();
    for pul in &w.puls {
        session.submit(pul.clone());
        session.commit().expect("independent workload commits");
    }
    start.elapsed()
}

/// Outcome of one durable commit run.
pub struct WalOverheadReport {
    /// Wall-clock of the commit loop (store setup excluded).
    pub elapsed: Duration,
    /// Bytes appended to the live WAL segment by the run.
    pub wal_bytes: u64,
}

/// The same commit loop through a [`xmlpul::Durable`] session under the given
/// sync policy: every commit appends one framed PUL record to the WAL before
/// its version fence advances. The store lives in `dir` (recreated per run;
/// checkpoint triggers disabled so appends alone are measured).
pub fn run_commit_durable(
    w: &DurabilityWorkload,
    sync: xmlpul::SyncPolicy,
    dir: &std::path::Path,
) -> WalOverheadReport {
    let _ = std::fs::remove_dir_all(dir);
    let mut session = xmlpul::Durable::create(
        dir,
        xmlpul::Executor::new(w.doc.clone()),
        no_checkpoint_opts(sync),
    )
    .expect("fresh bench store");
    let start = Instant::now();
    for pul in &w.puls {
        session.submit(pul.clone());
        session.commit().expect("independent workload commits");
    }
    let elapsed = start.elapsed();
    WalOverheadReport { elapsed, wal_bytes: session.wal_bytes() }
}

/// Prepares a store for the recovery suite: a base checkpoint of the workload
/// document plus a WAL tail of the first `tail_commits` workload rounds
/// (synced, so the tail is fully durable). Returns the final version and the
/// bytes of the live WAL segment.
pub fn setup_recovery_store(
    w: &DurabilityWorkload,
    dir: &std::path::Path,
    tail_commits: usize,
) -> (u64, u64) {
    let _ = std::fs::remove_dir_all(dir);
    let mut session = xmlpul::Durable::create(
        dir,
        xmlpul::Executor::new(w.doc.clone()),
        no_checkpoint_opts(xmlpul::SyncPolicy::PerCommit),
    )
    .expect("fresh bench store");
    let mut version = 0;
    for pul in w.puls.iter().take(tail_commits) {
        session.submit(pul.clone());
        version = session.commit().expect("independent workload commits").version;
    }
    (version, session.wal_bytes())
}

/// One measured recovery: open the store, restoring the last checkpoint and
/// replaying the WAL tail through the journaled apply path. Returns the
/// recovered version and the wall-clock of `open`.
pub fn run_recovery(dir: &std::path::Path) -> (u64, Duration) {
    let (session, d) = timed(|| {
        xmlpul::Durable::<xmlpul::Executor>::open(
            dir,
            no_checkpoint_opts(xmlpul::SyncPolicy::PerCommit),
        )
        .expect("store recovers")
    });
    (session.version(), d)
}

// ---------------------------------------------------------------------------
// Slab compaction and pooled commit memory
// ---------------------------------------------------------------------------

/// Churns a session with generated PULs until `rounds` of them commit (the
/// session is its own oracle: rejected rounds are simply skipped), stranding
/// dead slots for the compaction suite to reclaim.
pub fn setup_churned_session(doc_nodes: usize, rounds: usize, seed: u64) -> xmlpul::Executor {
    let doc = xmark(&XmarkConfig { target_nodes: doc_nodes, seed });
    let mut session = xmlpul::Executor::new(doc);
    let mut committed = 0usize;
    let mut attempts = 0u64;
    while committed < rounds && attempts < rounds as u64 * 4 {
        attempts += 1;
        let pul = generate_pul(
            session.document(),
            session.labeling(),
            &PulGenConfig {
                n_ops: 4,
                reducible_ratio: 0.2,
                content_id_base: session.document().next_id() + 50_000 * (attempts + 1),
                seed: seed.wrapping_mul(613).wrapping_add(attempts),
            },
        );
        session.submit(pul);
        if session.commit().is_ok() {
            committed += 1;
        }
    }
    assert!(committed > 0, "churn committed nothing in {attempts} attempts");
    session
}

/// Outcome of one pool-reuse run: the steady-state commit loop's allocation
/// bill under a given pool retention.
pub struct PoolReuseReport {
    /// Commits inside the measurement window.
    pub commits: usize,
    /// Gross bytes allocated across the window (monotone — reuse shows up
    /// directly as a smaller bill).
    pub gross_bytes: usize,
    /// Reuse counters of the store's WAL frame buffer pool.
    pub frame_pool: xmlpul::pul_store::PoolStats,
}

/// Runs the durability workload's commit loop through [`xmlpul::Durable`]
/// with the given pool retention (`0` disables pooling entirely), measuring
/// gross bytes allocated over the steady-state portion: the first `warmup`
/// commits fill the pools and amortise container growth outside the window.
pub fn run_pool_reuse(
    w: &DurabilityWorkload,
    pool_idle: usize,
    warmup: usize,
    dir: &std::path::Path,
) -> PoolReuseReport {
    assert!(warmup < w.puls.len(), "warmup consumes the whole workload");
    let _ = std::fs::remove_dir_all(dir);
    let opts = xmlpul::DurableOptions { pool_idle, ..no_checkpoint_opts(xmlpul::SyncPolicy::Off) };
    let mut session = xmlpul::Durable::create(dir, xmlpul::Executor::new(w.doc.clone()), opts)
        .expect("fresh bench store");
    for pul in w.puls.iter().take(warmup) {
        session.submit(pul.clone());
        session.commit().expect("independent workload commits");
    }
    let measured = &w.puls[warmup..];
    let (_, stats) = alloc_counter::measure_peak(|| {
        for pul in measured {
            session.submit(pul.clone());
            session.commit().expect("independent workload commits");
        }
    });
    PoolReuseReport {
        commits: measured.len(),
        gross_bytes: stats.gross_bytes,
        frame_pool: session.frame_pool_stats(),
    }
}

// ---------------------------------------------------------------------------
// Snapshot reads — cold reassembly vs cached MVCC re-reads
// ---------------------------------------------------------------------------

/// Workload for the snapshot-read suite: a sharded session churned through
/// `rounds` committed PULs, so a cold snapshot pays a real cross-shard
/// reassembly over a mutated document.
pub struct SnapshotReadWorkload {
    /// The churned session under measurement.
    pub session: xmlpul::ShardedExecutor,
}

/// Builds the snapshot-read workload. PULs are generated against the
/// session's own snapshot (document + labeling), so the generator always
/// sees the current state; rejected rounds are simply skipped.
pub fn setup_snapshot_read(doc_nodes: usize, rounds: usize, seed: u64) -> SnapshotReadWorkload {
    let doc = xmark(&XmarkConfig { target_nodes: doc_nodes, seed });
    let mut session = xmlpul::ShardedExecutor::new(doc, 4)
        .expect("the workload document has a root")
        .policy(Policy::relaxed());
    let mut committed = 0usize;
    let mut attempts = 0u64;
    while committed < rounds && attempts < rounds as u64 * 4 {
        attempts += 1;
        let snap = session.snapshot();
        let pul = generate_pul(
            snap.document(),
            snap.labeling(),
            &PulGenConfig {
                n_ops: 4,
                reducible_ratio: 0.2,
                content_id_base: snap.document().next_id() + 50_000 * (attempts + 1),
                seed: seed.wrapping_mul(613).wrapping_add(attempts),
            },
        );
        session.submit(pul);
        if session.commit().is_ok() {
            committed += 1;
        }
    }
    assert!(committed > 0, "churn committed nothing in {attempts} attempts");
    SnapshotReadWorkload { session }
}

/// One cold snapshot: a fresh clone starts with an empty snapshot cache, so
/// the call pays the full cross-shard reassembly and labeling rebuild.
pub fn run_snapshot_cold(w: &SnapshotReadWorkload) -> Duration {
    let cold = w.session.clone();
    let (snap, d) = timed(|| cold.snapshot());
    assert_eq!(snap.version(), w.session.version(), "cold snapshot pins the current version");
    d
}

/// `reps` cached snapshots at an unchanged version: every call after the
/// first must be served from the memo — a cache probe plus `Arc` clones, no
/// reassembly. Returns the per-call cost.
pub fn run_snapshot_cached(w: &SnapshotReadWorkload, reps: u32) -> Duration {
    w.session.snapshot(); // prime the cache
    let (_, d) = timed(|| {
        for _ in 0..reps {
            std::hint::black_box(w.session.snapshot());
        }
    });
    d / reps
}

/// Cold vs cached point-in-time reads on a durable store: `restore_at` pays
/// checkpoint restore + WAL replay on every call, `read_at` memoizes the
/// pinned snapshot per version. Returns `(restore_at, read_at-cached)`
/// per-call costs.
pub fn run_read_at_cold_vs_cached(
    w: &DurabilityWorkload,
    dir: &std::path::Path,
    reps: u32,
) -> (Duration, Duration) {
    let _ = std::fs::remove_dir_all(dir);
    let mut session = xmlpul::Durable::create(
        dir,
        xmlpul::Executor::new(w.doc.clone()),
        no_checkpoint_opts(xmlpul::SyncPolicy::Off),
    )
    .expect("fresh bench store");
    for pul in &w.puls {
        session.submit(pul.clone());
        session.commit().expect("independent workload commits");
    }
    let mid = session.version() / 2;
    let (_, cold) = timed(|| session.restore_at(mid).expect("retained version"));
    session.read_at(mid).expect("retained version"); // prime the cache
    let (_, cached) = timed(|| {
        for _ in 0..reps {
            std::hint::black_box(session.read_at(mid).expect("retained version"));
        }
    });
    (cold, cached / reps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_workload_both_paths_agree() {
        let w = setup_eval(2_000, 50, 1);
        let mem = eval_in_memory(&w);
        let streamed = eval_streaming(&w);
        let a = parse_document_identified(&mem).unwrap();
        let b = parse_document_identified(&streamed).unwrap();
        assert_eq!(pul::obtainable::canonical_string(&a), pul::obtainable::canonical_string(&b));
    }

    #[test]
    fn reduction_workload_reduces_by_about_ten_percent() {
        let w = setup_reduction(500, 2);
        let reduced = run_reduction_end_to_end(&w);
        assert!(reduced < 500, "reduced size {reduced}");
        assert_eq!(run_reduction_only(&w), reduced);
        assert_eq!(run_reduction_naive(&w), reduced);
    }

    #[test]
    fn aggregation_workload_runs_and_matches_sequential_size() {
        let w = setup_aggregation(3_000, 3, 60, 3);
        let agg_len = run_aggregation_end_to_end(&w);
        assert!(agg_len <= 180);
        assert_eq!(run_aggregation_only(&w), agg_len);
        let a = run_aggregate_then_evaluate(&w);
        let b = run_sequential_evaluation(&w);
        // same final document, hence (almost) the same serialized size; allow a
        // tiny difference due to identifier digits
        let diff = a.abs_diff(b) as f64 / a.max(b) as f64;
        assert!(diff < 0.01, "aggregate-then-evaluate {a} vs sequential {b}");
    }

    #[test]
    fn integration_workload_has_conflicts_and_reconciles() {
        let w = setup_integration(4, 80, 4);
        let integration = run_integration(&w);
        assert!(!integration.conflicts.is_empty());
        let reconciled = run_integration_and_resolution(&w);
        assert!(reconciled > 0);
    }

    #[test]
    fn reduction_engines_agree() {
        let w = setup_reduction(400, 7);
        let worklist = run_reduction_only(&w);
        assert_eq!(worklist, run_reduction_sweep_baseline(&w));
        assert_eq!(worklist, run_reduction_naive(&w));
    }

    #[test]
    fn session_overhead_paths_agree() {
        let w = setup_session(4, 60, 11);
        assert_eq!(run_raw_pipeline(&w), run_executor_resolve(&w));
    }

    #[test]
    fn shard_scaling_workload_resolves_and_commits_at_every_count() {
        let w = setup_shard_scaling(4_000, 4, 60, 11);
        let mut previous: Option<String> = None;
        for n in [1usize, 2, 4] {
            let session = setup_sharded_session(&w, n);
            let resolved = run_sharded_resolve(&session);
            assert!(resolved > 0);
            let mut committing = session.clone();
            let applied = run_sharded_commit(&mut committing);
            assert_eq!(applied, resolved);
            committing.assert_consistent();
            // every shard count commits the same document (fresh identifiers
            // differ across layouts, so compare the serialization)
            let xml = committing.serialize();
            if let Some(prev) = &previous {
                assert_eq!(&xml, prev, "{n}-shard commit diverged");
            }
            previous = Some(xml);
        }
    }

    #[test]
    fn snapshot_read_workload_memoizes_re_reads() {
        let w = setup_snapshot_read(2_000, 4, 5);
        let _ = run_snapshot_cold(&w);
        let _ = run_snapshot_cached(&w, 4);
        let a = w.session.snapshot();
        let b = w.session.snapshot();
        assert!(
            std::sync::Arc::ptr_eq(&a.shared_document(), &b.shared_document()),
            "re-reads at an unchanged version must share one arena"
        );
    }

    #[test]
    fn laned_commit_matches_serial_commit_content() {
        let w = setup_shard_scaling(4_000, 4, 60, 11);
        let session = setup_sharded_session(&w, 4);
        let mut serial = session.clone();
        let mut laned = session.clone();
        assert_eq!(run_sharded_commit(&mut serial), run_laned_commit(&mut laned));
        assert_eq!(serial.serialize(), laned.serialize(), "laned commit diverged");
        laned.assert_consistent();
    }

    #[test]
    fn durability_workload_commits_logs_and_recovers() {
        let w = setup_durability(4_000, 6, 2, 13);
        assert_eq!(w.puls.len(), 6);
        run_commit_plain(&w);
        let dir = std::env::temp_dir()
            .join(format!("xmlpul_bench_test_durability_{}", std::process::id()));
        let report = run_commit_durable(&w, xmlpul::SyncPolicy::Off, &dir);
        assert!(report.wal_bytes > 0, "commits must reach the WAL");
        let (version, wal_bytes) = setup_recovery_store(&w, &dir, 4);
        assert_eq!(version, 4);
        assert!(wal_bytes > 0, "the tail must live in the WAL");
        let (recovered, _) = run_recovery(&dir);
        assert_eq!(recovered, 4, "recovery lands on the last durable version");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_memory_workload_commits_and_journals() {
        let mut w = setup_commit_memory(2_000, 5);
        let (_peak, journal_entries) = run_commit_memory(&mut w);
        // peak is only meaningful under the counting allocator (registered in
        // the experiments binary), but the journal must always be exercised
        assert!(journal_entries > 0, "the commit must go through the journal");
        assert_eq!(w.executor.version(), 2, "warm-up + measured commit");
        w.executor.assert_consistent();
    }
}
