//! # pul-bench — benchmark harness for the EDBT 2011 evaluation (§4.3)
//!
//! One module per figure of the paper. Each module exposes
//!
//! * a `setup_*` function building the workload (documents, PULs, serialized
//!   forms) exactly as described in the paper, scaled by a size parameter, and
//! * one or more `run_*` functions performing the measured work.
//!
//! The Criterion benches under `benches/` and the `experiments` binary (which
//! prints the paper-style tables recorded in `EXPERIMENTS.md`) are both thin
//! wrappers over these functions, so the measured code paths are identical.

use std::time::{Duration, Instant};

use pul::apply::{apply_pul, ApplyOptions};
use pul::stream::{apply_streaming, apply_streaming_with};
use pul::xmlio::{pul_from_xml, pul_to_xml, puls_from_xml, puls_to_xml};
use pul::Pul;
use pul_core::{aggregate, integrate, reconcile_integration, Integration, Policy};
use workload::pulgen::{
    generate_parallel_puls, generate_pul, generate_sequential_puls, ParallelConfig, PulGenConfig,
    SequentialConfig,
};
use workload::xmark::{generate as xmark, XmarkConfig};
use xdm::parser::parse_document_identified;
use xdm::writer::{write_document, write_document_identified};
use xdm::Document;
use xlabel::Labeling;

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration in milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

// ---------------------------------------------------------------------------
// Figure 6.a — streaming vs in-memory PUL evaluation
// ---------------------------------------------------------------------------

/// Workload for Fig. 6.a: an XMark document (identified serialization) and a
/// PUL of `n_ops` operations on it.
pub struct EvalWorkload {
    /// The document itself.
    pub doc: Document,
    /// Its identified serialization (the executor's on-disk form).
    pub xml: String,
    /// The PUL to evaluate.
    pub pul: Pul,
    /// First identifier free for nodes created during evaluation.
    pub first_new_id: u64,
}

/// Builds the Fig. 6.a workload.
pub fn setup_eval(doc_nodes: usize, n_ops: usize, seed: u64) -> EvalWorkload {
    let doc = xmark(&XmarkConfig { target_nodes: doc_nodes, seed });
    let labeling = Labeling::assign(&doc);
    let pul = generate_pul(
        &doc,
        &labeling,
        &PulGenConfig {
            n_ops,
            reducible_ratio: 0.0,
            content_id_base: doc.next_id() + 1_000_000,
            seed,
        },
    );
    let xml = write_document_identified(&doc);
    let first_new_id = doc.next_id() + 10_000_000;
    EvalWorkload { doc, xml, pul, first_new_id }
}

/// In-memory evaluation: parse the identified document, apply the PUL on the
/// DOM, serialize the result back (the "extended Qizx" baseline of §4.3).
pub fn eval_in_memory(w: &EvalWorkload) -> String {
    let mut doc = parse_document_identified(&w.xml).expect("well-formed identified document");
    apply_pul(&mut doc, &w.pul, &ApplyOptions { validate: false, preserve_content_ids: false })
        .expect("applicable PUL");
    write_document_identified(&doc)
}

/// Streaming evaluation: transform the SAX event stream on the fly (§4.3).
pub fn eval_streaming(w: &EvalWorkload) -> String {
    apply_streaming(&w.xml, &w.pul, w.first_new_id).expect("applicable PUL")
}

// ---------------------------------------------------------------------------
// Figure 6.b — PUL reduction
// ---------------------------------------------------------------------------

/// Workload for Fig. 6.b: a serialized PUL with ~1 successful rule application
/// every 10 operations, on a fixed XMark document.
pub struct ReductionWorkload {
    /// The serialized PUL (reduction is measured end-to-end, including
    /// deserialization and re-serialization, as in the paper).
    pub pul_xml: String,
    /// The in-memory PUL (for measuring the reduction step alone).
    pub pul: Pul,
}

/// Builds the Fig. 6.b workload.
pub fn setup_reduction(n_ops: usize, seed: u64) -> ReductionWorkload {
    let doc = xmark(&XmarkConfig { target_nodes: (n_ops * 4).max(2_000), seed });
    let labeling = Labeling::assign(&doc);
    let pul = generate_pul(
        &doc,
        &labeling,
        &PulGenConfig {
            n_ops,
            reducible_ratio: 0.1,
            content_id_base: doc.next_id() + 1_000_000,
            seed,
        },
    );
    ReductionWorkload { pul_xml: pul_to_xml(&pul), pul }
}

/// Deserialize + reduce + re-serialize (the measurement of Fig. 6.b).
/// Returns the size of the reduced PUL.
pub fn run_reduction_end_to_end(w: &ReductionWorkload) -> usize {
    let pul = pul_from_xml(&w.pul_xml).expect("valid PUL document");
    let reduced = pul_core::reduce_with(&pul, pul_core::ReductionKind::Plain);
    let _xml = pul_to_xml(&reduced);
    reduced.len()
}

/// Reduction alone, on the already-deserialized PUL (the incremental worklist
/// engine).
pub fn run_reduction_only(w: &ReductionWorkload) -> usize {
    pul_core::reduce_with(&w.pul, pul_core::ReductionKind::Plain).len()
}

/// Pre-worklist sweep engine (candidate set rebuilt after every pass) — the
/// "before" of the worklist ablation.
pub fn run_reduction_sweep_baseline(w: &ReductionWorkload) -> usize {
    pul_core::reduce_sweep_baseline(&w.pul, pul_core::ReductionKind::Plain).len()
}

/// Naive O(k²) reduction baseline (ablation).
pub fn run_reduction_naive(w: &ReductionWorkload) -> usize {
    pul_core::reduce::reduce_naive(&w.pul).len()
}

// ---------------------------------------------------------------------------
// Figures 6.c / 6.d — PUL aggregation
// ---------------------------------------------------------------------------

/// Workload for Fig. 6.c/6.d: an XMark document and a sequence of PULs, also
/// available in serialized form.
pub struct AggregationWorkload {
    /// The original document.
    pub doc: Document,
    /// Its identified serialization.
    pub doc_xml: String,
    /// The sequence of PULs.
    pub puls: Vec<Pul>,
    /// The serialized sequence.
    pub puls_xml: String,
    /// First identifier free for nodes created during evaluation.
    pub first_new_id: u64,
}

/// Builds the Fig. 6.c/6.d workload: `n_puls` PULs of `ops_per_pul` operations,
/// half of them on nodes inserted by previous PULs (the paper's setting).
pub fn setup_aggregation(
    doc_nodes: usize,
    n_puls: usize,
    ops_per_pul: usize,
    seed: u64,
) -> AggregationWorkload {
    let doc = xmark(&XmarkConfig { target_nodes: doc_nodes, seed });
    let puls = generate_sequential_puls(
        &doc,
        &SequentialConfig { n_puls, ops_per_pul, new_node_ratio: 0.5, seed },
    );
    let puls_xml = puls_to_xml(&puls);
    let doc_xml = write_document_identified(&doc);
    let first_new_id = doc.next_id() + 10_000_000;
    AggregationWorkload { doc, doc_xml, puls, puls_xml, first_new_id }
}

/// Deserialize + aggregate + re-serialize (the measurement of Fig. 6.c).
/// Returns the size of the aggregated PUL.
pub fn run_aggregation_end_to_end(w: &AggregationWorkload) -> usize {
    let puls = puls_from_xml(&w.puls_xml).expect("valid PUL list");
    let agg = aggregate(&puls).expect("aggregable sequence");
    let _xml = pul_to_xml(&agg);
    agg.len()
}

/// Aggregation alone, on already-deserialized PULs.
pub fn run_aggregation_only(w: &AggregationWorkload) -> usize {
    aggregate(&w.puls).expect("aggregable sequence").len()
}

/// Fig. 6.d, aggregated side: aggregate the list, then evaluate the single
/// resulting PUL in streaming over the document. Returns the output size.
pub fn run_aggregate_then_evaluate(w: &AggregationWorkload) -> usize {
    let agg = aggregate(&w.puls).expect("aggregable sequence");
    let out = apply_streaming_with(&w.doc_xml, &agg, w.first_new_id, true).expect("applicable PUL");
    out.len()
}

/// Fig. 6.d, sequential side: evaluate each PUL in streaming, one after the
/// other, re-reading the (updated) document each time. Returns the output size.
pub fn run_sequential_evaluation(w: &AggregationWorkload) -> usize {
    let mut xml = w.doc_xml.clone();
    let mut next_id = w.first_new_id;
    for pul in &w.puls {
        xml = apply_streaming_with(&xml, pul, next_id, true).expect("applicable PUL");
        next_id += 1_000_000;
    }
    xml.len()
}

// ---------------------------------------------------------------------------
// Figure 6.e — PUL integration and conflict resolution
// ---------------------------------------------------------------------------

/// Workload for Fig. 6.e: parallel PULs with injected conflicts.
pub struct IntegrationWorkload {
    /// The parallel PULs.
    pub puls: Vec<Pul>,
    /// One (relaxed) policy per producer.
    pub policies: Vec<Policy>,
}

/// Builds the Fig. 6.e workload: `n_puls` PULs of `ops_per_pul` operations,
/// half of the operations involved in conflicts of ~5 operations each.
pub fn setup_integration(n_puls: usize, ops_per_pul: usize, seed: u64) -> IntegrationWorkload {
    let doc_nodes = (n_puls * ops_per_pul * 4).max(20_000);
    let doc = xmark(&XmarkConfig { target_nodes: doc_nodes, seed });
    let labeling = Labeling::assign(&doc);
    let puls = generate_parallel_puls(
        &doc,
        &labeling,
        &ParallelConfig { n_puls, ops_per_pul, conflict_fraction: 0.5, ops_per_conflict: 5, seed },
    );
    let policies = vec![Policy::relaxed(); n_puls];
    IntegrationWorkload { puls, policies }
}

/// Integration (conflict detection) alone. Returns the number of conflicts.
pub fn run_integration(w: &IntegrationWorkload) -> Integration {
    integrate(&w.puls)
}

/// Integration followed by best-effort conflict resolution. Returns the size
/// of the reconciled PUL.
pub fn run_integration_and_resolution(w: &IntegrationWorkload) -> usize {
    let integration = integrate(&w.puls);
    let reconciled = reconcile_integration(&w.puls, &integration, &w.policies)
        .expect("relaxed policies always reconcile");
    reconciled.len()
}

/// Serialized size (bytes) of a document, used when reporting workloads.
pub fn document_size_bytes(doc: &Document) -> usize {
    write_document(doc).len()
}

// ---------------------------------------------------------------------------
// Session overhead — raw operator calls vs `Executor::resolve`
// ---------------------------------------------------------------------------

/// Workload for the session-overhead benchmark: the same parallel PULs fed
/// once through the raw reduce + integrate + reconcile + reduce pipeline and
/// once through an [`xmlpul::Executor`] session, to keep the façade zero-cost.
pub struct SessionWorkload {
    /// The parallel PULs.
    pub puls: Vec<Pul>,
    /// One (relaxed) policy per producer.
    pub policies: Vec<Policy>,
    /// A session with the PULs already submitted (resolution is `&self`, so
    /// one setup serves any number of measured `resolve` calls).
    pub executor: xmlpul::Executor,
}

/// Builds the session-overhead workload.
pub fn setup_session(n_puls: usize, ops_per_pul: usize, seed: u64) -> SessionWorkload {
    let doc_nodes = (n_puls * ops_per_pul * 4).max(20_000);
    let doc = xmark(&XmarkConfig { target_nodes: doc_nodes, seed });
    let labeling = Labeling::assign(&doc);
    let puls = generate_parallel_puls(
        &doc,
        &labeling,
        &ParallelConfig { n_puls, ops_per_pul, conflict_fraction: 0.2, ops_per_conflict: 4, seed },
    );
    let policies = vec![Policy::relaxed(); n_puls];
    let mut executor = xmlpul::Executor::new(doc)
        .policy(Policy::relaxed())
        .reduction(xmlpul::ReductionStrategy::Deterministic);
    for pul in &puls {
        executor.submit(pul.clone());
    }
    SessionWorkload { puls, policies, executor }
}

/// The raw pipeline, exactly mirroring what `Executor::resolve` does: reduce
/// every PUL, integrate, reconcile under the policies, reduce the survivor.
/// Returns the size of the final PUL.
pub fn run_raw_pipeline(w: &SessionWorkload) -> usize {
    use pul_core::ReductionKind;
    let reduced: Vec<Pul> =
        w.puls.iter().map(|p| pul_core::reduce_with(p, ReductionKind::Deterministic)).collect();
    let integration = integrate(&reduced);
    let reconciled = reconcile_integration(&reduced, &integration, &w.policies)
        .expect("relaxed policies always reconcile");
    pul_core::reduce_with(&reconciled, ReductionKind::Deterministic).len()
}

/// The same work through the session façade. Returns the size of the resolved
/// PUL.
pub fn run_executor_resolve(w: &SessionWorkload) -> usize {
    w.executor.resolve().expect("relaxed policies always reconcile").pul().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_workload_both_paths_agree() {
        let w = setup_eval(2_000, 50, 1);
        let mem = eval_in_memory(&w);
        let streamed = eval_streaming(&w);
        let a = parse_document_identified(&mem).unwrap();
        let b = parse_document_identified(&streamed).unwrap();
        assert_eq!(pul::obtainable::canonical_string(&a), pul::obtainable::canonical_string(&b));
    }

    #[test]
    fn reduction_workload_reduces_by_about_ten_percent() {
        let w = setup_reduction(500, 2);
        let reduced = run_reduction_end_to_end(&w);
        assert!(reduced < 500, "reduced size {reduced}");
        assert_eq!(run_reduction_only(&w), reduced);
        assert_eq!(run_reduction_naive(&w), reduced);
    }

    #[test]
    fn aggregation_workload_runs_and_matches_sequential_size() {
        let w = setup_aggregation(3_000, 3, 60, 3);
        let agg_len = run_aggregation_end_to_end(&w);
        assert!(agg_len <= 180);
        assert_eq!(run_aggregation_only(&w), agg_len);
        let a = run_aggregate_then_evaluate(&w);
        let b = run_sequential_evaluation(&w);
        // same final document, hence (almost) the same serialized size; allow a
        // tiny difference due to identifier digits
        let diff = a.abs_diff(b) as f64 / a.max(b) as f64;
        assert!(diff < 0.01, "aggregate-then-evaluate {a} vs sequential {b}");
    }

    #[test]
    fn integration_workload_has_conflicts_and_reconciles() {
        let w = setup_integration(4, 80, 4);
        let integration = run_integration(&w);
        assert!(!integration.conflicts.is_empty());
        let reconciled = run_integration_and_resolution(&w);
        assert!(reconciled > 0);
    }

    #[test]
    fn reduction_engines_agree() {
        let w = setup_reduction(400, 7);
        let worklist = run_reduction_only(&w);
        assert_eq!(worklist, run_reduction_sweep_baseline(&w));
        assert_eq!(worklist, run_reduction_naive(&w));
    }

    #[test]
    fn session_overhead_paths_agree() {
        let w = setup_session(4, 60, 11);
        assert_eq!(run_raw_pipeline(&w), run_executor_resolve(&w));
    }
}
