//! Regenerates the evaluation of §4.3: one table per figure of the paper.
//!
//! ```text
//! experiments [--fig 6a|6b|6c|6d|6e|session|shards|ingest|memory|wal|recovery|faults
//!                    |compaction|pool|snapshot|lanes|all]
//!             [--full|--quick] [--json [PATH]]
//! ```
//!
//! By default a scaled-down workload is used so that the whole run completes in
//! a couple of minutes on a laptop; `--full` uses larger sizes (closer to the
//! paper's operation counts — document sizes remain scaled, see DESIGN.md) and
//! `--quick` tiny ones (CI smoke). The tables printed here are the ones
//! recorded in `EXPERIMENTS.md`.
//!
//! `--json` additionally writes machine-readable results (defaulting to
//! `BENCH_fig6.json`): every suite that ran, plus — for fig 6.b — the
//! before/after numbers of the worklist reduction engine against the sweep
//! baseline it replaced, seeding the performance trajectory of the repo.

use std::env;
use std::fmt::Write as _;
use std::time::Duration;

use pul_bench::*;

/// The commit-memory suite measures peak bytes allocated per commit, so the
/// binary registers the counting allocator. Counting is enabled only inside
/// `alloc_counter::measure_peak` windows; the timing suites pay one relaxed
/// atomic load per allocation, keeping their numbers comparable with
/// system-allocator runs.
#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

/// Workload scale selected on the command line.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Quick,
    Default,
    Full,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Quick => "quick",
            Mode::Default => "default",
            Mode::Full => "full",
        }
    }
}

fn avg<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    let (mut out, mut total) = {
        let (o, d) = timed(&mut f);
        (o, d)
    };
    for _ in 1..reps {
        let (o, d) = timed(&mut f);
        out = o;
        total += d;
    }
    (out, total / reps as u32)
}

fn ms_f(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Accumulates one JSON array of row objects per suite (hand-rolled: the
/// workspace is offline and the shapes are flat).
#[derive(Default)]
struct JsonReport {
    suites: Vec<(String, Vec<String>)>,
}

impl JsonReport {
    fn render(&self, mode: Mode) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"mode\": \"{}\",", mode.name());
        out.push_str("  \"suites\": {\n");
        for (i, (name, rows)) in self.suites.iter().enumerate() {
            let _ = writeln!(out, "    \"{name}\": [");
            for (j, row) in rows.iter().enumerate() {
                let comma = if j + 1 < rows.len() { "," } else { "" };
                let _ = writeln!(out, "      {row}{comma}");
            }
            let comma = if i + 1 < self.suites.len() { "," } else { "" };
            let _ = writeln!(out, "    ]{comma}");
        }
        out.push_str("  }\n}\n");
        out
    }
}

fn fig6a(mode: Mode) -> Vec<String> {
    println!("\n=== Figure 6.a — streaming vs in-memory PUL evaluation ===");
    println!(
        "{:>12} {:>12} {:>14} {:>14} {:>9}",
        "doc nodes", "doc bytes", "in-memory ms", "streaming ms", "speedup"
    );
    let (sizes, n_ops): (&[usize], usize) = match mode {
        Mode::Full => (&[20_000, 50_000, 100_000, 200_000, 400_000], 1_000),
        Mode::Default => (&[10_000, 20_000, 50_000, 100_000], 1_000),
        Mode::Quick => (&[5_000, 10_000], 100),
    };
    let mut rows = Vec::new();
    for &nodes in sizes {
        let w = setup_eval(nodes, n_ops, 42);
        let reps = if nodes >= 200_000 { 2 } else { 3 };
        let (_, mem) = avg(reps, || eval_in_memory(&w));
        let (_, streamed) = avg(reps, || eval_streaming(&w));
        println!(
            "{:>12} {:>12} {:>14} {:>14} {:>8.2}x",
            w.doc.node_count(),
            w.xml.len(),
            ms(mem),
            ms(streamed),
            mem.as_secs_f64() / streamed.as_secs_f64()
        );
        rows.push(format!(
            "{{\"doc_nodes\": {}, \"pul_ops\": {}, \"in_memory_ms\": {:.3}, \"streaming_ms\": {:.3}}}",
            w.doc.node_count(),
            n_ops,
            ms_f(mem),
            ms_f(streamed)
        ));
    }
    rows
}

fn fig6b(mode: Mode) -> Vec<String> {
    println!("\n=== Figure 6.b — PUL reduction (worklist engine vs baselines) ===");
    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>12} {:>9} {:>12}",
        "ops", "end-to-end ms", "worklist ms", "sweep ms", "reduced ops", "speedup", "naive ms"
    );
    let sizes: &[usize] = match mode {
        Mode::Full => &[512, 5_000, 10_000, 25_000, 50_000, 100_000],
        Mode::Default => &[128, 512, 2_048, 8_192, 20_000],
        Mode::Quick => &[128, 512],
    };
    let mut rows = Vec::new();
    for &n in sizes {
        let w = setup_reduction(n, 42);
        let reps = if n <= 2_048 { 30 } else { 3 };
        // warm-up: the sub-millisecond sizes are dominated by cache state
        run_reduction_only(&w);
        run_reduction_sweep_baseline(&w);
        let (reduced, end_to_end) = avg(reps, || run_reduction_end_to_end(&w));
        let (_, only) = avg(reps, || run_reduction_only(&w));
        let (_, sweep) = avg(reps, || run_reduction_sweep_baseline(&w));
        // the naive baseline is quadratic: only run it on the small sizes
        let naive = if n <= 5_000 {
            let (_, d) = timed(|| run_reduction_naive(&w));
            Some(d)
        } else {
            None
        };
        let speedup = sweep.as_secs_f64() / only.as_secs_f64();
        println!(
            "{:>10} {:>14} {:>14} {:>12} {:>12} {:>8.2}x {:>12}",
            n,
            ms(end_to_end),
            ms(only),
            ms(sweep),
            reduced,
            speedup,
            naive.map(ms).unwrap_or_else(|| "-".into())
        );
        rows.push(format!(
            "{{\"ops\": {}, \"end_to_end_ms\": {:.3}, \"worklist_ms\": {:.3}, \
             \"sweep_baseline_ms\": {:.3}, \"naive_ms\": {}, \"reduced_ops\": {}, \
             \"speedup_worklist_vs_sweep\": {:.2}}}",
            n,
            ms_f(end_to_end),
            ms_f(only),
            ms_f(sweep),
            naive.map(|d| format!("{:.3}", ms_f(d))).unwrap_or_else(|| "null".into()),
            reduced,
            speedup
        ));
    }
    rows
}

fn fig6c(mode: Mode) -> Vec<String> {
    println!("\n=== Figure 6.c — PUL aggregation (50% of ops on new nodes) ===");
    println!(
        "{:>8} {:>10} {:>16} {:>18} {:>15}",
        "puls", "total ops", "end-to-end ms", "aggregate-only ms", "aggregated ops"
    );
    let counts: &[usize] = if mode == Mode::Quick { &[1, 3] } else { &[1, 3, 5, 10, 15] };
    let (doc_nodes, ops_per_pul) = match mode {
        Mode::Full => (20_000, 1_000),
        Mode::Default => (20_000, 500),
        Mode::Quick => (5_000, 100),
    };
    let mut rows = Vec::new();
    for &n in counts {
        let w = setup_aggregation(doc_nodes, n, ops_per_pul, 42);
        let (agg_len, end_to_end) = avg(2, || run_aggregation_end_to_end(&w));
        let (_, only) = avg(2, || run_aggregation_only(&w));
        println!(
            "{:>8} {:>10} {:>16} {:>18} {:>15}",
            n,
            n * ops_per_pul,
            ms(end_to_end),
            ms(only),
            agg_len
        );
        rows.push(format!(
            "{{\"puls\": {}, \"total_ops\": {}, \"end_to_end_ms\": {:.3}, \
             \"aggregate_only_ms\": {:.3}, \"aggregated_ops\": {}}}",
            n,
            n * ops_per_pul,
            ms_f(end_to_end),
            ms_f(only),
            agg_len
        ));
    }
    rows
}

fn fig6d(mode: Mode) -> Vec<String> {
    println!("\n=== Figure 6.d — aggregation + single evaluation vs sequential evaluation ===");
    println!(
        "{:>8} {:>20} {:>20} {:>9}",
        "puls", "aggregate+eval ms", "sequential eval ms", "speedup"
    );
    let counts: &[usize] = if mode == Mode::Quick { &[2, 4] } else { &[2, 4, 6, 8, 10] };
    let (doc_nodes, ops_per_pul) = match mode {
        Mode::Full => (60_000, 1_000),
        Mode::Default => (30_000, 300),
        Mode::Quick => (8_000, 80),
    };
    let mut rows = Vec::new();
    for &n in counts {
        let w = setup_aggregation(doc_nodes, n, ops_per_pul, 42);
        let (_, agg) = avg(2, || run_aggregate_then_evaluate(&w));
        let (_, seq) = avg(2, || run_sequential_evaluation(&w));
        println!(
            "{:>8} {:>20} {:>20} {:>8.2}x",
            n,
            ms(agg),
            ms(seq),
            seq.as_secs_f64() / agg.as_secs_f64()
        );
        rows.push(format!(
            "{{\"puls\": {}, \"aggregate_eval_ms\": {:.3}, \"sequential_eval_ms\": {:.3}}}",
            n,
            ms_f(agg),
            ms_f(seq)
        ));
    }
    rows
}

fn fig6e(mode: Mode) -> Vec<String> {
    println!(
        "\n=== Figure 6.e — integration of 10 PULs (50% conflicting ops, ~5 ops/conflict) ==="
    );
    println!(
        "{:>14} {:>12} {:>16} {:>20} {:>16}",
        "ops per PUL", "conflicts", "integration ms", "int.+resolution ms", "reconciled ops"
    );
    let sizes: &[usize] = match mode {
        Mode::Full => &[4_000, 8_000, 20_000, 40_000, 80_000],
        Mode::Default => &[400, 800, 2_000, 4_000],
        Mode::Quick => &[100, 200],
    };
    let mut rows = Vec::new();
    for &n in sizes {
        let w = setup_integration(10, n, 42);
        let (integration, d_int) = timed(|| run_integration(&w));
        let (reconciled, d_rec) = timed(|| run_integration_and_resolution(&w));
        println!(
            "{:>14} {:>12} {:>16} {:>20} {:>16}",
            n,
            integration.conflicts.len(),
            ms(d_int),
            ms(d_rec),
            reconciled
        );
        rows.push(format!(
            "{{\"ops_per_pul\": {}, \"conflicts\": {}, \"integration_ms\": {:.3}, \
             \"integration_resolution_ms\": {:.3}, \"reconciled_ops\": {}}}",
            n,
            integration.conflicts.len(),
            ms_f(d_int),
            ms_f(d_rec),
            reconciled
        ));
    }
    rows
}

fn session_overhead(mode: Mode) -> Vec<String> {
    println!("\n=== Session overhead — raw operator calls vs Executor::resolve ===");
    println!(
        "{:>8} {:>12} {:>16} {:>20} {:>10}",
        "puls", "ops per PUL", "raw pipeline ms", "executor resolve ms", "overhead"
    );
    let shapes: &[(usize, usize)] = match mode {
        Mode::Full => &[(4, 500), (8, 1_000), (10, 2_000)],
        Mode::Default => &[(4, 200), (8, 500), (10, 1_000)],
        Mode::Quick => &[(3, 60)],
    };
    let mut rows = Vec::new();
    for &(n_puls, ops_per_pul) in shapes {
        let w = setup_session(n_puls, ops_per_pul, 42);
        let (raw_len, raw) = avg(3, || run_raw_pipeline(&w));
        let (exe_len, exe) = avg(3, || run_executor_resolve(&w));
        assert_eq!(raw_len, exe_len, "façade must resolve to the same PUL");
        let ratio = exe.as_secs_f64() / raw.as_secs_f64();
        println!(
            "{:>8} {:>12} {:>16} {:>20} {:>9.2}x",
            n_puls,
            ops_per_pul,
            ms(raw),
            ms(exe),
            ratio
        );
        rows.push(format!(
            "{{\"puls\": {n_puls}, \"ops_per_pul\": {ops_per_pul}, \"raw_pipeline_ms\": {:.3}, \
             \"executor_resolve_ms\": {:.3}, \"overhead_ratio\": {ratio:.3}}}",
            ms_f(raw),
            ms_f(exe)
        ));
    }
    rows
}

fn shard_scaling(mode: Mode) -> Vec<String> {
    println!("\n=== Shard scaling — resolve/commit throughput vs shard count ===");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>12} {:>10}",
        "shards", "resolve ms", "commit ms", "resolved ops", "conflicts", "speedup"
    );
    let (doc_nodes, n_puls, ops_per_pul) = match mode {
        Mode::Full => (60_000, 8, 1_000),
        Mode::Default => (20_000, 8, 400),
        Mode::Quick => (6_000, 4, 60),
    };
    let w = setup_shard_scaling(doc_nodes, n_puls, ops_per_pul, 42);
    let mut rows = Vec::new();
    let mut base_resolve: Option<f64> = None;
    for n in [1usize, 2, 4, 8] {
        let session = setup_sharded_session(&w, n);
        let conflicts = session.resolve().expect("relaxed policies reconcile").conflicts().len();
        let (resolved, d_resolve) = avg(3, || run_sharded_resolve(&session));
        // commits consume the submissions: measure on fresh clones, clone
        // outside the timed window
        let mut commit_total = Duration::ZERO;
        let commit_reps = 2;
        let mut applied = 0;
        for _ in 0..commit_reps {
            let mut committing = session.clone();
            let (a, d) = timed(|| run_sharded_commit(&mut committing));
            applied = a;
            commit_total += d;
        }
        let d_commit = commit_total / commit_reps;
        let resolve_ms = ms_f(d_resolve);
        let speedup = base_resolve.map(|b| b / resolve_ms).unwrap_or(1.0);
        if base_resolve.is_none() {
            base_resolve = Some(resolve_ms);
        }
        println!(
            "{:>8} {:>12} {:>12} {:>14} {:>12} {:>9.2}x",
            n,
            ms(d_resolve),
            ms(d_commit),
            resolved,
            conflicts,
            speedup
        );
        rows.push(format!(
            "{{\"shards\": {n}, \"resolve_ms\": {:.3}, \"commit_ms\": {:.3}, \
             \"resolved_ops\": {resolved}, \"applied_ops\": {applied}, \"conflicts\": {conflicts}}}",
            resolve_ms,
            ms_f(d_commit)
        ));
    }
    rows
}

fn ingest_throughput(mode: Mode) -> Vec<String> {
    println!("\n=== Ingest throughput — committed submissions/sec vs batch size × backend ===");
    println!(
        "{:>9} {:>7} {:>9} {:>13} {:>13} {:>15} {:>14}",
        "backend", "batch", "commits", "wall ms", "subs/sec", "us/submission", "resolve us/sub"
    );
    let (doc_nodes, n_submissions) = match mode {
        Mode::Full => (120_000, 4_096),
        Mode::Default => (40_000, 2_048),
        Mode::Quick => (6_000, 64),
    };
    let w = setup_ingest(doc_nodes, n_submissions, 42);
    let mut rows = Vec::new();

    // Queue-less baseline: one resolve+commit round trip per submission.
    let base = run_ingest_sequential_baseline(&w.doc, &w.puls);
    assert_eq!(base.committed, w.puls.len(), "independent workload commits fully");
    let base_us = base.elapsed.as_secs_f64() * 1e6 / base.committed as f64;
    println!(
        "{:>9} {:>7} {:>9} {:>13.2} {:>13.0} {:>15.1} {:>14}",
        "none",
        "-",
        base.commits,
        ms_f(base.elapsed),
        base.committed as f64 / base.elapsed.as_secs_f64(),
        base_us,
        "-"
    );
    rows.push(format!(
        "{{\"backend\": \"sequential_baseline\", \"batch\": null, \"commits\": {}, \
         \"wall_ms\": {:.3}, \"submissions_per_sec\": {:.1}, \"us_per_submission\": {:.2}, \
         \"resolve_us_per_submission\": null}}",
        base.commits,
        ms_f(base.elapsed),
        base.committed as f64 / base.elapsed.as_secs_f64(),
        base_us
    ));

    // Per-submission resolve cost of a coalesced round per backend × batch
    // size, measured directly on a bare backend — the acceptance-gate metric.
    let batches = [1usize, 4, 16, 64];

    for backend_name in ["executor", "sharded4"] {
        let resolve_us_by_batch: Vec<f64> = batches
            .iter()
            .map(|&b| match backend_name {
                "executor" => {
                    let mut s = xmlpul::Executor::new(w.doc.clone());
                    measure_resolve_per_submission(&mut s, &w.puls, b).as_secs_f64() * 1e6
                }
                _ => {
                    let mut s = xmlpul::ShardedExecutor::new(w.doc.clone(), 4).expect("rooted doc");
                    measure_resolve_per_submission(&mut s, &w.puls, b).as_secs_f64() * 1e6
                }
            })
            .collect();
        for (bi, &batch) in batches.iter().enumerate() {
            // best-of-3: whole-run wall time is scheduling-sensitive on a
            // loaded single-core box
            let report = (0..3)
                .map(|_| match backend_name {
                    "executor" => {
                        run_ingest_queue(xmlpul::Executor::new(w.doc.clone()), &w.puls, batch)
                    }
                    _ => run_ingest_queue(
                        xmlpul::ShardedExecutor::new(w.doc.clone(), 4).expect("rooted doc"),
                        &w.puls,
                        batch,
                    ),
                })
                .min_by_key(|r| r.elapsed)
                .expect("three runs");
            assert_eq!(report.committed, w.puls.len(), "independent workload commits fully");
            let resolve_us = resolve_us_by_batch[bi];
            let us_per_sub = report.elapsed.as_secs_f64() * 1e6 / report.committed as f64;
            println!(
                "{:>9} {:>7} {:>9} {:>13.2} {:>13.0} {:>15.1} {:>14.1}",
                backend_name,
                batch,
                report.commits,
                ms_f(report.elapsed),
                report.committed as f64 / report.elapsed.as_secs_f64(),
                us_per_sub,
                resolve_us
            );
            rows.push(format!(
                "{{\"backend\": \"{backend_name}\", \"batch\": {batch}, \"commits\": {}, \
                 \"wall_ms\": {:.3}, \"submissions_per_sec\": {:.1}, \
                 \"us_per_submission\": {:.2}, \"resolve_us_per_submission\": {:.2}}}",
                report.commits,
                ms_f(report.elapsed),
                report.committed as f64 / report.elapsed.as_secs_f64(),
                us_per_sub,
                resolve_us
            ));
        }
    }
    rows
}

fn commit_memory(mode: Mode) -> Vec<String> {
    println!("\n=== Commit memory — bytes allocated per commit vs document size ===");
    println!(
        "{:>12} {:>15} {:>16} {:>18} {:>16}",
        "doc nodes", "commit peak B", "commit gross B", "snapshot clone B", "journal entries"
    );
    let sizes: &[usize] = match mode {
        Mode::Full => &[10_000, 100_000, 1_000_000],
        Mode::Default => &[1_000, 10_000, 100_000],
        Mode::Quick => &[1_000, 10_000],
    };
    let mut rows = Vec::new();
    let mut gross = Vec::new();
    for &nodes in sizes {
        let mut w = setup_commit_memory(nodes, 42);
        let clone_stats = run_snapshot_clone_baseline(&w);
        let (stats, journal_entries) = run_commit_memory(&mut w);
        println!(
            "{:>12} {:>15} {:>16} {:>18} {:>16}",
            w.executor.document().node_count(),
            stats.peak_bytes,
            stats.gross_bytes,
            clone_stats.gross_bytes,
            journal_entries
        );
        rows.push(format!(
            "{{\"doc_nodes\": {}, \"commit_peak_bytes\": {}, \"commit_gross_bytes\": {}, \
             \"snapshot_clone_bytes\": {}, \"journal_entries\": {journal_entries}}}",
            w.executor.document().node_count(),
            stats.peak_bytes,
            stats.gross_bytes,
            clone_stats.gross_bytes
        ));
        gross.push(stats.gross_bytes);
    }
    // The acceptance gate of the journaled-commit refactor: for a fixed-size
    // PUL, per-commit allocation must stay flat (within noise) while the
    // document grows 10× per row — the whole-session clone it replaced grew
    // linearly. The gate asserts on *gross* in-window allocation, which is
    // monotone and therefore immune to net-balance artifacts (credit-banking
    // or clamp under-counts). Enforced here so the CI bench smoke job fails
    // on regression.
    let (min, max) = (gross.iter().min().copied().unwrap(), gross.iter().max().copied().unwrap());
    assert!(
        max <= min * 4 + 64 * 1024,
        "commit allocation grows with document size: min {min} B, max {max} B (gross)"
    );
    println!("flatness check passed: min {min} B, max {max} B gross across {}x sizes", sizes.len());
    rows
}

fn wal_overhead(mode: Mode) -> Vec<String> {
    println!("\n=== WAL overhead — durable vs plain commit cost by sync policy ===");
    println!(
        "{:>12} {:>9} {:>12} {:>12} {:>10} {:>12} {:>9}",
        "sync", "commits", "wall ms", "us/commit", "overhead", "wal bytes", "B/commit"
    );
    let (doc_nodes, n_commits, ops_per_commit) = match mode {
        Mode::Full => (60_000, 512, 4),
        Mode::Default => (20_000, 200, 4),
        Mode::Quick => (6_000, 32, 2),
    };
    let w = setup_durability(doc_nodes, n_commits, ops_per_commit, 42);
    let dir = std::env::temp_dir().join(format!("xmlpul_bench_wal_{}", std::process::id()));
    let mut rows = Vec::new();

    // best-of-3: the loops are short and scheduling-sensitive
    let plain = (0..3).map(|_| run_commit_plain(&w)).min().expect("three runs");
    let plain_us = plain.as_secs_f64() * 1e6 / n_commits as f64;
    println!(
        "{:>12} {:>9} {:>12.2} {:>12.1} {:>10} {:>12} {:>9}",
        "plain",
        n_commits,
        ms_f(plain),
        plain_us,
        "-",
        "-",
        "-"
    );
    rows.push(format!(
        "{{\"sync\": \"plain\", \"commits\": {n_commits}, \"ops_per_commit\": {ops_per_commit}, \
         \"wall_ms\": {:.3}, \"us_per_commit\": {:.2}, \"overhead_ratio\": null, \
         \"wal_bytes\": null, \"wal_bytes_per_commit\": null}}",
        ms_f(plain),
        plain_us
    ));

    let policies: &[(&str, xmlpul::SyncPolicy)] = &[
        ("off", xmlpul::SyncPolicy::Off),
        ("interval16", xmlpul::SyncPolicy::Interval(16)),
        ("per-commit", xmlpul::SyncPolicy::PerCommit),
    ];
    for &(name, sync) in policies {
        let report = (0..3)
            .map(|_| run_commit_durable(&w, sync, &dir))
            .min_by_key(|r| r.elapsed)
            .expect("three runs");
        let us = report.elapsed.as_secs_f64() * 1e6 / n_commits as f64;
        let overhead = report.elapsed.as_secs_f64() / plain.as_secs_f64();
        let per_commit = report.wal_bytes / n_commits as u64;
        println!(
            "{:>12} {:>9} {:>12.2} {:>12.1} {:>9.2}x {:>12} {:>9}",
            name,
            n_commits,
            ms_f(report.elapsed),
            us,
            overhead,
            report.wal_bytes,
            per_commit
        );
        rows.push(format!(
            "{{\"sync\": \"{name}\", \"commits\": {n_commits}, \
             \"ops_per_commit\": {ops_per_commit}, \"wall_ms\": {:.3}, \
             \"us_per_commit\": {:.2}, \"overhead_ratio\": {overhead:.3}, \
             \"wal_bytes\": {}, \"wal_bytes_per_commit\": {per_commit}}}",
            ms_f(report.elapsed),
            us,
            report.wal_bytes
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
    rows
}

fn recovery_time(mode: Mode) -> Vec<String> {
    println!("\n=== Recovery time — Durable::open vs WAL tail length ===");
    println!(
        "{:>13} {:>12} {:>12} {:>12} {:>14}",
        "tail commits", "wal bytes", "open ms", "us/record", "recovered ver"
    );
    let (doc_nodes, ops_per_commit, tails): (usize, usize, &[usize]) = match mode {
        Mode::Full => (60_000, 4, &[0, 64, 256, 512]),
        Mode::Default => (20_000, 4, &[0, 32, 128, 200]),
        Mode::Quick => (6_000, 2, &[0, 16]),
    };
    let max_tail = *tails.last().expect("at least one tail length");
    let w = setup_durability(doc_nodes, max_tail.max(1), ops_per_commit, 42);
    let dir = std::env::temp_dir().join(format!("xmlpul_bench_recovery_{}", std::process::id()));
    let mut rows = Vec::new();
    for &tail in tails {
        // a tail of 0 recovers from the checkpoint image alone — the floor
        // every longer tail's replay cost sits on top of
        let (expect, wal_bytes) = setup_recovery_store(&w, &dir, tail);
        let reps = if mode == Mode::Quick { 2 } else { 3 };
        let ((version, _), open) = avg(reps, || run_recovery(&dir));
        assert_eq!(version, expect, "recovery must land on the last durable version");
        let us_per_record = if tail > 0 {
            format!("{:.1}", open.as_secs_f64() * 1e6 / tail as f64)
        } else {
            "-".into()
        };
        println!(
            "{:>13} {:>12} {:>12} {:>12} {:>14}",
            tail,
            wal_bytes,
            ms(open),
            us_per_record,
            version
        );
        rows.push(format!(
            "{{\"tail_commits\": {tail}, \"ops_per_commit\": {ops_per_commit}, \
             \"wal_bytes\": {wal_bytes}, \"open_ms\": {:.3}, \"us_per_record\": {}, \
             \"recovered_version\": {version}}}",
            ms_f(open),
            if tail > 0 {
                format!("{:.2}", open.as_secs_f64() * 1e6 / tail as f64)
            } else {
                "null".into()
            }
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
    rows
}

fn faults_overhead(mode: Mode) -> Vec<String> {
    println!("\n=== Failpoint overhead — Faults::check cost by handle state ===");
    println!("{:>12} {:>12} {:>12} {:>12}", "handle", "checks", "wall ms", "ns/check");
    let calls: u64 = match mode {
        Mode::Full => 50_000_000,
        Mode::Default => 10_000_000,
        Mode::Quick => 1_000_000,
    };
    // The three states a failpoint site can see in production and under test:
    // the default disabled handle (every production path), an armed plan whose
    // specs name *other* sites (the cost chaos tests impose on untouched
    // sites), and an armed spec on the checked site that never triggers (the
    // full site-match + trigger-evaluation path).
    let disabled = xmlpul::Faults::default();
    let armed_elsewhere = xmlpul::FaultPlan::new(7)
        .fail(
            xmlpul::fault_site::CKPT_RENAME,
            xmlpul::Trigger::Nth(u64::MAX),
            xmlpul::FaultKind::Permanent,
        )
        .arm();
    let armed_on_site = xmlpul::FaultPlan::new(7)
        .fail(
            xmlpul::fault_site::WAL_APPEND,
            xmlpul::Trigger::Nth(u64::MAX),
            xmlpul::FaultKind::Permanent,
        )
        .arm();
    let variants: &[(&str, &xmlpul::Faults)] = &[
        ("disabled", &disabled),
        ("armed-idle", &armed_elsewhere),
        ("armed-on-site", &armed_on_site),
    ];
    let mut rows = Vec::new();
    let mut disabled_ns = 0.0f64;
    for &(name, faults) in variants {
        // best-of-3: the loop is short and scheduling-sensitive
        let elapsed = (0..3)
            .map(|_| {
                let (fired, d) = timed(|| {
                    let mut fired = 0u64;
                    for _ in 0..calls {
                        if std::hint::black_box(faults)
                            .check(xmlpul::fault_site::WAL_APPEND)
                            .is_some()
                        {
                            fired += 1;
                        }
                    }
                    fired
                });
                assert_eq!(fired, 0, "no variant ever fires");
                d
            })
            .min()
            .expect("three runs");
        let ns = elapsed.as_secs_f64() * 1e9 / calls as f64;
        if name == "disabled" {
            disabled_ns = ns;
        }
        println!("{:>12} {:>12} {:>12.2} {:>12.2}", name, calls, ms_f(elapsed), ns);
        rows.push(format!(
            "{{\"handle\": \"{name}\", \"checks\": {calls}, \"wall_ms\": {:.3}, \
             \"ns_per_check\": {ns:.3}}}",
            ms_f(elapsed)
        ));
    }
    // "Free when disabled" is a contract, not a trend: a disabled check is a
    // branch on a None and must stay in low single-digit nanoseconds.
    assert!(
        disabled_ns < 5.0,
        "disabled failpoint check costs {disabled_ns:.2} ns — the disabled path regressed"
    );
    println!("disabled-handle check: {disabled_ns:.2} ns — the failpoint layer is free when off");
    rows
}

fn telemetry_overhead(mode: Mode) -> Vec<String> {
    println!("\n=== Telemetry overhead — probe cost by handle state ===");
    println!("{:>16} {:>12} {:>12} {:>12}", "probe", "calls", "wall ms", "ns/call");
    let calls: u64 = match mode {
        Mode::Full => 50_000_000,
        Mode::Default => 10_000_000,
        Mode::Quick => 1_000_000,
    };
    // The two states every instrumented path can see: the default disabled
    // handle (all production paths that never arm telemetry — a branch on a
    // None) and an armed registry (one relaxed atomic RMW per probe). The
    // event probe additionally proves the lazy-detail contract: a disabled
    // handle never builds the detail string.
    let disabled = xmlpul::Telemetry::disabled();
    let armed = xmlpul::Telemetry::enabled();
    let mut rows = Vec::new();
    let mut disabled_ns = 0.0f64;
    macro_rules! probe {
        ($name:literal, $body:expr) => {{
            // best-of-3: the loop is short and scheduling-sensitive
            let elapsed = (0..3)
                .map(|_| {
                    let ((), d) = timed(|| {
                        for _ in 0..calls {
                            $body;
                        }
                    });
                    d
                })
                .min()
                .expect("three runs");
            let ns = elapsed.as_secs_f64() * 1e9 / calls as f64;
            if $name == "disabled-count" {
                disabled_ns = ns;
            }
            println!("{:>16} {:>12} {:>12.2} {:>12.2}", $name, calls, ms_f(elapsed), ns);
            rows.push(format!(
                "{{\"probe\": \"{}\", \"calls\": {calls}, \"wall_ms\": {:.3}, \
                 \"ns_per_call\": {ns:.3}}}",
                $name,
                ms_f(elapsed)
            ));
        }};
    }
    probe!("disabled-count", std::hint::black_box(&disabled).count(|m| &m.commits));
    probe!(
        "disabled-event",
        std::hint::black_box(&disabled).event(xmlpul::EventKind::Commit, 0, String::new)
    );
    probe!("armed-count", std::hint::black_box(&armed).count(|m| &m.commits));
    probe!("armed-observe", std::hint::black_box(&armed).observe(|m| &m.commit_ns, 42));
    assert_eq!(
        armed.snapshot().expect("armed registry").commits,
        3 * calls,
        "every armed count landed in the registry"
    );
    // "Free when disabled" is a contract, not a trend: a disabled probe is a
    // branch on a None and must stay under ten nanoseconds.
    assert!(
        disabled_ns < 10.0,
        "disabled telemetry probe costs {disabled_ns:.2} ns — the disabled path regressed"
    );
    println!("disabled-handle probe: {disabled_ns:.2} ns — the telemetry layer is free when off");
    rows
}

fn compaction(mode: Mode) -> Vec<String> {
    println!("\n=== Compaction — epoch renumbering cost vs document size ===");
    println!(
        "{:>10} {:>8} {:>10} {:>13} {:>12} {:>12} {:>10}",
        "doc nodes", "commits", "dead", "ratio before", "compact ms", "ratio after", "live"
    );
    let (sizes, rounds): (&[usize], usize) = match mode {
        Mode::Full => (&[20_000, 50_000, 100_000, 200_000], 64),
        Mode::Default => (&[10_000, 20_000, 50_000], 48),
        Mode::Quick => (&[5_000], 16),
    };
    let mut rows = Vec::new();
    for &nodes in sizes {
        let mut session = setup_churned_session(nodes, rounds, 42);
        let before = session.slab_stats().nodes;
        let ratio_before = session.reclaimable_dead_ratio();
        assert!(before.dead > 0, "churn must strand dead slots");
        let (report, d) = timed(|| session.compact().expect("compaction succeeds"));
        let after = session.slab_stats().nodes;
        let ratio_after = session.reclaimable_dead_ratio();
        // The whole point: renumbering returns the arena to density.
        assert_eq!(after.dead, 0, "compaction reclaims every dead slot");
        assert_eq!(after.spill, 0, "compaction empties the spill map");
        assert_eq!(report.epoch, 1, "first compaction opens epoch 1");
        println!(
            "{:>10} {:>8} {:>10} {:>13.4} {:>12.2} {:>12.4} {:>10}",
            nodes,
            rounds,
            before.dead,
            ratio_before,
            ms_f(d),
            ratio_after,
            after.live
        );
        rows.push(format!(
            "{{\"doc_nodes\": {nodes}, \"churn_commits\": {rounds}, \
             \"dead_before\": {}, \"dead_ratio_before\": {ratio_before:.5}, \
             \"compact_ms\": {:.3}, \"dead_ratio_after\": {ratio_after:.5}, \
             \"live_after\": {}}}",
            before.dead,
            ms_f(d),
            after.live
        ));
    }
    rows
}

fn pool_reuse(mode: Mode) -> Vec<String> {
    println!("\n=== Pool reuse — steady-state commit allocations, pooled vs unpooled ===");
    println!(
        "{:>10} {:>10} {:>9} {:>13} {:>13} {:>10} {:>10}",
        "variant", "pool idle", "commits", "gross bytes", "bytes/commit", "reused", "minted"
    );
    let (doc_nodes, n_commits): (usize, usize) = match mode {
        Mode::Full => (60_000, 256),
        Mode::Default => (20_000, 128),
        Mode::Quick => (10_000, 32),
    };
    let warmup = 8;
    let w = setup_durability(doc_nodes, n_commits + warmup, 4, 42);
    let dir = std::env::temp_dir().join(format!("xmlpul_bench_pool_{}", std::process::id()));
    let mut rows = Vec::new();
    let mut per_commit = Vec::new();
    for (name, idle) in [("unpooled", 0usize), ("pooled", 2usize)] {
        let report = run_pool_reuse(&w, idle, warmup, &dir);
        let bytes_per_commit = report.gross_bytes as f64 / report.commits as f64;
        per_commit.push(bytes_per_commit);
        println!(
            "{:>10} {:>10} {:>9} {:>13} {:>13.0} {:>10} {:>10}",
            name,
            idle,
            report.commits,
            report.gross_bytes,
            bytes_per_commit,
            report.frame_pool.reused,
            report.frame_pool.minted
        );
        rows.push(format!(
            "{{\"variant\": \"{name}\", \"pool_idle\": {idle}, \"commits\": {}, \
             \"gross_bytes\": {}, \"bytes_per_commit\": {bytes_per_commit:.1}, \
             \"frames_reused\": {}, \"frames_minted\": {}}}",
            report.commits, report.gross_bytes, report.frame_pool.reused, report.frame_pool.minted
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
    // Pooling is a contract, not a trend: the steady-state commit loop must
    // allocate strictly less with the pools on.
    assert!(
        per_commit[1] < per_commit[0],
        "pooled commits allocate {:.0} B each, unpooled {:.0} B — pooling regressed",
        per_commit[1],
        per_commit[0]
    );
    println!(
        "pooled {:.0} B/commit vs unpooled {:.0} B/commit — the pools hold on the hot path",
        per_commit[1], per_commit[0]
    );
    // Capacity-cap gate: a burst that returns an oversized backbone must not
    // pin it for the session's lifetime — the pool shrinks it back to the cap
    // on `put` and counts the trim.
    let cap = 1024usize;
    let mut pool: xmlpul::pul_store::Pool<Vec<u8>> =
        xmlpul::pul_store::Pool::with_capacity_cap(2, cap);
    let mut burst = pool.take_buf();
    burst.reserve(1 << 20);
    pool.put(burst);
    assert_eq!(pool.stats().trimmed, 1, "an oversized backbone must be trimmed on return");
    let retained = pool.take_buf();
    assert!(
        retained.capacity() <= cap,
        "the pool retained a {}-byte backbone past its {cap}-byte cap",
        retained.capacity()
    );
    println!("capacity-cap gate passed: a 1 MiB burst buffer shrinks back to the {cap} B cap");
    rows
}

fn snapshot_read(mode: Mode) -> Vec<String> {
    println!("\n=== Snapshot reads — cold reassembly vs cached MVCC re-reads ===");
    println!(
        "{:>10} {:>8} {:>10} {:>11} {:>10} {:>12} {:>12}",
        "doc nodes", "commits", "cold ms", "cached us", "speedup", "restore ms", "read_at us"
    );
    let (sizes, rounds): (&[usize], usize) = match mode {
        Mode::Full => (&[20_000, 50_000, 100_000], 48),
        Mode::Default => (&[10_000, 20_000, 50_000], 32),
        Mode::Quick => (&[5_000], 8),
    };
    let dir = std::env::temp_dir().join(format!("xmlpul_bench_snapshot_{}", std::process::id()));
    let mut rows = Vec::new();
    for &nodes in sizes {
        let w = setup_snapshot_read(nodes, rounds, 42);
        // best-of-3: the cold path clones the session outside the window but
        // the reassembly itself is scheduling-sensitive
        let cold = (0..3).map(|_| run_snapshot_cold(&w)).min().expect("three runs");
        let cached = run_snapshot_cached(&w, 64);
        let dw = setup_durability(nodes, rounds.min(16), 4, 42);
        let (restore, read_cached) = run_read_at_cold_vs_cached(&dw, &dir, 32);
        // The acceptance gate: a re-read at an unchanged version must not pay
        // the O(document) reassembly (or WAL replay) a cold read does.
        assert!(
            cached < cold,
            "cached snapshot ({cached:?}) is no cheaper than a cold reassembly ({cold:?})"
        );
        assert!(
            read_cached < restore,
            "cached read_at ({read_cached:?}) is no cheaper than restore_at ({restore:?})"
        );
        let speedup = cold.as_secs_f64() / cached.as_secs_f64().max(1e-9);
        println!(
            "{:>10} {:>8} {:>10.3} {:>11.2} {:>9.0}x {:>12.3} {:>12.2}",
            nodes,
            rounds,
            ms_f(cold),
            cached.as_secs_f64() * 1e6,
            speedup,
            ms_f(restore),
            read_cached.as_secs_f64() * 1e6
        );
        rows.push(format!(
            "{{\"doc_nodes\": {nodes}, \"churn_commits\": {rounds}, \
             \"cold_snapshot_ms\": {:.4}, \"cached_snapshot_us\": {:.3}, \
             \"cold_cached_speedup\": {speedup:.1}, \"restore_at_ms\": {:.4}, \
             \"read_at_cached_us\": {:.3}}}",
            ms_f(cold),
            cached.as_secs_f64() * 1e6,
            ms_f(restore),
            read_cached.as_secs_f64() * 1e6
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("snapshot gate passed: cached re-reads never pay the cold reassembly");
    rows
}

fn lane_scaling(mode: Mode) -> Vec<String> {
    println!("\n=== Lane scaling — serial vs laned sharded commit by shard count ===");
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>13}",
        "shards", "serial ms", "laned ms", "speedup", "applied ops"
    );
    let (doc_nodes, n_puls, ops_per_pul) = match mode {
        Mode::Full => (60_000, 8, 1_000),
        Mode::Default => (20_000, 8, 400),
        Mode::Quick => (6_000, 4, 60),
    };
    let w = setup_shard_scaling(doc_nodes, n_puls, ops_per_pul, 42);
    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8] {
        let session = setup_sharded_session(&w, n);
        // commits consume the submissions: measure on fresh clones, clone
        // outside the timed window
        let reps = 2u32;
        let mut serial_total = Duration::ZERO;
        let mut laned_total = Duration::ZERO;
        let mut applied = 0;
        let mut serial_xml = String::new();
        let mut laned_xml = String::new();
        for _ in 0..reps {
            let mut committing = session.clone();
            let (a, d) = timed(|| run_sharded_commit(&mut committing));
            serial_total += d;
            applied = a;
            serial_xml = committing.serialize();
            let mut committing = session.clone();
            let (b, d) = timed(|| run_laned_commit(&mut committing));
            laned_total += d;
            assert_eq!(a, b, "{n}-shard laned commit applied a different op count");
            laned_xml = committing.serialize();
        }
        // Correctness is a contract, not a trend: whatever the lane layout,
        // both paths must commit the same document.
        assert_eq!(serial_xml, laned_xml, "{n}-shard laned commit diverged from the serial path");
        let serial = serial_total / reps;
        let laned = laned_total / reps;
        let speedup = serial.as_secs_f64() / laned.as_secs_f64().max(1e-9);
        println!(
            "{:>8} {:>12.3} {:>12.3} {:>9.2}x {:>13}",
            n,
            ms_f(serial),
            ms_f(laned),
            speedup,
            applied
        );
        rows.push(format!(
            "{{\"shards\": {n}, \"serial_commit_ms\": {:.3}, \"laned_commit_ms\": {:.3}, \
             \"speedup\": {speedup:.3}, \"applied_ops\": {applied}}}",
            ms_f(serial),
            ms_f(laned)
        ));
    }
    rows
}

fn main() {
    let args: Vec<String> = env::args().collect();
    let mode = if args.iter().any(|a| a == "--full") {
        Mode::Full
    } else if args.iter().any(|a| a == "--quick") {
        Mode::Quick
    } else {
        Mode::Default
    };
    let json_path: Option<String> =
        args.iter().position(|a| a == "--json").map(|i| match args.get(i + 1) {
            Some(p) if !p.starts_with("--") => p.clone(),
            _ => "BENCH_fig6.json".to_string(),
        });
    let fig = args
        .iter()
        .position(|a| a == "--fig")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all");

    println!("Dynamic Reasoning on XML Updates — experiment harness (mode: {})", mode.name());
    let mut report = JsonReport::default();
    macro_rules! run_suite {
        ($name:literal, $sel:literal, $f:ident) => {
            if matches!(fig, $sel | "all") {
                let rows = $f(mode);
                report.suites.push(($name.to_string(), rows));
            }
        };
    }
    run_suite!("fig6a", "6a", fig6a);
    run_suite!("fig6b", "6b", fig6b);
    run_suite!("fig6c", "6c", fig6c);
    run_suite!("fig6d", "6d", fig6d);
    run_suite!("fig6e", "6e", fig6e);
    run_suite!("session_overhead", "session", session_overhead);
    run_suite!("shard_scaling", "shards", shard_scaling);
    run_suite!("ingest_throughput", "ingest", ingest_throughput);
    run_suite!("commit_memory", "memory", commit_memory);
    run_suite!("wal_overhead", "wal", wal_overhead);
    run_suite!("recovery_time", "recovery", recovery_time);
    run_suite!("faults_overhead", "faults", faults_overhead);
    run_suite!("telemetry_overhead", "telemetry", telemetry_overhead);
    run_suite!("compaction", "compaction", compaction);
    run_suite!("pool_reuse", "pool", pool_reuse);
    run_suite!("snapshot_read", "snapshot", snapshot_read);
    run_suite!("lane_scaling", "lanes", lane_scaling);

    if let Some(path) = json_path {
        let body = report.render(mode);
        std::fs::write(&path, body).expect("write JSON report");
        println!("\nwrote {path}");
    }
}
