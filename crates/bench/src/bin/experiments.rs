//! Regenerates the evaluation of §4.3: one table per figure of the paper.
//!
//! ```text
//! experiments [--fig 6a|6b|6c|6d|6e|all] [--full]
//! ```
//!
//! By default a scaled-down workload is used so that the whole run completes in
//! a couple of minutes on a laptop; `--full` uses larger sizes (closer to the
//! paper's operation counts — document sizes remain scaled, see DESIGN.md).
//! The tables printed here are the ones recorded in `EXPERIMENTS.md`.

use std::env;
use std::time::Duration;

use pul_bench::*;

fn avg<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    let (mut out, mut total) = {
        let (o, d) = timed(&mut f);
        (o, d)
    };
    for _ in 1..reps {
        let (o, d) = timed(&mut f);
        out = o;
        total += d;
    }
    (out, total / reps as u32)
}

fn fig6a(full: bool) {
    println!("\n=== Figure 6.a — streaming vs in-memory PUL evaluation (1000-op PUL) ===");
    println!(
        "{:>12} {:>12} {:>14} {:>14} {:>9}",
        "doc nodes", "doc bytes", "in-memory ms", "streaming ms", "speedup"
    );
    let sizes: &[usize] = if full {
        &[20_000, 50_000, 100_000, 200_000, 400_000]
    } else {
        &[10_000, 20_000, 50_000, 100_000]
    };
    for &nodes in sizes {
        let w = setup_eval(nodes, 1_000, 42);
        let reps = if nodes >= 200_000 { 2 } else { 3 };
        let (_, mem) = avg(reps, || eval_in_memory(&w));
        let (_, streamed) = avg(reps, || eval_streaming(&w));
        println!(
            "{:>12} {:>12} {:>14} {:>14} {:>8.2}x",
            w.doc.node_count(),
            w.xml.len(),
            ms(mem),
            ms(streamed),
            mem.as_secs_f64() / streamed.as_secs_f64()
        );
    }
}

fn fig6b(full: bool) {
    println!("\n=== Figure 6.b — PUL reduction (deserialize + reduce + serialize) ===");
    println!(
        "{:>10} {:>14} {:>15} {:>12} {:>12}",
        "ops", "end-to-end ms", "reduce-only ms", "reduced ops", "naive ms"
    );
    let sizes: &[usize] = if full {
        &[5_000, 10_000, 25_000, 50_000, 100_000]
    } else {
        &[5_000, 10_000, 20_000, 40_000]
    };
    for &n in sizes {
        let w = setup_reduction(n, 42);
        let (reduced, end_to_end) = avg(2, || run_reduction_end_to_end(&w));
        let (_, only) = avg(2, || run_reduction_only(&w));
        // the naive baseline is quadratic: only run it on the small sizes
        let naive = if n <= 5_000 {
            let (_, d) = timed(|| run_reduction_naive(&w));
            ms(d)
        } else {
            "-".to_string()
        };
        println!("{:>10} {:>14} {:>15} {:>12} {:>12}", n, ms(end_to_end), ms(only), reduced, naive);
    }
}

fn fig6c(full: bool) {
    println!("\n=== Figure 6.c — PUL aggregation (50% of ops on new nodes) ===");
    println!(
        "{:>8} {:>10} {:>16} {:>18} {:>15}",
        "puls", "total ops", "end-to-end ms", "aggregate-only ms", "aggregated ops"
    );
    let counts: &[usize] = &[1, 3, 5, 10, 15];
    let ops_per_pul = if full { 1_000 } else { 500 };
    for &n in counts {
        let w = setup_aggregation(20_000, n, ops_per_pul, 42);
        let (agg_len, end_to_end) = avg(2, || run_aggregation_end_to_end(&w));
        let (_, only) = avg(2, || run_aggregation_only(&w));
        println!(
            "{:>8} {:>10} {:>16} {:>18} {:>15}",
            n,
            n * ops_per_pul,
            ms(end_to_end),
            ms(only),
            agg_len
        );
    }
}

fn fig6d(full: bool) {
    println!("\n=== Figure 6.d — aggregation + single evaluation vs sequential evaluation ===");
    println!(
        "{:>8} {:>20} {:>20} {:>9}",
        "puls", "aggregate+eval ms", "sequential eval ms", "speedup"
    );
    let counts: &[usize] = &[2, 4, 6, 8, 10];
    let ops_per_pul = if full { 1_000 } else { 300 };
    let doc_nodes = if full { 60_000 } else { 30_000 };
    for &n in counts {
        let w = setup_aggregation(doc_nodes, n, ops_per_pul, 42);
        let (_, agg) = avg(2, || run_aggregate_then_evaluate(&w));
        let (_, seq) = avg(2, || run_sequential_evaluation(&w));
        println!(
            "{:>8} {:>20} {:>20} {:>8.2}x",
            n,
            ms(agg),
            ms(seq),
            seq.as_secs_f64() / agg.as_secs_f64()
        );
    }
}

fn fig6e(full: bool) {
    println!(
        "\n=== Figure 6.e — integration of 10 PULs (50% conflicting ops, ~5 ops/conflict) ==="
    );
    println!(
        "{:>14} {:>12} {:>16} {:>20} {:>16}",
        "ops per PUL", "conflicts", "integration ms", "int.+resolution ms", "reconciled ops"
    );
    let sizes: &[usize] =
        if full { &[4_000, 8_000, 20_000, 40_000, 80_000] } else { &[400, 800, 2_000, 4_000] };
    for &n in sizes {
        let w = setup_integration(10, n, 42);
        let (integration, d_int) = timed(|| run_integration(&w));
        let (reconciled, d_rec) = timed(|| run_integration_and_resolution(&w));
        println!(
            "{:>14} {:>12} {:>16} {:>20} {:>16}",
            n,
            integration.conflicts.len(),
            ms(d_int),
            ms(d_rec),
            reconciled
        );
    }
}

fn main() {
    let args: Vec<String> = env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let fig = args
        .iter()
        .position(|a| a == "--fig")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all");

    println!(
        "Dynamic Reasoning on XML Updates — experiment harness (mode: {})",
        if full { "full" } else { "quick" }
    );
    if matches!(fig, "6a" | "all") {
        fig6a(full);
    }
    if matches!(fig, "6b" | "all") {
        fig6b(full);
    }
    if matches!(fig, "6c" | "all") {
        fig6c(full);
    }
    if matches!(fig, "6d" | "all") {
        fig6d(full);
    }
    if matches!(fig, "6e" | "all") {
        fig6e(full);
    }
}
