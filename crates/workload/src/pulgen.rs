//! Synthetic PUL generators for the experiment families of §4.3.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use pul::apply::{apply_pul, ApplyOptions};
use pul::{Pul, UpdateOp};
use xdm::parser::parse_fragment_with_first_id;
use xdm::{Document, NodeId, NodeKind, Tree};
use xlabel::Labeling;

/// Configuration for a single synthetic PUL (reduction experiments, Fig. 6.b).
#[derive(Debug, Clone)]
pub struct PulGenConfig {
    /// Number of operations in the PUL.
    pub n_ops: usize,
    /// Approximate number of *successful rule applications* per operation. The
    /// paper uses "approximatively a successful rule application every 10
    /// operations", i.e. `0.1`.
    pub reducible_ratio: f64,
    /// First identifier used for the nodes of parameter trees (must not clash
    /// with document identifiers).
    pub content_id_base: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PulGenConfig {
    fn default() -> Self {
        PulGenConfig { n_ops: 1000, reducible_ratio: 0.1, content_id_base: 1 << 32, seed: 42 }
    }
}

/// Configuration for a sequence of PULs (aggregation experiments, Fig. 6.c/d).
#[derive(Debug, Clone)]
pub struct SequentialConfig {
    /// Number of PULs in the sequence.
    pub n_puls: usize,
    /// Operations per PUL.
    pub ops_per_pul: usize,
    /// Fraction of operations targeting nodes inserted by previous PULs.
    pub new_node_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SequentialConfig {
    fn default() -> Self {
        SequentialConfig { n_puls: 5, ops_per_pul: 1000, new_node_ratio: 0.5, seed: 42 }
    }
}

/// Configuration for parallel PULs with injected conflicts (integration
/// experiments, Fig. 6.e).
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Number of PULs.
    pub n_puls: usize,
    /// Operations per PUL.
    pub ops_per_pul: usize,
    /// Fraction of operations involved in a conflict.
    pub conflict_fraction: f64,
    /// Average number of operations per conflict.
    pub ops_per_conflict: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            n_puls: 10,
            ops_per_pul: 1000,
            conflict_fraction: 0.5,
            ops_per_conflict: 5,
            seed: 42,
        }
    }
}

/// Node pools extracted from a document.
struct Pools {
    /// Non-root elements.
    elements: Vec<NodeId>,
    /// Text nodes.
    texts: Vec<NodeId>,
    /// Attribute nodes.
    attributes: Vec<NodeId>,
}

impl Pools {
    fn of(doc: &Document) -> Self {
        let root = doc.root();
        let mut elements = Vec::new();
        let mut texts = Vec::new();
        let mut attributes = Vec::new();
        for id in doc.preorder_from_root() {
            match doc.kind(id).unwrap() {
                NodeKind::Element => {
                    if Some(id) != root {
                        elements.push(id);
                    }
                }
                NodeKind::Text => texts.push(id),
                NodeKind::Attribute => attributes.push(id),
            }
        }
        Pools { elements, texts, attributes }
    }

    fn of_subtrees(doc: &Document, roots: &[NodeId]) -> Self {
        let mut elements = Vec::new();
        let mut texts = Vec::new();
        let mut attributes = Vec::new();
        for &r in roots {
            for id in doc.preorder(r) {
                match doc.kind(id).unwrap() {
                    NodeKind::Element => elements.push(id),
                    NodeKind::Text => texts.push(id),
                    NodeKind::Attribute => attributes.push(id),
                }
            }
        }
        Pools { elements, texts, attributes }
    }
}

/// Stateful helper producing parameter trees with globally unique identifiers.
struct ContentGen {
    next_id: u64,
    counter: u64,
}

impl ContentGen {
    fn new(base: u64) -> Self {
        ContentGen { next_id: base, counter: 0 }
    }

    fn element_tree(&mut self) -> Tree {
        self.counter += 1;
        let t = parse_fragment_with_first_id(
            &format!("<new><label>generated {}</label></new>", self.counter),
            self.next_id,
        )
        .expect("valid fragment");
        self.next_id += t.size() as u64;
        t
    }

    fn attribute_tree(&mut self) -> Tree {
        self.counter += 1;
        let mut doc = Document::with_first_id(self.next_id);
        let a = doc.new_attribute(format!("gen{}", self.counter), format!("v{}", self.counter));
        doc.set_root(a).expect("root");
        self.next_id += 1;
        Tree::from_document(doc).expect("tree")
    }
}

/// Generates a single PUL on `doc` with operations equally distributed among
/// the operation types and a controllable rate of reducible pairs (Fig. 6.b).
pub fn generate_pul(doc: &Document, labeling: &Labeling, cfg: &PulGenConfig) -> Pul {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pools = Pools::of(doc);
    let mut content = ContentGen::new(cfg.content_id_base);
    let mut ops: Vec<UpdateOp> = Vec::with_capacity(cfg.n_ops);
    let mut used_replacement: std::collections::HashSet<(NodeId, pul::OpName)> =
        std::collections::HashSet::new();

    let n_pairs = ((cfg.n_ops as f64) * cfg.reducible_ratio).round() as usize;

    // 1. Reducible pairs: alternate among a few rule archetypes. Pair targets
    // are drawn without replacement (re-using a target across archetypes could
    // produce incompatible pairs, e.g. two renames with different names);
    // generation stops early if the document has fewer elements than pairs.
    let mut pair_pool: Vec<NodeId> = pools.elements.clone();
    for i in 0..n_pairs {
        if pair_pool.is_empty() {
            break;
        }
        let target = pair_pool.swap_remove(rng.gen_range(0..pair_pool.len()));
        match i % 4 {
            // O1: ren overridden by del on the same node
            0 => {
                ops.push(UpdateOp::rename(target, format!("renamed{i}")));
                ops.push(UpdateOp::delete(target));
                used_replacement.insert((target, pul::OpName::Rename));
            }
            // I5: two insertions of the same type on the same node
            1 => {
                ops.push(UpdateOp::ins_last(target, vec![content.element_tree()]));
                ops.push(UpdateOp::ins_last(target, vec![content.element_tree()]));
            }
            // I7: ins↓ folded into ins↘ on the same node
            2 => {
                ops.push(UpdateOp::ins_into(target, vec![content.element_tree()]));
                ops.push(UpdateOp::ins_last(target, vec![content.element_tree()]));
            }
            // IR9: ins→ folded into a repN of the same node
            _ => {
                ops.push(UpdateOp::replace_node(target, vec![content.element_tree()]));
                ops.push(UpdateOp::ins_after(target, vec![content.element_tree()]));
                used_replacement.insert((target, pul::OpName::ReplaceNode));
            }
        }
    }

    // 2. Fill with independent operations, cycling through the op types.
    // Op kinds whose node pool is empty (or exhausted by the compatibility
    // bookkeeping) are skipped; after a full barren sweep of every kind the
    // generator gives up and returns what it has (small documents cannot
    // carry arbitrarily large compatible PULs).
    let mut kind = 0usize;
    let mut barren = 0usize;
    while ops.len() < cfg.n_ops && barren < 8 {
        kind += 1;
        let op = match kind % 8 {
            0 => {
                if pools.texts.is_empty() {
                    barren += 1;
                    continue;
                }
                let t = pools.texts[rng.gen_range(0..pools.texts.len())];
                if !used_replacement.insert((t, pul::OpName::ReplaceValue)) {
                    barren += 1;
                    continue;
                }
                UpdateOp::replace_value(t, format!("value {kind}"))
            }
            1 => {
                if pools.elements.is_empty() {
                    barren += 1;
                    continue;
                }
                let t = pools.elements[rng.gen_range(0..pools.elements.len())];
                if !used_replacement.insert((t, pul::OpName::Rename)) {
                    barren += 1;
                    continue;
                }
                UpdateOp::rename(t, format!("name{kind}"))
            }
            2..=5 => {
                if pools.elements.is_empty() {
                    barren += 1;
                    continue;
                }
                let t = pools.elements[rng.gen_range(0..pools.elements.len())];
                match kind % 8 {
                    2 => UpdateOp::ins_last(t, vec![content.element_tree()]),
                    3 => UpdateOp::ins_after(t, vec![content.element_tree()]),
                    4 => UpdateOp::ins_before(t, vec![content.element_tree()]),
                    _ => UpdateOp::ins_attributes(t, vec![content.attribute_tree()]),
                }
            }
            6 => {
                if pools.attributes.is_empty() {
                    barren += 1;
                    continue;
                }
                let t = pools.attributes[rng.gen_range(0..pools.attributes.len())];
                if !used_replacement.insert((t, pul::OpName::ReplaceValue)) {
                    barren += 1;
                    continue;
                }
                UpdateOp::replace_value(t, format!("attr {kind}"))
            }
            _ => {
                if pools.texts.is_empty() {
                    barren += 1;
                    continue;
                }
                let t = pools.texts[rng.gen_range(0..pools.texts.len())];
                UpdateOp::delete(t)
            }
        };
        ops.push(op);
        barren = 0;
    }
    Pul::from_ops(ops, labeling)
}

/// Generates a sequence of PULs to be executed one after the other
/// (aggregation experiments, Fig. 6.c/d). The `k`-th PUL is generated against
/// the document obtained by applying the previous ones on a working copy, so a
/// configurable fraction of its operations targets nodes inserted by earlier
/// PULs — which is what exercises rule D6 of the aggregation algorithm.
pub fn generate_sequential_puls(doc: &Document, cfg: &SequentialConfig) -> Vec<Pul> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let labeling = Labeling::assign(doc);
    let mut working = doc.clone();
    let mut content = ContentGen::new(doc.next_id() + 1_000_000);
    let mut inserted_nodes: Vec<NodeId> = Vec::new();
    let mut puls = Vec::with_capacity(cfg.n_puls);

    for _ in 0..cfg.n_puls {
        let pools = Pools::of(&working);
        let mut ops: Vec<UpdateOp> = Vec::with_capacity(cfg.ops_per_pul);
        // At most one operation per (target, operation name) pair within a PUL:
        // this keeps every generated PUL deterministic (no same-type same-target
        // insertion groups whose relative order would be arbitrary), so that the
        // aggregated PUL and the sequential application coincide exactly.
        let mut used_replacement: std::collections::HashSet<(NodeId, pul::OpName)> =
            std::collections::HashSet::new();
        let mut kind = 0usize;
        while ops.len() < cfg.ops_per_pul {
            kind += 1;
            // Choose the target among original or previously inserted nodes.
            let on_new = !inserted_nodes.is_empty() && rng.gen_bool(cfg.new_node_ratio);
            let element =
                |rng: &mut StdRng, pools: &Pools, inserted: &[NodeId], working: &Document| {
                    if on_new {
                        // pick an inserted element node still present
                        for _ in 0..8 {
                            let cand = inserted[rng.gen_range(0..inserted.len())];
                            if working.contains(cand) && working.kind(cand) == Ok(NodeKind::Element)
                            {
                                return Some(cand);
                            }
                        }
                        None
                    } else {
                        Some(pools.elements[rng.gen_range(0..pools.elements.len())])
                    }
                };
            let Some(target) = element(&mut rng, &pools, &inserted_nodes, &working) else {
                continue;
            };
            let op = match kind % 6 {
                0 => UpdateOp::ins_last(target, vec![content.element_tree()]),
                1 => UpdateOp::rename(target, format!("renamed{kind}")),
                2 => {
                    if working.parent(target).ok().flatten().is_some() {
                        UpdateOp::ins_after(target, vec![content.element_tree()])
                    } else {
                        continue;
                    }
                }
                3 => UpdateOp::ins_attributes(target, vec![content.attribute_tree()]),
                4 => {
                    // replace the value of a text child, if any
                    let texts: Vec<NodeId> = working
                        .children(target)
                        .map(|c| {
                            c.iter()
                                .copied()
                                .filter(|&n| working.kind(n) == Ok(NodeKind::Text))
                                .collect()
                        })
                        .unwrap_or_default();
                    match texts.first() {
                        Some(&t) => UpdateOp::replace_value(t, format!("edited {kind}")),
                        None => continue,
                    }
                }
                _ => UpdateOp::ins_first(target, vec![content.element_tree()]),
            };
            if !used_replacement.insert((op.target(), op.name())) {
                continue;
            }
            ops.push(op);
        }
        let pul = Pul::from_ops(ops, &labeling);
        // Apply on the working copy (producer mode) so that later PULs can be
        // generated against the updated document.
        let report = apply_pul(
            &mut working,
            &pul,
            &ApplyOptions { validate: false, preserve_content_ids: true },
        )
        .expect("generated PUL must apply");
        for root in report.inserted_roots {
            inserted_nodes.extend(working.preorder(root));
        }
        puls.push(pul);
    }
    puls
}

/// Generates parallel PULs with injected conflicts (integration experiments,
/// Fig. 6.e). Each PUL operates on a disjoint set of XMark "unit" subtrees for
/// its non-conflicting operations; conflicts are injected on dedicated targets
/// with the requested size and an even mix of the five conflict types.
pub fn generate_parallel_puls(
    doc: &Document,
    labeling: &Labeling,
    cfg: &ParallelConfig,
) -> Vec<Pul> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Unit subtrees: the repetitive XMark entities.
    let mut units: Vec<NodeId> = ["item", "person", "open_auction", "closed_auction", "category"]
        .iter()
        .flat_map(|n| doc.find_elements(n))
        .collect();
    units.shuffle(&mut rng);
    assert!(units.len() > cfg.n_puls, "document too small for the requested workload");

    let total_ops = cfg.n_puls * cfg.ops_per_pul;
    let conflicted_ops = ((total_ops as f64) * cfg.conflict_fraction) as usize;
    let n_conflicts = (conflicted_ops / cfg.ops_per_conflict.max(2)).max(1);

    // Reserve units: the first `n_conflicts` units host conflicts, the rest are
    // distributed round-robin among the PULs.
    let n_reserved = n_conflicts.min(units.len() / 2);
    let (conflict_units, free_units) = units.split_at(n_reserved);
    let mut per_pul_units: Vec<Vec<NodeId>> = vec![Vec::new(); cfg.n_puls];
    for (i, &u) in free_units.iter().enumerate() {
        per_pul_units[i % cfg.n_puls].push(u);
    }

    let mut ops_per_pul: Vec<Vec<UpdateOp>> = vec![Vec::new(); cfg.n_puls];
    let mut content = ContentGen::new(doc.next_id() + 1_000_000);

    // 1. Inject conflicts, cycling through the five types.
    for c in 0..n_conflicts {
        let unit = conflict_units[c % n_reserved];
        let involved = cfg.ops_per_conflict.max(2).min(cfg.n_puls);
        // choose the PULs participating in this conflict
        let mut parts: Vec<usize> = (0..cfg.n_puls).collect();
        parts.shuffle(&mut rng);
        let parts = &parts[..involved];
        let texts: Vec<NodeId> =
            doc.preorder(unit).into_iter().filter(|&n| doc.kind(n) == Ok(NodeKind::Text)).collect();
        let elements: Vec<NodeId> = doc
            .preorder(unit)
            .into_iter()
            .filter(|&n| doc.kind(n) == Ok(NodeKind::Element))
            .collect();
        match c % 5 {
            // type 1: repeated modification (repV of the same text node)
            0 if !texts.is_empty() => {
                let t = texts[rng.gen_range(0..texts.len())];
                for (j, &p) in parts.iter().enumerate() {
                    ops_per_pul[p].push(UpdateOp::replace_value(t, format!("conflict{c} v{j}")));
                }
            }
            // type 2: repeated attribute insertion (same name on the same element)
            1 => {
                for (j, &p) in parts.iter().enumerate() {
                    ops_per_pul[p].push(UpdateOp::ins_attributes(
                        unit,
                        vec![Tree::attribute(format!("conf{c}"), format!("v{j}"))],
                    ));
                }
            }
            // type 3: insertion order (ins→ on the same element)
            2 => {
                for &p in parts {
                    ops_per_pul[p].push(UpdateOp::ins_after(unit, vec![content.element_tree()]));
                }
            }
            // type 4: local override (one del + renames of the same node)
            3 => {
                ops_per_pul[parts[0]].push(UpdateOp::delete(unit));
                for (j, &p) in parts.iter().enumerate().skip(1) {
                    ops_per_pul[p].push(UpdateOp::rename(unit, format!("conf{c}n{j}")));
                }
            }
            // type 5: non-local override (del of the unit + ops on descendants)
            _ => {
                ops_per_pul[parts[0]].push(UpdateOp::delete(unit));
                for (j, &p) in parts.iter().enumerate().skip(1) {
                    let d = elements[1 + (j % (elements.len() - 1).max(1))];
                    ops_per_pul[p].push(UpdateOp::rename(d, format!("conf{c}d{j}")));
                }
            }
        }
    }

    // 2. Fill every PUL with non-conflicting operations confined to its units.
    for (p, ops) in ops_per_pul.iter_mut().enumerate() {
        let pools = Pools::of_subtrees(doc, &per_pul_units[p]);
        let mut used_replacement: std::collections::HashSet<(NodeId, pul::OpName)> =
            std::collections::HashSet::new();
        let mut kind = p; // desynchronise the op-type cycle across PULs
        while ops.len() < cfg.ops_per_pul {
            kind += 1;
            let op = match kind % 6 {
                0 if !pools.texts.is_empty() => {
                    let t = pools.texts[rng.gen_range(0..pools.texts.len())];
                    if !used_replacement.insert((t, pul::OpName::ReplaceValue)) {
                        continue;
                    }
                    UpdateOp::replace_value(t, format!("p{p} {kind}"))
                }
                1 => {
                    let t = pools.elements[rng.gen_range(0..pools.elements.len())];
                    if !used_replacement.insert((t, pul::OpName::Rename)) {
                        continue;
                    }
                    UpdateOp::rename(t, format!("p{p}n{kind}"))
                }
                2 => {
                    let t = pools.elements[rng.gen_range(0..pools.elements.len())];
                    UpdateOp::ins_last(t, vec![content.element_tree()])
                }
                3 => {
                    let t = pools.elements[rng.gen_range(0..pools.elements.len())];
                    UpdateOp::ins_after(t, vec![content.element_tree()])
                }
                4 => {
                    let t = pools.elements[rng.gen_range(0..pools.elements.len())];
                    UpdateOp::ins_attributes(t, vec![content.attribute_tree()])
                }
                _ if !pools.attributes.is_empty() => {
                    let t = pools.attributes[rng.gen_range(0..pools.attributes.len())];
                    if !used_replacement.insert((t, pul::OpName::ReplaceValue)) {
                        continue;
                    }
                    UpdateOp::replace_value(t, format!("p{p}a{kind}"))
                }
                _ => continue,
            };
            ops.push(op);
        }
    }

    ops_per_pul.into_iter().map(|ops| Pul::from_ops(ops, labeling)).collect()
}

// ---------------------------------------------------------------------------
// seeded differential cases
// ---------------------------------------------------------------------------

/// One seeded case for randomized differential testing: a document plus the
/// PULs of one to three producers expressed against it. Everything — document
/// shape, producer count, per-producer operation count and mix — is a pure
/// function of `seed`, so a failing case replays from its seed alone.
#[derive(Debug, Clone)]
pub struct DifferentialCase {
    /// The original document both systems under test start from.
    pub doc: Document,
    /// One PUL per producer, each carrying the labels of its targets.
    pub puls: Vec<Pul>,
}

/// Generates the seeded case `seed`. Documents are small XMark instances
/// (~120–500 nodes) so a suite of hundreds of cases stays fast; producers get
/// disjoint content-identifier ranges, so their parameter trees can be
/// grafted with identifiers preserved without clashing.
pub fn differential_case(seed: u64) -> DifferentialCase {
    differential_case_with(seed, 1 + (seed as usize) % 3)
}

/// [`differential_case`] with an explicit producer count: the same seeded
/// document and the same per-producer generator, extended to as many
/// producers as the caller needs (the batched-ingestion differential suite
/// enqueues a dozen producers per case so batch sizes above 3 mean
/// something).
pub fn differential_case_with(seed: u64, n_producers: usize) -> DifferentialCase {
    let target_nodes = 120 + (seed as usize).wrapping_mul(37) % 400;
    let doc = crate::xmark::generate(&crate::xmark::XmarkConfig { target_nodes, seed });
    let labeling = Labeling::assign(&doc);
    let puls = (0..n_producers)
        .map(|i| {
            generate_pul(
                &doc,
                &labeling,
                &PulGenConfig {
                    n_ops: 20 + (seed as usize).wrapping_add(i * 11) % 40,
                    reducible_ratio: 0.1,
                    content_id_base: doc.next_id() + 1_000_000 * (i as u64 + 1),
                    seed: seed.wrapping_mul(1_000).wrapping_add(i as u64),
                },
            )
        })
        .collect();
    DifferentialCase { doc, puls }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xmark::{generate as xmark, XmarkConfig};
    use pul::obtainable::canonical_string;

    fn doc() -> Document {
        xmark(&XmarkConfig { target_nodes: 3_000, seed: 1 })
    }

    #[test]
    fn single_pul_is_applicable_and_sized() {
        let d = doc();
        let labeling = Labeling::assign(&d);
        let cfg = PulGenConfig { n_ops: 500, ..Default::default() };
        let pul = generate_pul(&d, &labeling, &cfg);
        assert_eq!(pul.len(), 500);
        pul.check_compatible().expect("generated PULs are compatible");
        // and it actually applies
        let mut work = d.clone();
        apply_pul(&mut work, &pul, &ApplyOptions { validate: false, preserve_content_ids: false })
            .expect("apply");
    }

    #[test]
    fn single_pul_generation_is_deterministic() {
        let d = doc();
        let labeling = Labeling::assign(&d);
        let cfg = PulGenConfig { n_ops: 200, ..Default::default() };
        let a = generate_pul(&d, &labeling, &cfg);
        let b = generate_pul(&d, &labeling, &cfg);
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn reducible_ratio_controls_reduction_gain() {
        let d = doc();
        let labeling = Labeling::assign(&d);
        let none = generate_pul(
            &d,
            &labeling,
            &PulGenConfig { n_ops: 400, reducible_ratio: 0.0, ..Default::default() },
        );
        let some = generate_pul(
            &d,
            &labeling,
            &PulGenConfig { n_ops: 400, reducible_ratio: 0.1, ..Default::default() },
        );
        let red_none = pul_core::reduce_with(&none, pul_core::ReductionKind::Plain);
        let red_some = pul_core::reduce_with(&some, pul_core::ReductionKind::Plain);
        let gain_none = none.len() - red_none.len();
        let gain_some = some.len() - red_some.len();
        assert!(gain_some > gain_none, "gain with pairs {gain_some} vs without {gain_none}");
        assert!(gain_some >= 30, "≈ one rule application every 10 ops, got {gain_some}");
    }

    #[test]
    fn differential_cases_are_deterministic_and_applicable() {
        let a = differential_case(7);
        let b = differential_case(7);
        assert!(a.doc.deep_eq(&b.doc));
        assert_eq!(a.puls.len(), b.puls.len());
        for (pa, pb) in a.puls.iter().zip(&b.puls) {
            assert_eq!(pa.to_string(), pb.to_string());
            pa.check_compatible().expect("each producer PUL is compatible");
        }
        // seeds vary the shape
        let c = differential_case(8);
        assert!(!c.doc.deep_eq(&a.doc) || c.puls.len() != a.puls.len());
    }

    #[test]
    fn sequential_puls_apply_in_sequence_and_aggregate() {
        let d = doc();
        let cfg = SequentialConfig { n_puls: 4, ops_per_pul: 100, new_node_ratio: 0.5, seed: 9 };
        let puls = generate_sequential_puls(&d, &cfg);
        assert_eq!(puls.len(), 4);
        // sequential application succeeds
        let mut seq = d.clone();
        for p in &puls {
            apply_pul(&mut seq, p, &ApplyOptions { validate: false, preserve_content_ids: true })
                .expect("sequential apply");
        }
        // aggregation matches the sequential result
        let agg = pul_core::aggregate(&puls).expect("aggregate");
        let mut once = d.clone();
        apply_pul(&mut once, &agg, &ApplyOptions { validate: false, preserve_content_ids: true })
            .expect("aggregated apply");
        assert_eq!(canonical_string(&seq), canonical_string(&once));
        assert!(agg.len() <= puls.iter().map(|p| p.len()).sum::<usize>());
    }

    #[test]
    fn parallel_puls_have_conflicts_of_every_type() {
        let d = doc();
        let labeling = Labeling::assign(&d);
        let cfg = ParallelConfig {
            n_puls: 4,
            ops_per_pul: 100,
            conflict_fraction: 0.3,
            ops_per_conflict: 3,
            seed: 5,
        };
        let puls = generate_parallel_puls(&d, &labeling, &cfg);
        assert_eq!(puls.len(), 4);
        for p in &puls {
            assert_eq!(p.len(), 100);
            p.check_compatible().expect("each PUL alone is compatible");
        }
        let integration = pul_core::integrate(&puls);
        assert!(!integration.conflicts.is_empty());
        let types: std::collections::HashSet<u8> =
            integration.conflicts.iter().map(|c| c.ctype.code()).collect();
        assert!(types.len() >= 4, "expected a mix of conflict types, got {types:?}");
        // and the reconciliation with relaxed policies succeeds
        let policies = vec![pul_core::Policy::relaxed(); 4];
        pul_core::reconcile(&puls, &policies).expect("reconcile");
    }
}
