//! # workload — synthetic documents and PULs for the experimental evaluation
//!
//! The paper's evaluation (§4.3) uses documents produced by the XMark data
//! generator and synthetic PULs "with a varying number of operations, equally
//! distributed among the operation types". This crate provides deterministic,
//! seeded equivalents:
//!
//! * [`xmark`] — an XMark-shaped auction-site document generator with a size
//!   knob (the documents have the same element vocabulary and fan-out shape as
//!   XMark, scaled to the requested node count);
//! * [`pulgen`] — synthetic PUL generators for the three experiment families:
//!   single PULs with a controllable rate of reducible operation pairs
//!   (Fig. 6.b), sequences of PULs with a controllable fraction of operations
//!   on newly inserted nodes (Fig. 6.c/6.d), and parallel PULs with injected
//!   conflicts of controlled size and type mix (Fig. 6.e).

pub mod pulgen;
pub mod xmark;

pub use pulgen::{
    generate_parallel_puls, generate_pul, generate_sequential_puls, ParallelConfig, PulGenConfig,
    SequentialConfig,
};
pub use xmark::{generate as generate_xmark, XmarkConfig};
