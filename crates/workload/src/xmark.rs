//! XMark-shaped document generator.
//!
//! The generator reproduces the *shape* of the XMark auction-site documents
//! (regions/items, categories, people, open and closed auctions) with a
//! deterministic, seeded pseudo-random text payload. Absolute sizes are
//! controlled by [`XmarkConfig::target_nodes`]; the experiments of the paper
//! use documents between 1 MB and 256 MB, which we scale down proportionally
//! (the benchmark harness reports both node counts and serialized sizes so the
//! trends remain comparable).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xdm::{Document, NodeId};

/// Configuration of the generator.
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    /// Approximate number of nodes (elements + attributes + text nodes).
    pub target_nodes: usize,
    /// RNG seed: equal seeds produce identical documents.
    pub seed: u64,
}

impl XmarkConfig {
    /// A document of roughly `target_nodes` nodes.
    pub fn with_nodes(target_nodes: usize) -> Self {
        XmarkConfig { target_nodes, seed: 42 }
    }
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig { target_nodes: 2_000, seed: 42 }
    }
}

const REGIONS: [&str; 6] = ["africa", "asia", "australia", "europe", "namerica", "samerica"];
const WORDS: [&str; 16] = [
    "gold", "vintage", "rare", "mint", "boxed", "signed", "classic", "limited", "antique",
    "modern", "compact", "deluxe", "original", "restored", "portable", "heavy",
];

fn words(rng: &mut StdRng, n: usize) -> String {
    (0..n).map(|_| WORDS[rng.gen_range(0..WORDS.len())]).collect::<Vec<_>>().join(" ")
}

struct Builder {
    doc: Document,
    rng: StdRng,
}

impl Builder {
    fn el(&mut self, parent: NodeId, name: &str) -> NodeId {
        let e = self.doc.new_element(name);
        self.doc.append_child(parent, e).expect("append element");
        e
    }

    fn text_el(&mut self, parent: NodeId, name: &str, value: String) -> NodeId {
        let e = self.el(parent, name);
        let t = self.doc.new_text(value);
        self.doc.append_child(e, t).expect("append text");
        e
    }

    fn attr(&mut self, element: NodeId, name: &str, value: String) {
        let a = self.doc.new_attribute(name, value);
        self.doc.add_attribute(element, a).expect("add attribute");
    }

    fn item(&mut self, parent: NodeId, id: usize) {
        let item = self.el(parent, "item");
        self.attr(item, "id", format!("item{id}"));
        let name = words(&mut self.rng, 2);
        let location = words(&mut self.rng, 1);
        let quantity = format!("{}", self.rng.gen_range(1..5));
        self.text_el(item, "location", location);
        self.text_el(item, "quantity", quantity);
        self.text_el(item, "name", name);
        self.text_el(item, "payment", "Creditcard".to_string());
        let descr = self.el(item, "description");
        let n = self.rng.gen_range(3..8);
        let text = words(&mut self.rng, n);
        self.text_el(descr, "text", text);
    }

    fn person(&mut self, parent: NodeId, id: usize) {
        let person = self.el(parent, "person");
        self.attr(person, "id", format!("person{id}"));
        let name = words(&mut self.rng, 2);
        self.text_el(person, "name", name);
        self.text_el(person, "emailaddress", format!("mailto:{}@example.org", id));
        let addr = self.el(person, "address");
        let street = words(&mut self.rng, 2);
        let city = words(&mut self.rng, 1);
        let country = words(&mut self.rng, 1);
        self.text_el(addr, "street", street);
        self.text_el(addr, "city", city);
        self.text_el(addr, "country", country);
    }

    fn open_auction(&mut self, parent: NodeId, id: usize, n_items: usize, n_people: usize) {
        let auction = self.el(parent, "open_auction");
        self.attr(auction, "id", format!("open_auction{id}"));
        let initial = format!("{:.2}", self.rng.gen_range(1.0..200.0));
        self.text_el(auction, "initial", initial);
        let bidders = self.rng.gen_range(1..4);
        for _ in 0..bidders {
            let bidder = self.el(auction, "bidder");
            self.text_el(bidder, "date", "01/01/2001".to_string());
            let increase = format!("{:.2}", self.rng.gen_range(1.0..30.0));
            self.text_el(bidder, "increase", increase);
        }
        let current = format!("{:.2}", self.rng.gen_range(1.0..500.0));
        self.text_el(auction, "current", current);
        let itemref = self.el(auction, "itemref");
        let item_ref = format!("item{}", self.rng.gen_range(0..n_items.max(1)));
        self.attr(itemref, "item", item_ref);
        let seller = self.el(auction, "seller");
        let seller_ref = format!("person{}", self.rng.gen_range(0..n_people.max(1)));
        self.attr(seller, "person", seller_ref);
    }

    fn closed_auction(&mut self, parent: NodeId, n_items: usize, n_people: usize) {
        let auction = self.el(parent, "closed_auction");
        let seller = self.el(auction, "seller");
        let seller_ref = format!("person{}", self.rng.gen_range(0..n_people.max(1)));
        self.attr(seller, "person", seller_ref);
        let buyer = self.el(auction, "buyer");
        let buyer_ref = format!("person{}", self.rng.gen_range(0..n_people.max(1)));
        self.attr(buyer, "person", buyer_ref);
        let itemref = self.el(auction, "itemref");
        let item_ref = format!("item{}", self.rng.gen_range(0..n_items.max(1)));
        self.attr(itemref, "item", item_ref);
        let price = format!("{:.2}", self.rng.gen_range(1.0..500.0));
        self.text_el(auction, "price", price);
        self.text_el(auction, "date", "02/02/2002".to_string());
        let quantity = format!("{}", self.rng.gen_range(1..3));
        self.text_el(auction, "quantity", quantity);
    }

    fn category(&mut self, parent: NodeId, id: usize) {
        let cat = self.el(parent, "category");
        self.attr(cat, "id", format!("category{id}"));
        let name = words(&mut self.rng, 1);
        self.text_el(cat, "name", name);
        let descr = self.el(cat, "description");
        let n = self.rng.gen_range(2..6);
        let text = words(&mut self.rng, n);
        self.text_el(descr, "text", text);
    }
}

/// Generates an XMark-shaped document with approximately
/// [`XmarkConfig::target_nodes`] nodes. Node identifiers are assigned in
/// document order starting at 1 (the agreed identification algorithm of §4.1).
pub fn generate(config: &XmarkConfig) -> Document {
    let rng = StdRng::seed_from_u64(config.seed);
    let mut b = Builder { doc: Document::new(), rng };
    let site = b.doc.new_element("site");
    b.doc.set_root(site).expect("set root");

    // An item subtree is ~16 nodes, a person ~13, an open auction ~17, a closed
    // auction ~15, a category ~8. The default XMark proportions are roughly
    // items : people : open : closed : categories = 4 : 5 : 2 : 2 : 1.
    let unit = 4 * 16 + 5 * 13 + 2 * 17 + 2 * 15 + 8;
    let scale = (config.target_nodes / unit).max(1);
    let n_items = 4 * scale;
    let n_people = 5 * scale;
    let n_open = 2 * scale;
    let n_closed = 2 * scale;
    let n_categories = scale;

    let regions = b.el(site, "regions");
    let mut region_nodes = Vec::new();
    for r in REGIONS {
        region_nodes.push(b.el(regions, r));
    }
    for i in 0..n_items {
        let region = region_nodes[i % region_nodes.len()];
        b.item(region, i);
    }
    let categories = b.el(site, "categories");
    for i in 0..n_categories {
        b.category(categories, i);
    }
    let people = b.el(site, "people");
    for i in 0..n_people {
        b.person(people, i);
    }
    let open = b.el(site, "open_auctions");
    for i in 0..n_open {
        b.open_auction(open, i, n_items, n_people);
    }
    let closed = b.el(site, "closed_auctions");
    for _ in 0..n_closed {
        b.closed_auction(closed, n_items, n_people);
    }

    let mut doc = b.doc;
    doc.assign_preorder_ids(1);
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdm::writer::write_document;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&XmarkConfig { target_nodes: 1000, seed: 7 });
        let b = generate(&XmarkConfig { target_nodes: 1000, seed: 7 });
        assert_eq!(write_document(&a), write_document(&b));
        let c = generate(&XmarkConfig { target_nodes: 1000, seed: 8 });
        assert_ne!(write_document(&a), write_document(&c));
    }

    #[test]
    fn node_count_tracks_target() {
        for target in [500usize, 2_000, 10_000] {
            let doc = generate(&XmarkConfig::with_nodes(target));
            let n = doc.node_count();
            assert!(
                n as f64 > target as f64 * 0.5 && (n as f64) < target as f64 * 1.8,
                "target {target}, got {n}"
            );
        }
    }

    #[test]
    fn shape_has_the_xmark_sections() {
        let doc = generate(&XmarkConfig::default());
        for section in ["regions", "categories", "people", "open_auctions", "closed_auctions"] {
            assert!(doc.find_element(section).is_some(), "missing <{section}>");
        }
        assert!(!doc.find_elements("item").is_empty());
        assert!(!doc.find_elements("person").is_empty());
        // ids are preorder starting at 1
        let ids: Vec<u64> = doc.preorder_from_root().iter().map(|n| n.as_u64()).collect();
        assert_eq!(ids[0], 1);
        assert_eq!(*ids.last().unwrap() as usize, ids.len());
    }

    #[test]
    fn document_roundtrips_through_xml() {
        let doc = generate(&XmarkConfig { target_nodes: 600, seed: 3 });
        let xml = write_document(&doc);
        let back = xdm::parser::parse_document(&xml).unwrap();
        assert_eq!(back.node_count(), doc.node_count());
    }
}
