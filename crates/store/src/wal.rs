//! WAL record framing: `magic | length | version | crc | payload`.
//!
//! Every committed PUL round becomes exactly one record. The frame is
//! self-delimiting and self-validating, so a scan can walk a segment from the
//! start and stop at the first record that is torn (the file ends inside it)
//! or corrupt (checksum or magic mismatch) — everything before that point is
//! durable, everything after is discarded.
//!
//! ```text
//!  offset  size  field
//!  0       4     magic  "XWAL"
//!  4       4     payload length (LE)
//!  8       8     version the record commits (LE)
//!  16      4     CRC-32 over version bytes ++ payload (LE)
//!  20      len   payload
//! ```

use crate::crc::crc32_parts;

/// Magic bytes opening every record.
pub const RECORD_MAGIC: [u8; 4] = *b"XWAL";

/// Bytes of the fixed frame header preceding the payload.
pub const RECORD_HEADER_LEN: usize = 20;

/// Hard cap on one record's payload — a corrupt length field must not make
/// the scanner allocate terabytes. One committed round serializes a PUL
/// exchange document or one identified serialization; 256 MiB is orders of
/// magnitude above anything real.
pub const MAX_PAYLOAD_LEN: usize = 256 << 20;

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The session version this record's commit produced.
    pub version: u64,
    /// The serialized commit (see the payload codec in the façade crate).
    pub payload: Vec<u8>,
}

/// Encodes one record into its on-disk frame.
pub fn encode_record(version: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    encode_record_into(&mut out, version, payload);
    out
}

/// Encodes one record's frame into `out` (appending), so a recycled buffer
/// can host the frame without a fresh allocation per append.
pub fn encode_record_into(out: &mut Vec<u8>, version: u64, payload: &[u8]) {
    out.reserve(RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(&RECORD_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let version_bytes = version.to_le_bytes();
    out.extend_from_slice(&version_bytes);
    out.extend_from_slice(&crc32_parts(&[&version_bytes, payload]).to_le_bytes());
    out.extend_from_slice(payload);
}

/// The outcome of scanning one segment's bytes.
#[derive(Debug, Clone)]
pub struct ScanOutcome {
    /// The records of the valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Length in bytes of the valid prefix. Anything past it is a torn or
    /// corrupt tail and must be truncated away before appending again.
    pub valid_len: u64,
}

/// Walks `bytes` record by record, stopping at the first torn or corrupt
/// frame. Never fails: corruption just ends the valid prefix.
pub fn scan(bytes: &[u8]) -> ScanOutcome {
    let mut records = Vec::new();
    let mut at = 0usize;
    loop {
        let rest = &bytes[at..];
        if rest.len() < RECORD_HEADER_LEN {
            break; // torn header (or clean end of segment)
        }
        if rest[..4] != RECORD_MAGIC {
            break;
        }
        let len = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes")) as usize;
        if len > MAX_PAYLOAD_LEN || rest.len() < RECORD_HEADER_LEN + len {
            break; // implausible length or torn payload
        }
        let version_bytes: [u8; 8] = rest[8..16].try_into().expect("8 bytes");
        let stored_crc = u32::from_le_bytes(rest[16..20].try_into().expect("4 bytes"));
        let payload = &rest[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len];
        if crc32_parts(&[&version_bytes, payload]) != stored_crc {
            break; // corrupt tail
        }
        records.push(WalRecord {
            version: u64::from_le_bytes(version_bytes),
            payload: payload.to_vec(),
        });
        at += RECORD_HEADER_LEN + len;
    }
    ScanOutcome { records, valid_len: at as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment(records: &[(u64, &[u8])]) -> Vec<u8> {
        let mut out = Vec::new();
        for &(v, p) in records {
            out.extend_from_slice(&encode_record(v, p));
        }
        out
    }

    #[test]
    fn encode_scan_round_trip() {
        let bytes = segment(&[(1, b"alpha"), (2, b""), (3, b"gamma-delta")]);
        let scan = scan(&bytes);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert_eq!(
            scan.records,
            vec![
                WalRecord { version: 1, payload: b"alpha".to_vec() },
                WalRecord { version: 2, payload: Vec::new() },
                WalRecord { version: 3, payload: b"gamma-delta".to_vec() },
            ]
        );
    }

    #[test]
    fn every_truncation_point_keeps_exactly_the_complete_records() {
        let bytes = segment(&[(1, b"one"), (2, b"two-two"), (3, b"three")]);
        let boundaries: Vec<usize> = {
            let mut b = vec![0];
            let mut at = 0;
            for p in [b"one".len(), b"two-two".len(), b"three".len()] {
                at += RECORD_HEADER_LEN + p;
                b.push(at);
            }
            b
        };
        for cut in 0..=bytes.len() {
            let scan = scan(&bytes[..cut]);
            let expect = boundaries.iter().filter(|&&b| b <= cut && b > 0).count();
            assert_eq!(scan.records.len(), expect, "cut at {cut}");
            assert_eq!(scan.valid_len as usize, boundaries[expect], "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_payload_ends_the_valid_prefix() {
        let mut bytes = segment(&[(1, b"aaaa"), (2, b"bbbb")]);
        let second_payload_at = 2 * RECORD_HEADER_LEN + 4;
        bytes[second_payload_at] ^= 0x40;
        let scan = scan(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].version, 1);
    }

    #[test]
    fn corrupt_version_field_is_detected() {
        let mut bytes = segment(&[(7, b"payload")]);
        bytes[9] ^= 0x01; // version byte
        assert_eq!(scan(&bytes).records.len(), 0);
    }

    #[test]
    fn bad_magic_and_implausible_length_stop_the_scan() {
        let mut bytes = segment(&[(1, b"x")]);
        bytes.extend_from_slice(b"JUNKJUNKJUNKJUNKJUNKJUNK");
        assert_eq!(scan(&bytes).records.len(), 1);

        let mut huge = Vec::new();
        huge.extend_from_slice(&RECORD_MAGIC);
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&[0u8; 12]);
        huge.extend_from_slice(&[0u8; 64]);
        assert_eq!(scan(&huge).records.len(), 0);
    }
}
