//! Deterministic fault injection for the store and the layers above it.
//!
//! A [`FaultPlan`] is a seeded description of *where* and *when* I/O should
//! fail: each [`FaultSpec`] names a failpoint **site** (a `&'static str` like
//! [`site::WAL_APPEND`]), a [`Trigger`] (fire on the n-th hit, on every n-th,
//! with a seeded probability, or always) and a [`FaultKind`] (transient,
//! permanent, or a torn write). Arming a plan yields a [`Faults`] handle — a
//! cheap clonable `Arc` that owners (a [`Store`](crate::Store), a durable
//! session, an ingest queue) consult at their failpoints.
//!
//! Design constraints, in order:
//!
//! 1. **No globals.** The handle is threaded by value through the components
//!    under test; two tests arming two plans never observe each other, and a
//!    component that was never handed a handle can never fire.
//! 2. **Free when disabled.** [`Faults::disabled`] (the `Default`) is a
//!    `None`; [`Faults::check`] is a single branch before any lock is taken.
//!    The `faults_overhead` bench suite pins this down.
//! 3. **Deterministic.** Probability triggers draw from an xorshift stream
//!    seeded by the plan, and hit counters are per-spec, so a plan replays
//!    identically for an identical sequence of failpoint hits.

use std::sync::{Arc, Mutex};

/// The failpoint sites threaded through the workspace. Layer prefix matches
/// the component that consults the site.
pub mod site {
    /// Before a WAL frame is written ([`Store::append`](crate::Store::append)).
    pub const WAL_APPEND: &str = "wal.append";
    /// Before the WAL file is fsynced (per the sync policy).
    pub const WAL_SYNC: &str = "wal.sync";
    /// Before the WAL rotates to a fresh segment (inside a checkpoint).
    pub const WAL_ROTATE: &str = "wal.rotate";
    /// Before the checkpoint image is written to its temporary file.
    pub const CKPT_WRITE: &str = "ckpt.write";
    /// Before the checkpoint temporary is renamed into place.
    pub const CKPT_RENAME: &str = "ckpt.rename";
    /// In the durable commit sink, before the WAL append is attempted.
    pub const SINK_COMMIT: &str = "sink.commit";
    /// Before each shard applies its sub-PUL in the two-phase commit.
    pub const SHARD_APPLY: &str = "shard.apply";
    /// In the ingest drainer, before a drained batch is prepared.
    pub const INGEST_PREPARE: &str = "ingest.prepare";
    /// In the ingest committer, before a round is resolved and committed.
    pub const INGEST_COMMIT: &str = "ingest.commit";

    /// Every site, for randomized plan generation.
    pub const ALL: &[&str] = &[
        WAL_APPEND,
        WAL_SYNC,
        WAL_ROTATE,
        CKPT_WRITE,
        CKPT_RENAME,
        SINK_COMMIT,
        SHARD_APPLY,
        INGEST_PREPARE,
        INGEST_COMMIT,
    ];
}

/// How an injected fault behaves once it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A retryable condition (maps to [`std::io::ErrorKind::Interrupted`]):
    /// the operation may succeed if attempted again.
    Transient,
    /// A non-retryable failure (maps to [`std::io::ErrorKind::Other`]): the
    /// operation fails, but the component stays usable.
    Permanent,
    /// A simulated crash mid-write: at [`site::WAL_APPEND`] the store writes
    /// a *partial* frame and then fails without repairing the tail, leaving
    /// torn bytes on disk exactly as a kill would. Elsewhere it behaves like
    /// [`FaultKind::Permanent`].
    Torn,
}

impl FaultKind {
    /// The `std::io::ErrorKind` an injected fault of this kind surfaces as.
    pub fn io_kind(self) -> std::io::ErrorKind {
        match self {
            FaultKind::Transient => std::io::ErrorKind::Interrupted,
            FaultKind::Permanent | FaultKind::Torn => std::io::ErrorKind::Other,
        }
    }
}

/// When a spec fires, counted per spec over the hits of its site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire exactly once, on the `n`-th hit (1-based).
    Nth(u64),
    /// Fire on every `n`-th hit (`n` ≥ 1).
    EveryNth(u64),
    /// Fire with probability `p` per hit, drawn from the plan's seeded
    /// xorshift stream.
    Probability(f64),
    /// Fire on every hit.
    Always,
}

/// One armed failpoint: a site, a trigger and the kind of fault to inject.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// The failpoint site this spec arms (one of [`site`]).
    pub site: &'static str,
    /// When the spec fires.
    pub trigger: Trigger,
    /// What it injects.
    pub kind: FaultKind,
}

/// A seeded, buildable description of the faults to inject. Arm it with
/// [`FaultPlan::arm`] to get the [`Faults`] handle components consult.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan drawing probability triggers from `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, specs: Vec::new() }
    }

    /// Adds one failpoint spec (builder style).
    pub fn fail(mut self, site: &'static str, trigger: Trigger, kind: FaultKind) -> FaultPlan {
        self.specs.push(FaultSpec { site, trigger, kind });
        self
    }

    /// The specs of the plan.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Arms the plan: fresh per-spec hit counters, fresh rng state.
    pub fn arm(&self) -> Faults {
        let rng = splitmix64(self.seed).max(1);
        let specs = self.specs.iter().map(|s| SpecState { spec: s.clone(), hits: 0 }).collect();
        Faults(Some(Arc::new(Mutex::new(Armed { specs, rng, injected: Vec::new() }))))
    }
}

#[derive(Debug)]
struct SpecState {
    spec: FaultSpec,
    hits: u64,
}

#[derive(Debug)]
struct Armed {
    specs: Vec<SpecState>,
    rng: u64,
    /// Every injection that fired, in order: `(site, kind)`.
    injected: Vec<(&'static str, FaultKind)>,
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// The armed handle components consult at their failpoints. Cloning shares
/// the hit counters (that is the point: one plan drives a whole pipeline);
/// the default handle is disabled and costs one branch per check.
#[derive(Debug, Clone, Default)]
pub struct Faults(Option<Arc<Mutex<Armed>>>);

impl Faults {
    /// The disabled handle: every check answers `None` in a single branch.
    pub fn disabled() -> Faults {
        Faults(None)
    }

    /// Whether a plan is armed behind this handle.
    pub fn is_armed(&self) -> bool {
        self.0.is_some()
    }

    /// Consults the failpoint `site`: `Some(kind)` when an armed spec fires.
    /// The disabled handle answers without locking anything.
    #[inline]
    pub fn check(&self, site: &'static str) -> Option<FaultKind> {
        let armed = self.0.as_ref()?;
        Self::check_armed(armed, site)
    }

    #[cold]
    fn check_armed(armed: &Mutex<Armed>, site: &'static str) -> Option<FaultKind> {
        let mut armed = armed.lock().expect("fault registry lock");
        let mut fired: Option<FaultKind> = None;
        // Split the borrow: the rng draw needs `&mut armed.rng` while the
        // specs are iterated mutably.
        let Armed { specs, rng, injected } = &mut *armed;
        for state in specs.iter_mut() {
            if state.spec.site != site {
                continue;
            }
            state.hits += 1;
            let fire = match state.spec.trigger {
                Trigger::Nth(n) => state.hits == n.max(1),
                Trigger::EveryNth(n) => state.hits.is_multiple_of(n.max(1)),
                Trigger::Probability(p) => {
                    let draw = (xorshift(rng) >> 11) as f64 / (1u64 << 53) as f64;
                    draw < p
                }
                Trigger::Always => true,
            };
            if fire && fired.is_none() {
                fired = Some(state.spec.kind);
            }
        }
        if let Some(kind) = fired {
            injected.push((site, kind));
        }
        fired
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> usize {
        match &self.0 {
            None => 0,
            Some(armed) => armed.lock().expect("fault registry lock").injected.len(),
        }
    }

    /// Faults injected at one site so far.
    pub fn injected_at(&self, site: &str) -> usize {
        match &self.0 {
            None => 0,
            Some(armed) => armed
                .lock()
                .expect("fault registry lock")
                .injected
                .iter()
                .filter(|(s, _)| *s == site)
                .count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_fires() {
        let f = Faults::disabled();
        for _ in 0..100 {
            assert_eq!(f.check(site::WAL_APPEND), None);
        }
        assert!(!f.is_armed());
        assert_eq!(f.injected(), 0);
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let f =
            FaultPlan::new(1).fail(site::WAL_APPEND, Trigger::Nth(3), FaultKind::Transient).arm();
        let fired: Vec<Option<FaultKind>> = (0..6).map(|_| f.check(site::WAL_APPEND)).collect();
        assert_eq!(
            fired,
            vec![None, None, Some(FaultKind::Transient), None, None, None],
            "fires on the 3rd hit only"
        );
        assert_eq!(f.injected(), 1);
        assert_eq!(f.injected_at(site::WAL_APPEND), 1);
        assert_eq!(f.injected_at(site::WAL_SYNC), 0);
    }

    #[test]
    fn every_nth_and_always_triggers() {
        let f = FaultPlan::new(1)
            .fail(site::WAL_SYNC, Trigger::EveryNth(2), FaultKind::Permanent)
            .fail(site::CKPT_WRITE, Trigger::Always, FaultKind::Transient)
            .arm();
        let fired: Vec<bool> = (0..4).map(|_| f.check(site::WAL_SYNC).is_some()).collect();
        assert_eq!(fired, vec![false, true, false, true]);
        assert!(f.check(site::CKPT_WRITE).is_some());
        assert!(f.check(site::CKPT_WRITE).is_some());
        assert_eq!(f.check(site::WAL_APPEND), None, "unarmed sites never fire");
    }

    #[test]
    fn probability_is_seeded_and_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let f = FaultPlan::new(seed)
                .fail(site::WAL_APPEND, Trigger::Probability(0.5), FaultKind::Transient)
                .arm();
            (0..64).map(|_| f.check(site::WAL_APPEND).is_some()).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same firing sequence");
        assert_ne!(run(7), run(8), "different seeds diverge");
        let fires = run(7).iter().filter(|&&b| b).count();
        assert!((10..=54).contains(&fires), "p=0.5 over 64 draws fired {fires} times");
    }

    #[test]
    fn clones_share_hit_counters() {
        let f = FaultPlan::new(1)
            .fail(site::INGEST_COMMIT, Trigger::Nth(2), FaultKind::Permanent)
            .arm();
        let g = f.clone();
        assert_eq!(f.check(site::INGEST_COMMIT), None);
        assert_eq!(g.check(site::INGEST_COMMIT), Some(FaultKind::Permanent));
        assert_eq!(f.injected(), 1, "one registry behind both handles");
    }

    #[test]
    fn two_armed_plans_are_independent() {
        let plan = FaultPlan::new(1).fail(site::WAL_APPEND, Trigger::Nth(1), FaultKind::Transient);
        let a = plan.arm();
        let b = plan.arm();
        assert!(a.check(site::WAL_APPEND).is_some());
        assert!(b.check(site::WAL_APPEND).is_some(), "b's counters start fresh");
        assert_eq!(a.injected(), 1);
        assert_eq!(b.injected(), 1);
    }
}
