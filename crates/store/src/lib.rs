//! Durable versioned store for PUL sessions.
//!
//! The store owns one directory and two kinds of files:
//!
//! - **WAL segments** `wal-NNNNNN.log` — append-only logs of framed commit
//!   records (see [`wal`]). Each committed PUL round is exactly one record,
//!   appended *before* the in-memory version fence advances, so a record's
//!   presence is the commit's durability point.
//! - **Checkpoints** `ckpt-VVVVVVVVVVVV.snap` — one contiguous, checksummed
//!   image of the whole session at version `V` (see [`checkpoint`]), written
//!   to a temporary file and renamed into place.
//!
//! Writing a checkpoint rotates the WAL to a fresh segment, so the live tail
//! that recovery must replay is always `records with version > checkpoint
//! version`. With `retain_history` enabled (the default) older segments and
//! checkpoints are kept, which is what makes `read_at(version)` time travel
//! possible; without it they are pruned after each durable checkpoint.
//!
//! Recovery ([`Store::open`]) scans segments oldest-first, physically
//! truncates the torn or corrupt tail of the *current* segment (earlier
//! segments are sealed by the checkpoint that rotated them), and leaves the
//! store ready to append.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

pub mod checkpoint;
mod crc;
pub mod wal;

pub use checkpoint::{CheckpointState, ShardSnapshot};
pub use crc::{crc32, crc32_parts};
pub use wal::{ScanOutcome, WalRecord};

/// When appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every appended record — a reported commit is durable.
    PerCommit,
    /// `fsync` every `n` records; a crash can lose up to `n - 1` recent
    /// commits but never corrupts the prefix.
    Interval(u32),
    /// Never `fsync` explicitly; the OS flushes when it pleases.
    Off,
}

/// Store construction options.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Append sync policy.
    pub sync: SyncPolicy,
    /// Keep sealed segments and old checkpoints (enables `read_at` over the
    /// full history). When off, a durable checkpoint prunes everything older.
    pub retain_history: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions { sync: SyncPolicy::PerCommit, retain_history: true }
    }
}

fn segment_name(seg: u64) -> String {
    format!("wal-{seg:06}.log")
}

fn checkpoint_name(version: u64) -> String {
    format!("ckpt-{version:012}.snap")
}

fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let digits = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The on-disk store: WAL segments plus checkpoint images in one directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    opts: StoreOptions,
    /// Index of the segment currently receiving appends.
    segment: u64,
    wal_file: File,
    /// Byte length of the current segment.
    wal_len: u64,
    /// `(version, frame start offset)` of every record in the current
    /// segment, in append order — lets a rollback truncate precisely.
    appended: Vec<(u64, u64)>,
    /// Appends since the last explicit sync (for `SyncPolicy::Interval`).
    unsynced: u32,
    /// Versions of every checkpoint on disk, ascending.
    checkpoints: Vec<u64>,
    /// Indices of every segment on disk, ascending (last = current).
    segments: Vec<u64>,
}

impl Store {
    /// Creates a fresh store in `dir` (created if missing). Fails if the
    /// directory already holds store files.
    pub fn create(dir: impl AsRef<Path>, opts: StoreOptions) -> io::Result<Store> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("wal-") || name.starts_with("ckpt-") {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("{} already holds store files", dir.display()),
                ));
            }
        }
        let wal_file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .read(true)
            .open(dir.join(segment_name(0)))?;
        Ok(Store {
            dir,
            opts,
            segment: 0,
            wal_file,
            wal_len: 0,
            appended: Vec::new(),
            unsynced: 0,
            checkpoints: Vec::new(),
            segments: vec![0],
        })
    }

    /// Opens an existing store, truncating any torn or corrupt tail of the
    /// current (highest-numbered) segment.
    pub fn open(dir: impl AsRef<Path>, opts: StoreOptions) -> io::Result<Store> {
        let dir = dir.as_ref().to_path_buf();
        let mut segments = Vec::new();
        let mut checkpoints = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy().into_owned();
            if let Some(seg) = parse_numbered(&name, "wal-", ".log") {
                segments.push(seg);
            } else if let Some(v) = parse_numbered(&name, "ckpt-", ".snap") {
                checkpoints.push(v);
            }
        }
        segments.sort_unstable();
        checkpoints.sort_unstable();
        let &segment = segments.last().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} holds no WAL segment", dir.display()),
            )
        })?;

        let path = dir.join(segment_name(segment));
        let bytes = fs::read(&path)?;
        let scan = wal::scan(&bytes);
        if scan.valid_len < bytes.len() as u64 {
            // Torn or corrupt tail from a crash mid-append: cut it off so the
            // next append starts on a clean frame boundary.
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(scan.valid_len)?;
            f.sync_all()?;
        }
        let mut appended = Vec::with_capacity(scan.records.len());
        let mut at = 0u64;
        for rec in &scan.records {
            appended.push((rec.version, at));
            at += (wal::RECORD_HEADER_LEN + rec.payload.len()) as u64;
        }
        let wal_file = OpenOptions::new().append(true).read(true).open(&path)?;
        Ok(Store {
            dir,
            opts,
            segment,
            wal_file,
            wal_len: scan.valid_len,
            appended,
            unsynced: 0,
            checkpoints,
            segments,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bytes in the current (appendable) segment.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_len
    }

    /// Version of the most recent checkpoint, if any.
    pub fn last_checkpoint(&self) -> Option<u64> {
        self.checkpoints.last().copied()
    }

    /// Versions of all retained checkpoints, ascending.
    pub fn checkpoints(&self) -> &[u64] {
        &self.checkpoints
    }

    /// The highest version the store holds durably: the greater of the last
    /// checkpoint and the last WAL record in the current segment.
    pub fn last_version(&self) -> Option<u64> {
        let from_wal = self.appended.last().map(|&(v, _)| v);
        match (self.last_checkpoint(), from_wal) {
            (Some(c), Some(w)) => Some(c.max(w)),
            (a, b) => a.or(b),
        }
    }

    /// Appends one commit record and applies the sync policy.
    pub fn append(&mut self, version: u64, payload: &[u8]) -> io::Result<()> {
        let frame = wal::encode_record(version, payload);
        self.wal_file.write_all(&frame)?;
        self.appended.push((version, self.wal_len));
        self.wal_len += frame.len() as u64;
        match self.opts.sync {
            SyncPolicy::PerCommit => self.wal_file.sync_data()?,
            SyncPolicy::Interval(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.wal_file.sync_data()?;
                    self.unsynced = 0;
                }
            }
            SyncPolicy::Off => {}
        }
        Ok(())
    }

    /// Drops every record of the current segment with a version above `v` —
    /// the durable half of a rollback. The frames are physically truncated so
    /// a crash cannot resurrect them.
    pub fn truncate_to_version(&mut self, v: u64) -> io::Result<()> {
        let keep = self.appended.iter().position(|&(rv, _)| rv > v);
        let Some(idx) = keep else { return Ok(()) };
        let new_len = self.appended[idx].1;
        self.wal_file.set_len(new_len)?;
        self.wal_file.sync_all()?;
        self.appended.truncate(idx);
        self.wal_len = new_len;
        self.unsynced = 0;
        Ok(())
    }

    /// Writes a checkpoint image durably (tmp + fsync + rename + dir fsync),
    /// rotates the WAL to a fresh segment, and — without `retain_history` —
    /// prunes everything the new checkpoint supersedes.
    pub fn write_checkpoint(&mut self, state: &CheckpointState) -> io::Result<()> {
        let image = checkpoint::encode(state);
        let tmp = self.dir.join("ckpt.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&image)?;
            f.sync_all()?;
        }
        let final_path = self.dir.join(checkpoint_name(state.version));
        fs::rename(&tmp, &final_path)?;
        // Make the rename itself durable before truncating any WAL data that
        // the checkpoint supersedes.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.checkpoints.push(state.version);
        self.checkpoints.sort_unstable();
        self.checkpoints.dedup();

        // Seal the current segment and rotate to a fresh one.
        self.wal_file.sync_data()?;
        let next = self.segment + 1;
        self.wal_file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .read(true)
            .open(self.dir.join(segment_name(next)))?;
        self.segment = next;
        self.segments.push(next);
        self.wal_len = 0;
        self.appended.clear();
        self.unsynced = 0;

        if !self.opts.retain_history {
            // Everything at or below the checkpoint is reachable from the
            // image alone; drop sealed segments and older checkpoints.
            let sealed: Vec<u64> =
                self.segments.iter().copied().filter(|&s| s < self.segment).collect();
            for seg in sealed {
                fs::remove_file(self.dir.join(segment_name(seg)))?;
                self.segments.retain(|&s| s != seg);
            }
            let old: Vec<u64> =
                self.checkpoints.iter().copied().filter(|&v| v < state.version).collect();
            for v in old {
                fs::remove_file(self.dir.join(checkpoint_name(v)))?;
                self.checkpoints.retain(|&c| c != v);
            }
        }
        Ok(())
    }

    /// Loads and integrity-checks the checkpoint image for `version`.
    pub fn load_checkpoint(&self, version: u64) -> io::Result<CheckpointState> {
        let mut bytes = Vec::new();
        File::open(self.dir.join(checkpoint_name(version)))?.read_to_end(&mut bytes)?;
        let state = checkpoint::decode(&bytes)?;
        if state.version != version {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checkpoint file for v{version} holds v{}", state.version),
            ));
        }
        Ok(state)
    }

    /// The greatest retained checkpoint version that is ≤ `version`.
    pub fn checkpoint_at_or_before(&self, version: u64) -> Option<u64> {
        self.checkpoints.iter().copied().filter(|&v| v <= version).max()
    }

    /// Collects every valid record with `after < version ≤ up_to` across all
    /// retained segments, oldest segment first. Per segment the scan stops at
    /// the first torn or corrupt frame, matching what recovery would keep.
    pub fn replay_records(&self, after: u64, up_to: u64) -> io::Result<Vec<WalRecord>> {
        let mut out = Vec::new();
        for &seg in &self.segments {
            let bytes = fs::read(self.dir.join(segment_name(seg)))?;
            for rec in wal::scan(&bytes).records {
                if rec.version > after && rec.version <= up_to {
                    out.push(rec);
                }
            }
        }
        out.sort_by_key(|r| r.version);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pul_store_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn shardless(version: u64) -> CheckpointState {
        CheckpointState {
            version,
            sharded: false,
            root_id: 0,
            root_label: String::new(),
            shards: vec![ShardSnapshot {
                doc: format!("<d xml:id=\"1\" v=\"{version}\"/>"),
                labels: vec!["1 0-1;0-9;0;E;-;-;FL".into()],
                next_id: 2,
                version,
                interval_lo: Vec::new(),
                interval_hi: Vec::new(),
            }],
        }
    }

    #[test]
    fn create_append_reopen() {
        let dir = tmp_dir("basic");
        let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
        store.append(1, b"first").unwrap();
        store.append(2, b"second").unwrap();
        assert_eq!(store.last_version(), Some(2));
        drop(store);

        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(store.last_version(), Some(2));
        let recs = store.replay_records(0, u64::MAX).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].payload, b"second");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_existing_store() {
        let dir = tmp_dir("refuse");
        let _store = Store::create(&dir, StoreOptions::default()).unwrap();
        assert!(Store::create(&dir, StoreOptions::default()).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_truncates_torn_tail() {
        let dir = tmp_dir("torn");
        let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
        store.append(1, b"keep-me").unwrap();
        store.append(2, b"torn-away").unwrap();
        drop(store);

        // Chop the file mid-way through the second record.
        let path = dir.join(segment_name(0));
        let full = fs::read(&path).unwrap();
        let first_len = (wal::RECORD_HEADER_LEN + b"keep-me".len()) as u64;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(first_len + 5).unwrap();
        drop(f);
        assert!(fs::read(&path).unwrap().len() < full.len());

        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(store.last_version(), Some(1));
        assert_eq!(fs::read(&path).unwrap().len() as u64, first_len);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_to_version_discards_precisely() {
        let dir = tmp_dir("rollback");
        let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
        for v in 1..=4 {
            store.append(v, format!("payload-{v}").as_bytes()).unwrap();
        }
        store.truncate_to_version(2).unwrap();
        assert_eq!(store.last_version(), Some(2));
        drop(store);
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let recs = store.replay_records(0, u64::MAX).unwrap();
        assert_eq!(recs.iter().map(|r| r.version).collect::<Vec<_>>(), vec![1, 2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_rotates_and_replay_spans_segments() {
        let dir = tmp_dir("rotate");
        let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
        store.append(1, b"one").unwrap();
        store.append(2, b"two").unwrap();
        store.write_checkpoint(&shardless(2)).unwrap();
        assert_eq!(store.wal_bytes(), 0);
        store.append(3, b"three").unwrap();
        drop(store);

        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(store.last_checkpoint(), Some(2));
        assert_eq!(store.last_version(), Some(3));
        // Tail replay after the checkpoint sees only v3.
        let tail = store.replay_records(2, u64::MAX).unwrap();
        assert_eq!(tail.iter().map(|r| r.version).collect::<Vec<_>>(), vec![3]);
        // Historic replay still reaches the sealed segment.
        let all = store.replay_records(0, u64::MAX).unwrap();
        assert_eq!(all.iter().map(|r| r.version).collect::<Vec<_>>(), vec![1, 2, 3]);
        let ckpt = store.load_checkpoint(2).unwrap();
        assert_eq!(ckpt, shardless(2));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn without_retain_history_checkpoint_prunes() {
        let dir = tmp_dir("prune");
        let opts = StoreOptions { retain_history: false, ..StoreOptions::default() };
        let mut store = Store::create(&dir, opts).unwrap();
        store.append(1, b"one").unwrap();
        store.write_checkpoint(&shardless(1)).unwrap();
        store.append(2, b"two").unwrap();
        store.write_checkpoint(&shardless(2)).unwrap();
        assert_eq!(store.checkpoints(), &[2]);
        assert!(!dir.join(segment_name(0)).exists());
        assert!(!dir.join(checkpoint_name(1)).exists());
        assert!(dir.join(checkpoint_name(2)).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_at_or_before_picks_nearest() {
        let dir = tmp_dir("nearest");
        let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
        store.append(1, b"a").unwrap();
        store.write_checkpoint(&shardless(1)).unwrap();
        store.append(2, b"b").unwrap();
        store.append(3, b"c").unwrap();
        store.write_checkpoint(&shardless(3)).unwrap();
        assert_eq!(store.checkpoint_at_or_before(0), None);
        assert_eq!(store.checkpoint_at_or_before(1), Some(1));
        assert_eq!(store.checkpoint_at_or_before(2), Some(1));
        assert_eq!(store.checkpoint_at_or_before(3), Some(3));
        assert_eq!(store.checkpoint_at_or_before(99), Some(3));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interval_sync_policy_counts_appends() {
        let dir = tmp_dir("interval");
        let opts = StoreOptions { sync: SyncPolicy::Interval(3), ..StoreOptions::default() };
        let mut store = Store::create(&dir, opts).unwrap();
        for v in 1..=7 {
            store.append(v, b"x").unwrap();
        }
        // No assertion beyond "it works" — the policy only changes fsync
        // cadence, which the filesystem hides from us here.
        assert_eq!(store.last_version(), Some(7));
        fs::remove_dir_all(&dir).unwrap();
    }
}
