//! Durable versioned store for PUL sessions.
//!
//! The store owns one directory and two kinds of files:
//!
//! - **WAL segments** `wal-NNNNNN.log` — append-only logs of framed commit
//!   records (see [`wal`]). Each committed PUL round is exactly one record,
//!   appended *before* the in-memory version fence advances, so a record's
//!   presence is the commit's durability point.
//! - **Checkpoints** `ckpt-VVVVVVVVVVVV.snap` — one contiguous, checksummed
//!   image of the whole session at version `V` (see [`checkpoint`]), written
//!   to a temporary file and renamed into place.
//!
//! Writing a checkpoint rotates the WAL to a fresh segment, so the live tail
//! that recovery must replay is always `records with version > checkpoint
//! version`. With `retain_history` enabled (the default) older segments and
//! checkpoints are kept, which is what makes `read_at(version)` time travel
//! possible; without it they are pruned after each durable checkpoint.
//!
//! Recovery ([`Store::open`]) scans segments oldest-first, physically
//! truncates the torn or corrupt tail of the *current* segment (earlier
//! segments are sealed by the checkpoint that rotated them), and leaves the
//! store ready to append.
//!
//! Every fallible operation returns a [`StoreError`] carrying the underlying
//! [`std::io::ErrorKind`] plus the WAL position involved, and consults the
//! [`faults`] failpoints on the way, so the layers above can classify
//! transient vs permanent failures and tests can inject both
//! deterministically. A failed append or sync repairs the segment tail back
//! to the last good frame boundary; if that repair itself fails (or a torn
//! write is injected) the store is **poisoned** — every further append is
//! refused — until a rollback truncation, a checkpoint rotation, or a reopen
//! restores a clean tail.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use pul_telemetry::{EventKind, Telemetry};

pub mod checkpoint;
mod crc;
mod error;
pub mod faults;
pub mod pool;
pub mod wal;

pub use checkpoint::{CheckpointState, ShardSnapshot};
pub use crc::{crc32, crc32_parts};
pub use error::{transient_kind, StoreError, StoreResult};
pub use faults::{site, FaultKind, FaultPlan, FaultSpec, Faults, Trigger};
pub use pool::{Pool, PoolStats, SharedPool, Shrink, DEFAULT_CAPACITY_CAP};
pub use wal::{ScanOutcome, WalRecord};

/// When appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every appended record — a reported commit is durable.
    PerCommit,
    /// `fsync` every `n` records; a crash can lose up to `n - 1` recent
    /// commits but never corrupts the prefix.
    Interval(u32),
    /// Never `fsync` explicitly; the OS flushes when it pleases.
    Off,
}

/// Store construction options.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Append sync policy.
    pub sync: SyncPolicy,
    /// Keep sealed segments and old checkpoints (enables `read_at` over the
    /// full history). When off, a durable checkpoint prunes everything older.
    pub retain_history: bool,
    /// Idle WAL frame encode buffers retained between appends (default 2:
    /// one writer's steady state plus one absorbing checkpoint
    /// interleavings). 0 disables pooling — every append allocates a fresh
    /// frame, the baseline the `pool_reuse` bench suite prices.
    pub frame_pool_idle: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            sync: SyncPolicy::PerCommit,
            retain_history: true,
            frame_pool_idle: FRAME_POOL_IDLE,
        }
    }
}

fn segment_name(seg: u64) -> String {
    format!("wal-{seg:06}.log")
}

fn checkpoint_name(version: u64) -> String {
    format!("ckpt-{version:012}.snap")
}

fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let digits = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The on-disk store: WAL segments plus checkpoint images in one directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    opts: StoreOptions,
    /// Index of the segment currently receiving appends.
    segment: u64,
    wal_file: File,
    /// Byte length of the current segment.
    wal_len: u64,
    /// `(version, frame start offset)` of every record in the current
    /// segment, in append order — lets a rollback truncate precisely.
    appended: Vec<(u64, u64)>,
    /// Appends since the last explicit sync (for `SyncPolicy::Interval`).
    unsynced: u32,
    /// Versions of every checkpoint on disk, ascending.
    checkpoints: Vec<u64>,
    /// Indices of every segment on disk, ascending (last = current).
    segments: Vec<u64>,
    /// Armed failpoints (disabled unless a test injects a plan).
    faults: Faults,
    /// The segment tail may hold torn bytes past `wal_len` (a failed repair
    /// or an injected torn write): appends are refused until a truncation,
    /// rotation or reopen restores a clean frame boundary.
    poisoned: bool,
    /// Recycled WAL frame encode buffers — one append's frame is dead the
    /// moment it hits the file, so its backbone is reused.
    frame_pool: Pool<Vec<u8>>,
    /// Telemetry handle (disabled unless installed): WAL append/sync/rotate
    /// timings and bytes, checkpoint duration, fault-hit events.
    telemetry: Telemetry,
}

/// Idle frame buffers the store retains between appends (one writer, so one
/// buffer is the steady state; a second absorbs checkpoint interleavings).
const FRAME_POOL_IDLE: usize = 2;

impl Store {
    /// Creates a fresh store in `dir` (created if missing). Fails if the
    /// directory already holds store files.
    pub fn create(dir: impl AsRef<Path>, opts: StoreOptions) -> StoreResult<Store> {
        let op = "store.create";
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| StoreError::io(op, &e))?;
        for entry in fs::read_dir(&dir).map_err(|e| StoreError::io(op, &e))? {
            let name = entry.map_err(|e| StoreError::io(op, &e))?.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("wal-") || name.starts_with("ckpt-") {
                return Err(StoreError::new(
                    op,
                    io::ErrorKind::AlreadyExists,
                    format!("{} already holds store files", dir.display()),
                ));
            }
        }
        let wal_file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .read(true)
            .open(dir.join(segment_name(0)))
            .map_err(|e| StoreError::io(op, &e).at(0, 0))?;
        Ok(Store {
            dir,
            opts,
            segment: 0,
            wal_file,
            wal_len: 0,
            appended: Vec::new(),
            unsynced: 0,
            checkpoints: Vec::new(),
            segments: vec![0],
            faults: Faults::disabled(),
            poisoned: false,
            frame_pool: Pool::new(opts.frame_pool_idle),
            telemetry: Telemetry::disabled(),
        })
    }

    /// Opens an existing store, truncating any torn or corrupt tail of the
    /// current (highest-numbered) segment.
    pub fn open(dir: impl AsRef<Path>, opts: StoreOptions) -> StoreResult<Store> {
        let op = "store.open";
        let dir = dir.as_ref().to_path_buf();
        let mut segments = Vec::new();
        let mut checkpoints = Vec::new();
        for entry in fs::read_dir(&dir).map_err(|e| StoreError::io(op, &e))? {
            let name = entry.map_err(|e| StoreError::io(op, &e))?.file_name();
            let name = name.to_string_lossy().into_owned();
            if let Some(seg) = parse_numbered(&name, "wal-", ".log") {
                segments.push(seg);
            } else if let Some(v) = parse_numbered(&name, "ckpt-", ".snap") {
                checkpoints.push(v);
            }
        }
        segments.sort_unstable();
        checkpoints.sort_unstable();
        let &segment = segments.last().ok_or_else(|| {
            StoreError::new(
                op,
                io::ErrorKind::NotFound,
                format!("{} holds no WAL segment", dir.display()),
            )
        })?;

        let path = dir.join(segment_name(segment));
        let bytes = fs::read(&path).map_err(|e| StoreError::io(op, &e).at(segment, 0))?;
        let scan = wal::scan(&bytes);
        if scan.valid_len < bytes.len() as u64 {
            // Torn or corrupt tail from a crash mid-append: cut it off so the
            // next append starts on a clean frame boundary.
            let cut = |e: &io::Error| StoreError::io(op, e).at(segment, scan.valid_len);
            let f = OpenOptions::new().write(true).open(&path).map_err(|e| cut(&e))?;
            f.set_len(scan.valid_len).map_err(|e| cut(&e))?;
            f.sync_all().map_err(|e| cut(&e))?;
        }
        let mut appended = Vec::with_capacity(scan.records.len());
        let mut at = 0u64;
        for rec in &scan.records {
            appended.push((rec.version, at));
            at += (wal::RECORD_HEADER_LEN + rec.payload.len()) as u64;
        }
        let wal_file = OpenOptions::new()
            .append(true)
            .read(true)
            .open(&path)
            .map_err(|e| StoreError::io(op, &e).at(segment, 0))?;
        Ok(Store {
            dir,
            opts,
            segment,
            wal_file,
            wal_len: scan.valid_len,
            appended,
            unsynced: 0,
            checkpoints,
            segments,
            faults: Faults::disabled(),
            poisoned: false,
            frame_pool: Pool::new(opts.frame_pool_idle),
            telemetry: Telemetry::disabled(),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bytes in the current (appendable) segment.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_len
    }

    /// Version of the most recent checkpoint, if any.
    pub fn last_checkpoint(&self) -> Option<u64> {
        self.checkpoints.last().copied()
    }

    /// Versions of all retained checkpoints, ascending.
    pub fn checkpoints(&self) -> &[u64] {
        &self.checkpoints
    }

    /// Installs the failpoint handle the store consults on every append,
    /// sync, rotation and checkpoint write.
    pub fn set_faults(&mut self, faults: Faults) {
        self.faults = faults;
    }

    /// Installs the telemetry handle the store records WAL and checkpoint
    /// timings (and fault-hit events) through. Disabled by default.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Whether the segment tail is poisoned by an unrepaired torn write.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Reuse counters of the WAL frame encode buffer pool.
    pub fn frame_pool_stats(&self) -> PoolStats {
        self.frame_pool.stats()
    }

    /// The highest version the store holds durably: the greater of the last
    /// checkpoint and the last WAL record in the current segment.
    pub fn last_version(&self) -> Option<u64> {
        let from_wal = self.appended.last().map(|&(v, _)| v);
        match (self.last_checkpoint(), from_wal) {
            (Some(c), Some(w)) => Some(c.max(w)),
            (a, b) => a.or(b),
        }
    }

    /// After a failed append or sync, restores the segment to the last good
    /// frame boundary so a retry re-appends cleanly. If the repair itself
    /// fails the tail may hold torn bytes: the store poisons itself and
    /// refuses appends until truncation, rotation or reopen heals the tail.
    fn repair_tail(&mut self) {
        let ok = self.wal_file.set_len(self.wal_len).is_ok() && self.wal_file.sync_data().is_ok();
        if !ok {
            self.poisoned = true;
        }
    }

    /// Appends one commit record and applies the sync policy. On failure the
    /// record is **not** recorded: the tail is repaired to the previous frame
    /// boundary and a retry appends the same frame from scratch.
    pub fn append(&mut self, version: u64, payload: &[u8]) -> StoreResult<()> {
        if self.poisoned {
            return Err(StoreError::new(
                site::WAL_APPEND,
                io::ErrorKind::Other,
                "segment tail is poisoned by an unrepaired torn write",
            )
            .at(self.segment, self.wal_len));
        }
        let mut frame = self.frame_pool.take_buf();
        wal::encode_record_into(&mut frame, version, payload);
        let result = self.append_frame(version, &frame);
        frame.clear();
        self.frame_pool.put(frame);
        result
    }

    /// Records an injected failpoint firing: one counter bump plus a
    /// structured journal record naming the site.
    fn note_fault(&self, at: &'static str, kind: FaultKind, version: u64) {
        self.telemetry.count(|m| &m.fault_hits);
        self.telemetry.event(EventKind::FaultHit, version, || format!("{at}: injected {kind:?}"));
    }

    /// The fallible half of [`Store::append`], operating on an already-encoded
    /// frame so the buffer can return to the pool on every exit path.
    fn append_frame(&mut self, version: u64, frame: &[u8]) -> StoreResult<()> {
        if let Some(kind) = self.faults.check(site::WAL_APPEND) {
            self.note_fault(site::WAL_APPEND, kind, version);
            if kind == FaultKind::Torn {
                // Write a partial frame and fail *without* repairing — the
                // bytes a kill mid-append would leave on disk.
                let cut = (frame.len() / 2).max(1);
                let _ = self.wal_file.write_all(&frame[..cut]);
                let _ = self.wal_file.sync_data();
                self.poisoned = true;
            }
            return Err(StoreError::injected(site::WAL_APPEND, kind).at(self.segment, self.wal_len));
        }
        let write_started = self.telemetry.is_enabled().then(Instant::now);
        if let Err(e) = self.wal_file.write_all(frame) {
            self.repair_tail();
            return Err(StoreError::io(site::WAL_APPEND, &e).at(self.segment, self.wal_len));
        }
        if let Some(t0) = write_started {
            self.telemetry.observe_since(|m| &m.wal_append_ns, t0);
            self.telemetry.add(|m| &m.wal_append_bytes, frame.len() as u64);
        }
        let need_sync = match self.opts.sync {
            SyncPolicy::PerCommit => true,
            SyncPolicy::Interval(n) => self.unsynced + 1 >= n.max(1),
            SyncPolicy::Off => false,
        };
        if need_sync {
            if let Some(kind) = self.faults.check(site::WAL_SYNC) {
                self.note_fault(site::WAL_SYNC, kind, version);
                self.repair_tail();
                return Err(
                    StoreError::injected(site::WAL_SYNC, kind).at(self.segment, self.wal_len)
                );
            }
            let sync_started = self.telemetry.is_enabled().then(Instant::now);
            if let Err(e) = self.wal_file.sync_data() {
                self.repair_tail();
                return Err(StoreError::io(site::WAL_SYNC, &e).at(self.segment, self.wal_len));
            }
            if let Some(t0) = sync_started {
                self.telemetry.observe_since(|m| &m.wal_sync_ns, t0);
            }
            self.unsynced = 0;
        } else if matches!(self.opts.sync, SyncPolicy::Interval(_)) {
            self.unsynced += 1;
        }
        self.appended.push((version, self.wal_len));
        self.wal_len += frame.len() as u64;
        Ok(())
    }

    /// Drops every record of the current segment with a version above `v` —
    /// the durable half of a rollback. The frames are physically truncated so
    /// a crash cannot resurrect them. Also discards any poisoned torn bytes
    /// past the last good frame, healing the tail.
    pub fn truncate_to_version(&mut self, v: u64) -> StoreResult<()> {
        let op = "wal.truncate";
        let keep = self.appended.iter().position(|&(rv, _)| rv > v);
        let new_len = match keep {
            Some(idx) => self.appended[idx].1,
            // No record to drop, but a poisoned tail still needs cutting.
            None if self.poisoned => self.wal_len,
            None => return Ok(()),
        };
        self.wal_file
            .set_len(new_len)
            .and_then(|_| self.wal_file.sync_all())
            .map_err(|e| StoreError::io(op, &e).at(self.segment, new_len))?;
        if let Some(idx) = keep {
            self.appended.truncate(idx);
        }
        self.wal_len = new_len;
        self.unsynced = 0;
        self.poisoned = false;
        Ok(())
    }

    /// Writes a checkpoint image durably (tmp + fsync + rename + dir fsync),
    /// rotates the WAL to a fresh segment, and — without `retain_history` —
    /// prunes everything the new checkpoint supersedes.
    ///
    /// The operation is retry-idempotent: in-memory state only changes after
    /// every I/O step has succeeded, the temporary is recreated from scratch
    /// on each attempt, and a segment left behind by a previous failed
    /// rotation is reused empty.
    pub fn write_checkpoint(&mut self, state: &CheckpointState) -> StoreResult<()> {
        if let Some(kind) = self.faults.check(site::CKPT_WRITE) {
            self.note_fault(site::CKPT_WRITE, kind, state.version);
            return Err(StoreError::injected(site::CKPT_WRITE, kind));
        }
        let ckpt_started = self.telemetry.is_enabled().then(Instant::now);
        let image = checkpoint::encode(state);
        let tmp = self.dir.join("ckpt.tmp");
        {
            let werr = |e: &io::Error| StoreError::io(site::CKPT_WRITE, e);
            let mut f = File::create(&tmp).map_err(|e| werr(&e))?;
            f.write_all(&image).map_err(|e| werr(&e))?;
            f.sync_all().map_err(|e| werr(&e))?;
        }
        if let Some(kind) = self.faults.check(site::CKPT_RENAME) {
            self.note_fault(site::CKPT_RENAME, kind, state.version);
            return Err(StoreError::injected(site::CKPT_RENAME, kind));
        }
        let final_path = self.dir.join(checkpoint_name(state.version));
        fs::rename(&tmp, &final_path).map_err(|e| StoreError::io(site::CKPT_RENAME, &e))?;
        // Make the rename itself durable before truncating any WAL data that
        // the checkpoint supersedes.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        if let Some(t0) = ckpt_started {
            self.telemetry.observe_since(|m| &m.checkpoint_ns, t0);
        }

        // Seal the current segment and rotate to a fresh one.
        if let Some(kind) = self.faults.check(site::WAL_ROTATE) {
            self.note_fault(site::WAL_ROTATE, kind, state.version);
            return Err(StoreError::injected(site::WAL_ROTATE, kind).at(self.segment, self.wal_len));
        }
        let rotate_started = self.telemetry.is_enabled().then(Instant::now);
        if !self.poisoned {
            self.wal_file
                .sync_data()
                .map_err(|e| StoreError::io(site::WAL_ROTATE, &e).at(self.segment, self.wal_len))?;
        }
        let next = self.segment + 1;
        let next_path = self.dir.join(segment_name(next));
        let rerr = |e: &io::Error| StoreError::io(site::WAL_ROTATE, e).at(next, 0);
        let wal_file =
            match OpenOptions::new().create_new(true).append(true).read(true).open(&next_path) {
                Ok(f) => f,
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    // A previous rotation attempt created the segment but
                    // failed before the store switched to it: reuse it empty.
                    let f = OpenOptions::new()
                        .append(true)
                        .read(true)
                        .open(&next_path)
                        .map_err(|e| rerr(&e))?;
                    f.set_len(0).map_err(|e| rerr(&e))?;
                    f
                }
                Err(e) => return Err(rerr(&e)),
            };

        // Every I/O step succeeded: commit the new state.
        self.wal_file = wal_file;
        self.segment = next;
        self.segments.push(next);
        self.segments.sort_unstable();
        self.segments.dedup();
        self.wal_len = 0;
        self.appended.clear();
        self.unsynced = 0;
        self.poisoned = false;
        self.checkpoints.push(state.version);
        self.checkpoints.sort_unstable();
        self.checkpoints.dedup();
        if let Some(t0) = rotate_started {
            self.telemetry.observe_since(|m| &m.wal_rotate_ns, t0);
        }
        let segment = self.segment;
        self.telemetry.event(EventKind::Checkpoint, state.version, || {
            format!("checkpoint v{} written, wal rotated to segment {segment}", state.version)
        });

        if !self.opts.retain_history {
            // Everything at or below the checkpoint is reachable from the
            // image alone; drop sealed segments and older checkpoints. A file
            // already removed by a previous attempt is not an error.
            let perr = |e: &io::Error| StoreError::io("store.prune", e);
            let sealed: Vec<u64> =
                self.segments.iter().copied().filter(|&s| s < self.segment).collect();
            for seg in sealed {
                match fs::remove_file(self.dir.join(segment_name(seg))) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(perr(&e)),
                }
                self.segments.retain(|&s| s != seg);
            }
            let old: Vec<u64> =
                self.checkpoints.iter().copied().filter(|&v| v < state.version).collect();
            for v in old {
                match fs::remove_file(self.dir.join(checkpoint_name(v))) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(perr(&e)),
                }
                self.checkpoints.retain(|&c| c != v);
            }
        }
        Ok(())
    }

    /// Loads and integrity-checks the checkpoint image for `version`.
    pub fn load_checkpoint(&self, version: u64) -> StoreResult<CheckpointState> {
        let op = "ckpt.load";
        let mut bytes = Vec::new();
        File::open(self.dir.join(checkpoint_name(version)))
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| StoreError::io(op, &e))?;
        let state = checkpoint::decode(&bytes).map_err(|e| StoreError::io(op, &e))?;
        if state.version != version {
            return Err(StoreError::new(
                op,
                io::ErrorKind::InvalidData,
                format!("checkpoint file for v{version} holds v{}", state.version),
            ));
        }
        Ok(state)
    }

    /// The greatest retained checkpoint version that is ≤ `version`.
    pub fn checkpoint_at_or_before(&self, version: u64) -> Option<u64> {
        self.checkpoints.iter().copied().filter(|&v| v <= version).max()
    }

    /// Collects every valid record with `after < version ≤ up_to` across all
    /// retained segments, oldest segment first. Per segment the scan stops at
    /// the first torn or corrupt frame, matching what recovery would keep.
    pub fn replay_records(&self, after: u64, up_to: u64) -> StoreResult<Vec<WalRecord>> {
        let mut out = Vec::new();
        for &seg in &self.segments {
            let bytes = fs::read(self.dir.join(segment_name(seg)))
                .map_err(|e| StoreError::io("wal.replay", &e).at(seg, 0))?;
            for rec in wal::scan(&bytes).records {
                if rec.version > after && rec.version <= up_to {
                    out.push(rec);
                }
            }
        }
        out.sort_by_key(|r| r.version);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pul_store_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn shardless(version: u64) -> CheckpointState {
        CheckpointState {
            version,
            epoch: 0,
            sharded: false,
            root_id: 0,
            root_label: String::new(),
            shards: vec![ShardSnapshot {
                doc: format!("<d xml:id=\"1\" v=\"{version}\"/>"),
                labels: vec!["1 0-1;0-9;0;E;-;-;FL".into()],
                next_id: 2,
                version,
                interval_lo: Vec::new(),
                interval_hi: Vec::new(),
            }],
        }
    }

    #[test]
    fn create_append_reopen() {
        let dir = tmp_dir("basic");
        let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
        store.append(1, b"first").unwrap();
        store.append(2, b"second").unwrap();
        assert_eq!(store.last_version(), Some(2));
        drop(store);

        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(store.last_version(), Some(2));
        let recs = store.replay_records(0, u64::MAX).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].payload, b"second");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_existing_store() {
        let dir = tmp_dir("refuse");
        let _store = Store::create(&dir, StoreOptions::default()).unwrap();
        let err = Store::create(&dir, StoreOptions::default()).unwrap_err();
        assert_eq!(err.kind, io::ErrorKind::AlreadyExists);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_truncates_torn_tail() {
        let dir = tmp_dir("torn");
        let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
        store.append(1, b"keep-me").unwrap();
        store.append(2, b"torn-away").unwrap();
        drop(store);

        // Chop the file mid-way through the second record.
        let path = dir.join(segment_name(0));
        let full = fs::read(&path).unwrap();
        let first_len = (wal::RECORD_HEADER_LEN + b"keep-me".len()) as u64;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(first_len + 5).unwrap();
        drop(f);
        assert!(fs::read(&path).unwrap().len() < full.len());

        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(store.last_version(), Some(1));
        assert_eq!(fs::read(&path).unwrap().len() as u64, first_len);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_to_version_discards_precisely() {
        let dir = tmp_dir("rollback");
        let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
        for v in 1..=4 {
            store.append(v, format!("payload-{v}").as_bytes()).unwrap();
        }
        store.truncate_to_version(2).unwrap();
        assert_eq!(store.last_version(), Some(2));
        drop(store);
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let recs = store.replay_records(0, u64::MAX).unwrap();
        assert_eq!(recs.iter().map(|r| r.version).collect::<Vec<_>>(), vec![1, 2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_rotates_and_replay_spans_segments() {
        let dir = tmp_dir("rotate");
        let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
        store.append(1, b"one").unwrap();
        store.append(2, b"two").unwrap();
        store.write_checkpoint(&shardless(2)).unwrap();
        assert_eq!(store.wal_bytes(), 0);
        store.append(3, b"three").unwrap();
        drop(store);

        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(store.last_checkpoint(), Some(2));
        assert_eq!(store.last_version(), Some(3));
        // Tail replay after the checkpoint sees only v3.
        let tail = store.replay_records(2, u64::MAX).unwrap();
        assert_eq!(tail.iter().map(|r| r.version).collect::<Vec<_>>(), vec![3]);
        // Historic replay still reaches the sealed segment.
        let all = store.replay_records(0, u64::MAX).unwrap();
        assert_eq!(all.iter().map(|r| r.version).collect::<Vec<_>>(), vec![1, 2, 3]);
        let ckpt = store.load_checkpoint(2).unwrap();
        assert_eq!(ckpt, shardless(2));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn without_retain_history_checkpoint_prunes() {
        let dir = tmp_dir("prune");
        let opts = StoreOptions { retain_history: false, ..StoreOptions::default() };
        let mut store = Store::create(&dir, opts).unwrap();
        store.append(1, b"one").unwrap();
        store.write_checkpoint(&shardless(1)).unwrap();
        store.append(2, b"two").unwrap();
        store.write_checkpoint(&shardless(2)).unwrap();
        assert_eq!(store.checkpoints(), &[2]);
        assert!(!dir.join(segment_name(0)).exists());
        assert!(!dir.join(checkpoint_name(1)).exists());
        assert!(dir.join(checkpoint_name(2)).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_at_or_before_picks_nearest() {
        let dir = tmp_dir("nearest");
        let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
        store.append(1, b"a").unwrap();
        store.write_checkpoint(&shardless(1)).unwrap();
        store.append(2, b"b").unwrap();
        store.append(3, b"c").unwrap();
        store.write_checkpoint(&shardless(3)).unwrap();
        assert_eq!(store.checkpoint_at_or_before(0), None);
        assert_eq!(store.checkpoint_at_or_before(1), Some(1));
        assert_eq!(store.checkpoint_at_or_before(2), Some(1));
        assert_eq!(store.checkpoint_at_or_before(3), Some(3));
        assert_eq!(store.checkpoint_at_or_before(99), Some(3));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interval_sync_policy_counts_appends() {
        let dir = tmp_dir("interval");
        let opts = StoreOptions { sync: SyncPolicy::Interval(3), ..StoreOptions::default() };
        let mut store = Store::create(&dir, opts).unwrap();
        for v in 1..=7 {
            store.append(v, b"x").unwrap();
        }
        // No assertion beyond "it works" — the policy only changes fsync
        // cadence, which the filesystem hides from us here.
        assert_eq!(store.last_version(), Some(7));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_transient_append_leaves_store_retryable() {
        let dir = tmp_dir("inj_transient");
        let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
        store.set_faults(
            FaultPlan::new(1).fail(site::WAL_APPEND, Trigger::Nth(2), FaultKind::Transient).arm(),
        );
        store.append(1, b"one").unwrap();
        let err = store.append(2, b"two").unwrap_err();
        assert!(err.is_transient());
        assert!(err.injected);
        assert_eq!(err.segment, Some(0));
        // The failed frame left no trace; the retry appends it cleanly.
        store.append(2, b"two").unwrap();
        assert_eq!(store.last_version(), Some(2));
        drop(store);
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let recs = store.replay_records(0, u64::MAX).unwrap();
        assert_eq!(recs.iter().map(|r| r.version).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(recs[1].payload, b"two");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_sync_failure_rolls_the_frame_back() {
        let dir = tmp_dir("inj_sync");
        let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
        store.set_faults(
            FaultPlan::new(1).fail(site::WAL_SYNC, Trigger::Nth(1), FaultKind::Transient).arm(),
        );
        let err = store.append(1, b"frame").unwrap_err();
        assert_eq!(err.op, site::WAL_SYNC);
        assert_eq!(store.last_version(), None, "unsynced frame is not recorded");
        assert_eq!(store.wal_bytes(), 0);
        // The tail was repaired: a retry writes exactly one frame.
        store.append(1, b"frame").unwrap();
        drop(store);
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let recs = store.replay_records(0, u64::MAX).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].payload, b"frame");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_poisons_until_truncation_heals() {
        let dir = tmp_dir("inj_torn");
        let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
        store.set_faults(
            FaultPlan::new(1).fail(site::WAL_APPEND, Trigger::Nth(2), FaultKind::Torn).arm(),
        );
        store.append(1, b"good").unwrap();
        let good_len = store.wal_bytes();
        let err = store.append(2, b"torn").unwrap_err();
        assert!(!err.is_transient());
        assert!(store.is_poisoned());
        // Torn bytes really are on disk past the last good frame.
        let on_disk = fs::read(dir.join(segment_name(0))).unwrap();
        assert!(on_disk.len() as u64 > good_len);
        // Every append is refused while poisoned — even of a fresh version.
        assert!(store.append(2, b"retry").is_err());
        // Rolling back to the last good version cuts the torn bytes.
        store.truncate_to_version(1).unwrap();
        assert!(!store.is_poisoned());
        assert_eq!(fs::read(dir.join(segment_name(0))).unwrap().len() as u64, good_len);
        store.append(2, b"retry").unwrap();
        let recs = store.replay_records(0, u64::MAX).unwrap();
        assert_eq!(recs.iter().map(|r| r.version).collect::<Vec<_>>(), vec![1, 2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_heals_across_reopen() {
        let dir = tmp_dir("inj_torn_reopen");
        let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
        store.set_faults(
            FaultPlan::new(1).fail(site::WAL_APPEND, Trigger::Nth(2), FaultKind::Torn).arm(),
        );
        store.append(1, b"good").unwrap();
        assert!(store.append(2, b"torn").is_err());
        drop(store);
        // Reopen scans past the torn bytes and truncates them, exactly as
        // recovery from a real kill would.
        let mut store = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(store.last_version(), Some(1));
        assert!(!store.is_poisoned());
        store.append(2, b"after").unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_failure_is_retryable() {
        let dir = tmp_dir("inj_ckpt");
        let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
        store.append(1, b"one").unwrap();
        store.set_faults(
            FaultPlan::new(1)
                .fail(site::CKPT_RENAME, Trigger::Nth(1), FaultKind::Transient)
                .fail(site::WAL_ROTATE, Trigger::Nth(1), FaultKind::Transient)
                .arm(),
        );
        // First attempt dies before the rename: no checkpoint, WAL intact.
        let err = store.write_checkpoint(&shardless(1)).unwrap_err();
        assert_eq!(err.op, site::CKPT_RENAME);
        assert_eq!(store.last_checkpoint(), None);
        assert_eq!(store.last_version(), Some(1));
        // Second attempt dies at rotation, after the image was renamed in.
        let err = store.write_checkpoint(&shardless(1)).unwrap_err();
        assert_eq!(err.op, site::WAL_ROTATE);
        assert_eq!(store.last_checkpoint(), None, "state not updated until rotation succeeds");
        // Third attempt succeeds end to end and the store is coherent.
        store.write_checkpoint(&shardless(1)).unwrap();
        assert_eq!(store.last_checkpoint(), Some(1));
        assert_eq!(store.wal_bytes(), 0);
        store.append(2, b"two").unwrap();
        drop(store);
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(store.last_checkpoint(), Some(1));
        assert_eq!(store.last_version(), Some(2));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_rotation_reuses_a_leftover_segment() {
        let dir = tmp_dir("inj_rotate_leftover");
        let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
        store.append(1, b"one").unwrap();
        // Simulate a previous attempt that created the next segment (with
        // junk) before dying: rotation must reuse it empty.
        fs::write(dir.join(segment_name(1)), b"junk-from-failed-attempt").unwrap();
        store.write_checkpoint(&shardless(1)).unwrap();
        assert_eq!(store.wal_bytes(), 0);
        store.append(2, b"two").unwrap();
        let recs = store.replay_records(0, u64::MAX).unwrap();
        assert_eq!(recs.iter().map(|r| r.version).collect::<Vec<_>>(), vec![1, 2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_rotation_heals_a_poisoned_tail() {
        let dir = tmp_dir("inj_ckpt_heal");
        let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
        store.set_faults(
            FaultPlan::new(1).fail(site::WAL_APPEND, Trigger::Nth(2), FaultKind::Torn).arm(),
        );
        store.append(1, b"good").unwrap();
        assert!(store.append(2, b"torn").is_err());
        assert!(store.is_poisoned());
        // A checkpoint at the durable version rotates to a clean segment.
        store.write_checkpoint(&shardless(1)).unwrap();
        assert!(!store.is_poisoned());
        store.append(2, b"after").unwrap();
        assert_eq!(store.last_version(), Some(2));
        fs::remove_dir_all(&dir).unwrap();
    }
}
