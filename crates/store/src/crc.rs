//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding WAL records and checkpoint images. Hand-rolled table-driven
//! implementation: the store depends on nothing outside `std`.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Feeds `data` into a running CRC state (start from [`crc32`]'s seed when
/// chaining slices by hand).
fn update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = TABLE[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// The CRC-32 of one contiguous byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_parts(&[data])
}

/// The CRC-32 of the concatenation of `parts`, without materialising it.
pub fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let mut state = 0xFFFF_FFFFu32;
    for part in parts {
        state = update(state, part);
    }
    state ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn parts_equal_concatenation() {
        assert_eq!(crc32_parts(&[b"1234", b"56789"]), crc32(b"123456789"));
        assert_eq!(crc32_parts(&[b"", b"a", b"", b"bc"]), crc32(b"abc"));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = crc32(b"pending update list");
        let mut bytes = b"pending update list".to_vec();
        for i in 0..bytes.len() * 8 {
            bytes[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&bytes), base, "bit {i} undetected");
            bytes[i / 8] ^= 1 << (i % 8);
        }
    }
}
