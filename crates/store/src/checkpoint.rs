//! Checkpoint images: one contiguous, checksummed snapshot of a session.
//!
//! A checkpoint freezes everything a backend needs to rebuild itself at one
//! version: per shard (a single executor is the one-shard case) the
//! identified document serialization, every node label in its lossless
//! compact form, the fresh-identifier counter and the routing interval, plus
//! the session-level fields (version, root identity). The store writes the
//! encoded image as **one** write to a temporary file, fsyncs, and renames it
//! into place — a crash leaves either the previous checkpoint set or the new
//! one, never a half image. A trailing CRC-32 guards the loader against
//! silent corruption.

use std::io;

use crate::crc::crc32;

/// Format magic opening every checkpoint image.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"XCKP";

/// Current encoding version. Format 2 added the session compaction epoch;
/// format 1 images (pre-epoch) still decode, with `epoch = 0`.
pub const CHECKPOINT_FORMAT: u32 = 2;

/// The frozen state of one shard (a single executor checkpoints as exactly
/// one shard with an empty routing interval).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// The shard document's identified serialization (node ids preserved).
    pub doc: String,
    /// Every label as `"<id> <compact>"` — the lossless compact label form.
    pub labels: Vec<String>,
    /// The shard's fresh-identifier counter (restored with `reserve_ids`, so
    /// identifiers minted after recovery never collide with dead slots).
    pub next_id: u64,
    /// The shard core's own version counter (shards skipped by a commit stay
    /// behind the session version).
    pub version: u64,
    /// Routing interval low key digits (empty for a single executor).
    pub interval_lo: Vec<u8>,
    /// Routing interval high key digits (empty for a single executor).
    pub interval_hi: Vec<u8>,
}

/// The full frozen state of a session at one version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointState {
    /// The session version the snapshot freezes.
    pub version: u64,
    /// The session's compaction epoch at the snapshot (0 for sessions that
    /// never compacted, and for format-1 images written before epochs).
    pub epoch: u64,
    /// Whether the snapshot came from a sharded session.
    pub sharded: bool,
    /// The root element identifier (sharded sessions only; 0 otherwise).
    pub root_id: u64,
    /// The global root label in compact form (sharded sessions only).
    pub root_label: String,
    /// One snapshot per shard, in shard order.
    pub shards: Vec<ShardSnapshot>,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("corrupt checkpoint: {what}"))
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.bytes.len() - self.at < n {
            return Err(corrupt("unexpected end of image"));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn bytes(&mut self) -> io::Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> io::Result<String> {
        String::from_utf8(self.bytes()?).map_err(|_| corrupt("non-UTF-8 string"))
    }
}

/// Encodes a checkpoint into its on-disk image (magic, format, body, CRC).
pub fn encode(state: &CheckpointState) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    put_u32(&mut out, CHECKPOINT_FORMAT);
    put_u64(&mut out, state.version);
    put_u64(&mut out, state.epoch);
    out.push(u8::from(state.sharded));
    put_u64(&mut out, state.root_id);
    put_str(&mut out, &state.root_label);
    put_u32(&mut out, state.shards.len() as u32);
    for shard in &state.shards {
        put_str(&mut out, &shard.doc);
        put_u32(&mut out, shard.labels.len() as u32);
        for label in &shard.labels {
            put_str(&mut out, label);
        }
        put_u64(&mut out, shard.next_id);
        put_u64(&mut out, shard.version);
        put_bytes(&mut out, &shard.interval_lo);
        put_bytes(&mut out, &shard.interval_hi);
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Decodes (and integrity-checks) a checkpoint image.
pub fn decode(bytes: &[u8]) -> io::Result<CheckpointState> {
    if bytes.len() < 4 + 4 + 4 {
        return Err(corrupt("image too short"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(tail.try_into().expect("4 bytes"));
    if crc32(body) != stored_crc {
        return Err(corrupt("checksum mismatch"));
    }
    let mut r = Reader { bytes: body, at: 0 };
    if r.take(4)? != CHECKPOINT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let format = r.u32()?;
    if format == 0 || format > CHECKPOINT_FORMAT {
        return Err(corrupt("unknown format version"));
    }
    let version = r.u64()?;
    // Format 1 predates compaction epochs: such a session never compacted.
    let epoch = if format >= 2 { r.u64()? } else { 0 };
    let sharded = r.take(1)?[0] != 0;
    let root_id = r.u64()?;
    let root_label = r.string()?;
    let n_shards = r.u32()? as usize;
    let mut shards = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        let doc = r.string()?;
        let n_labels = r.u32()? as usize;
        let mut labels = Vec::with_capacity(n_labels);
        for _ in 0..n_labels {
            labels.push(r.string()?);
        }
        let next_id = r.u64()?;
        let shard_version = r.u64()?;
        let interval_lo = r.bytes()?;
        let interval_hi = r.bytes()?;
        shards.push(ShardSnapshot {
            doc,
            labels,
            next_id,
            version: shard_version,
            interval_lo,
            interval_hi,
        });
    }
    if r.at != r.bytes.len() {
        return Err(corrupt("trailing bytes after the last shard"));
    }
    Ok(CheckpointState { version, epoch, sharded, root_id, root_label, shards })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointState {
        CheckpointState {
            version: 42,
            epoch: 3,
            sharded: true,
            root_id: 1,
            root_label: "0-1;0-9;0;E;-;-;FL".into(),
            shards: vec![
                ShardSnapshot {
                    doc: "<r xml:id=\"1\"><a xml:id=\"2\"/></r>".into(),
                    labels: vec!["1 0-1;0-9;0;E;-;-;FL".into(), "2 0-2;0-3;1;E;1;-;FL".into()],
                    next_id: 17,
                    version: 42,
                    interval_lo: vec![0, 1],
                    interval_hi: vec![0, 5],
                },
                ShardSnapshot {
                    doc: "<r xml:id=\"1\"/>".into(),
                    labels: vec!["1 0-5;0-9;0;E;-;-;FL".into()],
                    next_id: 17,
                    version: 40,
                    interval_lo: vec![0, 5],
                    interval_hi: vec![0, 9],
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let state = sample();
        assert_eq!(decode(&encode(&state)).unwrap(), state);
        let single = CheckpointState {
            version: 0,
            epoch: 0,
            sharded: false,
            root_id: 0,
            root_label: String::new(),
            shards: vec![ShardSnapshot {
                doc: "<d xml:id=\"1\"/>".into(),
                labels: vec!["1 0-1;0-9;0;E;-;-;FL".into()],
                next_id: 2,
                version: 0,
                interval_lo: Vec::new(),
                interval_hi: Vec::new(),
            }],
        };
        assert_eq!(decode(&encode(&single)).unwrap(), single);
    }

    /// Encodes `state` the way format 1 did (no epoch field), so the
    /// backward-compatibility path is exercised against real layout.
    fn encode_format1(state: &CheckpointState) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        put_u32(&mut out, 1);
        put_u64(&mut out, state.version);
        out.push(u8::from(state.sharded));
        put_u64(&mut out, state.root_id);
        put_str(&mut out, &state.root_label);
        put_u32(&mut out, state.shards.len() as u32);
        for shard in &state.shards {
            put_str(&mut out, &shard.doc);
            put_u32(&mut out, shard.labels.len() as u32);
            for label in &shard.labels {
                put_str(&mut out, label);
            }
            put_u64(&mut out, shard.next_id);
            put_u64(&mut out, shard.version);
            put_bytes(&mut out, &shard.interval_lo);
            put_bytes(&mut out, &shard.interval_hi);
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    #[test]
    fn format1_images_decode_with_epoch_zero() {
        let mut state = sample();
        state.epoch = 0; // format 1 cannot carry an epoch
        let decoded = decode(&encode_format1(&state)).unwrap();
        assert_eq!(decoded, state);
        assert_eq!(decoded.epoch, 0);
    }

    #[test]
    fn future_formats_are_rejected() {
        let mut bytes = encode(&sample());
        // Bump the format field past the current version and refresh the CRC.
        let future = (CHECKPOINT_FORMAT + 1).to_le_bytes();
        bytes[4..8].copy_from_slice(&future);
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn any_flipped_bit_is_rejected() {
        let bytes = encode(&sample());
        for i in (0..bytes.len()).step_by(7) {
            let mut copy = bytes.clone();
            copy[i] ^= 0x10;
            assert!(decode(&copy).is_err(), "flip at byte {i} accepted");
        }
    }

    #[test]
    fn truncated_images_are_rejected() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "truncation at {cut} accepted");
        }
    }
}
