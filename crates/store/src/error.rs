//! The store's structured error type.
//!
//! Every fallible [`Store`](crate::Store) operation returns a [`StoreError`]
//! that preserves the underlying [`std::io::ErrorKind`] (instead of
//! stringifying it away) plus the operation name and — where the failure
//! names one — the WAL segment and byte offset. The kind is what retry
//! policies classify on: [`StoreError::is_transient`] is the single
//! definition of "worth retrying" for the whole workspace.

use std::fmt;
use std::io;

use crate::faults::FaultKind;

/// Result alias for store operations.
pub type StoreResult<T> = std::result::Result<T, StoreError>;

/// A structured store failure. See the module documentation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// The operation that failed — a failpoint site name such as
    /// `"wal.append"`, or a coarser verb like `"store.open"`.
    pub op: &'static str,
    /// The preserved `std::io::ErrorKind` (logical/format failures surface as
    /// [`io::ErrorKind::InvalidData`]).
    pub kind: io::ErrorKind,
    /// The WAL segment index involved, when the failure names one.
    pub segment: Option<u64>,
    /// The byte offset within that segment, when known.
    pub offset: Option<u64>,
    /// Whether the failure was injected by an armed
    /// [`FaultPlan`](crate::faults::FaultPlan).
    pub injected: bool,
    /// Human-readable detail.
    pub msg: String,
}

impl StoreError {
    /// A new error for `op` wrapping an `io::ErrorKind` and message.
    pub fn new(op: &'static str, kind: io::ErrorKind, msg: impl Into<String>) -> StoreError {
        StoreError { op, kind, segment: None, offset: None, injected: false, msg: msg.into() }
    }

    /// The error an armed fault of `kind` injects at `op`.
    pub fn injected(op: &'static str, kind: FaultKind) -> StoreError {
        StoreError {
            op,
            kind: kind.io_kind(),
            segment: None,
            offset: None,
            injected: true,
            msg: format!("injected {kind:?} fault"),
        }
    }

    /// Wraps an `io::Error` from `op`, preserving its kind.
    pub fn io(op: &'static str, e: &io::Error) -> StoreError {
        StoreError::new(op, e.kind(), e.to_string())
    }

    /// Attaches the WAL position the failure concerns.
    pub fn at(mut self, segment: u64, offset: u64) -> StoreError {
        self.segment = Some(segment);
        self.offset = Some(offset);
        self
    }

    /// Whether a retry may succeed: interrupted, would-block and timed-out
    /// conditions are transient; everything else (including torn writes and
    /// logical corruption) is permanent.
    pub fn is_transient(&self) -> bool {
        transient_kind(self.kind)
    }
}

/// The transient/permanent classification on the raw kind, shared with the
/// façade's `Error::Io`.
pub fn transient_kind(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} failed ({:?})", self.op, self.kind)?;
        if let Some(segment) = self.segment {
            write!(f, " [segment {segment}")?;
            if let Some(offset) = self.offset {
                write!(f, ", offset {offset}")?;
            }
            write!(f, "]")?;
        }
        write!(f, ": {}", self.msg)
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::site;

    #[test]
    fn classification_follows_the_kind() {
        assert!(StoreError::new(site::WAL_APPEND, io::ErrorKind::Interrupted, "x").is_transient());
        assert!(StoreError::new(site::WAL_SYNC, io::ErrorKind::TimedOut, "x").is_transient());
        assert!(!StoreError::new(site::WAL_APPEND, io::ErrorKind::Other, "x").is_transient());
        assert!(!StoreError::new("store.open", io::ErrorKind::NotFound, "x").is_transient());
        assert!(StoreError::injected(site::WAL_APPEND, FaultKind::Transient).is_transient());
        assert!(!StoreError::injected(site::WAL_APPEND, FaultKind::Permanent).is_transient());
        assert!(!StoreError::injected(site::WAL_APPEND, FaultKind::Torn).is_transient());
    }

    #[test]
    fn display_carries_op_and_wal_position() {
        let e = StoreError::new(site::WAL_APPEND, io::ErrorKind::Other, "disk on fire").at(3, 128);
        let s = e.to_string();
        assert!(s.contains("wal.append"), "{s}");
        assert!(s.contains("segment 3"), "{s}");
        assert!(s.contains("offset 128"), "{s}");
        assert!(s.contains("disk on fire"), "{s}");
    }
}
