//! Small object pools for the per-commit hot path.
//!
//! Every commit through the durable stack used to mint the same short-lived
//! allocations from scratch: the WAL frame encode buffer, the commit-record
//! payload buffer, the resolve scratch vectors of the executors, the round
//! scratch of the ingest drainer. None of them outlives the commit, so their
//! backbones can be recycled instead of round-tripping through the global
//! allocator on every round.
//!
//! [`Pool<T>`] is deliberately tiny: a LIFO stack of idle objects with a hard
//! retention cap and **high-water trimming** — the pool tracks the maximum
//! number of objects simultaneously checked out over a trim window and, at
//! the window boundary, drops idle objects beyond that mark. A burst (one
//! huge batch, a wide sharded resolve) temporarily grows the pool; steady
//! state shrinks it back to what the workload actually uses, so pooling never
//! converts a transient spike into permanently retained memory.
//!
//! Pools are plain `&mut self` values. Call sites that only hold `&self`
//! (e.g. `resolve`) wrap one in [`SharedPool`], a `Mutex`-guarded handle
//! whose clones share the same pool — a pool is a cache, so sharing between
//! cloned sessions is harmless.

use std::sync::{Arc, Mutex};

/// How many `put` calls make one trim window.
const TRIM_INTERVAL: usize = 1024;

/// Capacity (in items — bytes for `Vec<u8>` buffers) a pooled object may
/// retain between uses. One burst commit can grow a recycled backbone to
/// many megabytes; without a cap the pool would pin that peak forever, since
/// `take_buf`/`take_vec` clear the *length* but never the capacity, and
/// high-water trimming drops whole objects, not bytes. Oversized objects are
/// shrunk back to this cap when they return to the pool.
pub const DEFAULT_CAPACITY_CAP: usize = 1 << 16;

/// Capacity shedding for pooled objects: the pool calls
/// [`shrink_to_cap`](Shrink::shrink_to_cap) on every returned object so a
/// transient burst cannot pin its peak backbone for the pool's lifetime.
pub trait Shrink {
    /// Sheds retained capacity beyond `cap` items, returning whether any
    /// capacity was actually released. Objects without meaningful capacity
    /// keep the default no-op.
    fn shrink_to_cap(&mut self, _cap: usize) -> bool {
        false
    }
}

impl<T> Shrink for Vec<T> {
    fn shrink_to_cap(&mut self, cap: usize) -> bool {
        if self.capacity() > cap {
            // The pooled object is cleared (or about to be cleared on take);
            // truncate defensively so `shrink_to` can actually release.
            self.truncate(cap);
            self.shrink_to(cap);
            true
        } else {
            false
        }
    }
}

/// Counters describing how a pool has behaved so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Objects served from the idle stack.
    pub reused: u64,
    /// Objects the caller had to create because the pool was empty.
    pub minted: u64,
    /// Idle objects dropped by high-water trimming, plus oversized backbones
    /// shrunk back to the capacity cap on return (see [`Shrink`]).
    pub trimmed: u64,
    /// Objects currently idle in the pool.
    pub idle: usize,
}

/// A LIFO object pool with a retention cap and high-water trimming.
#[derive(Debug)]
pub struct Pool<T> {
    idle: Vec<T>,
    /// Hard cap on retained idle objects; 0 disables pooling entirely (every
    /// `put` drops, every `take` mints).
    max_idle: usize,
    /// Capacity (items) a returned object may retain (see [`Shrink`]).
    capacity_cap: usize,
    /// Objects currently checked out (best effort: callers that never return
    /// an object simply leave the counter high until the window resets).
    in_use: usize,
    /// Maximum of `in_use` observed in the current trim window.
    high_water: usize,
    /// `put` calls since the last trim.
    puts: usize,
    reused: u64,
    minted: u64,
    trimmed: u64,
}

impl<T: Shrink> Pool<T> {
    /// Creates a pool retaining at most `max_idle` idle objects, each capped
    /// at [`DEFAULT_CAPACITY_CAP`] items of retained capacity.
    pub fn new(max_idle: usize) -> Self {
        Pool::with_capacity_cap(max_idle, DEFAULT_CAPACITY_CAP)
    }

    /// Creates a pool retaining at most `max_idle` idle objects, shrinking
    /// any returned object whose capacity exceeds `capacity_cap` items.
    pub fn with_capacity_cap(max_idle: usize, capacity_cap: usize) -> Self {
        Pool {
            idle: Vec::new(),
            max_idle,
            capacity_cap,
            in_use: 0,
            high_water: 0,
            puts: 0,
            reused: 0,
            minted: 0,
            trimmed: 0,
        }
    }

    /// Whether the pool retains anything at all (capacity 0 = disabled).
    pub fn is_enabled(&self) -> bool {
        self.max_idle > 0
    }

    /// Takes an idle object, or creates one with `make` when none is idle.
    pub fn take_or(&mut self, make: impl FnOnce() -> T) -> T {
        self.in_use += 1;
        self.high_water = self.high_water.max(self.in_use);
        match self.idle.pop() {
            Some(v) => {
                self.reused += 1;
                v
            }
            None => {
                self.minted += 1;
                make()
            }
        }
    }

    /// Returns an object to the pool. The object is retained only while the
    /// idle stack is below the cap; the caller must have reset it to a
    /// reusable state (pools never clear on behalf of the caller — they
    /// cannot know what "clear" means for an arbitrary `T`). An object whose
    /// capacity outgrew the pool's capacity cap is shrunk back before it is
    /// retained, so one burst cannot pin its peak backbone forever.
    pub fn put(&mut self, mut value: T) {
        self.in_use = self.in_use.saturating_sub(1);
        if self.idle.len() < self.max_idle {
            if value.shrink_to_cap(self.capacity_cap) {
                self.trimmed += 1;
            }
            self.idle.push(value);
        }
        self.puts += 1;
        if self.puts >= TRIM_INTERVAL {
            self.trim();
        }
    }

    /// Drops idle objects beyond the window's high-water mark and opens a new
    /// window. Called automatically every [`TRIM_INTERVAL`] puts.
    pub fn trim(&mut self) {
        let keep = self.high_water.min(self.max_idle);
        if self.idle.len() > keep {
            self.trimmed += (self.idle.len() - keep) as u64;
            self.idle.truncate(keep);
        }
        self.high_water = self.in_use;
        self.puts = 0;
    }

    /// The pool's behaviour counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            reused: self.reused,
            minted: self.minted,
            trimmed: self.trimmed,
            idle: self.idle.len(),
        }
    }
}

impl Pool<Vec<u8>> {
    /// Takes a cleared byte buffer (the common WAL/payload encode case).
    pub fn take_buf(&mut self) -> Vec<u8> {
        let mut buf = self.take_or(Vec::new);
        buf.clear();
        buf
    }
}

/// A shareable, interior-mutable pool handle. Clones share the underlying
/// pool (a pool is a cache; sharing it between cloned sessions is harmless
/// and keeps `Clone` cheap).
#[derive(Debug)]
pub struct SharedPool<T>(Arc<Mutex<Pool<T>>>);

// Not derived: a derived `Clone` would demand `T: Clone`, but cloning the
// handle only clones the `Arc` — pooled objects are never cloned.
impl<T> Clone for SharedPool<T> {
    fn clone(&self) -> Self {
        SharedPool(Arc::clone(&self.0))
    }
}

impl<T: Shrink> SharedPool<T> {
    /// Creates a shared pool retaining at most `max_idle` idle objects.
    pub fn new(max_idle: usize) -> Self {
        SharedPool(Arc::new(Mutex::new(Pool::new(max_idle))))
    }

    /// Takes an idle object, or creates one with `make`.
    pub fn take_or(&self, make: impl FnOnce() -> T) -> T {
        self.0.lock().expect("pool mutex poisoned").take_or(make)
    }

    /// Returns an object to the pool (see [`Pool::put`]).
    pub fn put(&self, value: T) {
        self.0.lock().expect("pool mutex poisoned").put(value);
    }

    /// The underlying pool's behaviour counters.
    pub fn stats(&self) -> PoolStats {
        self.0.lock().expect("pool mutex poisoned").stats()
    }
}

impl<T> SharedPool<Vec<T>> {
    /// Takes a cleared vector (the resolve/ingest scratch case).
    pub fn take_vec(&self) -> Vec<T> {
        let mut v = self.take_or(Vec::new);
        v.clear();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test scalar: no capacity to shed, keeps the trait's no-op default.
    impl Shrink for u32 {}

    #[test]
    fn take_put_reuses_objects() {
        let mut pool: Pool<Vec<u8>> = Pool::new(4);
        let a = pool.take_buf();
        assert_eq!(pool.stats().minted, 1);
        pool.put(a);
        let b = pool.take_buf();
        assert_eq!(pool.stats().reused, 1);
        assert!(b.is_empty(), "take_buf clears the recycled buffer");
        pool.put(b);
        assert_eq!(pool.stats().idle, 1);
    }

    #[test]
    fn retention_cap_bounds_the_idle_stack() {
        let mut pool: Pool<u32> = Pool::new(2);
        for i in 0..5 {
            pool.put(i);
        }
        assert_eq!(pool.stats().idle, 2, "puts beyond the cap drop");
    }

    #[test]
    fn capacity_zero_disables_pooling() {
        let mut pool: Pool<u32> = Pool::new(0);
        assert!(!pool.is_enabled());
        pool.put(1);
        assert_eq!(pool.stats().idle, 0);
        assert_eq!(pool.take_or(|| 9), 9);
        assert_eq!(pool.stats().minted, 1);
        assert_eq!(pool.stats().reused, 0);
    }

    #[test]
    fn high_water_trimming_sheds_burst_retention() {
        let mut pool: Pool<u32> = Pool::new(16);
        // burst: 8 simultaneously outstanding, all returned
        let burst: Vec<u32> = (0..8).map(|_| pool.take_or(|| 0)).collect();
        for v in burst {
            pool.put(v);
        }
        assert_eq!(pool.stats().idle, 8);
        // new window with a steady state of 1 outstanding
        pool.trim(); // window boundary: high-water was 8, keeps all 8
        let v = pool.take_or(|| 0);
        pool.put(v);
        pool.trim(); // this window's high water was 1 → trim idle to 1
        let stats = pool.stats();
        assert_eq!(stats.idle, 1, "steady state shrinks the pool: {stats:?}");
        assert_eq!(stats.trimmed, 7);
    }

    #[test]
    fn oversized_buffers_shrink_on_return() {
        let mut pool: Pool<Vec<u8>> = Pool::with_capacity_cap(4, 64);
        let mut buf = pool.take_buf();
        buf.resize(4096, 0); // burst: the backbone grows past the cap
        pool.put(buf);
        assert_eq!(pool.stats().trimmed, 1, "the shrink is counted");
        let recycled = pool.take_buf();
        assert!(
            recycled.capacity() <= 64,
            "peak capacity must not be pinned: {}",
            recycled.capacity()
        );
        pool.put(recycled);
        assert_eq!(pool.stats().trimmed, 1, "a within-cap return does not shrink");
    }

    #[test]
    fn within_cap_buffers_keep_their_backbone() {
        let mut pool: Pool<Vec<u8>> = Pool::with_capacity_cap(4, 1024);
        let mut buf = pool.take_buf();
        buf.resize(512, 0);
        let backbone = buf.capacity();
        pool.put(buf);
        let recycled = pool.take_buf();
        assert!(recycled.capacity() >= backbone, "reuse keeps the within-cap backbone");
        assert_eq!(pool.stats().trimmed, 0);
    }

    #[test]
    fn shared_pool_clones_share_the_pool() {
        let pool: SharedPool<Vec<u8>> = SharedPool::new(4);
        let clone = pool.clone();
        let v = pool.take_or(Vec::new);
        clone.put(v);
        assert_eq!(pool.stats().idle, 1);
        let _ = clone.take_or(Vec::new);
        assert_eq!(pool.stats().reused, 1);
    }
}
