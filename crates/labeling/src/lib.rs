//! # xlabel — update-tolerant XML labeling scheme
//!
//! The reasoning algorithms of the paper never access the document: they only
//! need to check the structural relationships of **Table 1** between the target
//! nodes of update operations. This crate provides the labeling scheme used for
//! that purpose (§4.1):
//!
//! * [`OrderKey`] — dynamic binary-string order keys in the style of
//!   CDBS/CDQS (Li, Ling, Hu): totally ordered byte strings between which a new
//!   key can always be generated *without modifying any existing key*, which is
//!   what makes the labeling tolerant to updates;
//! * [`NodeLabel`] — a Zhang containment label (`start`/`end` interval +
//!   `level`) extended — exactly as described in §4.1 — with the node type, the
//!   parent identifier and the identifier of the left sibling, so that **all**
//!   the relationships of Table 1 can be evaluated in constant time;
//! * [`Labeling`] — assignment of labels to every node of a document, plus
//!   incremental label generation for nodes inserted by PUL application;
//! * [`LabelInterval`] — half-open slices of the key space, used by the
//!   sharded executor to route operations to the shard whose label interval
//!   contains their target.

pub mod interval;
pub mod label;
pub mod labeling;
pub mod orderkey;

pub use interval::LabelInterval;
pub use label::NodeLabel;
pub use labeling::{Labeling, PatchReport};
pub use orderkey::OrderKey;
