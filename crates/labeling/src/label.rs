//! Extended containment labels and the Table 1 predicates.

use std::fmt;

use xdm::{NodeId, NodeKind};

use crate::orderkey::OrderKey;

/// The label attached to a node and shipped inside serialized PULs.
///
/// It is a Zhang containment label (interval `[start, end]` plus `level`)
/// extended, as described in §4.1 of the paper, with the node type, the parent
/// identifier and the identifier of the left sibling, plus first/last-child
/// flags. With this information every predicate of Table 1 can be evaluated in
/// constant time given the labels of the two nodes involved — no document
/// access is ever needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeLabel {
    /// Identifier of the labeled node.
    pub id: NodeId,
    /// Start of the containment interval.
    pub start: OrderKey,
    /// End of the containment interval.
    pub end: OrderKey,
    /// Depth of the node (root = 0).
    pub level: u32,
    /// Node type (τ).
    pub kind: NodeKind,
    /// Identifier of the parent node, if any.
    pub parent: Option<NodeId>,
    /// Identifier of the left sibling (among non-attribute children), if any.
    pub left_sibling: Option<NodeId>,
    /// Whether the node is the first non-attribute child of its parent.
    pub is_first_child: bool,
    /// Whether the node is the last non-attribute child of its parent.
    pub is_last_child: bool,
}

impl NodeLabel {
    /// `self ≺ other` — document-order precedence (Table 1, first row).
    ///
    /// With containment labels an ancestor starts before all its descendants,
    /// so comparing interval starts yields document order.
    pub fn precedes(&self, other: &NodeLabel) -> bool {
        self.start < other.start
    }

    /// `self ≺s other` — `self` is the left sibling of `other`.
    pub fn is_left_sibling_of(&self, other: &NodeLabel) -> bool {
        other.left_sibling == Some(self.id)
    }

    /// `self /c other` — `self` is a (non-attribute) child of `other`.
    pub fn is_child_of(&self, other: &NodeLabel) -> bool {
        self.kind != NodeKind::Attribute && self.parent == Some(other.id)
    }

    /// `self /a other` — `self` is an attribute of `other`.
    pub fn is_attribute_of(&self, other: &NodeLabel) -> bool {
        self.kind == NodeKind::Attribute && self.parent == Some(other.id)
    }

    /// `self /←c other` — `self` is the first child of `other`.
    pub fn is_first_child_of(&self, other: &NodeLabel) -> bool {
        self.is_child_of(other) && self.is_first_child
    }

    /// `self /→c other` — `self` is the last child of `other`.
    pub fn is_last_child_of(&self, other: &NodeLabel) -> bool {
        self.is_child_of(other) && self.is_last_child
    }

    /// `self //d other` — `self` is a (strict) descendant of `other`
    /// (attributes count as descendants of their element's ancestors and of the
    /// element itself).
    pub fn is_descendant_of(&self, other: &NodeLabel) -> bool {
        other.start < self.start && self.end < other.end
    }

    /// `self //¬a_d other` — `self` is a descendant of `other` but not one of
    /// its attributes (Table 1, last row; used by reduction rule O4 and by the
    /// non-local overriding conflict for `repC`).
    pub fn is_descendant_not_attr_of(&self, other: &NodeLabel) -> bool {
        self.is_descendant_of(other) && !self.is_attribute_of(other)
    }

    /// `self` and `other` are siblings (same parent, both non-attribute).
    pub fn is_sibling_of(&self, other: &NodeLabel) -> bool {
        self.kind != NodeKind::Attribute
            && other.kind != NodeKind::Attribute
            && self.parent.is_some()
            && self.parent == other.parent
            && self.id != other.id
    }

    // ------------------------------------------------------------------
    // compact serialization (used by the PUL XML exchange format)
    // ------------------------------------------------------------------

    /// Appends the dash-separated digits of a key to `out` in a single pass
    /// (one shared buffer, no per-digit `String` allocation).
    fn write_key(out: &mut String, k: &OrderKey) {
        use std::fmt::Write;
        for (i, d) in k.digits().iter().enumerate() {
            if i > 0 {
                out.push('-');
            }
            let _ = write!(out, "{d}");
        }
    }

    fn key_from_string(s: &str) -> Option<OrderKey> {
        let digits: Option<Vec<u8>> = s.split('-').map(|p| p.parse().ok()).collect();
        Some(OrderKey::from_digits(digits?))
    }

    /// Serializes the label into the compact form used inside PUL documents.
    pub fn to_compact_string(&self) -> String {
        use std::fmt::Write;
        let flags = match (self.is_first_child, self.is_last_child) {
            (true, true) => "FL",
            (true, false) => "F",
            (false, true) => "L",
            (false, false) => "-",
        };
        let mut out = String::with_capacity(4 * (self.start.len() + self.end.len()) + 24);
        Self::write_key(&mut out, &self.start);
        out.push(';');
        Self::write_key(&mut out, &self.end);
        let _ = write!(out, ";{};{};", self.level, self.kind.code());
        match self.parent {
            Some(p) => {
                let _ = write!(out, "{}", p.as_u64());
            }
            None => out.push('-'),
        }
        out.push(';');
        match self.left_sibling {
            Some(p) => {
                let _ = write!(out, "{}", p.as_u64());
            }
            None => out.push('-'),
        }
        out.push(';');
        out.push_str(flags);
        out
    }

    /// Parses a label from its compact form. `id` is supplied by the caller
    /// (the PUL operation serializes the target identifier separately).
    pub fn parse_compact(id: NodeId, s: &str) -> Option<NodeLabel> {
        let parts: Vec<&str> = s.split(';').collect();
        if parts.len() != 7 {
            return None;
        }
        let start = Self::key_from_string(parts[0])?;
        let end = Self::key_from_string(parts[1])?;
        let level: u32 = parts[2].parse().ok()?;
        let kind = NodeKind::from_code(parts[3].chars().next()?)?;
        let parse_opt = |s: &str| -> Option<Option<NodeId>> {
            if s == "-" {
                Some(None)
            } else {
                s.parse::<u64>().ok().map(|v| Some(NodeId::new(v)))
            }
        };
        let parent = parse_opt(parts[4])?;
        let left_sibling = parse_opt(parts[5])?;
        let (is_first_child, is_last_child) = match parts[6] {
            "FL" => (true, true),
            "F" => (true, false),
            "L" => (false, true),
            "-" => (false, false),
            _ => return None,
        };
        Some(NodeLabel {
            id,
            start,
            end,
            level,
            kind,
            parent,
            left_sibling,
            is_first_child,
            is_last_child,
        })
    }
}

impl fmt::Display for NodeLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{} lvl={} {}]", self.start, self.end, self.level, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn label(
        id: u64,
        start: Vec<u8>,
        end: Vec<u8>,
        level: u32,
        kind: NodeKind,
        parent: Option<u64>,
        left: Option<u64>,
        first: bool,
        last: bool,
    ) -> NodeLabel {
        NodeLabel {
            id: NodeId::new(id),
            start: OrderKey::from_digits(start),
            end: OrderKey::from_digits(end),
            level,
            kind,
            parent: parent.map(NodeId::new),
            left_sibling: left.map(NodeId::new),
            is_first_child: first,
            is_last_child: last,
        }
    }

    /// Hand-built labels for:
    /// `<root><a x="1"><b/></a><c/></root>` with ids root=1, a=2, x=3, b=4, c=5.
    fn fixture() -> (NodeLabel, NodeLabel, NodeLabel, NodeLabel, NodeLabel) {
        let root = label(1, vec![10], vec![100], 0, NodeKind::Element, None, None, false, false);
        let a = label(2, vec![20], vec![60], 1, NodeKind::Element, Some(1), None, true, false);
        let x = label(3, vec![25], vec![28], 2, NodeKind::Attribute, Some(2), None, false, false);
        let b = label(4, vec![30], vec![40], 2, NodeKind::Element, Some(2), None, true, true);
        let c = label(5, vec![70], vec![80], 1, NodeKind::Element, Some(1), Some(2), false, true);
        (root, a, x, b, c)
    }

    #[test]
    fn table1_precedes() {
        let (root, a, x, b, c) = fixture();
        assert!(root.precedes(&a));
        assert!(a.precedes(&b));
        assert!(b.precedes(&c));
        assert!(x.precedes(&b));
        assert!(!c.precedes(&a));
        assert!(!a.precedes(&a));
    }

    #[test]
    fn table1_sibling_and_child() {
        let (root, a, x, b, c) = fixture();
        assert!(a.is_left_sibling_of(&c));
        assert!(!c.is_left_sibling_of(&a));
        assert!(a.is_child_of(&root));
        assert!(c.is_child_of(&root));
        assert!(!x.is_child_of(&a), "attributes are not children");
        assert!(x.is_attribute_of(&a));
        assert!(!b.is_attribute_of(&a));
        assert!(a.is_sibling_of(&c));
        assert!(!a.is_sibling_of(&b));
    }

    #[test]
    fn table1_first_last_child() {
        let (root, a, _x, b, c) = fixture();
        assert!(a.is_first_child_of(&root));
        assert!(!a.is_last_child_of(&root));
        assert!(c.is_last_child_of(&root));
        assert!(b.is_first_child_of(&a) && b.is_last_child_of(&a));
    }

    #[test]
    fn table1_descendant() {
        let (root, a, x, b, c) = fixture();
        assert!(a.is_descendant_of(&root));
        assert!(b.is_descendant_of(&root));
        assert!(b.is_descendant_of(&a));
        assert!(x.is_descendant_of(&a));
        assert!(x.is_descendant_of(&root));
        assert!(!c.is_descendant_of(&a));
        assert!(!root.is_descendant_of(&a));
        // ¬a variant: an attribute is a descendant of its element but excluded
        assert!(!x.is_descendant_not_attr_of(&a));
        assert!(x.is_descendant_not_attr_of(&root));
        assert!(b.is_descendant_not_attr_of(&a));
    }

    #[test]
    fn compact_roundtrip() {
        let (_, a, x, _, c) = fixture();
        for l in [&a, &x, &c] {
            let s = l.to_compact_string();
            let back = NodeLabel::parse_compact(l.id, &s).unwrap();
            assert_eq!(&back, l, "roundtrip of {s}");
        }
    }

    #[test]
    fn compact_roundtrip_with_multi_byte_keys() {
        // Keys of several digits (as produced by repeated `OrderKey::between`
        // insertions) must serialize digit-by-digit and parse back exactly.
        let l = label(
            7,
            vec![1, 255, 3, 77, 128],
            vec![1, 255, 3, 77, 129, 42],
            9,
            NodeKind::Attribute,
            Some(3),
            Some(2),
            false,
            true,
        );
        let s = l.to_compact_string();
        assert!(s.starts_with("1-255-3-77-128;1-255-3-77-129-42;9;a;3;2;L"), "{s}");
        let back = NodeLabel::parse_compact(l.id, &s).unwrap();
        assert_eq!(back, l);
        // and a deep chain of between-keys survives the round trip
        let mut lo = OrderKey::from_digits(vec![100]);
        let hi = OrderKey::from_digits(vec![100, 1]);
        for _ in 0..64 {
            lo = OrderKey::between(&lo, &hi);
        }
        let deep = label(8, vec![1], vec![2], 0, NodeKind::Element, None, None, false, false);
        let deep = NodeLabel { start: lo.clone(), end: hi.clone(), ..deep };
        let back = NodeLabel::parse_compact(deep.id, &deep.to_compact_string()).unwrap();
        assert_eq!(back.start, lo);
        assert_eq!(back.end, hi);
    }

    #[test]
    fn parse_compact_rejects_garbage() {
        assert!(NodeLabel::parse_compact(NodeId::new(1), "not a label").is_none());
        assert!(NodeLabel::parse_compact(NodeId::new(1), "1;2;3;e;-;-").is_none());
        assert!(NodeLabel::parse_compact(NodeId::new(1), "1;2;x;e;-;-;F").is_none());
        assert!(NodeLabel::parse_compact(NodeId::new(1), "1;2;3;q;-;-;F").is_none());
    }

    #[test]
    fn display_mentions_level_and_kind() {
        let (root, ..) = fixture();
        let s = root.to_string();
        assert!(s.contains("lvl=0"));
        assert!(s.contains('e'));
    }
}
