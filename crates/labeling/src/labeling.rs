//! Label assignment over documents and incremental labeling of inserted nodes.

use xdm::{Document, IdSlab, JournalMark, NodeId, NodeKind};

use crate::label::NodeLabel;
use crate::orderkey::OrderKey;

/// One inverse entry of the labeling journal (mirrors the document journal of
/// [`xdm::journal`]: while a scope is active every label mutation records how
/// to undo itself, so a rollback is O(change)).
#[derive(Debug, Clone)]
enum LabelEntry {
    /// Remove a label the mutation inserted fresh.
    Drop(NodeId),
    /// Re-insert a label the mutation overwrote or removed.
    Restore(Box<NodeLabel>),
    /// Restore the whole label store (inverse of a wholesale replacement; the
    /// previous store is moved, not cloned).
    RestoreAll(IdSlab<NodeLabel>),
}

#[derive(Debug, Clone, Default)]
struct LabelJournal {
    entries: Vec<LabelEntry>,
}

/// The set of labels of a document's nodes.
///
/// A `Labeling` is computed once from the authoritative document (the labels
/// are then attached to the target nodes of the operations in a PUL), and is
/// only modified by the executor when updates are made effective: new nodes
/// receive labels generated *between* existing ones, so that no existing label
/// ever changes (§4.1). The labels are stored in the same dense [`IdSlab`]
/// layout as the document arena, so every Table-1 predicate lookup is an array
/// index.
#[derive(Debug, Clone, Default)]
pub struct Labeling {
    map: IdSlab<NodeLabel>,
    /// Inverse-entry log, present while a journal scope is active. Kept in
    /// lockstep with the document journal by the executor, so that a failed
    /// commit or a transaction rollback rewinds labels and document together.
    journal: Option<LabelJournal>,
}

/// Summary of an incremental [`Labeling::patch`]: how many nodes gained a
/// label and how many lost theirs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchReport {
    /// Nodes that received a fresh label.
    pub labeled: usize,
    /// Nodes whose label was dropped (removed from the document).
    pub removed: usize,
}

impl Labeling {
    /// Creates an empty labeling.
    pub fn new() -> Self {
        Labeling { map: IdSlab::new(), journal: None }
    }

    // ------------------------------------------------------------------
    // journal scopes (mirroring `xdm::Document`)
    // ------------------------------------------------------------------

    /// Whether a journal scope is currently active.
    pub fn journal_is_active(&self) -> bool {
        self.journal.is_some()
    }

    /// Opens (or enters) a journal scope: activates inverse recording if it is
    /// not already active and returns the current position.
    pub fn journal_mark(&mut self) -> JournalMark {
        let journal = self.journal.get_or_insert_with(LabelJournal::default);
        JournalMark::new(journal.entries.len())
    }

    /// Number of inverse entries currently recorded (0 when inactive).
    pub fn journal_len(&self) -> usize {
        self.journal.as_ref().map(|j| j.entries.len()).unwrap_or(0)
    }

    /// Undoes every label mutation recorded after `mark` (reverse order). The
    /// journal stays active; a no-op when no journal is active.
    pub fn journal_rewind(&mut self, mark: JournalMark) {
        let Some(mut journal) = self.journal.take() else { return };
        while journal.entries.len() > mark.position() {
            match journal.entries.pop().expect("non-empty journal") {
                LabelEntry::Drop(id) => {
                    self.map.remove(id);
                }
                LabelEntry::Restore(label) => {
                    self.map.insert(label.id, *label);
                }
                LabelEntry::RestoreAll(map) => {
                    self.map = map;
                }
            }
        }
        self.journal = Some(journal);
    }

    /// Closes the journal scope, dropping all recorded entries.
    pub fn journal_discard(&mut self) {
        self.journal = None;
    }

    #[inline]
    fn record(&mut self, entry: LabelEntry) {
        if let Some(journal) = &mut self.journal {
            journal.entries.push(entry);
        }
    }

    /// Computes the labeling of a whole document.
    pub fn assign(doc: &Document) -> Self {
        let mut labeling = Labeling::new();
        let Some(root) = doc.root() else { return labeling };
        // Two keys (start/end) per node, evenly spaced so that initial labels
        // are short; later insertions use `OrderKey::between`.
        let n = doc.node_count();
        let keys = OrderKey::evenly_spaced(2 * n + 2);
        let mut next = 0usize;
        let mut take = || {
            let k = keys[next].clone();
            next += 1;
            k
        };
        let mut labels = Vec::with_capacity(n);
        Self::collect_subtree(doc, root, 0, &mut take, &mut labels);
        // Insert in ascending identifier order: the slab anchors its dense
        // range at the first inserted id, and the traversal finishes element
        // labels in post-order — inserting as collected would strand every
        // id below the first-finished element in the spill map.
        labels.sort_unstable_by_key(|l| l.id);
        for label in labels {
            labeling.insert(label);
        }
        labeling
    }

    fn assign_subtree(
        &mut self,
        doc: &Document,
        id: NodeId,
        level: u32,
        take: &mut impl FnMut() -> OrderKey,
    ) {
        let mut labels = Vec::new();
        Self::collect_subtree(doc, id, level, take, &mut labels);
        labels.sort_unstable_by_key(|l| l.id);
        for label in labels {
            self.insert(label);
        }
    }

    /// Computes the labels of `id`'s subtree (attributes inside the element's
    /// interval, element labels closed in post-order) without storing them.
    fn collect_subtree(
        doc: &Document,
        id: NodeId,
        level: u32,
        take: &mut impl FnMut() -> OrderKey,
        out: &mut Vec<NodeLabel>,
    ) {
        let start = take();
        let Ok(data) = doc.node(id) else { return };
        // attributes first (they live inside the element's interval)
        for &a in &data.attributes {
            let astart = take();
            let aend = take();
            let label = NodeLabel {
                id: a,
                start: astart,
                end: aend,
                level: level + 1,
                kind: NodeKind::Attribute,
                parent: Some(id),
                left_sibling: None,
                is_first_child: false,
                is_last_child: false,
            };
            out.push(label);
        }
        for &c in &data.children {
            Self::collect_subtree(doc, c, level + 1, take, out);
        }
        let end = take();
        let parent = data.parent;
        let (left_sibling, is_first, is_last) = match parent {
            Some(p) => {
                let siblings = doc.children(p).unwrap_or(&[]);
                let pos = siblings.iter().position(|&s| s == id);
                match pos {
                    Some(i) => (
                        if i > 0 { Some(siblings[i - 1]) } else { None },
                        i == 0,
                        i + 1 == siblings.len(),
                    ),
                    None => (None, false, false),
                }
            }
            None => (None, false, false),
        };
        let label = NodeLabel {
            id,
            start,
            end,
            level,
            kind: data.kind,
            parent,
            left_sibling,
            is_first_child: is_first,
            is_last_child: is_last,
        };
        out.push(label);
    }

    /// Returns the label of a node, if present.
    pub fn get(&self, id: NodeId) -> Option<&NodeLabel> {
        self.map.get(id)
    }

    /// Returns the label of a node, panicking when absent (for internal use by
    /// generators and tests where presence is an invariant).
    pub fn require(&self, id: NodeId) -> &NodeLabel {
        self.map.get(id).unwrap_or_else(|| panic!("node {id} has no label"))
    }

    /// Inserts or replaces the label of a node.
    pub fn insert(&mut self, label: NodeLabel) {
        let id = label.id;
        match self.map.insert(id, label) {
            Some(old) => self.record(LabelEntry::Restore(Box::new(old))),
            None => self.record(LabelEntry::Drop(id)),
        }
    }

    /// Removes the label of a node (the identifier is never reused, so neither
    /// is the label).
    pub fn remove(&mut self, id: NodeId) -> Option<NodeLabel> {
        let old = self.map.remove(id)?;
        if self.journal.is_some() {
            self.record(LabelEntry::Restore(Box::new(old.clone())));
        }
        Some(old)
    }

    /// Number of labeled nodes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Slot-occupancy statistics of the label store (live/dead dense slots,
    /// spilled entries) — the labeling twin of `Document::slab_stats`, since
    /// the two stores churn in lockstep.
    pub fn slab_stats(&self) -> xdm::SlabStats {
        self.map.stats()
    }

    /// Whether the labeling is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over all labels.
    pub fn iter(&self) -> impl Iterator<Item = &NodeLabel> {
        self.map.values()
    }

    // ------------------------------------------------------------------
    // predicate helpers on identifiers
    // ------------------------------------------------------------------

    fn pair(&self, a: NodeId, b: NodeId) -> Option<(&NodeLabel, &NodeLabel)> {
        Some((self.map.get(a)?, self.map.get(b)?))
    }

    /// `a ≺ b` in document order.
    pub fn precedes(&self, a: NodeId, b: NodeId) -> bool {
        self.pair(a, b).map(|(x, y)| x.precedes(y)).unwrap_or(false)
    }

    /// `a` is the left sibling of `b`.
    pub fn is_left_sibling(&self, a: NodeId, b: NodeId) -> bool {
        self.pair(a, b).map(|(x, y)| x.is_left_sibling_of(y)).unwrap_or(false)
    }

    /// `a /c b`.
    pub fn is_child(&self, a: NodeId, b: NodeId) -> bool {
        self.pair(a, b).map(|(x, y)| x.is_child_of(y)).unwrap_or(false)
    }

    /// `a /a b`.
    pub fn is_attribute(&self, a: NodeId, b: NodeId) -> bool {
        self.pair(a, b).map(|(x, y)| x.is_attribute_of(y)).unwrap_or(false)
    }

    /// `a /←c b`.
    pub fn is_first_child(&self, a: NodeId, b: NodeId) -> bool {
        self.pair(a, b).map(|(x, y)| x.is_first_child_of(y)).unwrap_or(false)
    }

    /// `a /→c b`.
    pub fn is_last_child(&self, a: NodeId, b: NodeId) -> bool {
        self.pair(a, b).map(|(x, y)| x.is_last_child_of(y)).unwrap_or(false)
    }

    /// `a //d b`.
    pub fn is_descendant(&self, a: NodeId, b: NodeId) -> bool {
        self.pair(a, b).map(|(x, y)| x.is_descendant_of(y)).unwrap_or(false)
    }

    /// `a //¬a_d b`.
    pub fn is_descendant_not_attr(&self, a: NodeId, b: NodeId) -> bool {
        self.pair(a, b).map(|(x, y)| x.is_descendant_not_attr_of(y)).unwrap_or(false)
    }

    // ------------------------------------------------------------------
    // incremental labeling of inserted nodes
    // ------------------------------------------------------------------

    /// Labels the subtree rooted at `new_root`, which must already be attached
    /// inside `doc`. The labels of pre-existing nodes are not modified: new
    /// interval keys are generated between the keys of the neighbouring
    /// siblings (or the parent's interval ends). Used by the executor when it
    /// makes a PUL effective on the authoritative document.
    pub fn label_inserted_subtree(&mut self, doc: &Document, new_root: NodeId) {
        let Ok(Some(parent)) = doc.parent(new_root) else { return };
        let Some(parent_label) = self.map.get(parent).cloned() else { return };
        // Determine the order-key bounds from the closest labeled neighbours.
        let (lo, hi) = self.bounds_for(doc, new_root, &parent_label);
        let size = doc.preorder(new_root).len();
        // Generate 2*size increasing keys strictly between lo and hi.
        let mut keys = Vec::with_capacity(2 * size);
        let mut left = lo;
        for _ in 0..(2 * size) {
            let k = OrderKey::between(&left, &hi);
            keys.push(k.clone());
            left = k;
        }
        let mut next = 0usize;
        let mut take = move || {
            let k = keys[next].clone();
            next += 1;
            k
        };
        let level = parent_label.level + 1;
        self.assign_subtree(doc, new_root, level, &mut take);
        // Sibling first/last flags of pre-existing nodes may have become stale;
        // refresh the flags of the parent's children (cheap, local).
        self.refresh_sibling_flags(doc, parent);
    }

    fn bounds_for(
        &self,
        doc: &Document,
        new_node: NodeId,
        parent_label: &NodeLabel,
    ) -> (OrderKey, OrderKey) {
        let is_attr = doc.kind(new_node).map(|k| k == NodeKind::Attribute).unwrap_or(false);
        if is_attr {
            // attributes: inside the parent's interval, after the keys of the
            // already-labeled attributes and before the first labeled child
            let lo = doc
                .attributes(parent_label.id)
                .ok()
                .and_then(|attrs| {
                    attrs.iter().rev().filter(|&&a| a != new_node).find_map(|a| self.map.get(*a))
                })
                .map(|l| l.end.clone())
                .unwrap_or_else(|| parent_label.start.clone());
            let hi = doc
                .children(parent_label.id)
                .ok()
                .and_then(|cs| cs.iter().find_map(|c| self.map.get(*c)))
                .map(|l| l.start.clone())
                .unwrap_or_else(|| parent_label.end.clone());
            return (lo, hi);
        }
        let siblings: Vec<NodeId> = doc.children(parent_label.id).unwrap_or(&[]).to_vec();
        let pos = siblings.iter().position(|&s| s == new_node).unwrap_or(0);
        // closest labeled left neighbour; with no labeled left sibling the
        // lower bound is the last labeled *attribute* of the parent (attribute
        // keys live between the parent's start and its first child), and only
        // then the parent's own start key
        let lo = siblings[..pos]
            .iter()
            .rev()
            .find_map(|s| self.map.get(*s))
            .map(|l| l.end.clone())
            .or_else(|| {
                doc.attributes(parent_label.id)
                    .ok()
                    .and_then(|attrs| attrs.iter().rev().find_map(|a| self.map.get(*a)))
                    .map(|l| l.end.clone())
            })
            .unwrap_or_else(|| parent_label.start.clone());
        let hi = siblings[pos + 1..]
            .iter()
            .find_map(|s| self.map.get(*s))
            .map(|l| l.start.clone())
            .unwrap_or_else(|| parent_label.end.clone());
        (lo, hi)
    }

    /// Recomputes parent/left-sibling/first/last metadata of the children of
    /// `parent` (interval keys are left untouched). Labels whose metadata is
    /// already current are not touched (and record nothing in the journal).
    pub fn refresh_sibling_flags(&mut self, doc: &Document, parent: NodeId) {
        let Ok(children) = doc.children(parent) else { return };
        let children: Vec<NodeId> = children.to_vec();
        for (i, &c) in children.iter().enumerate() {
            let left_sibling = if i > 0 { Some(children[i - 1]) } else { None };
            let is_first = i == 0;
            let is_last = i + 1 == children.len();
            let Some(label) = self.map.get(c) else { continue };
            if label.parent == Some(parent)
                && label.left_sibling == left_sibling
                && label.is_first_child == is_first
                && label.is_last_child == is_last
            {
                continue;
            }
            if self.journal.is_some() {
                let old = Box::new(label.clone());
                self.record(LabelEntry::Restore(old));
            }
            let label = self.map.get_mut(c).expect("label present");
            label.parent = Some(parent);
            label.left_sibling = left_sibling;
            label.is_first_child = is_first;
            label.is_last_child = is_last;
        }
    }

    // ------------------------------------------------------------------
    // incremental patching after a PUL application
    // ------------------------------------------------------------------

    /// Brings the labeling up to date with `doc` after a PUL application,
    /// given the structural effects recorded by the evaluator: the roots of
    /// the inserted subtrees and the identifiers of all removed nodes.
    ///
    /// Only the inserted nodes receive (fresh) labels and only the removed
    /// nodes lose theirs; the interval keys of every untouched node are left
    /// **bit-identical** — the §4.1 "no relabeling on update" guarantee. The
    /// cost is proportional to the size of the change, not of the document.
    ///
    /// Inserted roots that are no longer part of the document (inserted by one
    /// operation and removed by an overriding one in the same PUL) are skipped;
    /// removing an identifier that was never labeled is a no-op.
    pub fn patch(
        &mut self,
        doc: &Document,
        inserted_roots: &[NodeId],
        removed_nodes: &[NodeId],
    ) -> PatchReport {
        let mut report = PatchReport::default();
        // 1. Drop the labels of removed nodes, remembering the surviving
        //    parents whose child metadata is now stale (deduplicated below —
        //    a per-removal membership scan would be quadratic in the change).
        let mut stale_parents: Vec<NodeId> = Vec::new();
        for &id in removed_nodes {
            if let Some(old) = self.remove(id) {
                report.removed += 1;
                if let Some(p) = old.parent {
                    if doc.contains(p) {
                        stale_parents.push(p);
                    }
                }
            }
        }
        stale_parents.sort_unstable();
        stale_parents.dedup();
        // 2. Label the inserted subtrees (in the order they were applied; the
        //    interval bounds always come from the *currently labeled* live
        //    neighbours, so any application order yields a consistent order).
        for &root in inserted_roots {
            if !doc.contains(root) || self.map.contains(root) {
                continue;
            }
            let before = self.map.len();
            self.label_inserted_subtree(doc, root);
            report.labeled += self.map.len() - before;
        }
        // 3. Refresh the sibling flags around the removals (insertions already
        //    refreshed their parents in `label_inserted_subtree`).
        for p in stale_parents {
            self.refresh_sibling_flags(doc, p);
        }
        report
    }

    /// Diff-driven variant of [`Labeling::patch`] for pipelines that do not
    /// produce an apply report (e.g. the streaming commit, which re-parses the
    /// updated serialization): inserted roots are discovered as unlabeled
    /// nodes whose parent is labeled, removed nodes as labels whose identifier
    /// no longer denotes a document node. Untouched labels are left
    /// bit-identical, exactly as with `patch`.
    ///
    /// Falls back to a full [`Labeling::assign`] when the document root itself
    /// is unlabeled (a wholly new document).
    pub fn patch_from_document(&mut self, doc: &Document) -> PatchReport {
        let Some(root) = doc.root() else {
            let old = std::mem::take(&mut self.map);
            let removed = old.len();
            self.record(LabelEntry::RestoreAll(old));
            return PatchReport { labeled: 0, removed };
        };
        if self.map.get(root).is_none() {
            // Wholly new document: fall back to a full assignment. The old
            // store is moved into a single journal entry (no clone), so a
            // rollback still restores it.
            let fresh = Labeling::assign(doc);
            let old = std::mem::replace(&mut self.map, fresh.map);
            let removed = old.len();
            self.record(LabelEntry::RestoreAll(old));
            return PatchReport { labeled: self.map.len(), removed };
        }
        // Preorder walk that stops at unlabeled nodes: those are the roots of
        // inserted subtrees (their descendants are necessarily new as well,
        // since existing nodes are never moved under new ones).
        let mut inserted_roots: Vec<NodeId> = Vec::new();
        let mut stack: Vec<NodeId> = vec![root];
        while let Some(id) = stack.pop() {
            if self.map.get(id).is_none() {
                inserted_roots.push(id);
                continue;
            }
            if let Ok(data) = doc.node(id) {
                for &c in data.children.iter().rev() {
                    stack.push(c);
                }
                for &a in data.attributes.iter().rev() {
                    stack.push(a);
                }
            }
        }
        let removed_nodes: Vec<NodeId> = self.map.keys().filter(|&id| !doc.contains(id)).collect();
        self.patch(doc, &inserted_roots, &removed_nodes)
    }

    // ------------------------------------------------------------------
    // invariants and oracles
    // ------------------------------------------------------------------

    /// Exact equality of two labelings: the same `(id, label)` entries with
    /// bit-identical interval keys and metadata. The differential tests use
    /// this to check a journaled rollback against the snapshot oracle.
    pub fn deep_eq(&self, other: &Labeling) -> bool {
        self.map.len() == other.map.len()
            && self.map.iter().all(|(id, label)| other.map.get(id) == Some(label))
    }

    /// Debug invariant walker: panics (with a description) when the labeling
    /// disagrees with the document — a node without a label or a stale label,
    /// metadata (kind, parent, level, sibling flags) out of sync, or interval
    /// keys that violate the containment ordering (children nested inside the
    /// parent interval, siblings in increasing key order, attribute keys
    /// between the owner's start and its first child). O(document · depth);
    /// intended for tests and post-commit assertions.
    pub fn assert_consistent(&self, doc: &Document) {
        let attached = doc.preorder_from_root();
        assert_eq!(
            self.map.len(),
            attached.len(),
            "label count disagrees with the number of attached nodes (stale or missing labels)"
        );
        for &id in &attached {
            let label = self.require(id);
            assert_eq!(label.id, id, "label of {id} carries the wrong identifier");
            assert!(label.start < label.end, "label of {id}: start key not before end key");
            assert_eq!(Ok(label.kind), doc.kind(id), "label of {id}: kind disagrees");
            assert_eq!(Ok(label.parent), doc.parent(id), "label of {id}: parent disagrees");
            assert_eq!(
                Some(label.level as usize),
                doc.depth(id).expect("attached node"),
                "label of {id}: level disagrees with depth"
            );
            if label.kind == NodeKind::Attribute {
                assert!(label.left_sibling.is_none(), "attribute {id} has a left sibling");
                assert!(
                    !label.is_first_child && !label.is_last_child,
                    "attribute {id} carries child flags"
                );
            } else {
                assert_eq!(
                    Ok(label.left_sibling),
                    doc.left_sibling(id),
                    "label of {id}: left sibling disagrees"
                );
                if let Some(p) = label.parent {
                    let siblings = doc.children(p).expect("parent exists");
                    assert_eq!(
                        label.is_first_child,
                        siblings.first() == Some(&id),
                        "label of {id}: first-child flag disagrees"
                    );
                    assert_eq!(
                        label.is_last_child,
                        siblings.last() == Some(&id),
                        "label of {id}: last-child flag disagrees"
                    );
                }
            }
            // containment: the node's interval nests strictly inside its parent's
            if let Some(p) = label.parent {
                let pl = self.require(p);
                assert!(
                    pl.start < label.start && label.end < pl.end,
                    "interval of {id} not nested inside its parent {p}"
                );
            }
        }
        // label-key ordering between siblings and around attributes
        for &id in &attached {
            let Ok(children) = doc.children(id) else { continue };
            for pair in children.windows(2) {
                let (a, b) = (self.require(pair[0]), self.require(pair[1]));
                assert!(
                    a.end < b.start,
                    "sibling keys out of order under {id}: {} !< {}",
                    pair[0],
                    pair[1]
                );
            }
            let Ok(attrs) = doc.attributes(id) else { continue };
            for pair in attrs.windows(2) {
                let (a, b) = (self.require(pair[0]), self.require(pair[1]));
                assert!(
                    a.end < b.start,
                    "attribute keys out of order under {id}: {} !< {}",
                    pair[0],
                    pair[1]
                );
            }
            if let (Some(&last_attr), Some(&first_child)) = (attrs.last(), children.first()) {
                assert!(
                    self.require(last_attr).end < self.require(first_child).start,
                    "attribute keys of {id} overlap its first child"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::*;
    use xdm::parser::parse_document;

    fn doc_and_labels(xml: &str) -> (Document, Labeling) {
        let doc = parse_document(xml).unwrap();
        let labels = Labeling::assign(&doc);
        (doc, labels)
    }

    /// The labeling must agree with the ground-truth structural queries of the
    /// document for every pair of nodes — this is the "Table 1" contract.
    fn check_against_document(doc: &Document, labels: &Labeling) {
        let nodes = doc.preorder_from_root();
        assert_eq!(labels.len(), nodes.len());
        for &a in &nodes {
            for &b in &nodes {
                assert_eq!(labels.precedes(a, b), doc.precedes(a, b), "precedes({a},{b})");
                assert_eq!(labels.is_child(a, b), doc.is_child_of(a, b), "child({a},{b})");
                assert_eq!(labels.is_attribute(a, b), doc.is_attribute_of(a, b), "attr({a},{b})");
                assert_eq!(labels.is_descendant(a, b), doc.is_descendant_of(a, b), "desc({a},{b})");
                let gt_left = doc.left_sibling(b).ok().flatten() == Some(a);
                assert_eq!(labels.is_left_sibling(a, b), gt_left, "leftsib({a},{b})");
                let gt_first =
                    doc.is_child_of(a, b) && doc.children(b).unwrap().first() == Some(&a);
                assert_eq!(labels.is_first_child(a, b), gt_first, "first({a},{b})");
                let gt_last = doc.is_child_of(a, b) && doc.children(b).unwrap().last() == Some(&a);
                assert_eq!(labels.is_last_child(a, b), gt_last, "last({a},{b})");
                let gt_nda = doc.is_descendant_of(a, b) && !doc.is_attribute_of(a, b);
                assert_eq!(labels.is_descendant_not_attr(a, b), gt_nda, "nda({a},{b})");
            }
        }
    }

    #[test]
    fn table1_predicates_match_document_ground_truth() {
        let (doc, labels) = doc_and_labels(
            "<issue volume=\"30\" number=\"3\"><paper><title>t1</title><author>A</author>\
             <author>B</author></paper><paper id=\"x\"><title>t2</title></paper></issue>",
        );
        check_against_document(&doc, &labels);
    }

    #[test]
    fn table1_predicates_on_deeper_document() {
        let (doc, labels) =
            doc_and_labels("<a><b><c><d>t</d></c></b><e f=\"1\"><g/><h>u</h></e><i/></a>");
        check_against_document(&doc, &labels);
    }

    #[test]
    fn empty_document_yields_empty_labeling() {
        let doc = Document::new();
        let labels = Labeling::assign(&doc);
        assert!(labels.is_empty());
    }

    #[test]
    fn get_and_require() {
        let (doc, labels) = doc_and_labels("<a><b/></a>");
        let root = doc.root().unwrap();
        assert!(labels.get(root).is_some());
        assert_eq!(labels.require(root).level, 0);
        assert!(labels.get(NodeId::new(999)).is_none());
    }

    #[test]
    #[should_panic(expected = "has no label")]
    fn require_panics_on_missing() {
        let (_, labels) = doc_and_labels("<a/>");
        labels.require(NodeId::new(42));
    }

    #[test]
    fn levels_follow_depth() {
        let (doc, labels) = doc_and_labels("<a><b><c/></b></a>");
        let a = doc.find_element("a").unwrap();
        let b = doc.find_element("b").unwrap();
        let c = doc.find_element("c").unwrap();
        assert_eq!(labels.require(a).level, 0);
        assert_eq!(labels.require(b).level, 1);
        assert_eq!(labels.require(c).level, 2);
    }

    #[test]
    fn inserted_subtree_gets_labels_without_touching_existing_ones() {
        let (mut doc, mut labels) =
            doc_and_labels("<issue><paper>one</paper><paper>two</paper></issue>");
        let issue = doc.find_element("issue").unwrap();
        let before: HashMap<NodeId, NodeLabel> = labels.iter().map(|l| (l.id, l.clone())).collect();

        // Insert a new <paper> between the two existing ones.
        let papers = doc.find_elements("paper");
        let new_paper = doc.new_element("paper");
        let new_text = doc.new_text("three");
        doc.append_child(new_paper, new_text).unwrap();
        doc.insert_after(papers[0], new_paper).unwrap();

        labels.label_inserted_subtree(&doc, new_paper);

        // New nodes labeled, old interval keys untouched.
        assert!(labels.get(new_paper).is_some());
        assert!(labels.get(new_text).is_some());
        for (id, old) in &before {
            let now = labels.require(*id);
            assert_eq!(now.start, old.start, "start key of {id} unchanged");
            assert_eq!(now.end, old.end, "end key of {id} unchanged");
        }
        // Predicates on the updated document are still correct.
        check_against_document(&doc, &labels);
        assert!(labels.is_child(new_paper, issue));
        assert!(labels.precedes(papers[0], new_paper));
        assert!(labels.precedes(new_paper, papers[1]));
    }

    #[test]
    fn inserted_first_and_last_children() {
        let (mut doc, mut labels) = doc_and_labels("<list><item>a</item></list>");
        let list = doc.find_element("list").unwrap();
        let first = doc.new_element("first");
        doc.insert_first_child(list, first).unwrap();
        labels.label_inserted_subtree(&doc, first);
        let last = doc.new_element("last");
        doc.append_child(list, last).unwrap();
        labels.label_inserted_subtree(&doc, last);
        check_against_document(&doc, &labels);
        assert!(labels.is_first_child(first, list));
        assert!(labels.is_last_child(last, list));
    }

    #[test]
    fn inserted_attribute_is_labeled() {
        let (mut doc, mut labels) = doc_and_labels("<e><c/></e>");
        let e = doc.find_element("e").unwrap();
        let a = doc.new_attribute("k", "v");
        doc.add_attribute(e, a).unwrap();
        labels.label_inserted_subtree(&doc, a);
        assert!(labels.is_attribute(a, e));
        assert!(labels.is_descendant(a, e));
        check_against_document(&doc, &labels);
    }

    #[test]
    fn inserted_attributes_get_distinct_ordered_keys() {
        // Two attributes inserted one after the other used to receive the
        // same midpoint key (the bounds ignored already-labeled attributes).
        let (mut doc, mut labels) = doc_and_labels("<e old=\"0\"><c/></e>");
        let e = doc.find_element("e").unwrap();
        let a1 = doc.new_attribute("k1", "v1");
        doc.add_attribute(e, a1).unwrap();
        labels.label_inserted_subtree(&doc, a1);
        let a2 = doc.new_attribute("k2", "v2");
        doc.add_attribute(e, a2).unwrap();
        labels.label_inserted_subtree(&doc, a2);
        let (l1, l2) = (labels.require(a1).clone(), labels.require(a2).clone());
        assert_ne!(l1.start, l2.start, "sibling attributes must not share keys");
        assert!(labels.precedes(a1, a2) ^ labels.precedes(a2, a1), "total order on attributes");
        check_against_document(&doc, &labels);
    }

    #[test]
    fn inserted_first_child_stays_after_existing_attributes() {
        // The first-child lower bound must clear the attribute keys, which
        // live between the parent's start and its first child.
        let (mut doc, mut labels) = doc_and_labels("<e k=\"v\" w=\"z\"><c/></e>");
        let e = doc.find_element("e").unwrap();
        let first = doc.new_element("first");
        doc.insert_first_child(e, first).unwrap();
        labels.label_inserted_subtree(&doc, first);
        check_against_document(&doc, &labels);
        let k = doc.attribute_by_name(e, "k").unwrap().unwrap();
        let w = doc.attribute_by_name(e, "w").unwrap().unwrap();
        assert!(labels.precedes(k, first), "attributes precede the inserted first child");
        assert!(labels.precedes(w, first));
        assert!(labels.is_first_child(first, e));
    }

    #[test]
    fn patch_labels_only_the_change() {
        let (mut doc, mut labels) = doc_and_labels(
            "<issue><paper>one</paper><paper>two</paper><paper>three</paper></issue>",
        );
        let papers = doc.find_elements("paper");
        let before: HashMap<NodeId, NodeLabel> = labels.iter().map(|l| (l.id, l.clone())).collect();

        // Remove the middle paper and insert a replacement subtree after it.
        let removed: Vec<NodeId> = doc.preorder(papers[1]);
        doc.remove_subtree(papers[1]).unwrap();
        let new_paper = doc.new_element("paper");
        let new_text = doc.new_text("new");
        doc.append_child(new_paper, new_text).unwrap();
        doc.insert_after(papers[0], new_paper).unwrap();

        let report = labels.patch(&doc, &[new_paper], &removed);
        assert_eq!(report, PatchReport { labeled: 2, removed: removed.len() });
        check_against_document(&doc, &labels);
        // untouched interval keys are bit-identical
        for id in doc.preorder_from_root() {
            if let Some(old) = before.get(&id) {
                let now = labels.require(id);
                assert_eq!(now.start, old.start, "start key of {id} unchanged");
                assert_eq!(now.end, old.end, "end key of {id} unchanged");
            }
        }
        // patching an already-removed insertion root is a no-op
        let report = labels.patch(&doc, &[papers[1]], &[]);
        assert_eq!(report, PatchReport::default());
    }

    #[test]
    fn patch_from_document_discovers_the_diff() {
        let (mut doc, mut labels) = doc_and_labels("<list><a/><b/><c/></list>");
        let list = doc.find_element("list").unwrap();
        let b = doc.find_element("b").unwrap();
        let before: HashMap<NodeId, NodeLabel> = labels.iter().map(|l| (l.id, l.clone())).collect();

        doc.remove_subtree(b).unwrap();
        let x = doc.new_element("x");
        let y = doc.new_text("t");
        doc.append_child(x, y).unwrap();
        doc.insert_first_child(list, x).unwrap();
        let attr = doc.new_attribute("k", "v");
        doc.add_attribute(list, attr).unwrap();

        let report = labels.patch_from_document(&doc);
        assert_eq!(report, PatchReport { labeled: 3, removed: 1 });
        check_against_document(&doc, &labels);
        for id in doc.preorder_from_root() {
            if let Some(old) = before.get(&id) {
                assert_eq!(&labels.require(id).start, &old.start);
                assert_eq!(&labels.require(id).end, &old.end);
            }
        }
        // a second patch finds nothing to do
        assert_eq!(labels.patch_from_document(&doc), PatchReport::default());
    }

    #[test]
    fn journaled_patch_rewinds_bit_identical() {
        let (mut doc, mut labels) = doc_and_labels(
            "<issue><paper>one</paper><paper>two</paper><paper>three</paper></issue>",
        );
        let oracle = labels.clone();
        let mark = labels.journal_mark();

        let papers = doc.find_elements("paper");
        let removed: Vec<NodeId> = doc.preorder(papers[1]);
        doc.remove_subtree(papers[1]).unwrap();
        let new_paper = doc.new_element("paper");
        doc.insert_after(papers[0], new_paper).unwrap();
        labels.patch(&doc, &[new_paper], &removed);
        check_against_document(&doc, &labels);
        assert!(labels.journal_len() > 0);
        assert!(!labels.deep_eq(&oracle));

        labels.journal_rewind(mark);
        labels.journal_discard();
        assert!(labels.deep_eq(&oracle), "rewound labeling must be bit-identical to the snapshot");
    }

    #[test]
    fn journaled_full_reassignment_rewinds() {
        let (doc, mut labels) = doc_and_labels("<a><b/><c/></a>");
        let oracle = labels.clone();
        let mark = labels.journal_mark();
        // a wholly different document forces the full-assign fallback
        let other = parse_document("<x><y/></x>").unwrap();
        labels.patch_from_document(&other);
        check_against_document(&other, &labels);
        labels.journal_rewind(mark);
        labels.journal_discard();
        assert!(labels.deep_eq(&oracle));
        check_against_document(&doc, &labels);
    }

    #[test]
    fn assert_consistent_accepts_fresh_and_patched_labelings() {
        let (mut doc, mut labels) = doc_and_labels("<list a=\"1\" b=\"2\"><x/><y>t</y></list>");
        labels.assert_consistent(&doc);
        let list = doc.find_element("list").unwrap();
        let z = doc.new_element("z");
        doc.append_child(list, z).unwrap();
        labels.patch(&doc, &[z], &[]);
        labels.assert_consistent(&doc);
    }

    #[test]
    #[should_panic(expected = "stale or missing labels")]
    fn assert_consistent_detects_missing_labels() {
        let (mut doc, labels) = doc_and_labels("<a><b/></a>");
        let a = doc.find_element("a").unwrap();
        let c = doc.new_element("c");
        doc.append_child(a, c).unwrap();
        labels.assert_consistent(&doc); // c was never labeled
    }

    #[test]
    fn patch_from_document_handles_empty_and_fresh_documents() {
        let (doc, mut labels) = doc_and_labels("<a><b/><c/></a>");
        // document emptied: all labels dropped
        let empty = Document::new();
        let report = labels.patch_from_document(&empty);
        assert_eq!(report.removed, 3);
        assert!(labels.is_empty());
        // wholly new document: falls back to a full assignment
        let report = labels.patch_from_document(&doc);
        assert_eq!(report.labeled, 3);
        check_against_document(&doc, &labels);
    }
}

// The property-based suite needs the external `proptest` crate, which is not
// vendored in this offline workspace. The `proptest` feature only un-gates
// this module: to actually run it, also add `proptest` as a dev-dependency
// in an environment with crates.io access.
#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use xdm::parser::parse_document;

    /// Generates a small random XML document as a string.
    fn arb_xml() -> impl Strategy<Value = String> {
        // recursive tree of element names a..e with optional text and attributes
        let leaf = prop_oneof![
            Just("<x/>".to_string()),
            "[a-z]{1,6}".prop_map(|t| format!("<t>{t}</t>")),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            (proptest::collection::vec(inner, 1..4), 0u8..3).prop_map(|(children, nattr)| {
                let attrs: String =
                    (0..nattr).map(|i| format!(" a{i}=\"v{i}\"")).collect::<Vec<_>>().join("");
                format!("<e{attrs}>{}</e>", children.join(""))
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn labeling_agrees_with_document(xml in arb_xml()) {
            let doc = parse_document(&xml).unwrap();
            let labels = Labeling::assign(&doc);
            let nodes = doc.preorder_from_root();
            for &a in &nodes {
                for &b in &nodes {
                    prop_assert_eq!(labels.precedes(a, b), doc.precedes(a, b));
                    prop_assert_eq!(labels.is_descendant(a, b), doc.is_descendant_of(a, b));
                    prop_assert_eq!(labels.is_child(a, b), doc.is_child_of(a, b));
                    prop_assert_eq!(labels.is_attribute(a, b), doc.is_attribute_of(a, b));
                }
            }
        }
    }
}
