//! Dynamic order keys.
//!
//! An [`OrderKey`] is a non-empty byte string with no trailing zero byte,
//! interpreted as the digits of a fraction in base 256 (so `[128]` ≈ 0.5).
//! Keys are compared lexicographically, which — thanks to the no-trailing-zero
//! invariant — coincides with the numeric order of the fractions.
//!
//! The crucial property (shared with the CDBS/CDQS encodings used by the paper)
//! is that **between any two distinct keys a new key can be generated without
//! modifying any existing key**, so documents never need relabeling when nodes
//! are inserted (§4.1: "document updates should not lead to relabeling of
//! nodes").

use std::fmt;

/// A dynamic order key (see module documentation).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OrderKey(Vec<u8>);

impl OrderKey {
    /// The canonical first key, 0.5 in fractional terms.
    pub fn initial() -> Self {
        OrderKey(vec![128])
    }

    /// Builds a key from raw digits. Trailing zeros are stripped; an all-zero
    /// or empty input yields the smallest representable key `[1]`.
    pub fn from_digits(mut digits: Vec<u8>) -> Self {
        while digits.last() == Some(&0) {
            digits.pop();
        }
        if digits.is_empty() {
            digits.push(1);
        }
        OrderKey(digits)
    }

    /// Raw digits of the key.
    pub fn digits(&self) -> &[u8] {
        &self.0
    }

    /// Number of bytes used by the key.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Keys are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Generates a key strictly greater than `self` (and smaller than any key
    /// that `self` itself is smaller than only if that key differs from `self`
    /// in a digit greater by at least two; use [`OrderKey::between`] when an
    /// upper bound must be respected).
    pub fn after(&self) -> Self {
        midpoint_above(&self.0, 0, Vec::new())
    }

    /// Generates a key strictly smaller than `self`.
    pub fn before(&self) -> Self {
        midpoint(&[], &self.0)
    }

    /// Generates a key strictly between `a` and `b`.
    ///
    /// # Panics
    /// Panics if `a >= b`; callers are expected to order the bounds.
    pub fn between(a: &OrderKey, b: &OrderKey) -> Self {
        assert!(a < b, "OrderKey::between requires a < b (got {a} >= {b})");
        midpoint(&a.0, &b.0)
    }

    /// Generates `n` evenly spaced keys in increasing order, all of the same
    /// byte length. Used for the initial labeling of a document, where the
    /// number of nodes is known in advance.
    pub fn evenly_spaced(n: usize) -> Vec<OrderKey> {
        if n == 0 {
            return Vec::new();
        }
        // Width such that 255^width > n (digits range over 1..=255 so that no
        // key has a trailing/embedded zero issue and all keys share a length).
        let mut width = 1usize;
        let mut capacity = 255usize;
        while capacity < n {
            width += 1;
            capacity = capacity.saturating_mul(255);
        }
        (0..n)
            .map(|i| {
                let mut digits = vec![1u8; width];
                let mut v = i;
                for d in digits.iter_mut().rev() {
                    *d = (v % 255) as u8 + 1;
                    v /= 255;
                }
                OrderKey(digits)
            })
            .collect()
    }
}

impl fmt::Display for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", parts.join("."))
    }
}

/// Returns a key strictly between fraction `a` and fraction `b` (`a < b`).
fn midpoint(a: &[u8], b: &[u8]) -> OrderKey {
    let mut prefix = Vec::new();
    let mut i = 0usize;
    loop {
        let da = *a.get(i).unwrap_or(&0) as u16;
        // A missing digit in `b` means `b` acts as an exclusive upper bound at
        // this depth (conceptually digit 256).
        let db = b.get(i).map(|&x| x as u16).unwrap_or(256);
        if db > da + 1 {
            prefix.push(((da + db) / 2) as u8);
            return OrderKey(prefix);
        } else if db == da + 1 {
            // No room at this digit: fix `da` and find something above a's rest.
            prefix.push(da as u8);
            return midpoint_above(a, i + 1, prefix);
        } else {
            debug_assert_eq!(da, db, "midpoint requires a < b");
            prefix.push(da as u8);
            i += 1;
        }
    }
}

/// Returns a key strictly greater than the fraction `a[i..]`, prefixed by `prefix`.
fn midpoint_above(a: &[u8], mut i: usize, mut prefix: Vec<u8>) -> OrderKey {
    loop {
        let da = *a.get(i).unwrap_or(&0);
        if da == 255 {
            prefix.push(255);
            i += 1;
        } else {
            prefix.push(da + 1);
            return OrderKey(prefix);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_before_after() {
        let k = OrderKey::initial();
        let b = k.before();
        let a = k.after();
        assert!(b < k, "{b} < {k}");
        assert!(k < a, "{k} < {a}");
    }

    #[test]
    fn between_is_strictly_between() {
        let a = OrderKey::from_digits(vec![10]);
        let b = OrderKey::from_digits(vec![10, 1]);
        let m = OrderKey::between(&a, &b);
        assert!(a < m && m < b, "{a} < {m} < {b}");
    }

    #[test]
    #[should_panic(expected = "requires a < b")]
    fn between_rejects_unordered_bounds() {
        let a = OrderKey::from_digits(vec![20]);
        let b = OrderKey::from_digits(vec![10]);
        let _ = OrderKey::between(&a, &b);
    }

    #[test]
    fn repeated_between_never_relabels() {
        // Insert 200 keys always between the same two neighbours: all keys stay
        // distinct and ordered, and the originals are untouched.
        let lo = OrderKey::from_digits(vec![100]);
        let hi = OrderKey::from_digits(vec![101]);
        let mut keys = vec![lo.clone(), hi.clone()];
        let mut left = lo.clone();
        for _ in 0..200 {
            let m = OrderKey::between(&left, &hi);
            keys.push(m.clone());
            left = m;
        }
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len(), "all generated keys are distinct");
        assert_eq!(keys[0], lo);
        assert_eq!(keys[1], hi);
    }

    #[test]
    fn repeated_before_and_after() {
        let mut k = OrderKey::initial();
        let mut prev = k.clone();
        for _ in 0..100 {
            k = k.after();
            assert!(prev < k);
            prev = k.clone();
        }
        let mut k = OrderKey::initial();
        let mut prev = k.clone();
        for _ in 0..100 {
            k = k.before();
            assert!(k < prev);
            prev = k.clone();
        }
    }

    #[test]
    fn evenly_spaced_is_sorted_unique_same_width() {
        for n in [0usize, 1, 2, 10, 255, 256, 1000] {
            let keys = OrderKey::evenly_spaced(n);
            assert_eq!(keys.len(), n);
            for w in keys.windows(2) {
                assert!(w[0] < w[1]);
            }
            if n > 0 {
                let width = keys[0].len();
                assert!(keys.iter().all(|k| k.len() == width));
            }
        }
    }

    #[test]
    fn from_digits_strips_trailing_zeros() {
        let k = OrderKey::from_digits(vec![5, 0, 0]);
        assert_eq!(k.digits(), &[5]);
        let z = OrderKey::from_digits(vec![0, 0]);
        assert_eq!(z.digits(), &[1]);
    }

    #[test]
    fn display_is_dot_separated() {
        let k = OrderKey::from_digits(vec![1, 200]);
        assert_eq!(k.to_string(), "1.200");
    }
}

// The property-based suite needs the external `proptest` crate, which is not
// vendored in this offline workspace. The `proptest` feature only un-gates
// this module: to actually run it, also add `proptest` as a dev-dependency
// in an environment with crates.io access.
#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_key() -> impl Strategy<Value = OrderKey> {
        proptest::collection::vec(0u8..=255, 1..6).prop_map(OrderKey::from_digits)
    }

    proptest! {
        #[test]
        fn between_property(a in arb_key(), b in arb_key()) {
            prop_assume!(a != b);
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let m = OrderKey::between(&lo, &hi);
            prop_assert!(lo < m, "{lo} < {m}");
            prop_assert!(m < hi, "{m} < {hi}");
            // no trailing zero
            prop_assert_ne!(*m.digits().last().unwrap(), 0u8);
        }

        #[test]
        fn before_after_property(a in arb_key()) {
            prop_assert!(a.before() < a);
            prop_assert!(a < a.after());
        }

        #[test]
        fn chain_of_inserts_stays_ordered(seed in proptest::collection::vec(any::<bool>(), 1..50)) {
            // Randomly insert at the left or right half of the current span.
            let mut keys = vec![OrderKey::from_digits(vec![50]), OrderKey::from_digits(vec![200])];
            for go_left in seed {
                let (i, j) = if go_left { (0, 1) } else { (keys.len() - 2, keys.len() - 1) };
                let m = OrderKey::between(&keys[i], &keys[j]);
                keys.insert(j, m);
            }
            for w in keys.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }
}
