//! Label intervals: contiguous ranges of the order-key space.
//!
//! The containment labeling of §4.1 gives every node an interval `[start,
//! end]` in a totally ordered key space, with descendants nested strictly
//! inside their ancestors. A consequence the paper's reasoning algorithms
//! never need — but a sharded executor does — is that any *contiguous run of
//! top-level subtrees* occupies one contiguous slice of the key space,
//! disjoint from every other run. [`LabelInterval`] names such a slice and
//! answers the routing questions: does this label (and therefore the whole
//! subtree below it) fall inside the slice?
//!
//! Intervals are half-open `[lo, hi)`: a key routes into the slice when
//! `lo <= key < hi`, so a list of intervals chained end-to-start partitions
//! the key space with no gaps and no overlaps.

use std::fmt;

use crate::label::NodeLabel;
use crate::orderkey::OrderKey;

/// A half-open slice `[lo, hi)` of the order-key space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelInterval {
    lo: OrderKey,
    hi: OrderKey,
}

impl LabelInterval {
    /// Creates the interval `[lo, hi)`. Panics when `lo >= hi` (an empty or
    /// inverted interval can never contain a label and would silently
    /// blackhole routing).
    pub fn new(lo: OrderKey, hi: OrderKey) -> Self {
        assert!(lo < hi, "label interval bounds out of order: {lo} >= {hi}");
        LabelInterval { lo, hi }
    }

    /// The inclusive lower bound.
    pub fn lo(&self) -> &OrderKey {
        &self.lo
    }

    /// The exclusive upper bound.
    pub fn hi(&self) -> &OrderKey {
        &self.hi
    }

    /// Whether `key` falls inside `[lo, hi)`.
    pub fn contains_key(&self, key: &OrderKey) -> bool {
        &self.lo <= key && key < &self.hi
    }

    /// Whether the whole containment interval of `label` falls inside this
    /// slice. Because descendants nest strictly inside their ancestors, a
    /// contained label implies a contained subtree.
    pub fn contains_label(&self, label: &NodeLabel) -> bool {
        self.lo <= label.start && label.end < self.hi
    }

    /// Whether `other` nests entirely inside this interval.
    pub fn contains(&self, other: &LabelInterval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Whether the two intervals share no key.
    pub fn is_disjoint_from(&self, other: &LabelInterval) -> bool {
        self.hi <= other.lo || other.hi <= self.lo
    }

    /// The convex hull `[min start, max end)` of a set of labels — the
    /// smallest interval containing all of them. `None` for an empty set.
    /// Note the hull treats the last label's `end` as *exclusive*; callers
    /// slicing a document widen the hull with boundary keys generated between
    /// neighbouring runs, so the hull itself is only an intermediate value.
    pub fn hull<'a>(labels: impl IntoIterator<Item = &'a NodeLabel>) -> Option<LabelInterval> {
        let mut lo: Option<OrderKey> = None;
        let mut hi: Option<OrderKey> = None;
        for l in labels {
            if lo.as_ref().map(|k| &l.start < k).unwrap_or(true) {
                lo = Some(l.start.clone());
            }
            if hi.as_ref().map(|k| &l.end > k).unwrap_or(true) {
                hi = Some(l.end.clone());
            }
        }
        Some(LabelInterval { lo: lo?, hi: hi? })
    }
}

impl NodeLabel {
    /// The containment interval of this label as a [`LabelInterval`]
    /// (`[start, end)` — the node itself plus everything below it).
    pub fn interval(&self) -> LabelInterval {
        LabelInterval::new(self.start.clone(), self.end.clone())
    }
}

impl fmt::Display for LabelInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::Labeling;
    use xdm::parser::parse_document;

    fn key(digits: &[u8]) -> OrderKey {
        OrderKey::from_digits(digits.to_vec())
    }

    #[test]
    fn containment_is_half_open() {
        let i = LabelInterval::new(key(&[10]), key(&[20]));
        assert!(i.contains_key(&key(&[10])), "lower bound is inclusive");
        assert!(i.contains_key(&key(&[15])));
        assert!(!i.contains_key(&key(&[20])), "upper bound is exclusive");
        assert!(!i.contains_key(&key(&[9])));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn inverted_bounds_are_rejected() {
        LabelInterval::new(key(&[20]), key(&[10]));
    }

    #[test]
    fn nesting_and_disjointness() {
        let outer = LabelInterval::new(key(&[10]), key(&[40]));
        let inner = LabelInterval::new(key(&[15]), key(&[25]));
        let right = LabelInterval::new(key(&[40]), key(&[50]));
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.is_disjoint_from(&right), "touching half-open intervals are disjoint");
        assert!(!outer.is_disjoint_from(&inner));
    }

    #[test]
    fn label_containment_follows_the_document_structure() {
        let doc = parse_document("<r><a><b/></a><c/></r>").unwrap();
        let labels = Labeling::assign(&doc);
        let a = labels.require(doc.find_element("a").unwrap());
        let b = labels.require(doc.find_element("b").unwrap());
        let c = labels.require(doc.find_element("c").unwrap());
        let slice = a.interval();
        assert!(slice.contains_label(b), "descendants fall inside the subtree interval");
        assert!(!slice.contains_label(c), "siblings fall outside");
        assert!(slice.is_disjoint_from(&c.interval()));
    }

    #[test]
    fn hull_spans_a_run_of_subtrees() {
        let doc = parse_document("<r><a/><b/><c/></r>").unwrap();
        let labels = Labeling::assign(&doc);
        let ids = ["a", "b"].map(|n| doc.find_element(n).unwrap());
        let hull = LabelInterval::hull(ids.iter().map(|&id| labels.require(id))).unwrap();
        assert!(hull.contains_key(&labels.require(ids[0]).start));
        assert!(hull.contains_key(&labels.require(ids[1]).start));
        let c = labels.require(doc.find_element("c").unwrap());
        assert!(!hull.contains_key(&c.start), "hull stops before the next run");
        assert!(LabelInterval::hull(std::iter::empty()).is_none());
    }
}
