//! The PUL exchange format (§4).
//!
//! To decouple PUL production from PUL execution, PULs are serialized as XML
//! documents "containing the serialization of each PUL operation along with
//! the identifiers and labels of the target nodes". The format produced here
//! is:
//!
//! ```xml
//! <pul>
//!   <op kind="insAfter" target="19" label="…">
//!     <content>
//!       <tree>…escaped identified XML of an element/text tree…</tree>
//!       <atree id="31" name="initPage" value="132"/>
//!       <ttree id="40" value="Report on …"/>
//!     </content>
//!   </op>
//!   <op kind="rename" target="5" name="title" label="…"/>
//!   <op kind="replaceValue" target="15" value="Report on …" label="…"/>
//!   <op kind="replaceContent" target="14" empty="true"/>
//!   <op kind="delete" target="14"/>
//! </pul>
//! ```
//!
//! Element and text parameter trees are embedded in their *identified*
//! serialization so that their node identifiers survive the round trip — a
//! requirement for reasoning on sequential PULs, where later PULs refer to
//! nodes inserted by earlier ones (§4.1).

use xdm::parser::{parse_document, parse_document_identified};
use xdm::writer::{escape_attr, escape_text, write_fragment_identified};
use xdm::{Document, NodeId, NodeKind, Tree};
use xlabel::NodeLabel;

use crate::error::PulError;
use crate::op::{OpName, UpdateOp};
use crate::pul::Pul;
use crate::Result;

fn tree_to_xml(tree: &Tree, out: &mut String) {
    match tree.root_kind() {
        NodeKind::Attribute => {
            out.push_str(&format!(
                "<atree id=\"{}\" name=\"{}\" value=\"{}\"/>",
                tree.root_id().as_u64(),
                escape_attr(&tree.root_name().unwrap_or_default()),
                escape_attr(tree.value(tree.root_id()).ok().flatten().unwrap_or(""))
            ));
        }
        NodeKind::Text => {
            out.push_str(&format!(
                "<ttree id=\"{}\" value=\"{}\"/>",
                tree.root_id().as_u64(),
                escape_attr(tree.value(tree.root_id()).ok().flatten().unwrap_or(""))
            ));
        }
        NodeKind::Element => {
            let ident = write_fragment_identified(tree.as_document(), tree.root_id());
            out.push_str("<tree>");
            out.push_str(&escape_text(&ident));
            out.push_str("</tree>");
        }
    }
}

fn op_to_xml(op: &UpdateOp, label: Option<&NodeLabel>, out: &mut String) {
    out.push_str(&format!("<op kind=\"{}\" target=\"{}\"", op.name().code(), op.target().as_u64()));
    if let Some(l) = label {
        out.push_str(&format!(" label=\"{}\"", escape_attr(&l.to_compact_string())));
    }
    match op {
        UpdateOp::ReplaceValue { value, .. } => {
            out.push_str(&format!(" value=\"{}\"/>", escape_attr(value)));
        }
        UpdateOp::Rename { name, .. } => {
            out.push_str(&format!(" name=\"{}\"/>", escape_attr(name)));
        }
        UpdateOp::ReplaceContent { text, .. } => match text {
            Some(t) => out.push_str(&format!(" value=\"{}\"/>", escape_attr(t))),
            None => out.push_str(" empty=\"true\"/>"),
        },
        UpdateOp::Delete { .. } => out.push_str("/>"),
        _ => {
            let trees = op.content().unwrap_or(&[]);
            if trees.is_empty() {
                out.push_str("><content/></op>");
            } else {
                out.push_str("><content>");
                for t in trees {
                    tree_to_xml(t, out);
                }
                out.push_str("</content></op>");
            }
        }
    }
}

/// Serializes a PUL into the XML exchange format.
pub fn pul_to_xml(pul: &Pul) -> String {
    let mut out = String::with_capacity(64 * pul.len() + 16);
    out.push_str("<pul>");
    for op in pul.ops() {
        op_to_xml(op, pul.label(op.target()), &mut out);
    }
    out.push_str("</pul>");
    out
}

/// Serializes a list of PULs (e.g. a sequence produced during disconnected
/// operation) into a single XML document.
pub fn puls_to_xml(puls: &[Pul]) -> String {
    let mut out = String::from("<puls>");
    for p in puls {
        out.push_str(&pul_to_xml(p));
    }
    out.push_str("</puls>");
    out
}

fn attr<'d>(doc: &'d Document, el: NodeId, name: &str) -> Option<&'d str> {
    let a = doc.attribute_by_name(el, name).ok().flatten()?;
    doc.value(a).ok().flatten()
}

fn parse_tree_element(doc: &Document, el: NodeId) -> Result<Tree> {
    let elname = doc.name(el).ok().flatten().unwrap_or("");
    match elname {
        "atree" => {
            let id: u64 = attr(doc, el, "id")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| PulError::Format("atree without a valid id".into()))?;
            let name = attr(doc, el, "name").unwrap_or("").to_string();
            let value = attr(doc, el, "value").unwrap_or("").to_string();
            let mut d = Document::new();
            let a = d.new_attribute_with_id(id, name, value)?;
            d.set_root(a)?;
            Ok(Tree::from_document(d)?)
        }
        "ttree" => {
            let id: u64 = attr(doc, el, "id")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| PulError::Format("ttree without a valid id".into()))?;
            let value = attr(doc, el, "value").unwrap_or("").to_string();
            let mut d = Document::new();
            let t = d.new_text_with_id(id, value)?;
            d.set_root(t)?;
            Ok(Tree::from_document(d)?)
        }
        "tree" => {
            let ident = doc.text_content(el);
            let inner = parse_document_identified(&ident)
                .map_err(|e| PulError::Format(format!("invalid embedded tree: {e}")))?;
            Ok(Tree::from_document(inner)?)
        }
        other => Err(PulError::Format(format!("unexpected content element <{other}>"))),
    }
}

fn parse_op_element(doc: &Document, el: NodeId) -> Result<(UpdateOp, Option<NodeLabel>)> {
    let kind = attr(doc, el, "kind")
        .ok_or_else(|| PulError::Format("<op> without kind attribute".into()))?;
    let name = OpName::from_code(kind)
        .ok_or_else(|| PulError::Format(format!("unknown operation kind '{kind}'")))?;
    let target: u64 = attr(doc, el, "target")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| PulError::Format("<op> without a valid target attribute".into()))?;
    let target = NodeId::new(target);
    let label = attr(doc, el, "label").and_then(|s| NodeLabel::parse_compact(target, s));

    let content = || -> Result<Vec<Tree>> {
        let mut trees = Vec::new();
        for &c in doc.children(el)? {
            if doc.name(c).ok().flatten() == Some("content") {
                for &t in doc.children(c)? {
                    trees.push(parse_tree_element(doc, t)?);
                }
            }
        }
        Ok(trees)
    };

    let op = match name {
        OpName::InsBefore => UpdateOp::ins_before(target, content()?),
        OpName::InsAfter => UpdateOp::ins_after(target, content()?),
        OpName::InsFirst => UpdateOp::ins_first(target, content()?),
        OpName::InsLast => UpdateOp::ins_last(target, content()?),
        OpName::InsInto => UpdateOp::ins_into(target, content()?),
        OpName::InsAttributes => UpdateOp::ins_attributes(target, content()?),
        OpName::Delete => UpdateOp::delete(target),
        OpName::ReplaceNode => UpdateOp::replace_node(target, content()?),
        OpName::ReplaceValue => {
            UpdateOp::replace_value(target, attr(doc, el, "value").unwrap_or(""))
        }
        OpName::ReplaceContent => {
            if attr(doc, el, "empty") == Some("true") {
                UpdateOp::replace_content(target, None)
            } else {
                UpdateOp::replace_content(
                    target,
                    Some(attr(doc, el, "value").unwrap_or("").to_string()),
                )
            }
        }
        OpName::Rename => UpdateOp::rename(target, attr(doc, el, "name").unwrap_or("")),
    };
    Ok((op, label))
}

/// Parses a PUL from the XML exchange format.
pub fn pul_from_xml(xml: &str) -> Result<Pul> {
    let doc =
        parse_document(xml).map_err(|e| PulError::Format(format!("invalid PUL document: {e}")))?;
    let root = doc.require_root()?;
    if doc.name(root).ok().flatten() != Some("pul") {
        return Err(PulError::Format("the root element of a PUL document must be <pul>".into()));
    }
    pul_from_element(&doc, root)
}

fn pul_from_element(doc: &Document, root: NodeId) -> Result<Pul> {
    let mut pul = Pul::new();
    for &c in doc.children(root)? {
        if doc.name(c).ok().flatten() != Some("op") {
            continue;
        }
        let (op, label) = parse_op_element(doc, c)?;
        match label {
            Some(l) => pul.push_with_label(op, l),
            None => pul.push(op),
        }
    }
    Ok(pul)
}

/// Parses a list of PULs from a `<puls>` document.
pub fn puls_from_xml(xml: &str) -> Result<Vec<Pul>> {
    let doc =
        parse_document(xml).map_err(|e| PulError::Format(format!("invalid PULs document: {e}")))?;
    let root = doc.require_root()?;
    if doc.name(root).ok().flatten() != Some("puls") {
        return Err(PulError::Format("the root element must be <puls>".into()));
    }
    let mut out = Vec::new();
    for &c in doc.children(root)? {
        if doc.name(c).ok().flatten() == Some("pul") {
            out.push(pul_from_element(&doc, c)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdm::parser::{parse_document as parse_doc, parse_fragment_with_first_id};
    use xlabel::Labeling;

    fn sample_pul() -> Pul {
        let doc =
            parse_doc("<issue volume=\"30\"><article><title>T</title></article><article/></issue>")
                .unwrap();
        let labeling = Labeling::assign(&doc);
        let tree =
            parse_fragment_with_first_id("<author email=\"g@unige\">G.Guerrini</author>", 100)
                .unwrap();
        let ops = vec![
            UpdateOp::ins_last(3u64, vec![tree]),
            UpdateOp::ins_attributes(
                6u64,
                vec![Tree::attribute("id", "a2"), Tree::attribute("lang", "en")],
            ),
            UpdateOp::rename(3u64, "paper"),
            UpdateOp::replace_value(5u64, "Report on <XML> & \"updates\""),
            UpdateOp::replace_content(6u64, None),
            UpdateOp::replace_content(3u64, Some("plain".into())),
            UpdateOp::replace_node(4u64, vec![Tree::element_with_text("heading", "H")]),
            UpdateOp::delete(2u64),
            UpdateOp::ins_before(4u64, vec![Tree::text("bare text"), Tree::element("e")]),
            UpdateOp::ins_into(3u64, vec![Tree::element("x")]),
            UpdateOp::ins_first(3u64, vec![Tree::element("y")]),
            UpdateOp::ins_after(4u64, vec![Tree::element("z")]),
        ];
        Pul::from_ops(ops, &labeling)
    }

    fn ops_equal(a: &UpdateOp, b: &UpdateOp) -> bool {
        a.target() == b.target() && a.name() == b.name() && a.param_sort_key() == b.param_sort_key()
    }

    #[test]
    fn roundtrip_preserves_every_operation() {
        let pul = sample_pul();
        let xml = pul_to_xml(&pul);
        let back = pul_from_xml(&xml).unwrap();
        assert_eq!(back.len(), pul.len());
        for (a, b) in pul.ops().iter().zip(back.ops()) {
            assert!(ops_equal(a, b), "op mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn roundtrip_preserves_labels() {
        let pul = sample_pul();
        let xml = pul_to_xml(&pul);
        let back = pul_from_xml(&xml).unwrap();
        for target in pul.targets() {
            match (pul.label(target), back.label(target)) {
                (Some(a), Some(b)) => assert_eq!(a, b, "label of {target}"),
                (None, None) => {}
                _ => panic!("label presence mismatch for {target}"),
            }
        }
    }

    #[test]
    fn roundtrip_preserves_content_tree_identifiers() {
        let pul = sample_pul();
        let xml = pul_to_xml(&pul);
        let back = pul_from_xml(&xml).unwrap();
        let orig_tree = &pul.ops()[0].content().unwrap()[0];
        let back_tree = &back.ops()[0].content().unwrap()[0];
        assert_eq!(orig_tree.root_id(), back_tree.root_id());
        assert_eq!(
            orig_tree.preorder_from_root(),
            back_tree.preorder_from_root(),
            "identifiers of embedded trees survive the round trip"
        );
        assert!(orig_tree.structurally_equal(back_tree));
    }

    #[test]
    fn special_characters_survive() {
        let mut pul = Pul::new();
        pul.push(UpdateOp::replace_value(5u64, "a < b & \"c\" > 'd'"));
        pul.push(UpdateOp::rename(6u64, "weird-name"));
        let back = pul_from_xml(&pul_to_xml(&pul)).unwrap();
        match &back.ops()[0] {
            UpdateOp::ReplaceValue { value, .. } => assert_eq!(value, "a < b & \"c\" > 'd'"),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn empty_pul_roundtrip() {
        let pul = Pul::new();
        let back = pul_from_xml(&pul_to_xml(&pul)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn replace_node_with_empty_content_roundtrip() {
        let mut pul = Pul::new();
        pul.push(UpdateOp::replace_node(4u64, vec![]));
        let back = pul_from_xml(&pul_to_xml(&pul)).unwrap();
        assert_eq!(back.ops()[0].content().unwrap().len(), 0);
        assert_eq!(back.ops()[0].name(), OpName::ReplaceNode);
    }

    #[test]
    fn multiple_puls_roundtrip() {
        let p1 = sample_pul();
        let mut p2 = Pul::new();
        p2.push(UpdateOp::delete(9u64));
        let xml = puls_to_xml(&[p1.clone(), p2.clone()]);
        let back = puls_from_xml(&xml).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].len(), p1.len());
        assert_eq!(back[1].len(), 1);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(pul_from_xml("<notapul/>").is_err());
        assert!(pul_from_xml("not xml at all").is_err());
        assert!(pul_from_xml("<pul><op target=\"1\"/></pul>").is_err(), "missing kind");
        assert!(pul_from_xml("<pul><op kind=\"bogus\" target=\"1\"/></pul>").is_err());
        assert!(pul_from_xml("<pul><op kind=\"delete\"/></pul>").is_err(), "missing target");
        assert!(
            pul_from_xml(
                "<pul><op kind=\"insLast\" target=\"1\"><content><wat/></content></op></pul>"
            )
            .is_err(),
            "unknown content element"
        );
        assert!(puls_from_xml("<pul/>").is_err());
    }

    #[test]
    fn size_is_roughly_linear_in_op_count() {
        // sanity check used by the benchmarks: serialization should not blow up
        let mut pul = Pul::new();
        for i in 0..100u64 {
            pul.push(UpdateOp::replace_value(i, format!("value {i}")));
        }
        let xml = pul_to_xml(&pul);
        assert!(xml.len() < 100 * 120);
        assert_eq!(pul_from_xml(&xml).unwrap().len(), 100);
    }
}
