//! # pul — Pending Update Lists
//!
//! This crate implements the update model of §2.2 of *Dynamic Reasoning on XML
//! Updates* (EDBT 2011):
//!
//! * the eleven update primitives of **Table 2** ([`UpdateOp`]), with their
//!   applicability conditions;
//! * [`Pul`] — an unordered list of operations, with operation
//!   **compatibility** (Def. 3), PUL **applicability** (Def. 4) and the W3C
//!   **merge** (Def. 5);
//! * PUL **semantics**: in-memory evaluation in the five stages prescribed by
//!   the XQuery Update Facility ([`apply`]), the **obtainable-document set**
//!   `O(∆, D)` together with PUL **equivalence** and **substitutability**
//!   (Def. 6, [`obtainable`]);
//! * a **streaming** evaluator ([`stream`]) that applies a PUL while scanning
//!   the identified serialization of a document, never materializing it
//!   (§4.3, Figure 6.a);
//! * the XML **exchange format** for PULs ([`xmlio`]), used to ship PULs
//!   between producers and the executor (§4).

pub mod apply;
pub mod error;
pub mod obtainable;
pub mod op;
pub mod pul;
pub mod stream;
pub mod xmlio;

pub use apply::{apply_pul, ApplyOptions, ApplyReport};
pub use error::PulError;
pub use obtainable::{equivalent, obtainable_documents, substitutable, ObtainableSet};
pub use op::{OpClass, OpName, UpdateOp};
pub use pul::Pul;
pub use stream::apply_streaming;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, PulError>;
